//! Cross-system shapes (Tables III/IV): SOD's migration latency must beat
//! eager-copy on heap-heavy workloads and lose only where the paper loses.

use sod::baselines::{measure_workload, process_mig, thread_mig, vm_live};
use sod::workloads::WORKLOADS;

#[test]
fn sod_beats_eager_copy_on_fft() {
    let fft = &WORKLOADS[2];
    let m = measure_workload(&(fft.build)(), fft.class, fft.n);
    let (_, migs) = sod_bench::run_sodee(fft, true);
    let sod_latency = migs[0].latency_ns();
    let gj = process_mig::breakdown(&m).total_ns();
    assert!(
        sod_latency * 3 < gj,
        "SOD {sod_latency} should be far below eager copy {gj} on FFT"
    );
}

#[test]
fn jessica2_captures_faster_but_restores_slower_on_fft() {
    let fft = &WORKLOADS[2];
    let m = measure_workload(&(fft.build)(), fft.class, fft.n);
    let (_, migs) = sod_bench::run_sodee(fft, true);
    let je = thread_mig::breakdown(&m);
    assert!(je.capture_ns < migs[0].capture_ns, "in-kernel capture wins");
    assert!(
        je.restore_ns > 10_000_000,
        "static-array allocation should make JESSICA2's FFT restore slow"
    );
}

#[test]
fn xen_latency_is_seconds() {
    let r = vm_live::simulate(&vm_live::PrecopyConfig::paper_testbed(400, 8));
    assert!(
        r.total_ns > 2_000_000_000,
        "whole-OS migration takes seconds"
    );
    let (_, migs) = sod_bench::run_sodee(&WORKLOADS[0], true);
    assert!(r.total_ns > 50 * migs[0].latency_ns());
}
