//! Differential equivalence of the event schedulers: every scenario
//! shape the repository knows — single migration, multi-segment chains,
//! WAN roaming, exception-driven OnOom offload, every `ArrivalSchedule`,
//! every `CodeShipping` policy — must produce **bit-identical**
//! `ScenarioReport`s (and therefore `ClusterReport`s, per-node event
//! counts included) under `Scheduler::GlobalHeap`, `Scheduler::Sharded`,
//! and `Scheduler::Parallel` at 1, 2, and 4 threads. This suite is the
//! safety net that let the sharded per-node queue become the default and
//! the parallel drain land at all: any divergence in delivery order,
//! tie-breaking, or accounting between the schedulers fails loudly here.
//!
//! The property tests at the bottom push the same claim through random
//! fleets (node count 2–16, up to 300 programs, random triggers, links,
//! schedules, and seeds), plus byte conservation and same-seed
//! determinism under `Sharded` and `Parallel`.

use proptest::prelude::*;
use sod::asm::builder::ClassBuilder;
use sod::net::{LinkSpec, MS, US};
use sod::preprocess::preprocess_sod;
use sod::runtime::NodeConfig;
use sod::scenario::{Fleet, Plan, Preset, Scenario, ScenarioReport, When};
use sod::vm::class::ClassDef;
use sod::vm::value::Value;
use sod::workloads::apps::search_class;
use sod::workloads::programs::fib_class;
use sod::{ArrivalSchedule, CodeShipping, NetBytes, Scheduler};

/// Build the scenario once per scheduler — `GlobalHeap`, `Sharded`, and
/// `Parallel` at 1, 2, and 4 threads — and require the full reports
/// (results, timings, migrations, cluster aggregates, per-node
/// utilization and event counts) to compare `==`.
fn assert_equivalent(label: &str, build: impl Fn() -> Scenario) -> ScenarioReport {
    let global = build()
        .scheduler(Scheduler::GlobalHeap)
        .run()
        .unwrap_or_else(|e| panic!("{label}: GlobalHeap run failed: {e}"));
    let sharded = build()
        .scheduler(Scheduler::Sharded)
        .run()
        .unwrap_or_else(|e| panic!("{label}: Sharded run failed: {e}"));
    assert_eq!(
        global, sharded,
        "{label}: ScenarioReports diverge between schedulers"
    );
    for threads in [1, 2, 4] {
        let parallel = build()
            .threads(threads)
            .run()
            .unwrap_or_else(|e| panic!("{label}: Parallel({threads}) run failed: {e}"));
        assert_eq!(
            global, parallel,
            "{label}: Parallel({threads}) diverges from GlobalHeap"
        );
    }
    sharded
}

fn fib() -> ClassDef {
    preprocess_sod(&fib_class()).expect("preprocess fib")
}

#[test]
fn single_migration_is_scheduler_equivalent() {
    let report = assert_equivalent("single migration", || {
        Scenario::new()
            .slice_ns(10_000)
            .node("home", NodeConfig::cluster("home"))
            .deploys(&fib())
            .node("worker", NodeConfig::cluster("worker"))
            .program("Fib", "main", vec![Value::Int(16)])
            .on("home")
            .migrate(When::At(50 * US), Plan::top_to("worker", 2))
    });
    assert_eq!(report.first().result, Some(987));
    assert_eq!(report.first().migrations.len(), 1);
}

#[test]
fn chained_segments_are_scheduler_equivalent() {
    let report = assert_equivalent("chain", || {
        Scenario::new()
            .slice_ns(10_000)
            .node("home", NodeConfig::cluster("home"))
            .deploys(&fib())
            .node("w0", NodeConfig::cluster("w0"))
            .node("w1", NodeConfig::cluster("w1"))
            .program("Fib", "main", vec![Value::Int(16)])
            .on("home")
            .migrate(When::At(50 * US), Plan::chain(&[("w0", 1), ("w1", 2)]))
    });
    assert_eq!(report.first().result, Some(987));
    assert!(!report.first().migrations.is_empty());
}

#[test]
fn whole_stack_migration_is_scheduler_equivalent() {
    let report = assert_equivalent("whole stack", || {
        Scenario::new()
            .slice_ns(10_000)
            .node("home", NodeConfig::cluster("home"))
            .deploys(&fib())
            .node("worker", NodeConfig::cluster("worker"))
            .program("Fib", "main", vec![Value::Int(14)])
            .on("home")
            .migrate(When::At(50 * US), Plan::whole_stack_to("worker"))
    });
    assert_eq!(report.first().result, Some(377));
}

/// The roaming shape (paper §IV.C, trimmed): a search task hops across
/// WAN file servers instead of pulling their files over NFS.
#[test]
fn roaming_over_wan_grid_is_scheduler_equivalent() {
    let nfiles = 3usize;
    let report = assert_equivalent("roaming", || {
        let class = preprocess_sod(&search_class()).expect("preprocess search");
        let mut scenario = Scenario::new()
            .topology(Preset::WanGrid)
            .node("client", NodeConfig::cluster("client"))
            .deploys(&class);
        for i in 0..nfiles {
            scenario = scenario
                .node(format!("srv{i}"), NodeConfig::cluster(format!("srv{i}")))
                .file(format!("/srv/{i}/doc.txt"), 1 << 20, Some(9));
        }
        for i in 0..nfiles {
            let prefix = format!("/srv/{i}/");
            let server = format!("srv{i}");
            scenario = scenario.mount_on("client", &prefix, &server);
            for j in 0..nfiles {
                if j != i {
                    scenario = scenario.mount_on(format!("srv{j}"), &prefix, &server);
                }
            }
        }
        scenario
            .program(
                "Search",
                "main",
                vec![Value::Int(nfiles as i64), Value::Int(1), Value::Int(1)],
            )
            .on("client")
    });
    assert!(
        !report.first().migrations.is_empty(),
        "the task must actually roam"
    );
}

/// Exception-driven offload: the allocation overflows a small device
/// heap, `When::OnOom` rescues the whole stack onto the cloud.
#[test]
fn on_oom_offload_is_scheduler_equivalent() {
    let report = assert_equivalent("OnOom offload", || {
        let class = ClassBuilder::new("Big")
            .method("alloc", &["n"], |m| {
                m.line();
                m.load("n").newarr().store("a");
                m.line();
                m.load("a").arrlen().retv();
            })
            .method("main", &["n"], |m| {
                m.line();
                m.load("n").invoke("Big", "alloc", 1).store("r");
                m.line();
                m.load("r").retv();
            })
            .build()
            .expect("valid class");
        let class = preprocess_sod(&class).expect("preprocess");
        let mut phone = NodeConfig::device("phone");
        phone.mem_limit = Some(4 << 20);
        Scenario::new()
            .node("phone", phone)
            .deploys(&class)
            .node("cloud", NodeConfig::cloud("cloud"))
            .link("phone", "cloud", LinkSpec::wifi_kbps(764))
            .program("Big", "main", vec![Value::Int(2_000_000)])
            .on("phone")
            .migrate(When::OnOom, Plan::whole_stack_to("cloud"))
    });
    assert_eq!(report.first().result, Some(2_000_000));
    assert_eq!(report.first().migrations.len(), 1, "the rescue hop");
}

/// A fleet under the given arrival schedule, offloading on a CPU-slice
/// budget — the shape every fleet bench and test uses.
fn fleet_scenario(schedule: ArrivalSchedule, seed: u64, shipping: CodeShipping) -> Scenario {
    Scenario::new()
        .slice_ns(10_000)
        .code_shipping(shipping)
        .node("edge0", NodeConfig::cluster("edge0"))
        .deploys(&fib())
        .node("edge1", NodeConfig::cluster("edge1"))
        .deploys(&fib())
        .node("cloud", NodeConfig::cloud("cloud"))
        .fleet(
            Fleet::new("Fib", "main", vec![Value::Int(14)])
                .programs(40)
                .across(&["edge0", "edge1"])
                .arrivals(schedule, seed)
                .migrate(When::OnCpuSliceBudget(3), Plan::top_to("cloud", 1)),
        )
}

#[test]
fn every_arrival_schedule_is_scheduler_equivalent() {
    for (name, schedule) in [
        ("uniform", ArrivalSchedule::uniform(2 * MS).with_jitter(MS)),
        (
            "bursty",
            ArrivalSchedule::bursty(10, 5 * MS).with_jitter(MS),
        ),
        ("ramp", ArrivalSchedule::ramp(4 * MS, 500 * US)),
    ] {
        let report = assert_equivalent(name, || {
            fleet_scenario(schedule, 42, CodeShipping::default())
        });
        assert_eq!(report.cluster.completed, 40, "{name}: fleet must finish");
        assert!(report.cluster.p50_latency_ns > 0, "{name}");
    }
}

#[test]
fn every_code_shipping_policy_is_scheduler_equivalent() {
    for policy in [
        CodeShipping::BundleTop,
        CodeShipping::Never,
        CodeShipping::BundleReachable,
        CodeShipping::BundleAlways,
    ] {
        let report = assert_equivalent(&format!("{policy:?}"), || {
            fleet_scenario(ArrivalSchedule::uniform(MS), 7, policy)
        });
        assert_eq!(report.cluster.completed, 40, "{policy:?}");
    }
}

#[test]
fn client_requests_are_scheduler_equivalent() {
    // The photo-share accept-queue path: requests park threads on the
    // socket queue, so delivery interleaving is maximally visible here.
    let report = assert_equivalent("client requests", || {
        let server = ClassBuilder::new("Srv")
            .method("main", &["n"], |m| {
                m.line();
                m.pushi(0).store("i");
                m.pushi(0).store("acc");
                m.line();
                m.label("loop");
                m.load("i")
                    .load("n")
                    .if_cmp(sod::vm::instr::Cmp::Ge, "done");
                m.line();
                m.native("sock_accept", 0).store("req");
                m.line();
                m.load("acc").pushi(1).add().store("acc");
                m.line();
                m.load("i").pushi(1).add().store("i").goto("loop");
                m.line();
                m.label("done");
                m.load("acc").retv();
            })
            .build()
            .expect("valid server");
        let server = preprocess_sod(&server).expect("preprocess");
        Scenario::new()
            .node("srv", NodeConfig::cluster("srv"))
            .deploys(&server)
            .program("Srv", "main", vec![Value::Int(5)])
            .on("srv")
            .client_requests("srv", 5, ArrivalSchedule::uniform(MS), 3, "req-")
    });
    assert_eq!(report.first().result, Some(5));
}

/// Per-node event counts must be populated, partition the cluster total,
/// and agree between schedulers (they are part of the `==` above; this
/// pins that they are not trivially zero).
#[test]
fn per_node_event_counts_are_populated_and_equal() {
    let report = assert_equivalent("event counts", || {
        fleet_scenario(ArrivalSchedule::uniform(MS), 11, CodeShipping::default())
    });
    for node in &report.cluster.per_node {
        assert!(node.events > 0, "node {} absorbed no events", node.name);
    }
}

/// Regression pin: the exact per-node delivery counts of the
/// single-migration scenario, identical under every scheduler. A change
/// to event routing, tie-breaking, or the parallel merge that shifts
/// even one delivery to another node trips this before the subtler
/// differential suites do.
#[test]
fn per_node_event_counts_are_pinned_across_schedulers() {
    let scenario = || {
        Scenario::new()
            .slice_ns(10_000)
            .node("home", NodeConfig::cluster("home"))
            .deploys(&fib())
            .node("worker", NodeConfig::cluster("worker"))
            .program("Fib", "main", vec![Value::Int(16)])
            .on("home")
            .migrate(When::At(50 * US), Plan::top_to("worker", 2))
    };
    let schedulers = [
        Scheduler::GlobalHeap,
        Scheduler::Sharded,
        Scheduler::Parallel { threads: 1 },
        Scheduler::Parallel { threads: 2 },
        Scheduler::Parallel { threads: 4 },
    ];
    let mut pinned: Option<Vec<(String, u64)>> = None;
    for s in schedulers {
        let report = scenario().scheduler(s).run().expect("run");
        let counts: Vec<(String, u64)> = report
            .cluster
            .per_node
            .iter()
            .map(|n| (n.name.clone(), n.events))
            .collect();
        match &pinned {
            None => pinned = Some(counts),
            Some(first) => assert_eq!(first, &counts, "{s:?} shifted deliveries"),
        }
    }
    let counts = pinned.unwrap();
    let expect = [("home".to_string(), 15), ("worker".to_string(), 5)];
    assert_eq!(counts, expect, "pinned per-node delivery counts drifted");
}

/// Fault injection must not cost scheduler equivalence: the chaos RNG
/// draws in delivery order, which both schedulers reproduce identically,
/// so crashes, partitions, and seeded loss yield bit-identical reports
/// (chaos counters, failure sets, and `lost` buckets included).
#[test]
fn chaos_profiles_are_scheduler_equivalent() {
    use sod::runtime::RetryPolicy;
    use sod::scenario::Chaos;

    let profiles: Vec<(&str, Chaos)> = vec![
        ("loss", Chaos::new().seed(3).loss(50)),
        (
            "partition window",
            Chaos::new()
                .partition_at(2 * MS, "edge0", "cloud")
                .heal_at(8 * MS, "edge0", "cloud"),
        ),
        (
            "crash/restart",
            Chaos::new()
                .crash_at(5 * MS, "edge1")
                .restart_at(15 * MS, "edge1"),
        ),
        (
            "the works, retrying",
            Chaos::new()
                .seed(11)
                .loss(30)
                .partition_at(2 * MS, "edge0", "cloud")
                .heal_at(6 * MS, "edge0", "cloud")
                .crash_at(10 * MS, "edge1")
                .restart_at(20 * MS, "edge1")
                .retry(RetryPolicy::Retry { max_attempts: 2 }),
        ),
    ];
    for (name, chaos) in profiles {
        let report = assert_equivalent(name, || {
            fleet_scenario(
                ArrivalSchedule::bursty(10, 5 * MS).with_jitter(MS),
                42,
                CodeShipping::default(),
            )
            .chaos(chaos.clone())
        });
        // Everything still terminates: completed + failed partitions the
        // fleet under every profile.
        assert_eq!(
            report.cluster.completed + report.cluster.failed,
            report.cluster.launched,
            "{name}: programs must finish or fail typed"
        );
    }
}

/// Elastic pools must not cost scheduler equivalence either: controller
/// ticks, cold-start timers, mid-run topology growth, and drain-by-roam
/// all ride the same deterministic `(time, seq, dst)` order, so every
/// scale policy yields bit-identical reports — scaling counters and
/// node-seconds included.
#[test]
fn elastic_pools_are_scheduler_equivalent() {
    use sod::scenario::Pool;
    use sod::ScalePolicy;

    for (name, policy) in [
        ("queue depth", ScalePolicy::QueueDepth { high: 2, low: 1 }),
        ("p99 breach", ScalePolicy::P99Breach { budget_ns: 5 * MS }),
        ("step load", ScalePolicy::StepLoad { per_node: 2 }),
    ] {
        let report = assert_equivalent(name, || {
            Scenario::new()
                .slice_ns(10_000)
                .cpu_contention(true)
                .node("edge0", NodeConfig::cluster("edge0"))
                .deploys(&fib())
                .node("edge1", NodeConfig::cluster("edge1"))
                .deploys(&fib())
                .pool(
                    Pool::new("workers")
                        .base(1)
                        .max(6)
                        .scale_policy(policy)
                        .cold_start(2 * MS),
                )
                .fleet(
                    Fleet::new("Fib", "main", vec![Value::Int(14)])
                        .programs(40)
                        .across(&["edge0", "edge1"])
                        .arrivals(ArrivalSchedule::bursty(10, 5 * MS).with_jitter(MS), 42)
                        .migrate(When::OnCpuSliceBudget(3), Plan::top_to("workers", 1)),
                )
        });
        assert_eq!(report.cluster.completed, 40, "{name}: fleet must finish");
        assert_eq!(report.cluster.pools.len(), 1, "{name}");
        assert_eq!(
            report.cluster.pools[0].final_size, 1,
            "{name}: pool must drain back to base"
        );
    }
}

// ---------------------------------------------------------------------------
// Property tests: random fleets through both schedulers.
// ---------------------------------------------------------------------------

/// A randomized fleet over `nodes` cluster nodes: random arrival
/// schedule, random link override, random migration trigger (or none),
/// every member homed round-robin across all nodes and offloading to the
/// last node.
fn random_fleet(
    scheduler: Scheduler,
    nodes: usize,
    programs: usize,
    trigger: u8,
    schedule: u8,
    latency_us: u64,
    seed: u64,
) -> ScenarioReport {
    let class = fib();
    let names: Vec<String> = (0..nodes).map(|i| format!("n{i}")).collect();
    let mut scenario = Scenario::new().slice_ns(10_000);
    for name in &names {
        scenario = scenario
            .node(name.clone(), NodeConfig::cluster(name.clone()))
            .deploys(&class);
    }
    // One random slow link between the first and last node.
    scenario = scenario.link(
        names[0].clone(),
        names[nodes - 1].clone(),
        LinkSpec::new(latency_us * US, 100_000_000),
    );
    let schedule = match schedule % 3 {
        0 => ArrivalSchedule::uniform(MS).with_jitter(MS / 2),
        1 => ArrivalSchedule::bursty(8, 4 * MS),
        _ => ArrivalSchedule::ramp(2 * MS, 200 * US),
    };
    let across: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut fleet = Fleet::new("Fib", "main", vec![Value::Int(12)])
        .programs(programs)
        .across(&across)
        .arrivals(schedule, seed);
    let target = names[nodes - 1].clone();
    match trigger % 4 {
        0 => {} // no migration
        1 => fleet = fleet.migrate(When::At(MS + seed % MS), Plan::top_to(target, 1)),
        2 => {
            fleet = fleet.migrate(
                When::OnCpuSliceBudget(1 + seed % 3),
                Plan::top_to(target, 1),
            )
        }
        // Fib never faults on remote objects: arms but never fires, which
        // must be equivalent too.
        _ => fleet = fleet.migrate(When::OnObjectFaults(1), Plan::top_to(target, 1)),
    }
    scenario
        .fleet(fleet)
        .scheduler(scheduler)
        .run()
        .expect("random fleet runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_fleets_are_scheduler_equivalent(
        nodes in 2usize..17,
        programs in 1usize..301,
        trigger in 0u8..4,
        schedule in 0u8..3,
        latency_us in 10u64..2_000,
        seed in 0u64..1_000_000,
    ) {
        let run = |s| random_fleet(s, nodes, programs, trigger, schedule, latency_us, seed);
        let global = run(Scheduler::GlobalHeap);
        let sharded = run(Scheduler::Sharded);
        prop_assert_eq!(&global, &sharded, "schedulers diverged");

        // Same-seed determinism under Sharded.
        let again = run(Scheduler::Sharded);
        prop_assert_eq!(&sharded, &again, "Sharded run is not deterministic");

        // The parallel drain at a seed-derived thread count must match
        // too — real threads, same canonical merge order.
        let threads = 1 + (seed as usize % 4);
        let parallel = run(Scheduler::Parallel { threads });
        prop_assert_eq!(&global, &parallel, "Parallel({}) diverged", threads);

        // Every program completed and computed Fib(12).
        prop_assert_eq!(sharded.cluster.completed, programs as u64);
        prop_assert!(sharded.programs().iter().all(|p| p.report.result == Some(144)));

        // Byte conservation: per-node send totals partition the cluster
        // total, and the per-program accounting balances against it.
        let total = sharded.cluster.total_sent();
        let per_node = sharded
            .cluster
            .per_node
            .iter()
            .fold(NetBytes::default(), |acc, n| NetBytes {
                state: acc.state + n.sent.state,
                class: acc.class + n.sent.class,
                object: acc.object + n.sent.object,
            });
        prop_assert_eq!(total, per_node);
        let state: u64 = sharded
            .programs()
            .iter()
            .flat_map(|p| p.report.migrations.iter())
            .map(|m| m.state_bytes)
            .sum();
        let class: u64 = sharded.programs().iter().map(|p| p.report.class_bytes).sum();
        let object: u64 = sharded.programs().iter().map(|p| p.report.object_bytes).sum();
        prop_assert_eq!(total.state, state, "state bytes must balance");
        prop_assert_eq!(total.class, class, "class bytes must balance");
        prop_assert_eq!(total.object, object, "object bytes must balance");

        // Per-node event counts partition the delivered total (non-zero
        // somewhere: every program ran at least one slice).
        prop_assert!(sharded.cluster.per_node.iter().map(|n| n.events).sum::<u64>() > 0);
    }
}
