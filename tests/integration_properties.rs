//! Cross-crate property test: migrating a real workload at random points
//! never changes its result.

use proptest::prelude::*;
use sod::net::US;
use sod::preprocess::preprocess_sod;
use sod::runtime::NodeConfig;
use sod::scenario::{Plan, Scenario, When};
use sod::vm::value::Value;
use sod::workloads::programs::fib_class;

fn run_fib(n: i64, migrate_at_us: Option<u64>, nframes: usize) -> Option<i64> {
    let class = preprocess_sod(&fib_class()).unwrap();
    let mut scenario = Scenario::new()
        .node("home", NodeConfig::cluster("home"))
        .deploys(&class)
        .node("worker", NodeConfig::cluster("worker"))
        .program("Fib", "main", vec![Value::Int(n)])
        .on("home");
    if let Some(at) = migrate_at_us {
        scenario = scenario.migrate(When::At(at * US), Plan::top_to("worker", nframes));
    }
    scenario.run().expect("scenario completes").first().result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fib_result_invariant_under_migration(
        n in 16i64..22,
        at_us in 1u64..4_000,
        nframes in 1usize..6,
    ) {
        let expected = run_fib(n, None, 0);
        let migrated = run_fib(n, Some(at_us), nframes);
        prop_assert_eq!(expected, migrated);
    }
}
