//! Cross-crate property test: migrating a real workload at random points
//! never changes its result.

use proptest::prelude::*;
use sod::net::Topology;
use sod::net::US;
use sod::preprocess::preprocess_sod;
use sod::runtime::engine::{Cluster, SodSim};
use sod::runtime::msg::MigrationPlan;
use sod::runtime::node::{Node, NodeConfig};
use sod::vm::value::Value;
use sod::workloads::programs::fib_class;

fn run_fib(n: i64, migrate_at_us: Option<u64>, nframes: usize) -> Option<i64> {
    let class = preprocess_sod(&fib_class()).unwrap();
    let mut home = Node::new(NodeConfig::cluster("home"));
    home.deploy(&class).unwrap();
    home.stage(&class);
    let worker = Node::new(NodeConfig::cluster("worker"));
    let mut cluster = Cluster::new(vec![home, worker]);
    let pid = cluster.add_program(0, "Fib", "main", vec![Value::Int(n)]);
    let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(2));
    sim.start_program(0, pid);
    if let Some(at) = migrate_at_us {
        sim.migrate_at(at * US, pid, MigrationPlan::top_to(1, nframes));
    }
    sim.run();
    assert!(
        sim.program(pid).error.is_none(),
        "{:?}",
        sim.program(pid).error
    );
    sim.report(pid).result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fib_result_invariant_under_migration(
        n in 16i64..22,
        at_us in 1u64..4_000,
        nframes in 1usize..6,
    ) {
        let expected = run_fib(n, None, 0);
        let migrated = run_fib(n, Some(at_us), nframes);
        prop_assert_eq!(expected, migrated);
    }
}
