//! Fleet-path determinism and scale: the multi-tenant analogue of the
//! scenario-equivalence suite's byte-identical philosophy. A fleet run is
//! a pure function of (scenario, seed) — same inputs must reproduce the
//! *entire* `ScenarioReport`, `ClusterReport` included, bit for bit — and
//! a 100+ program fleet must run to completion with meaningful latency
//! percentiles and per-node utilization (the ISSUE's acceptance bar).

use sod::net::MS;
use sod::preprocess::preprocess_sod;
use sod::runtime::NodeConfig;
use sod::scenario::{Chaos, Fleet, Plan, Scenario, When};
use sod::vm::value::Value;
use sod::workloads::programs::fib_class;
use sod::{ArrivalSchedule, CodeShipping, NetBytes, ScenarioReport};

const FLEET: usize = 120;

/// Fib(16) requests arriving in three bursts with jittered offsets on
/// two edge nodes, each offloading its top frame to the shared cloud node
/// once it has burned three execution slices at home.
fn fleet_scenario_sized(seed: u64, programs: usize, shipping: CodeShipping) -> ScenarioReport {
    let class = preprocess_sod(&fib_class()).expect("preprocess fib");
    Scenario::new()
        // 10 µs slices: Fib(16) spans many slices, so the 3-slice CPU
        // budget below trips on every request.
        .slice_ns(10_000)
        .code_shipping(shipping)
        .node("edge0", NodeConfig::cluster("edge0"))
        .deploys(&class)
        .node("edge1", NodeConfig::cluster("edge1"))
        .deploys(&class)
        .node("cloud", NodeConfig::cloud("cloud"))
        .fleet(
            Fleet::new("Fib", "main", vec![Value::Int(16)])
                .programs(programs)
                .across(&["edge0", "edge1"])
                .arrivals(ArrivalSchedule::bursty(40, 20 * MS).with_jitter(MS), seed)
                .migrate(When::OnCpuSliceBudget(3), Plan::top_to("cloud", 1)),
        )
        .run()
        .expect("fleet runs")
}

fn fleet_scenario(seed: u64) -> ScenarioReport {
    fleet_scenario_sized(seed, FLEET, CodeShipping::default())
}

#[test]
fn same_seed_reproduces_the_cluster_report_exactly() {
    let a = fleet_scenario(42);
    let b = fleet_scenario(42);
    assert_eq!(a.cluster, b.cluster, "ClusterReports must be identical");
    assert_eq!(a, b, "full ScenarioReports must be identical");
    // A different seed shifts arrivals, which must show up in the report
    // (guards against the schedule silently ignoring the seed).
    let c = fleet_scenario(43);
    assert_ne!(a.cluster, c.cluster);
}

#[test]
fn hundred_plus_program_fleet_completes_with_percentiles() {
    let r = fleet_scenario(42);
    let cl = &r.cluster;
    assert_eq!(cl.launched, FLEET as u64);
    assert_eq!(cl.completed, FLEET as u64, "every request must complete");
    assert_eq!(cl.failed, 0);

    // Nearest-rank percentiles over real latencies: non-zero and ordered.
    assert!(cl.p50_latency_ns > 0);
    assert!(cl.p50_latency_ns <= cl.p95_latency_ns);
    assert!(cl.p95_latency_ns <= cl.p99_latency_ns);
    assert!(cl.p99_latency_ns <= cl.max_latency_ns);
    assert!(cl.mean_latency_ns > 0);
    assert!(cl.throughput_millirps > 0);
    assert!(cl.makespan_ns > 0);

    // All three nodes worked: the edges ran home slices, the cloud ran
    // the offloaded segments.
    assert_eq!(cl.per_node.len(), 3);
    for n in &cl.per_node {
        assert!(n.slices > 0, "node {} never ran a slice", n.name);
        assert!(n.instructions > 0, "node {} retired nothing", n.name);
        assert!(n.busy_ns > 0, "node {} has no busy time", n.name);
    }

    // The slice-budget trigger actually fired fleet-wide.
    let migrated = r
        .programs()
        .iter()
        .filter(|p| !p.report.migrations.is_empty())
        .count();
    assert_eq!(migrated, FLEET, "every request should offload once");
    // Per-program accounting: each report carries its own instructions,
    // not a global counter (the pre-fleet bug charged every program for
    // everyone's work).
    let per_program: Vec<u64> = r.programs().iter().map(|p| p.report.instructions).collect();
    let total: u64 = per_program.iter().sum();
    let node_total: u64 = cl.per_node.iter().map(|n| n.instructions).sum();
    assert_eq!(
        total, node_total,
        "program-attributed instructions must partition node totals"
    );
    assert!(per_program.iter().all(|&i| i > 0));
    // Sanity: results are correct under heavy interleaving.
    assert!(r.programs().iter().all(|p| p.report.result == Some(987)));
}

/// Byte conservation with fault injection: a fault-free fleet has an
/// empty `lost` bucket and the per-program balance of old; under seeded
/// loss the dropped payloads move *into* `lost` instead of leaking out of
/// the ledger — `sent = accounted + lost`, per category.
#[test]
fn dropped_bytes_land_in_the_lost_bucket_not_the_void() {
    let balance = |r: &ScenarioReport| -> (NetBytes, NetBytes, u64, u64, u64) {
        let state: u64 = r
            .programs()
            .iter()
            .flat_map(|p| p.report.migrations.iter())
            .map(|m| m.state_bytes)
            .sum();
        let class: u64 = r.programs().iter().map(|p| p.report.class_bytes).sum();
        let object: u64 = r.programs().iter().map(|p| p.report.object_bytes).sum();
        (
            r.cluster.total_sent(),
            r.cluster.total_lost(),
            state,
            class,
            object,
        )
    };

    // Fault-free: lost is identically zero and sent == accounted.
    let clean = fleet_scenario_sized(42, 30, CodeShipping::default());
    let (sent, lost, state, class, object) = balance(&clean);
    assert_eq!(lost, NetBytes::default(), "no chaos ⇒ nothing lost");
    assert_eq!(
        sent,
        NetBytes {
            state,
            class,
            object
        }
    );

    // Lossy: the same fleet under 8% seeded loss. Some payloads drop;
    // they must be credited to `lost`, and the identity still closes.
    let class_def = preprocess_sod(&fib_class()).expect("preprocess fib");
    let lossy = Scenario::new()
        .slice_ns(10_000)
        .node("edge0", NodeConfig::cluster("edge0"))
        .deploys(&class_def)
        .node("edge1", NodeConfig::cluster("edge1"))
        .deploys(&class_def)
        .node("cloud", NodeConfig::cloud("cloud"))
        .fleet(
            Fleet::new("Fib", "main", vec![Value::Int(16)])
                .programs(30)
                .across(&["edge0", "edge1"])
                .arrivals(ArrivalSchedule::bursty(40, 20 * MS).with_jitter(MS), 42)
                .migrate(When::OnCpuSliceBudget(3), Plan::top_to("cloud", 1)),
        )
        .chaos(Chaos::new().seed(5).loss(80))
        .run()
        .expect("lossy fleet runs");
    let (sent, lost, state, class, object) = balance(&lossy);
    assert!(
        lossy.cluster.chaos.dropped_msgs > 0,
        "8% loss over 30 programs must drop something"
    );
    assert_ne!(lost, NetBytes::default(), "drops must be credited as lost");
    assert_eq!(sent.state, state + lost.state, "state bytes leaked");
    assert_eq!(sent.class, class + lost.class, "class bytes leaked");
    assert_eq!(sent.object, object + lost.object, "object bytes leaked");
}

#[test]
fn bit_identical_under_each_code_shipping_policy() {
    // The cache-aware shipping layer must not cost determinism: under
    // every policy, same seed ⇒ byte-identical ScenarioReport. A smaller
    // fleet keeps the 8 runs cheap; the policies still diverge from each
    // other (different bundles ⇒ different transfer timings).
    let mut reports = Vec::new();
    for policy in [
        CodeShipping::BundleTop,
        CodeShipping::BundleAlways,
        CodeShipping::BundleReachable,
        CodeShipping::Never,
    ] {
        let a = fleet_scenario_sized(42, 30, policy);
        let b = fleet_scenario_sized(42, 30, policy);
        assert_eq!(a, b, "{policy:?} must be bit-identical per seed");
        assert_eq!(a.cluster.completed, 30, "{policy:?} must serve the fleet");
        assert!(
            a.programs().iter().all(|p| p.report.result == Some(987)),
            "{policy:?} must compute the same results"
        );
        reports.push(a);
    }
    // Warm-worker savings: the peer-tracked default ships strictly fewer
    // class bytes than the pre-cache always-bundle baseline.
    let top = reports[0].cluster.total_sent();
    let always = reports[1].cluster.total_sent();
    assert!(
        top.class < always.class,
        "BundleTop ({}) must undercut BundleAlways ({})",
        top.class,
        always.class
    );
    // Identical guest work regardless of shipping policy.
    assert_eq!(top.state, always.state);
}
