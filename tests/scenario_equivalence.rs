//! Equivalence: a `Scenario`-built run must produce a byte-identical
//! `RunReport` — result, timings, fault counts, byte counts — to the
//! legacy manual wiring (`Node` + `Cluster` + `SodSim`) it replaces.
//!
//! This is the only place outside `sod-runtime` that is allowed to wire
//! `Cluster::new`/`SodSim::new` by hand: it pins the builder to the
//! engine, event for event.

use sod::asm::builder::ClassBuilder;
use sod::net::{Topology, MS};
use sod::preprocess::preprocess_sod;
use sod::runtime::engine::{Cluster, SodSim};
use sod::runtime::metrics::RunReport;
use sod::runtime::msg::MigrationPlan;
use sod::runtime::node::{Node, NodeConfig};
use sod::scenario::{Plan, Scenario, When};
use sod::vm::class::ClassDef;
use sod::vm::instr::Cmp;
use sod::vm::value::Value;

/// The quickstart program: `work(n)` sums 0..n, `main(n)` calls it.
fn quickstart_class() -> ClassDef {
    let c = ClassBuilder::new("App")
        .method("work", &["n"], |m| {
            m.line();
            m.pushi(0).store("acc");
            m.pushi(0).store("i");
            m.line();
            m.label("loop");
            m.load("i").load("n").if_cmp(Cmp::Ge, "done");
            m.line();
            m.load("acc").load("i").add().store("acc");
            m.line();
            m.load("i").pushi(1).add().store("i").goto("loop");
            m.line();
            m.label("done");
            m.load("acc").retv();
        })
        .method("main", &["n"], |m| {
            m.line();
            m.load("n").invoke("App", "work", 1).store("r");
            m.line();
            m.load("r").retv();
        })
        .build()
        .unwrap();
    preprocess_sod(&c).unwrap()
}

const N: i64 = 2_000_000;

/// Legacy wiring: three cluster nodes, one program, one plan at 2 ms.
fn legacy_run(class: &ClassDef, plan: MigrationPlan) -> RunReport {
    let mut home = Node::new(NodeConfig::cluster("home"));
    home.deploy(class).unwrap();
    let n1 = Node::new(NodeConfig::cluster("n1"));
    let n2 = Node::new(NodeConfig::cluster("n2"));
    let mut cluster = Cluster::new(vec![home, n1, n2]);
    let pid = cluster.add_program(0, "App", "main", vec![Value::Int(N)]);
    let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(3));
    sim.start_program(0, pid);
    sim.migrate_at(2 * MS, pid, plan);
    sim.run();
    assert_eq!(sim.program(pid).error, None);
    sim.report(pid).clone()
}

/// The same experiment through the builder.
fn scenario_run(class: &ClassDef, plan: Plan) -> RunReport {
    Scenario::new()
        .node("home", NodeConfig::cluster("home"))
        .deploys(class)
        .node("n1", NodeConfig::cluster("n1"))
        .node("n2", NodeConfig::cluster("n2"))
        .program("App", "main", vec![Value::Int(N)])
        .on("home")
        .migrate(When::At(2 * MS), plan)
        .run()
        .unwrap()
        .first()
        .clone()
}

#[test]
fn quickstart_scenario_is_byte_identical_to_manual_wiring() {
    let class = quickstart_class();
    let legacy = legacy_run(&class, MigrationPlan::top_to(1, 1));
    let built = scenario_run(&class, Plan::top_to("n1", 1));
    // `RunReport` derives full `PartialEq`: result, instruction counts,
    // every migration timing, fault/byte counters, stack height.
    assert_eq!(legacy, built);
    assert_eq!(legacy.result, Some((0..N).sum::<i64>()));
    assert_eq!(legacy.migrations.len(), 1);
}

#[test]
fn workflow_scenario_is_byte_identical_to_manual_wiring() {
    let class = quickstart_class();
    // Fig. 1c: top frame to n1, residual stack to n2.
    let legacy = legacy_run(&class, MigrationPlan::chain(&[(1, 1), (2, 8)]));
    let built = scenario_run(&class, Plan::chain(&[("n1", 1), ("n2", 8)]));
    assert_eq!(legacy, built);
    assert_eq!(legacy.result, Some((0..N).sum::<i64>()));
    assert_eq!(legacy.migrations.len(), 2);
}

#[test]
fn no_migration_scenario_is_byte_identical_to_manual_wiring() {
    let class = quickstart_class();
    let legacy = {
        let mut home = Node::new(NodeConfig::cluster("home"));
        home.deploy(&class).unwrap();
        let worker = Node::new(NodeConfig::cluster("worker"));
        let mut cluster = Cluster::new(vec![home, worker]);
        let pid = cluster.add_program(0, "App", "main", vec![Value::Int(N)]);
        let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(2));
        sim.start_program(0, pid);
        sim.run();
        sim.report(pid).clone()
    };
    let built = Scenario::new()
        .node("home", NodeConfig::cluster("home"))
        .deploys(&class)
        .node("worker", NodeConfig::cluster("worker"))
        .program("App", "main", vec![Value::Int(N)])
        .run()
        .unwrap()
        .first()
        .clone();
    assert_eq!(legacy, built);
    assert!(legacy.migrations.is_empty());
}
