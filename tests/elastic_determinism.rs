//! The elastic-pool contract: autoscaling is *deterministic*. A scenario
//! with a [`Pool`] — controller ticks, cold starts, scale-out spawns,
//! drain-and-retire scale-in — is a pure function of (scenario, arrival
//! seed): same inputs reproduce the **entire** `ScenarioReport` bit for
//! bit, per-pool scaling counters and the `node_seconds` cost metric
//! included, under both event schedulers. Chaos interoperates: a crashed
//! pool member retires and the controller replaces it on its next tick.
//!
//! The property tests push the same claims through random scale policies,
//! cold-start latencies, and burst shapes.

use proptest::prelude::*;
use sod::net::MS;
use sod::preprocess::preprocess_sod;
use sod::runtime::NodeConfig;
use sod::scenario::{Chaos, Fleet, Plan, Pool, Scenario, When};
use sod::vm::value::Value;
use sod::workloads::programs::fib_class;
use sod::{ArrivalSchedule, ScalePolicy, ScenarioReport, Scheduler};

const FLEET: usize = 60;
const BASE: usize = 1;
const MAX: usize = 8;

/// The reference elastic fleet: Fib(14) bursts on two edges offloading
/// onto an autoscaled worker pool, with CPU contention on so co-located
/// sessions actually queue.
fn elastic_fleet(arrival_seed: u64, policy: ScalePolicy, scheduler: Scheduler) -> ScenarioReport {
    let class = preprocess_sod(&fib_class()).expect("preprocess fib");
    Scenario::new()
        .slice_ns(10_000)
        .scheduler(scheduler)
        .cpu_contention(true)
        .node("edge0", NodeConfig::cluster("edge0"))
        .deploys(&class)
        .node("edge1", NodeConfig::cluster("edge1"))
        .deploys(&class)
        .pool(
            Pool::new("workers")
                .base(BASE)
                .max(MAX)
                .scale_policy(policy)
                .cold_start(2 * MS),
        )
        .fleet(
            Fleet::new("Fib", "main", vec![Value::Int(14)])
                .programs(FLEET)
                .across(&["edge0", "edge1"])
                .arrivals(
                    ArrivalSchedule::bursty(20, 15 * MS).with_jitter(MS),
                    arrival_seed,
                )
                .migrate(When::OnCpuSliceBudget(3), Plan::top_to("workers", 1)),
        )
        .run()
        .expect("elastic fleet runs")
}

fn reference(scheduler: Scheduler) -> ScenarioReport {
    elastic_fleet(42, ScalePolicy::QueueDepth { high: 2, low: 1 }, scheduler)
}

/// Invariants every elastic run must satisfy: all programs terminated,
/// the pool respected its bounds, retirement drained the pool back to
/// base, and the cost metric covers every node that ever lived.
fn assert_elastic_invariants(label: &str, r: &ScenarioReport) {
    let cl = &r.cluster;
    assert_eq!(
        cl.completed + cl.failed,
        cl.launched,
        "{label}: every program must complete or fail typed"
    );
    assert_eq!(cl.pools.len(), 1, "{label}: one pool declared");
    let pool = &cl.pools[0];
    assert_eq!(pool.name, "workers", "{label}");
    assert!(
        pool.peak <= MAX as u64,
        "{label}: peak {} exceeds max {MAX}",
        pool.peak
    );
    assert_eq!(
        pool.final_size, BASE as u64,
        "{label}: the pool must drain back to base once the fleet is done"
    );
    // Every node that ever existed — declared, base, or spawned — has a
    // per-node row, and each spawned member accounts node lifetime.
    assert_eq!(
        cl.per_node.len() as u64,
        2 + BASE as u64 + pool.spawns,
        "{label}: per-node rows must cover spawned members"
    );
    assert!(cl.node_ns > 0, "{label}: node-seconds must accrue");
    for n in &cl.per_node {
        assert!(
            n.busy_ns <= n.lifetime_ns,
            "{label}: node {} busier than it was alive",
            n.name
        );
    }
}

#[test]
fn same_seed_replays_bit_identically() {
    let a = reference(Scheduler::Sharded);
    let b = reference(Scheduler::Sharded);
    assert_eq!(
        a, b,
        "same arrival seed must reproduce the full report, scaling included"
    );
    assert_eq!(a.cluster.pools, b.cluster.pools);
    assert_elastic_invariants("reference", &a);

    // The burst actually forced the pool open and back shut.
    let pool = &a.cluster.pools[0];
    assert!(pool.spawns > 0, "the burst must scale the pool out");
    assert!(pool.drains > 0, "cool-down must drain members back");
    assert!(
        pool.peak > BASE as u64,
        "peak size must exceed base during the burst"
    );
    assert_eq!(a.cluster.completed, FLEET as u64);
    assert_eq!(a.cluster.failed, 0);
}

#[test]
fn different_seed_diverges() {
    let a = reference(Scheduler::Sharded);
    let b = elastic_fleet(
        43,
        ScalePolicy::QueueDepth { high: 2, low: 1 },
        Scheduler::Sharded,
    );
    assert_ne!(a, b, "a different arrival seed must perturb the run");
    assert_elastic_invariants("reseeded", &b);
}

#[test]
fn elastic_is_scheduler_equivalent() {
    let sharded = reference(Scheduler::Sharded);
    let global = reference(Scheduler::GlobalHeap);
    assert_eq!(
        sharded, global,
        "elastic runs must be bit-identical under both schedulers"
    );
}

/// Pools grow the node set mid-run, so the parallel drain declines those
/// windows internally and steps them sequentially — the external
/// contract stays: same (seed, threads) replays bit for bit, every
/// thread count matches threads=1, and all match the sequential
/// schedulers, scaling counters and node-seconds included.
#[test]
fn elastic_replays_identically_under_parallel() {
    let sharded = reference(Scheduler::Sharded);
    let one = reference(Scheduler::Parallel { threads: 1 });
    assert_eq!(
        sharded, one,
        "Parallel(1) elastic run diverged from the sequential reference"
    );
    for threads in [2, 4] {
        let a = reference(Scheduler::Parallel { threads });
        let b = reference(Scheduler::Parallel { threads });
        assert_eq!(a, b, "Parallel({threads}) elastic replay diverged");
        assert_eq!(
            a, one,
            "Parallel({threads}) diverged from Parallel(1) under autoscaling"
        );
    }
    assert_elastic_invariants("parallel", &one);
}

/// Chaos interop: crash an initial pool member mid-burst. The member
/// retires permanently; the controller's next tick tops the pool back up
/// to base, and the run still terminates with a replayable report.
#[test]
fn crashed_pool_member_is_replaced() {
    let run = |scheduler| {
        let class = preprocess_sod(&fib_class()).expect("preprocess fib");
        Scenario::new()
            .slice_ns(10_000)
            .scheduler(scheduler)
            .cpu_contention(true)
            .node("edge0", NodeConfig::cluster("edge0"))
            .deploys(&class)
            .node("edge1", NodeConfig::cluster("edge1"))
            .deploys(&class)
            .pool(Pool::new("workers").base(2).max(6).cold_start(MS))
            .fleet(
                Fleet::new("Fib", "main", vec![Value::Int(14)])
                    .programs(30)
                    .across(&["edge0", "edge1"])
                    .arrivals(ArrivalSchedule::bursty(15, 10 * MS).with_jitter(MS), 42)
                    .migrate(When::OnCpuSliceBudget(3), Plan::top_to("workers", 1)),
            )
            .chaos(Chaos::new().seed(5).crash_at(8 * MS, "workers-0"))
            .run()
            .expect("chaotic elastic fleet runs")
    };
    let a = run(Scheduler::Sharded);
    let b = run(Scheduler::Sharded);
    assert_eq!(a, b, "chaos + elastic must replay bit-identically");
    let global = run(Scheduler::GlobalHeap);
    assert_eq!(a, global, "chaos + elastic must be scheduler-equivalent");

    let cl = &a.cluster;
    assert_eq!(cl.chaos.crashes, 1, "the member crash fired");
    assert_eq!(
        cl.completed + cl.failed,
        cl.launched,
        "crash recovery must leave no hangs"
    );
    let pool = &cl.pools[0];
    assert!(
        pool.spawns > 0,
        "the controller must spawn a replacement for the crashed member"
    );
    assert_eq!(
        pool.final_size, 2,
        "the pool must end at base despite losing a member"
    );
}

// ---------------------------------------------------------------------------
// Property tests: random policies, cold starts, and burst shapes.
// ---------------------------------------------------------------------------

fn random_elastic_fleet(
    scheduler: Scheduler,
    policy_sel: u8,
    knob: u64,
    cold_start_us: u64,
    burst: usize,
    programs: usize,
    seed: u64,
) -> ScenarioReport {
    let policy = match policy_sel % 3 {
        0 => ScalePolicy::QueueDepth {
            high: 1 + knob % 4,
            low: 1,
        },
        1 => ScalePolicy::P99Breach {
            budget_ns: (1 + knob % 20) * MS,
        },
        _ => ScalePolicy::StepLoad {
            per_node: 1 + knob % 4,
        },
    };
    let class = preprocess_sod(&fib_class()).expect("preprocess fib");
    Scenario::new()
        .slice_ns(10_000)
        .scheduler(scheduler)
        .cpu_contention(true)
        .node("edge", NodeConfig::cluster("edge"))
        .deploys(&class)
        .pool(
            Pool::new("workers")
                .base(1)
                .max(6)
                .scale_policy(policy)
                .cold_start(cold_start_us * 1_000),
        )
        .fleet(
            Fleet::new("Fib", "main", vec![Value::Int(12)])
                .programs(programs)
                .arrivals(ArrivalSchedule::bursty(burst, 8 * MS).with_jitter(MS), seed)
                .migrate(When::OnCpuSliceBudget(2), Plan::top_to("workers", 1)),
        )
        .run()
        .expect("random elastic fleet runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_policies_terminate_and_replay(
        policy_sel in 0u8..3,
        knob in 0u64..100,
        cold_start_us in 0u64..5_000,
        burst in 1usize..20,
        programs in 1usize..41,
        seed in 0u64..1_000_000,
    ) {
        let run = |s| random_elastic_fleet(
            s, policy_sel, knob, cold_start_us, burst, programs, seed,
        );
        let sharded = run(Scheduler::Sharded);

        // Same seed ⇒ bit-identical replay, scaling counters included.
        let again = run(Scheduler::Sharded);
        prop_assert_eq!(&sharded, &again, "elastic replay diverged");

        // And the controller is scheduler-independent.
        let global = run(Scheduler::GlobalHeap);
        prop_assert_eq!(&sharded, &global, "schedulers diverged under autoscaling");

        // Termination and pool bounds, for an arbitrary policy.
        let cl = &sharded.cluster;
        prop_assert_eq!(cl.completed, programs as u64);
        prop_assert_eq!(cl.failed, 0);
        let pool = &cl.pools[0];
        prop_assert!(pool.peak <= 6, "peak {} exceeds max", pool.peak);
        prop_assert!(pool.min >= 1, "live size dipped below base without chaos");
        prop_assert_eq!(pool.final_size, 1, "pool must drain back to base");
        prop_assert_eq!(
            cl.per_node.len() as u64,
            2 + pool.spawns,
            "per-node rows must cover spawned members"
        );
    }
}
