//! Differential suite for the encode-once wire path.
//!
//! The codec rework (pooled single-shot encoding, `Bytes` frames, batched
//! object delivery) must be *observationally invisible*: every byte metric,
//! latency percentile, and makespan of a deterministic fleet run has to
//! match the values the arithmetic `wire_bytes()` accounting produced
//! before the change. The constants below were captured from the
//! pre-codec engine (seed 42, chaos seed 5) and pin that equivalence
//! bit-for-bit — state bytes now come from `frame.len()`, class bytes
//! from the memoized size cache, and object bytes from
//! `FrameBatch::payload_bytes()`, so any drift in the encoders or the
//! framing shows up here as a hard failure.

use sod::net::MS;
use sod::preprocess::preprocess_sod;
use sod::runtime::{FetchPolicy, NodeConfig};
use sod::scenario::{Chaos, Fleet, Plan, Scenario, When};
use sod::vm::value::Value;
use sod::workloads::programs::fib_class;
use sod::{ArrivalSchedule, CodeShipping, ScenarioReport};

fn fleet(seed: u64, programs: usize, shipping: CodeShipping, chaos: bool) -> ScenarioReport {
    let class = preprocess_sod(&fib_class()).expect("preprocess fib");
    let mut sc = Scenario::new()
        .slice_ns(10_000)
        .code_shipping(shipping)
        .node("edge0", NodeConfig::cluster("edge0"))
        .deploys(&class)
        .node("edge1", NodeConfig::cluster("edge1"))
        .deploys(&class)
        .node("cloud", NodeConfig::cloud("cloud"))
        .fleet(
            Fleet::new("Fib", "main", vec![Value::Int(16)])
                .programs(programs)
                .across(&["edge0", "edge1"])
                .arrivals(ArrivalSchedule::bursty(40, 20 * MS).with_jitter(MS), seed)
                .migrate(When::OnCpuSliceBudget(3), Plan::top_to("cloud", 1)),
        );
    if chaos {
        sc = sc.chaos(Chaos::new().seed(5).loss(80));
    }
    sc.run().expect("fleet runs")
}

fn micro_class() -> sod::vm::class::ClassDef {
    use sod::asm::builder::ClassBuilder;
    use sod::vm::instr::Cmp;
    use sod::vm::value::TypeOf;
    ClassBuilder::new("Micro")
        .field("f", TypeOf::Int)
        .method("main", &["iters"], |m| {
            m.line();
            m.new_obj("Micro").store("o");
            m.line();
            m.pushi(0).store("i");
            m.line();
            m.label("loop");
            m.load("i").load("iters").if_cmp(Cmp::Ge, "done");
            m.line();
            m.load("o").load("i").putfield("f");
            m.line();
            m.load("o").getfield("f").store("t");
            m.line();
            m.load("i").pushi(1).add().store("i").goto("loop");
            m.line();
            m.label("done");
            m.load("t").retv();
        })
        .build()
        .unwrap()
}

fn object_fleet(seed: u64, programs: usize, policy: FetchPolicy, chaos: bool) -> ScenarioReport {
    let class = preprocess_sod(&micro_class()).expect("preprocess micro");
    let mut sc = Scenario::new()
        .slice_ns(2_000)
        .node("edge0", NodeConfig::cluster("edge0"))
        .deploys(&class)
        .node("cloud", NodeConfig::cloud("cloud"))
        .fleet(
            Fleet::new("Micro", "main", vec![Value::Int(2_000)])
                .programs(programs)
                .across(&["edge0"])
                .arrivals(ArrivalSchedule::uniform(2 * MS).with_jitter(MS), seed)
                .fetch_policy(policy)
                .migrate(When::OnCpuSliceBudget(2), Plan::top_to("cloud", 1)),
        );
    if chaos {
        sc = sc.chaos(Chaos::new().seed(5).loss(80));
    }
    sc.run().expect("object fleet runs")
}

/// The full observable surface of a deterministic run, as one comparable
/// value: per-category cluster sent/lost bytes, per-program accounted
/// bytes (state from migration timings, class and object from the program
/// reports), object faults, latency percentiles, and makespan.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    sent: (u64, u64, u64),
    lost: (u64, u64, u64),
    acc_state: u64,
    acc_class: u64,
    acc_object: u64,
    faults: u64,
    p50: u64,
    p99: u64,
    makespan: u64,
}

fn observe(r: &ScenarioReport) -> Observed {
    let sent = r.cluster.total_sent();
    let lost = r.cluster.total_lost();
    Observed {
        sent: (sent.state, sent.class, sent.object),
        lost: (lost.state, lost.class, lost.object),
        acc_state: r
            .programs()
            .iter()
            .flat_map(|p| p.report.migrations.iter())
            .map(|m| m.state_bytes)
            .sum(),
        acc_class: r.programs().iter().map(|p| p.report.class_bytes).sum(),
        acc_object: r.programs().iter().map(|p| p.report.object_bytes).sum(),
        faults: r.programs().iter().map(|p| p.report.object_faults).sum(),
        p50: r.cluster.p50_latency_ns,
        p99: r.cluster.p99_latency_ns,
        makespan: r.cluster.makespan_ns,
    }
}

/// Fib fleet across every code-shipping mode, clean and lossy: all byte
/// metrics and timings pinned to the pre-codec (arithmetic accounting)
/// engine. `sent == accounted + lost` per category in every row.
#[test]
fn fib_fleet_metrics_match_precodec_engine() {
    let cases: [(&str, CodeShipping, bool, Observed); 5] = [
        (
            "clean_top",
            CodeShipping::BundleTop,
            false,
            Observed {
                sent: (2100, 1214, 0),
                lost: (0, 0, 0),
                acc_state: 2100,
                acc_class: 1214,
                acc_object: 0,
                faults: 0,
                p50: 7_549_510,
                p99: 8_454_973,
                makespan: 8_531_362,
            },
        ),
        (
            "clean_always",
            CodeShipping::BundleAlways,
            false,
            Observed {
                sent: (2100, 18210, 0),
                lost: (0, 0, 0),
                acc_state: 2100,
                acc_class: 18210,
                acc_object: 0,
                faults: 0,
                p50: 7_554_366,
                p99: 8_454_973,
                makespan: 8_531_362,
            },
        ),
        (
            "clean_reach",
            CodeShipping::BundleReachable,
            false,
            Observed {
                sent: (2100, 1214, 0),
                lost: (0, 0, 0),
                acc_state: 2100,
                acc_class: 1214,
                acc_object: 0,
                faults: 0,
                p50: 7_549_510,
                p99: 8_454_973,
                makespan: 8_531_362,
            },
        ),
        (
            "clean_never",
            CodeShipping::Never,
            false,
            Observed {
                sent: (2100, 17603, 0),
                lost: (0, 0, 0),
                acc_state: 2100,
                acc_class: 17603,
                acc_object: 0,
                faults: 0,
                p50: 8_741_641,
                p99: 9_284_233,
                makespan: 9_526_945,
            },
        ),
        (
            "lossy_top",
            CodeShipping::BundleTop,
            true,
            Observed {
                sent: (2100, 1214, 0),
                lost: (70, 0, 0),
                acc_state: 2030,
                acc_class: 1214,
                acc_object: 0,
                faults: 0,
                p50: 7_549_510,
                p99: 50_464_602,
                makespan: 51_262_046,
            },
        ),
    ];
    for (name, shipping, chaos, expected) in cases {
        let r = fleet(42, 30, shipping, chaos);
        let got = observe(&r);
        assert_eq!(got, expected, "codec drift in fib fleet case {name}");
        // Byte conservation: every shipped state byte is either accounted
        // by a restored migration or credited as lost.
        assert_eq!(
            got.sent.0,
            got.acc_state + got.lost.0,
            "state bytes unbalanced in {name}"
        );
    }
}

/// Object-heavy fleet (faults + flushes) across fetch policies, clean and
/// lossy: object-reply batches and flush batches must account exactly the
/// bytes the per-object arithmetic produced.
#[test]
fn object_fleet_metrics_match_precodec_engine() {
    let clean = Observed {
        sent: (984, 509, 775),
        lost: (0, 0, 0),
        acc_state: 984,
        acc_class: 509,
        acc_object: 775,
        faults: 12,
        p50: 10_117_978,
        p99: 10_847_026,
        makespan: 30_560_570,
    };
    let lossy = Observed {
        sent: (984, 509, 651),
        lost: (82, 0, 0),
        acc_state: 902,
        acc_class: 509,
        acc_object: 651,
        faults: 10,
        p50: 10_140_014,
        p99: 50_442_071,
        makespan: 70_864_620,
    };
    let cases: [(&str, FetchPolicy, bool, &Observed); 3] = [
        ("obj_shallow", FetchPolicy::Shallow, false, &clean),
        // This workload's closure is a single object, so deep prefetch
        // batches exactly the shallow set: byte-identical by design.
        ("obj_deep", FetchPolicy::Deep, false, &clean),
        ("obj_lossy", FetchPolicy::Shallow, true, &lossy),
    ];
    for (name, policy, chaos, expected) in cases {
        let r = object_fleet(42, 12, policy, chaos);
        let got = observe(&r);
        assert_eq!(&got, expected, "codec drift in object fleet case {name}");
    }
}

/// Same scenario, run twice: the pooled-buffer path must be a pure
/// optimization — buffer reuse can never leak into observable state, so
/// two runs in one process (warm pool vs cold pool) are identical.
#[test]
fn pooled_runs_are_reproducible() {
    let a = observe(&fleet(42, 10, CodeShipping::BundleTop, false));
    let b = observe(&fleet(42, 10, CodeShipping::BundleTop, false));
    assert_eq!(a, b, "pool reuse leaked into observable metrics");
    let oa = observe(&object_fleet(7, 6, FetchPolicy::Deep, false));
    let ob = observe(&object_fleet(7, 6, FetchPolicy::Deep, false));
    assert_eq!(oa, ob, "object batch pooling leaked into metrics");
}
