//! End-to-end: every Table I workload completes correctly with and without
//! a mid-run SOD migration, and the migrated result matches.

use sod::net::{Topology, MS};
use sod::preprocess::preprocess_sod;
use sod::runtime::engine::{Cluster, SodSim};
use sod::runtime::msg::MigrationPlan;
use sod::runtime::node::{Node, NodeConfig};
use sod::workloads::WORKLOADS;

#[test]
fn all_workloads_migrate_losslessly() {
    for w in &WORKLOADS {
        let class = preprocess_sod(&(w.build)()).unwrap();
        let run = |migrate: bool| {
            let mut home = Node::new(NodeConfig::cluster("home"));
            home.deploy(&class).unwrap();
            home.stage(&class);
            let worker = Node::new(NodeConfig::cluster("worker"));
            let mut cluster = Cluster::new(vec![home, worker]);
            let pid = cluster.add_program(0, w.class, w.method, w.args());
            let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(2));
            sim.start_program(0, pid);
            if migrate {
                sim.migrate_at(3 * MS, pid, MigrationPlan::top_to(1, 1));
            }
            sim.run();
            assert!(
                sim.program(pid).error.is_none(),
                "{}: {:?}",
                w.name,
                sim.program(pid).error
            );
            sim.report(pid).result
        };
        let plain = run(false);
        let migrated = run(true);
        assert_eq!(plain, migrated, "{} diverged under migration", w.name);
        assert!(plain.is_some(), "{} returned nothing", w.name);
    }
}
