//! End-to-end: every Table I workload completes correctly with and without
//! a mid-run SOD migration, and the migrated result matches.

use sod::net::MS;
use sod::preprocess::preprocess_sod;
use sod::runtime::NodeConfig;
use sod::scenario::{Plan, Scenario, When};
use sod::workloads::WORKLOADS;

#[test]
fn all_workloads_migrate_losslessly() {
    for w in &WORKLOADS {
        let class = preprocess_sod(&(w.build)()).unwrap();
        let run = |migrate: bool| {
            let mut scenario = Scenario::new()
                .node("home", NodeConfig::cluster("home"))
                .deploys(&class)
                .node("worker", NodeConfig::cluster("worker"))
                .program(w.class, w.method, w.args())
                .on("home");
            if migrate {
                scenario = scenario.migrate(When::At(3 * MS), Plan::top_to("worker", 1));
            }
            let report = scenario.run().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            report.first().result
        };
        let plain = run(false);
        let migrated = run(true);
        assert_eq!(plain, migrated, "{} diverged under migration", w.name);
        assert!(plain.is_some(), "{} returned nothing", w.name);
    }
}
