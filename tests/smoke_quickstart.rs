//! Smoke test: the `examples/quickstart.rs` flow as a `#[test]`, so the
//! facade crate's public API (author → preprocess → scenario → migrate →
//! report) is exercised by `cargo test` on every CI run.

use sod::net::MS;
use sod::preprocess::preprocess_sod;
use sod::runtime::NodeConfig;
use sod::scenario::{Plan, Scenario, When};
use sod::vm::instr::Cmp;
use sod::vm::value::Value;

/// The quickstart program: `work(n)` sums 0..n, `main(n)` calls it.
fn quickstart_class() -> sod::vm::class::ClassDef {
    use sod::asm::builder::ClassBuilder;
    ClassBuilder::new("App")
        .method("work", &["n"], |m| {
            m.line();
            m.pushi(0).store("acc");
            m.pushi(0).store("i");
            m.line();
            m.label("loop");
            m.load("i").load("n").if_cmp(Cmp::Ge, "done");
            m.line();
            m.load("acc").load("i").add().store("acc");
            m.line();
            m.load("i").pushi(1).add().store("i").goto("loop");
            m.line();
            m.label("done");
            m.load("acc").retv();
        })
        .method("main", &["n"], |m| {
            m.line();
            m.load("n").invoke("App", "work", 1).store("r");
            m.line();
            m.load("r").retv();
        })
        .build()
        .expect("valid program")
}

const N: i64 = 2_000_000;
const EXPECTED: i64 = N * (N - 1) / 2;

fn run(migrate: bool) -> sod::runtime::metrics::RunReport {
    let class = preprocess_sod(&quickstart_class()).expect("preprocess");
    let mut scenario = Scenario::new()
        .node("home", NodeConfig::cluster("home"))
        .deploys(&class)
        .node("worker", NodeConfig::cluster("worker"))
        .program("App", "main", vec![Value::Int(N)])
        .on("home");
    if migrate {
        scenario = scenario.migrate(When::At(2 * MS), Plan::top_to("worker", 1));
    }
    scenario.run().expect("scenario completes").first().clone()
}

#[test]
fn quickstart_offload_completes_with_correct_result() {
    let r = run(true);
    assert_eq!(r.result, Some(EXPECTED), "offloaded run computes the sum");
    assert_eq!(r.migrations.len(), 1, "exactly one migration happened");
    let m = &r.migrations[0];
    assert!(m.capture_ns > 0, "capture cost is accounted");
    assert!(
        m.transfer_state_ns + m.transfer_class_ns > 0,
        "transfer cost is accounted"
    );
    assert!(m.restore_ns > 0, "restore cost is accounted");
    assert!(r.finished_at_ns > 0, "virtual clock advanced");
}

#[test]
fn quickstart_migrated_run_matches_local_run() {
    let local = run(false);
    let migrated = run(true);
    assert_eq!(local.result, Some(EXPECTED));
    assert_eq!(
        local.result, migrated.result,
        "migration preserves the result"
    );
    assert!(local.migrations.is_empty(), "local run never migrates");
}
