//! Smoke test: the `examples/quickstart.rs` flow as a `#[test]`, so the
//! facade crate's public API (author → preprocess → deploy → migrate →
//! report) is exercised by `cargo test` on every CI run.

use sod::asm::builder::ClassBuilder;
use sod::net::{Topology, MS};
use sod::preprocess::preprocess_sod;
use sod::runtime::engine::{Cluster, SodSim};
use sod::runtime::msg::MigrationPlan;
use sod::runtime::node::{Node, NodeConfig};
use sod::vm::instr::Cmp;
use sod::vm::value::Value;

/// The quickstart program: `work(n)` sums 0..n, `main(n)` calls it.
fn quickstart_class() -> sod::vm::class::ClassDef {
    ClassBuilder::new("App")
        .method("work", &["n"], |m| {
            m.line();
            m.pushi(0).store("acc");
            m.pushi(0).store("i");
            m.line();
            m.label("loop");
            m.load("i").load("n").if_cmp(Cmp::Ge, "done");
            m.line();
            m.load("acc").load("i").add().store("acc");
            m.line();
            m.load("i").pushi(1).add().store("i").goto("loop");
            m.line();
            m.label("done");
            m.load("acc").retv();
        })
        .method("main", &["n"], |m| {
            m.line();
            m.load("n").invoke("App", "work", 1).store("r");
            m.line();
            m.load("r").retv();
        })
        .build()
        .expect("valid program")
}

const N: i64 = 2_000_000;
const EXPECTED: i64 = N * (N - 1) / 2;

fn run(migrate: bool) -> sod::runtime::metrics::RunReport {
    let class = preprocess_sod(&quickstart_class()).expect("preprocess");

    let mut home = Node::new(NodeConfig::cluster("home"));
    home.deploy(&class).unwrap();
    home.stage(&class);
    let worker = Node::new(NodeConfig::cluster("worker"));

    let mut cluster = Cluster::new(vec![home, worker]);
    let pid = cluster.add_program(0, "App", "main", vec![Value::Int(N)]);
    let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(2));
    sim.start_program(0, pid);
    if migrate {
        sim.migrate_at(2 * MS, pid, MigrationPlan::top_to(1, 1));
    }
    sim.run();
    sim.report(pid).clone()
}

#[test]
fn quickstart_offload_completes_with_correct_result() {
    let r = run(true);
    assert_eq!(r.result, Some(EXPECTED), "offloaded run computes the sum");
    assert_eq!(r.migrations.len(), 1, "exactly one migration happened");
    let m = &r.migrations[0];
    assert!(m.capture_ns > 0, "capture cost is accounted");
    assert!(
        m.transfer_state_ns + m.transfer_class_ns > 0,
        "transfer cost is accounted"
    );
    assert!(m.restore_ns > 0, "restore cost is accounted");
    assert!(r.finished_at_ns > 0, "virtual clock advanced");
}

#[test]
fn quickstart_migrated_run_matches_local_run() {
    let local = run(false);
    let migrated = run(true);
    assert_eq!(local.result, Some(EXPECTED));
    assert_eq!(
        local.result, migrated.result,
        "migration preserves the result"
    );
    assert!(local.migrations.is_empty(), "local run never migrates");
}
