//! The chaos harness contract: fault injection is *deterministic*. A
//! scenario with a `Chaos` plan — crashes, partitions, seeded loss — is a
//! pure function of (scenario, arrival seed, chaos seed): same inputs
//! reproduce the **entire** `ScenarioReport` bit for bit, failure sets
//! and chaos counters included. Different chaos seeds must perturb the
//! run, every affected program must end in a typed error or a recovered
//! result (never a hang or a panic), and the byte ledger must balance
//! with the `lost` bucket: `sent = accounted + lost`, per category.
//!
//! The property tests push the same claims through random fleets (2–16
//! nodes) under random chaos plans, on both event schedulers.

use proptest::prelude::*;
use sod::net::MS;
use sod::preprocess::preprocess_sod;
use sod::runtime::{NodeConfig, RetryPolicy};
use sod::scenario::{Chaos, Fleet, Plan, Scenario, When};
use sod::vm::value::Value;
use sod::workloads::programs::fib_class;
use sod::{ArrivalSchedule, NetBytes, ScenarioReport, Scheduler};

const FLEET: usize = 60;

/// The reference chaos fleet: Fib(14) bursts on two edges offloading to a
/// shared cloud node, under 5% seeded loss, an edge0 ↔ cloud partition
/// window, and an edge1 crash/restart pair.
fn chaos_fleet(
    arrival_seed: u64,
    chaos_seed: u64,
    loss_permille: u32,
    policy: RetryPolicy,
    scheduler: Scheduler,
) -> ScenarioReport {
    let class = preprocess_sod(&fib_class()).expect("preprocess fib");
    Scenario::new()
        .slice_ns(10_000)
        .scheduler(scheduler)
        .node("edge0", NodeConfig::cluster("edge0"))
        .deploys(&class)
        .node("edge1", NodeConfig::cluster("edge1"))
        .deploys(&class)
        .node("cloud", NodeConfig::cloud("cloud"))
        .fleet(
            Fleet::new("Fib", "main", vec![Value::Int(14)])
                .programs(FLEET)
                .across(&["edge0", "edge1"])
                .arrivals(
                    ArrivalSchedule::bursty(20, 15 * MS).with_jitter(MS),
                    arrival_seed,
                )
                .migrate(When::OnCpuSliceBudget(3), Plan::top_to("cloud", 1)),
        )
        .chaos(
            Chaos::new()
                .seed(chaos_seed)
                .loss(loss_permille)
                .partition_at(5 * MS, "edge0", "cloud")
                .heal_at(12 * MS, "edge0", "cloud")
                .crash_at(20 * MS, "edge1")
                .restart_at(30 * MS, "edge1")
                .retry(policy),
        )
        .run()
        .expect("chaos fleet runs (fleet failures are recorded, not fatal)")
}

fn reference(scheduler: Scheduler) -> ScenarioReport {
    chaos_fleet(42, 7, 50, RetryPolicy::FallbackToHome, scheduler)
}

/// Check the invariants every chaos run must satisfy: all programs
/// terminated (result or typed error — no silent hangs), the failure
/// counters partition the fleet, and the byte ledger balances against the
/// `lost` bucket in every category.
fn assert_chaos_invariants(label: &str, r: &ScenarioReport) {
    let cl = &r.cluster;
    assert_eq!(
        cl.completed + cl.failed,
        cl.launched,
        "{label}: every program must complete or fail with a typed error"
    );
    for p in r.programs() {
        assert!(
            p.report.result.is_some() || p.error.is_some(),
            "{label}: {} neither finished nor errored (hang)",
            p.name
        );
    }
    // Byte conservation with the lost bucket: what left a NIC either
    // landed in a program's report or is credited to `lost`.
    let sent = cl.total_sent();
    let lost = cl.total_lost();
    let state: u64 = r
        .programs()
        .iter()
        .flat_map(|p| p.report.migrations.iter())
        .map(|m| m.state_bytes)
        .sum();
    let class: u64 = r.programs().iter().map(|p| p.report.class_bytes).sum();
    let object: u64 = r.programs().iter().map(|p| p.report.object_bytes).sum();
    assert_eq!(sent.state, state + lost.state, "{label}: state bytes leak");
    assert_eq!(sent.class, class + lost.class, "{label}: class bytes leak");
    assert_eq!(
        sent.object,
        object + lost.object,
        "{label}: object bytes leak"
    );
}

#[test]
fn same_seeds_replay_bit_identically() {
    let a = reference(Scheduler::Sharded);
    let b = reference(Scheduler::Sharded);
    assert_eq!(
        a, b,
        "same (arrival seed, chaos seed) must reproduce the full report"
    );
    // The replay includes the failure set and the chaos counters, not
    // just the happy-path aggregates.
    assert_eq!(a.cluster.chaos, b.cluster.chaos);
    assert_chaos_invariants("reference", &a);

    // The injected faults actually happened and were observed.
    assert_eq!(a.cluster.chaos.crashes, 1);
    assert_eq!(a.cluster.chaos.restarts, 1);
    assert_eq!(a.cluster.chaos.partitions, 1);
    assert_eq!(a.cluster.chaos.heals, 1);
    assert!(
        a.cluster.chaos.dropped_msgs > 0,
        "5% loss over a 60-program fleet must drop messages"
    );
    assert!(
        a.cluster.failed > 0,
        "the edge1 crash must fail the programs homed there"
    );
    let crashed: Vec<_> = errors_of(&a);
    assert!(
        crashed.iter().any(|e| e.contains("crashed")),
        "home-crash failures must carry the typed error: {crashed:?}"
    );
    assert!(
        a.cluster.total_lost() != NetBytes::default(),
        "drops must surface in the lost bucket, not vanish"
    );
}

fn errors_of(r: &ScenarioReport) -> Vec<String> {
    r.programs()
        .iter()
        .filter_map(|p| p.error.clone())
        .collect()
}

#[test]
fn different_chaos_seed_diverges() {
    let a = reference(Scheduler::Sharded);
    let b = chaos_fleet(42, 8, 50, RetryPolicy::FallbackToHome, Scheduler::Sharded);
    assert_ne!(
        a, b,
        "a different chaos seed must reshuffle the loss stream"
    );
    // The chaos layer is the only thing that changed, and it shows.
    assert_chaos_invariants("reseeded", &b);
}

#[test]
fn chaos_is_scheduler_equivalent() {
    let sharded = reference(Scheduler::Sharded);
    let global = reference(Scheduler::GlobalHeap);
    assert_eq!(
        sharded, global,
        "chaos runs must be bit-identical under both schedulers"
    );
}

/// The parallel drain declines chaos runs internally (the fault layer is
/// engine-global state), falling back to sequential stepping — but the
/// contract is the same from outside: same (seeds, threads) replays bit
/// for bit, every thread count matches threads=1, and all of them match
/// the sequential schedulers.
#[test]
fn chaos_replays_identically_under_parallel() {
    let sharded = reference(Scheduler::Sharded);
    let one = reference(Scheduler::Parallel { threads: 1 });
    assert_eq!(
        sharded, one,
        "Parallel(1) chaos run diverged from the sequential reference"
    );
    for threads in [2, 4] {
        let a = reference(Scheduler::Parallel { threads });
        let b = reference(Scheduler::Parallel { threads });
        assert_eq!(a, b, "Parallel({threads}) chaos replay diverged");
        assert_eq!(
            a, one,
            "Parallel({threads}) diverged from Parallel(1) under chaos"
        );
    }
    assert_chaos_invariants("parallel", &one);
}

#[test]
fn retry_policy_recovers_lost_episodes() {
    let r = chaos_fleet(
        42,
        7,
        50,
        RetryPolicy::Retry { max_attempts: 3 },
        Scheduler::Sharded,
    );
    assert_chaos_invariants("retry", &r);
    assert!(
        r.cluster.chaos.timeouts > 0,
        "5% loss must strand some migration episode past its deadline"
    );
    assert!(
        r.cluster.chaos.retries > 0,
        "the Retry policy must re-ship timed-out episodes"
    );
    // And the same run under FallbackToHome resolves the same episodes by
    // thawing the home stack instead.
    let f = reference(Scheduler::Sharded);
    assert!(
        f.cluster.chaos.fallbacks > 0,
        "FallbackToHome must thaw timed-out episodes"
    );
}

// ---------------------------------------------------------------------------
// Property tests: random chaos plans over random fleets.
// ---------------------------------------------------------------------------

/// A random fleet under a random chaos plan: `nodes` cluster nodes,
/// scattered crash/restart pairs, a partition window between the first
/// and last node, and seeded loss.
#[allow(clippy::too_many_arguments)]
fn random_chaos_fleet(
    scheduler: Scheduler,
    nodes: usize,
    programs: usize,
    loss_permille: u32,
    crashes: usize,
    partition: bool,
    policy_retry: bool,
    seed: u64,
) -> ScenarioReport {
    let class = preprocess_sod(&fib_class()).expect("preprocess fib");
    let names: Vec<String> = (0..nodes).map(|i| format!("n{i}")).collect();
    let mut scenario = Scenario::new().slice_ns(10_000).scheduler(scheduler);
    for name in &names {
        scenario = scenario
            .node(name.clone(), NodeConfig::cluster(name.clone()))
            .deploys(&class);
    }
    let across: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut chaos = Chaos::new()
        .seed(seed)
        .loss(loss_permille)
        .scatter_crashes(crashes, 40 * MS);
    if partition {
        chaos = chaos
            .partition_at(3 * MS, names[0].clone(), names[nodes - 1].clone())
            .heal_at(9 * MS, names[0].clone(), names[nodes - 1].clone());
    }
    if policy_retry {
        chaos = chaos.retry(RetryPolicy::Retry { max_attempts: 2 });
    }
    scenario
        .fleet(
            Fleet::new("Fib", "main", vec![Value::Int(12)])
                .programs(programs)
                .across(&across)
                .arrivals(ArrivalSchedule::uniform(MS).with_jitter(MS / 2), seed)
                .migrate(
                    When::OnCpuSliceBudget(2),
                    Plan::top_to(names[nodes - 1].clone(), 1),
                ),
        )
        .chaos(chaos)
        .run()
        .expect("random chaos fleet runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_chaos_plans_terminate_and_replay(
        nodes in 2usize..17,
        programs in 1usize..61,
        loss_permille in 0u32..80,
        crashes in 0usize..4,
        partition in any::<bool>(),
        policy_retry in any::<bool>(),
        seed in 0u64..1_000_000,
    ) {
        let run = |s| random_chaos_fleet(
            s, nodes, programs, loss_permille, crashes, partition, policy_retry, seed,
        );
        let sharded = run(Scheduler::Sharded);

        // No hangs, typed errors only, and a balanced byte ledger — for
        // an arbitrary chaos plan.
        assert_chaos_invariants("random", &sharded);

        // Same seed ⇒ bit-identical replay, chaos and failures included.
        let again = run(Scheduler::Sharded);
        prop_assert_eq!(&sharded, &again, "chaos replay diverged");

        // And the chaos machinery is scheduler-independent.
        let global = run(Scheduler::GlobalHeap);
        prop_assert_eq!(&sharded, &global, "schedulers diverged under chaos");

        // Every failure is a *typed* error with a cause, never empty.
        for p in sharded.programs() {
            if let Some(e) = &p.error {
                prop_assert!(!e.is_empty(), "untyped failure on {}", p.name);
            }
        }
    }
}
