//! Fig. 1 and the application scenarios, exercised through the bench
//! harness entry points.

#[test]
fn fig1_scenarios_all_complete() {
    let out = sod_bench::fig1();
    assert_eq!(out.matches("result=Some").count(), 3, "{out}");
}

#[test]
fn table7_bandwidth_sweep_completes() {
    let out = sod_bench::table7();
    for k in ["50", "128", "384", "764"] {
        assert!(out.contains(k), "{out}");
    }
}
