//! Differential equivalence of the interpreter fast path: every scenario
//! run with the pre-resolved operand form — inline caches warm, fused
//! superinstruction pairs dispatched, interned string literals — must
//! produce a **bit-identical** `ScenarioReport` to the same scenario run
//! with `slow_resolve(true)`, which re-resolves every name from the
//! constant pool on each execution and never consults a cache. Virtual
//! time, instruction counts, heap statistics, migration timings, OOM
//! timing, chaos draws, and pool scaling decisions are all part of the
//! `==`; the fast path is a host-time optimisation only and any charged
//! or heap-shape difference fails loudly here.
//!
//! The suite covers the shapes where divergence would hide:
//! * migrations (single hop, chains, whole stack) — caches rebuilt cold
//!   on the destination must not change any report field;
//! * `When::OnOom` offload — OOM *timing* depends on exact heap shape,
//!   so a fast path that allocated or interned differently trips it;
//! * chaos profiles — the fault RNG draws in delivery order, which any
//!   virtual-time skew would permute;
//! * elastic pools — scaling decisions sample latency percentiles, so a
//!   single shifted nanosecond shows up in scaling counters;
//! * random fleets (proptest) — up to 300 programs over up to 16 nodes.
//!
//! The final test pins the migration contract at the VM layer: a warmed
//! inline cache is deliberately *not* part of the wire image, so a
//! captured segment restores cold and rewarms by executing.

use proptest::prelude::*;
use sod::asm::builder::ClassBuilder;
use sod::net::{LinkSpec, MS, US};
use sod::preprocess::preprocess_sod;
use sod::runtime::NodeConfig;
use sod::scenario::{Chaos, Fleet, Plan, Pool, Scenario, ScenarioReport, When};
use sod::vm::class::ClassDef;
use sod::vm::value::Value;
use sod::workloads::programs::fib_class;
use sod::{ArrivalSchedule, CodeShipping, ScalePolicy};

fn fib() -> ClassDef {
    preprocess_sod(&fib_class()).expect("preprocess fib")
}

/// Build the scenario twice — once on the default fast path, once with
/// every node forced onto the per-execution resolve path — and require
/// the full reports to compare `==`.
fn assert_fast_slow_equivalent(label: &str, build: impl Fn() -> Scenario) -> ScenarioReport {
    let fast = build()
        .run()
        .unwrap_or_else(|e| panic!("{label}: fast-path run failed: {e}"));
    let slow = build()
        .slow_resolve(true)
        .run()
        .unwrap_or_else(|e| panic!("{label}: slow-resolve run failed: {e}"));
    assert_eq!(
        fast, slow,
        "{label}: ScenarioReports diverge between fast path and slow resolve"
    );
    fast
}

#[test]
fn single_migration_is_resolve_equivalent() {
    let report = assert_fast_slow_equivalent("single migration", || {
        Scenario::new()
            .slice_ns(10_000)
            .node("home", NodeConfig::cluster("home"))
            .deploys(&fib())
            .node("worker", NodeConfig::cluster("worker"))
            .program("Fib", "main", vec![Value::Int(16)])
            .on("home")
            .migrate(When::At(50 * US), Plan::top_to("worker", 2))
    });
    assert_eq!(report.first().result, Some(987));
    assert_eq!(report.first().migrations.len(), 1);
}

#[test]
fn chained_segments_are_resolve_equivalent() {
    let report = assert_fast_slow_equivalent("chain", || {
        Scenario::new()
            .slice_ns(10_000)
            .node("home", NodeConfig::cluster("home"))
            .deploys(&fib())
            .node("w0", NodeConfig::cluster("w0"))
            .node("w1", NodeConfig::cluster("w1"))
            .program("Fib", "main", vec![Value::Int(16)])
            .on("home")
            .migrate(When::At(50 * US), Plan::chain(&[("w0", 1), ("w1", 2)]))
    });
    assert_eq!(report.first().result, Some(987));
    assert!(!report.first().migrations.is_empty());
}

#[test]
fn whole_stack_migration_is_resolve_equivalent() {
    let report = assert_fast_slow_equivalent("whole stack", || {
        Scenario::new()
            .slice_ns(10_000)
            .node("home", NodeConfig::cluster("home"))
            .deploys(&fib())
            .node("worker", NodeConfig::cluster("worker"))
            .program("Fib", "main", vec![Value::Int(14)])
            .on("home")
            .migrate(When::At(50 * US), Plan::whole_stack_to("worker"))
    });
    assert_eq!(report.first().result, Some(377));
}

/// OOM timing is the sharpest heap-shape probe: the rescue migration
/// fires at the exact allocation that overflows the device budget, so a
/// fast path that allocated even one extra object (say, an eagerly
/// interned string or a cached class mirror) would move the OOM point
/// and change every downstream timestamp.
#[test]
fn on_oom_offload_is_resolve_equivalent() {
    let report = assert_fast_slow_equivalent("OnOom offload", || {
        let class = ClassBuilder::new("Big")
            .method("alloc", &["n"], |m| {
                m.line();
                m.load("n").newarr().store("a");
                m.line();
                m.load("a").arrlen().retv();
            })
            .method("main", &["n"], |m| {
                m.line();
                m.load("n").invoke("Big", "alloc", 1).store("r");
                m.line();
                m.load("r").retv();
            })
            .build()
            .expect("valid class");
        let class = preprocess_sod(&class).expect("preprocess");
        let mut phone = NodeConfig::device("phone");
        phone.mem_limit = Some(4 << 20);
        Scenario::new()
            .node("phone", phone)
            .deploys(&class)
            .node("cloud", NodeConfig::cloud("cloud"))
            .link("phone", "cloud", LinkSpec::wifi_kbps(764))
            .program("Big", "main", vec![Value::Int(2_000_000)])
            .on("phone")
            .migrate(When::OnOom, Plan::whole_stack_to("cloud"))
    });
    assert_eq!(report.first().result, Some(2_000_000));
    assert_eq!(report.first().migrations.len(), 1, "the rescue hop");
}

/// Object-heavy inner loop: `New`, `GetField`, `PutField`,
/// `InvokeVirtual`, and `PushStr` all sit on cacheable sites here, so
/// this exercises every inline-cache kind plus the `Load`-led fused
/// pairs, across a migration that forces a cold rebuild.
#[test]
fn field_and_virtual_call_loop_is_resolve_equivalent() {
    let report = assert_fast_slow_equivalent("counter loop", || {
        let class = counter_class();
        Scenario::new()
            .slice_ns(10_000)
            .node("home", NodeConfig::cluster("home"))
            .deploys(&class)
            .node("worker", NodeConfig::cluster("worker"))
            .deploys(&class)
            .program("Counter", "main", vec![Value::Int(200)])
            .on("worker")
            .program("Counter", "main", vec![Value::Int(300)])
            .on("home")
    });
    let results: Vec<Option<i64>> = report.programs().iter().map(|p| p.report.result).collect();
    assert_eq!(results, vec![Some(200), Some(300)]);
}

/// A fleet under chaos: the fault RNG draws in delivery order, so the
/// loss pattern itself is part of the equivalence claim.
#[test]
fn chaos_profile_fleet_is_resolve_equivalent() {
    let chaos = Chaos::new()
        .seed(11)
        .loss(30)
        .partition_at(2 * MS, "edge0", "cloud")
        .heal_at(6 * MS, "edge0", "cloud");
    let report = assert_fast_slow_equivalent("chaos fleet", || {
        fleet_scenario(ArrivalSchedule::bursty(10, 5 * MS).with_jitter(MS), 42).chaos(chaos.clone())
    });
    assert_eq!(
        report.cluster.completed + report.cluster.failed,
        report.cluster.launched,
        "programs must finish or fail typed"
    );
}

/// Elastic pools sample latency percentiles on controller ticks; any
/// virtual-time skew between the paths would change scaling decisions,
/// node-seconds, and the drain schedule.
#[test]
fn elastic_pool_is_resolve_equivalent() {
    let report = assert_fast_slow_equivalent("elastic pool", || {
        Scenario::new()
            .slice_ns(10_000)
            .cpu_contention(true)
            .node("edge0", NodeConfig::cluster("edge0"))
            .deploys(&fib())
            .node("edge1", NodeConfig::cluster("edge1"))
            .deploys(&fib())
            .pool(
                Pool::new("workers")
                    .base(1)
                    .max(6)
                    .scale_policy(ScalePolicy::QueueDepth { high: 2, low: 1 })
                    .cold_start(2 * MS),
            )
            .fleet(
                Fleet::new("Fib", "main", vec![Value::Int(14)])
                    .programs(40)
                    .across(&["edge0", "edge1"])
                    .arrivals(ArrivalSchedule::bursty(10, 5 * MS).with_jitter(MS), 42)
                    .migrate(When::OnCpuSliceBudget(3), Plan::top_to("workers", 1)),
            )
    });
    assert_eq!(report.cluster.completed, 40, "fleet must finish");
    assert_eq!(report.cluster.pools[0].final_size, 1, "pool drains to base");
}

/// The fleet shape shared by the chaos test and the property tests.
fn fleet_scenario(schedule: ArrivalSchedule, seed: u64) -> Scenario {
    Scenario::new()
        .slice_ns(10_000)
        .code_shipping(CodeShipping::default())
        .node("edge0", NodeConfig::cluster("edge0"))
        .deploys(&fib())
        .node("edge1", NodeConfig::cluster("edge1"))
        .deploys(&fib())
        .node("cloud", NodeConfig::cloud("cloud"))
        .fleet(
            Fleet::new("Fib", "main", vec![Value::Int(14)])
                .programs(40)
                .across(&["edge0", "edge1"])
                .arrivals(schedule, seed)
                .migrate(When::OnCpuSliceBudget(3), Plan::top_to("cloud", 1)),
        )
}

/// A counter with an instance field bumped through a virtual call and a
/// string literal pushed per iteration — one site of every cache kind.
fn counter_class() -> ClassDef {
    let class = ClassBuilder::new("Counter")
        .field("n", sod::vm::class::TypeTag::Int)
        .vmethod("bump", &[], |m| {
            m.line();
            m.load("this").getfield("n").pushi(1).add().store("t");
            m.line();
            m.load("this").load("t").putfield("n");
            m.line();
            m.pushi(0).retv();
        })
        .method("main", &["iters"], |m| {
            m.line();
            m.new_obj("Counter").store("c");
            m.line();
            m.pushi(0).store("i");
            m.line();
            m.label("loop");
            m.load("i")
                .load("iters")
                .if_cmp(sod::vm::instr::Cmp::Ge, "done");
            m.line();
            m.load("c").invokev("bump", 1).pop();
            m.line();
            m.pushstr("tick").pop();
            m.line();
            m.load("i").pushi(1).add().store("i").goto("loop");
            m.line();
            m.label("done");
            m.load("c").getfield("n").retv();
        })
        .build()
        .expect("valid counter class");
    preprocess_sod(&class).expect("preprocess counter")
}

// ---------------------------------------------------------------------------
// Property tests: random fleets, fast path vs slow resolve.
// ---------------------------------------------------------------------------

/// A randomized fleet over `nodes` cluster nodes, mirroring the
/// scheduler-equivalence generator: random arrival schedule, random link
/// override, random migration trigger (or none).
fn random_fleet(
    slow: bool,
    nodes: usize,
    programs: usize,
    trigger: u8,
    schedule: u8,
    latency_us: u64,
    seed: u64,
) -> ScenarioReport {
    let class = fib();
    let names: Vec<String> = (0..nodes).map(|i| format!("n{i}")).collect();
    let mut scenario = Scenario::new().slice_ns(10_000).slow_resolve(slow);
    for name in &names {
        scenario = scenario
            .node(name.clone(), NodeConfig::cluster(name.clone()))
            .deploys(&class);
    }
    scenario = scenario.link(
        names[0].clone(),
        names[nodes - 1].clone(),
        LinkSpec::new(latency_us * US, 100_000_000),
    );
    let schedule = match schedule % 3 {
        0 => ArrivalSchedule::uniform(MS).with_jitter(MS / 2),
        1 => ArrivalSchedule::bursty(8, 4 * MS),
        _ => ArrivalSchedule::ramp(2 * MS, 200 * US),
    };
    let across: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut fleet = Fleet::new("Fib", "main", vec![Value::Int(12)])
        .programs(programs)
        .across(&across)
        .arrivals(schedule, seed);
    let target = names[nodes - 1].clone();
    match trigger % 4 {
        0 => {} // no migration
        1 => fleet = fleet.migrate(When::At(MS + seed % MS), Plan::top_to(target, 1)),
        2 => {
            fleet = fleet.migrate(
                When::OnCpuSliceBudget(1 + seed % 3),
                Plan::top_to(target, 1),
            )
        }
        _ => fleet = fleet.migrate(When::OnObjectFaults(1), Plan::top_to(target, 1)),
    }
    scenario.fleet(fleet).run().expect("random fleet runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_fleets_are_resolve_equivalent(
        nodes in 2usize..17,
        programs in 1usize..301,
        trigger in 0u8..4,
        schedule in 0u8..3,
        latency_us in 10u64..2_000,
        seed in 0u64..1_000_000,
    ) {
        let fast = random_fleet(false, nodes, programs, trigger, schedule, latency_us, seed);
        let slow = random_fleet(true, nodes, programs, trigger, schedule, latency_us, seed);
        prop_assert_eq!(&fast, &slow, "fast path diverged from slow resolve");
        prop_assert_eq!(fast.cluster.completed as usize, programs, "fleet must finish");
    }
}

// ---------------------------------------------------------------------------
// VM-level pin: warmed caches are never serialized; segments restore cold.
// ---------------------------------------------------------------------------

/// Warm the inline caches by running fib on a source VM, capture the
/// whole stack at a migration-safe point, push it through the *wire*
/// encoding (the bytes a real migration ships), and restore it into a
/// fresh VM. The destination's caches must be stone cold right after
/// restore — cache state is deliberately not part of the wire image —
/// and the thread must still run to the correct result, rewarming as it
/// goes.
#[test]
fn warmed_ic_survives_migration_cold() {
    use sod::vm::capture::{capture_segment, restore_segment_direct};
    use sod::vm::interp::{RunMode, StepOutcome, Vm};
    use sod::vm::tooling::ToolingPath;
    use sod::vm::wire::{decode_state, encode_state};

    fn warm_sites(vm: &Vm) -> usize {
        vm.classes.iter().map(|c| c.ic_warm_count()).sum()
    }

    let class = fib();
    let mut src = Vm::new();
    src.load_class(&class).expect("load on source");
    let tid = src.spawn("Fib", "main", &[Value::Int(16)]).expect("spawn");

    // Run deep enough to recurse (warming the invoke cache), then walk to
    // the next migration-safe point.
    let (out, _) = src.run(tid, 5_000, RunMode::Normal).expect("warm-up run");
    assert_eq!(out, StepOutcome::Continue, "must still be mid-flight");
    assert!(warm_sites(&src) > 0, "source caches must be warm");
    let (out, _) = src
        .run(tid, u64::MAX, RunMode::StopAtMsp)
        .expect("walk to MSP");
    assert!(matches!(out, StepOutcome::AtMsp { .. }), "got {out:?}");

    let height = src.thread(tid).expect("thread").frames.len();
    let (state, _) =
        capture_segment(&mut src, tid, height, ToolingPath::Internal).expect("capture");
    let shipped = decode_state(encode_state(&state).expect("wire encode")).expect("wire roundtrip");

    let mut dst = Vm::new();
    dst.load_class(&class).expect("load on destination");
    let new_tid = restore_segment_direct(&mut dst, &shipped).expect("restore");
    assert_eq!(
        warm_sites(&dst),
        0,
        "restored segment must start with cold caches: the wire image \
         carries no pre-resolved state"
    );

    let result;
    loop {
        let (out, _) = dst.run(new_tid, u64::MAX, RunMode::Normal).expect("resume");
        match out {
            StepOutcome::Returned(v) => {
                result = v;
                break;
            }
            StepOutcome::Continue => {}
            other => panic!("unexpected outcome resuming migrated fib: {other:?}"),
        }
    }
    assert_eq!(result, Some(Value::Int(987)), "migrated fib(16)");
    assert!(warm_sites(&dst) > 0, "destination must rewarm by executing");
}
