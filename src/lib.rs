//! Top-level package of the stack-on-demand reproduction workspace.
//!
//! This package exists to own the cross-crate integration tests in `tests/`
//! and the runnable walkthroughs in `examples/`; the library surface lives
//! in the [`sod`] facade crate, re-exported here for convenience.

pub use sod::*;
