//! Textual assembly (`.sasm`) for the sod-vm stack machine.
//!
//! A small line-oriented format; one instruction, directive, or label per
//! line. `;` starts a comment. Example:
//!
//! ```text
//! class Main
//! static total int
//!
//! method main()
//!   line
//!     push 40
//!     push 2
//!     add
//!     retv
//! end
//! end
//! ```
//!
//! Directives: `class NAME`, `field NAME TYPE`, `static NAME TYPE`
//! (TYPE ∈ int|num|ref), `method NAME(a, b)` / `vmethod NAME(a, b)`,
//! `line`, `label NAME`, `catch FROM TO HANDLER KIND`, `end`.
//!
//! Branch mnemonics use the comparison suffix: `ifeq/ifne/iflt/ifle/ifgt/
//! ifge LABEL` (pop two), `ifzeq/.../ifzge LABEL` (pop one, compare with
//! zero), `ifnull/ifnonnull LABEL`, `goto LABEL`,
//! `switch K:LABEL ... default:LABEL`.

use sod_vm::class::{ClassDef, ExKind, TypeTag};
use sod_vm::error::{VmError, VmResult};
use sod_vm::instr::Cmp;
use sod_vm::value::TypeOf;

use crate::builder::{ClassBuilder, MethodBuilder};

fn err(line_no: usize, msg: impl Into<String>) -> VmError {
    VmError::Verify {
        method: format!("<asm line {line_no}>"),
        reason: msg.into(),
    }
}

fn parse_type(s: &str, ln: usize) -> VmResult<TypeTag> {
    match s {
        "int" => Ok(TypeOf::Int),
        "num" => Ok(TypeOf::Num),
        "ref" => Ok(TypeOf::Ref),
        other => Err(err(ln, format!("unknown type {other}"))),
    }
}

fn parse_exkind(s: &str, ln: usize) -> VmResult<ExKind> {
    Ok(match s {
        "npe" => ExKind::NullPointer,
        "invalidstate" => ExKind::InvalidState,
        "oom" => ExKind::OutOfMemory,
        "classnotfound" => ExKind::ClassNotFound,
        "bounds" => ExKind::ArrayBounds,
        "divzero" => ExKind::DivByZero,
        other => {
            if let Some(code) = other.strip_prefix("user") {
                ExKind::User(code.parse().map_err(|_| err(ln, "bad user code"))?)
            } else {
                return Err(err(ln, format!("unknown exception kind {other}")));
            }
        }
    })
}

/// One parsed method-body statement.
#[derive(Debug, Clone)]
enum Stmt {
    Line,
    Label(String),
    Catch(String, String, String, ExKind),
    Op(String, Vec<String>),
}

/// Split a line into whitespace-separated tokens, honouring double quotes.
fn tokenize(line: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for ch in line.chars() {
        match ch {
            '"' => {
                in_str = !in_str;
                cur.push(ch);
            }
            c if c.is_whitespace() && !in_str => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            ';' if !in_str => break,
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

fn unquote(s: &str, ln: usize) -> VmResult<String> {
    let t = s
        .strip_prefix('"')
        .and_then(|x| x.strip_suffix('"'))
        .ok_or_else(|| err(ln, format!("expected quoted string, got {s}")))?;
    Ok(t.to_owned())
}

/// Assemble `.sasm` source into a verified class.
pub fn assemble(src: &str) -> VmResult<ClassDef> {
    let mut class_name: Option<String> = None;
    let mut fields: Vec<(String, TypeTag, bool)> = Vec::new();
    // (name, args, virtual?, body)
    let mut methods: Vec<(String, Vec<String>, bool, Vec<Stmt>)> = Vec::new();
    let mut cur_method: Option<(String, Vec<String>, bool, Vec<Stmt>)> = None;
    let mut class_closed = false;

    for (i, raw) in src.lines().enumerate() {
        let ln = i + 1;
        let tokens = tokenize(raw);
        if tokens.is_empty() {
            continue;
        }
        let head = tokens[0].as_str();
        match (&mut cur_method, head) {
            (None, "class") => {
                if class_name.is_some() {
                    return Err(err(ln, "duplicate class directive"));
                }
                class_name = Some(
                    tokens
                        .get(1)
                        .ok_or_else(|| err(ln, "class needs a name"))?
                        .clone(),
                );
            }
            (None, "field") | (None, "static") => {
                let name = tokens
                    .get(1)
                    .ok_or_else(|| err(ln, "field needs a name"))?
                    .clone();
                let ty = parse_type(
                    tokens.get(2).ok_or_else(|| err(ln, "field needs a type"))?,
                    ln,
                )?;
                fields.push((name, ty, head == "static"));
            }
            (None, "method") | (None, "vmethod") => {
                let sig = tokens
                    .get(1)
                    .ok_or_else(|| err(ln, "method needs a signature"))?;
                let (name, args) = parse_signature(sig, ln)?;
                cur_method = Some((name, args, head == "vmethod", Vec::new()));
            }
            (None, "end") => {
                class_closed = true;
            }
            (None, other) => return Err(err(ln, format!("unexpected {other} outside method"))),
            (Some(m), "line") => m.3.push(Stmt::Line),
            (Some(m), "label") => m.3.push(Stmt::Label(
                tokens
                    .get(1)
                    .ok_or_else(|| err(ln, "label needs a name"))?
                    .clone(),
            )),
            (Some(m), "catch") => {
                if tokens.len() != 5 {
                    return Err(err(ln, "catch FROM TO HANDLER KIND"));
                }
                let kind = parse_exkind(&tokens[4], ln)?;
                m.3.push(Stmt::Catch(
                    tokens[1].clone(),
                    tokens[2].clone(),
                    tokens[3].clone(),
                    kind,
                ));
            }
            (Some(_), "end") => {
                let m = cur_method.take().expect("current method");
                methods.push(m);
            }
            (Some(m), op) => {
                m.3.push(Stmt::Op(op.to_owned(), tokens[1..].to_vec()));
            }
        }
    }

    if cur_method.is_some() {
        return Err(err(src.lines().count(), "unterminated method"));
    }
    if !class_closed {
        return Err(err(src.lines().count(), "missing final end"));
    }
    let name = class_name.ok_or_else(|| err(1, "missing class directive"))?;

    let mut cb = ClassBuilder::new(&name);
    for (fname, ty, is_static) in fields {
        cb = if is_static {
            cb.static_field(&fname, ty)
        } else {
            cb.field(&fname, ty)
        };
    }
    for (mname, args, is_virtual, body) in methods {
        let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
        let first_err: std::cell::RefCell<Option<VmError>> = std::cell::RefCell::new(None);
        let emit = |m: &mut MethodBuilder| {
            for stmt in &body {
                if let Err(e) = apply_stmt(m, stmt) {
                    *first_err.borrow_mut() = Some(e);
                    return;
                }
            }
        };
        cb = if is_virtual {
            cb.vmethod(&mname, &argrefs, emit)
        } else {
            cb.method(&mname, &argrefs, emit)
        };
        if let Some(e) = first_err.into_inner() {
            return Err(e);
        }
    }
    cb.build()
}

fn parse_signature(sig: &str, ln: usize) -> VmResult<(String, Vec<String>)> {
    let open = sig
        .find('(')
        .ok_or_else(|| err(ln, "method signature needs ( )"))?;
    let close = sig
        .rfind(')')
        .ok_or_else(|| err(ln, "method signature needs ( )"))?;
    let name = sig[..open].to_owned();
    let args: Vec<String> = sig[open + 1..close]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    Ok((name, args))
}

fn apply_stmt(m: &mut MethodBuilder, stmt: &Stmt) -> VmResult<()> {
    let ln = 0usize; // statement-level errors: parse already validated shapes
    match stmt {
        Stmt::Line => {
            m.line();
        }
        Stmt::Label(l) => {
            m.label(l);
        }
        Stmt::Catch(f, t, h, k) => {
            m.catch(f, t, h, *k);
        }
        Stmt::Op(op, args) => apply_op(m, op, args, ln)?,
    }
    Ok(())
}

fn cmp_of(suffix: &str) -> Option<Cmp> {
    Some(match suffix {
        "eq" => Cmp::Eq,
        "ne" => Cmp::Ne,
        "lt" => Cmp::Lt,
        "le" => Cmp::Le,
        "gt" => Cmp::Gt,
        "ge" => Cmp::Ge,
        _ => return None,
    })
}

fn apply_op(m: &mut MethodBuilder, op: &str, args: &[String], ln: usize) -> VmResult<()> {
    let arg = |i: usize| -> VmResult<&str> {
        args.get(i)
            .map(String::as_str)
            .ok_or_else(|| err(ln, format!("{op}: missing operand {i}")))
    };
    let int_arg = |i: usize| -> VmResult<i64> {
        arg(i)?
            .parse()
            .map_err(|_| err(ln, format!("{op}: bad integer operand")))
    };

    match op {
        "push" => {
            m.pushi(int_arg(0)?);
        }
        "pushf" => {
            let v: f64 = arg(0)?.parse().map_err(|_| err(ln, "pushf: bad float"))?;
            m.pushf(v);
        }
        "pushstr" => {
            let s = unquote(arg(0)?, ln)?;
            m.pushstr(&s);
        }
        "pushnull" => {
            m.pushnull();
        }
        "load" => {
            m.load(arg(0)?);
        }
        "store" => {
            m.store(arg(0)?);
        }
        "dup" => {
            m.dup();
        }
        "pop" => {
            m.pop();
        }
        "swap" => {
            m.swap();
        }
        "add" => {
            m.add();
        }
        "sub" => {
            m.sub();
        }
        "mul" => {
            m.mul();
        }
        "div" => {
            m.div();
        }
        "rem" => {
            m.rem();
        }
        "neg" => {
            m.neg();
        }
        "shl" => {
            m.shl();
        }
        "shr" => {
            m.shr();
        }
        "band" => {
            m.band();
        }
        "bor" => {
            m.bor();
        }
        "bxor" => {
            m.bxor();
        }
        "i2f" => {
            m.i2f();
        }
        "f2i" => {
            m.f2i();
        }
        "ifnull" => {
            m.ifnull(arg(0)?);
        }
        "ifnonnull" => {
            m.ifnonnull(arg(0)?);
        }
        "goto" => {
            m.goto(arg(0)?);
        }
        "switch" => {
            let mut pairs: Vec<(i64, String)> = Vec::new();
            let mut default: Option<String> = None;
            for a in args {
                let (k, l) = a
                    .split_once(':')
                    .ok_or_else(|| err(ln, "switch operands are K:LABEL"))?;
                if k == "default" {
                    default = Some(l.to_owned());
                } else {
                    let key: i64 = k.parse().map_err(|_| err(ln, "switch: bad key"))?;
                    pairs.push((key, l.to_owned()));
                }
            }
            let default = default.ok_or_else(|| err(ln, "switch needs default:LABEL"))?;
            let pairrefs: Vec<(i64, &str)> = pairs.iter().map(|(k, l)| (*k, l.as_str())).collect();
            m.switch(&pairrefs, &default);
        }
        "new" => {
            m.new_obj(arg(0)?);
        }
        "getfield" => {
            m.getfield(arg(0)?);
        }
        "putfield" => {
            m.putfield(arg(0)?);
        }
        "getstatic" => {
            m.getstatic(arg(0)?, arg(1)?);
        }
        "putstatic" => {
            m.putstatic(arg(0)?, arg(1)?);
        }
        "newarr" => {
            m.newarr();
        }
        "aload" => {
            m.aload();
        }
        "astore" => {
            m.astore();
        }
        "arrlen" => {
            m.arrlen();
        }
        "invoke" => {
            let n: u8 = int_arg(2)? as u8;
            m.invoke(arg(0)?, arg(1)?, n);
        }
        "invokev" => {
            let n: u8 = int_arg(1)? as u8;
            m.invokev(arg(0)?, n);
        }
        "ret" => {
            m.ret();
        }
        "retv" => {
            m.retv();
        }
        "throw" => {
            if args.is_empty() {
                m.throw();
            } else {
                let kind = parse_exkind(arg(0)?, ln)?;
                m.throw_kind(kind);
            }
        }
        "native" => {
            let n: u8 = int_arg(1)? as u8;
            m.native(arg(0)?, n);
        }
        "nop" => {
            m.nop();
        }
        other => {
            // if<cmp> and ifz<cmp> families
            if let Some(c) = other.strip_prefix("ifz").and_then(cmp_of) {
                m.ifz(c, arg(0)?);
            } else if let Some(c) = other.strip_prefix("if").and_then(cmp_of) {
                m.if_cmp(c, arg(0)?);
            } else {
                return Err(err(ln, format!("unknown mnemonic {other}")));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sod_vm::interp::Vm;
    use sod_vm::value::Value;

    #[test]
    fn assembles_and_runs_fib() {
        let src = r#"
; recursive fibonacci
class Fib

method fib(n)
  line
    load n
    push 2
    iflt base
  line
    load n
    push 1
    sub
    invoke Fib fib 1
    store a
  line
    load n
    push 2
    sub
    invoke Fib fib 1
    store b
  line
    load a
    load b
    add
    retv
  line
  label base
    load n
    retv
end
end
"#;
        let class = assemble(src).unwrap();
        let mut vm = Vm::new();
        vm.load_class(&class).unwrap();
        let r = vm
            .run_to_completion("Fib", "fib", &[Value::Int(12)])
            .unwrap();
        assert_eq!(r, Some(Value::Int(144)));
    }

    #[test]
    fn fields_statics_and_strings() {
        let src = r#"
class Store
static name ref
field val int

method main()
  line
    pushstr "hello world"
    putstatic Store name
  line
    getstatic Store name
    native str_len 1
    retv
end
end
"#;
        let class = assemble(src).unwrap();
        assert_eq!(class.fields.len(), 2);
        let mut vm = Vm::new();
        vm.load_class(&class).unwrap();
        let r = vm.run_to_completion("Store", "main", &[]).unwrap();
        assert_eq!(r, Some(Value::Int(11)));
    }

    #[test]
    fn switch_and_catch() {
        let src = r#"
class T
method m(k)
  line
  label try_start
    load k
    push 0
    div
    retv
  label try_end
  line
  label handler
    pop
    push -1
    retv
  catch try_start try_end handler divzero
end
end
"#;
        let class = assemble(src).unwrap();
        let mut vm = Vm::new();
        vm.load_class(&class).unwrap();
        let r = vm.run_to_completion("T", "m", &[Value::Int(5)]).unwrap();
        assert_eq!(r, Some(Value::Int(-1)));
    }

    #[test]
    fn vmethod_dispatch() {
        let src = r#"
class Pair
field a int
field b int

vmethod sum()
  line
    load this
    getfield a
    load this
    getfield b
    add
    retv
end

method main()
  line
    new Pair
    store p
  line
    load p
    push 3
    putfield a
  line
    load p
    push 4
    putfield b
  line
    load p
    invokev sum 1
    retv
end
end
"#;
        let class = assemble(src).unwrap();
        let mut vm = Vm::new();
        vm.load_class(&class).unwrap();
        let r = vm.run_to_completion("Pair", "main", &[]).unwrap();
        assert_eq!(r, Some(Value::Int(7)));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "
; leading comment
class T

method m() ; trailing comment
  line
    push 1 ; one
    retv
end
end
";
        assert!(assemble(src).is_ok());
    }

    #[test]
    fn errors_reported() {
        assert!(assemble("method m()\nend\nend").is_err()); // no class
        assert!(assemble("class T\nmethod m()\n line\n bogus\nend\nend").is_err());
        assert!(assemble("class T\nmethod m()\n line\n ret").is_err()); // unterminated
        assert!(assemble("class T\nfield x wat\nend").is_err());
    }

    #[test]
    fn tokenizer_respects_quotes() {
        let t = tokenize(r#"pushstr "hello ; world" ; comment"#);
        assert_eq!(t, vec!["pushstr", "\"hello ; world\""]);
    }
}
