//! Fluent builder API for classes and method bodies.
//!
//! The builder tracks three things the raw data model leaves implicit:
//!
//! * **named locals** — arguments are named at method creation; extra
//!   locals are allocated on first use via [`MethodBuilder::slot`];
//! * **labels** — branch targets are symbolic and resolved at build time;
//! * **source lines** — [`MethodBuilder::line`] starts a new line; every
//!   emitted instruction belongs to the current line. Line starts become
//!   migration-safe-point candidates downstream.
//!
//! [`ClassBuilder::build`] verifies every method (stack discipline, branch
//! ranges) through `sod_vm::analysis`, so malformed programs fail at build
//! time rather than at load time on a remote node.

use std::collections::HashMap;

use sod_vm::analysis::class_summaries;
use sod_vm::class::{ClassDef, ExEntry, ExKind, FieldDef, MethodDef, TypeTag};
use sod_vm::error::VmResult;
use sod_vm::instr::{Cmp, Instr, SwitchTable};

/// Builds a [`ClassDef`] from fields and methods.
#[derive(Debug)]
pub struct ClassBuilder {
    def: ClassDef,
}

impl ClassBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        ClassBuilder {
            def: ClassDef::new(name),
        }
    }

    /// Declare an instance field.
    pub fn field(mut self, name: &str, ty: TypeTag) -> Self {
        self.def.fields.push(FieldDef::instance(name, ty));
        self
    }

    /// Declare a static field.
    pub fn static_field(mut self, name: &str, ty: TypeTag) -> Self {
        self.def.fields.push(FieldDef::stat(name, ty));
        self
    }

    /// Define a static method; `args` are the argument names (slot 0..n).
    pub fn method(mut self, name: &str, args: &[&str], f: impl FnOnce(&mut MethodBuilder)) -> Self {
        let mut mb = MethodBuilder::new(&mut self.def, name, args, false);
        f(&mut mb);
        let method = mb.finish();
        self.def.methods.push(method);
        self
    }

    /// Define a virtual method: the receiver is named `this` in slot 0 and
    /// `args` follow.
    pub fn vmethod(
        mut self,
        name: &str,
        args: &[&str],
        f: impl FnOnce(&mut MethodBuilder),
    ) -> Self {
        let mut mb = MethodBuilder::new(&mut self.def, name, args, true);
        f(&mut mb);
        let method = mb.finish();
        self.def.methods.push(method);
        self
    }

    /// Finish: verify all methods and return the class.
    pub fn build(self) -> VmResult<ClassDef> {
        class_summaries(&self.def)?;
        Ok(self.def)
    }

    /// Finish without verification (for tests that need malformed classes).
    pub fn build_unverified(self) -> ClassDef {
        self.def
    }
}

/// A pending `switch` patch: instruction index, `(case value, label)`
/// pairs, and the default label.
type SwitchFixup = (usize, Vec<(i64, String)>, String);

/// Builds one method body. Returned by [`ClassBuilder::method`]'s closure.
#[derive(Debug)]
pub struct MethodBuilder<'c> {
    class: &'c mut ClassDef,
    name: String,
    code: Vec<Instr>,
    lines: Vec<u32>,
    cur_line: u32,
    nargs: u16,
    locals: Vec<String>,
    labels: HashMap<String, u32>,
    branch_fixups: Vec<(usize, String)>,
    switch_fixups: Vec<SwitchFixup>,
    switches: Vec<SwitchTable>,
    catch_fixups: Vec<(String, String, String, ExKind, bool)>,
}

impl<'c> MethodBuilder<'c> {
    fn new(class: &'c mut ClassDef, name: &str, args: &[&str], virtual_recv: bool) -> Self {
        let mut locals: Vec<String> = Vec::new();
        if virtual_recv {
            locals.push("this".to_owned());
        }
        locals.extend(args.iter().map(|s| (*s).to_owned()));
        let nargs = locals.len() as u16;
        MethodBuilder {
            class,
            name: name.to_owned(),
            code: Vec::new(),
            lines: Vec::new(),
            cur_line: 0,
            nargs,
            locals,
            labels: HashMap::new(),
            branch_fixups: Vec::new(),
            switch_fixups: Vec::new(),
            switches: Vec::new(),
            catch_fixups: Vec::new(),
        }
    }

    /// Slot of a named local, allocating it on first use.
    pub fn slot(&mut self, name: &str) -> u16 {
        if let Some(i) = self.locals.iter().position(|l| l == name) {
            return i as u16;
        }
        self.locals.push(name.to_owned());
        (self.locals.len() - 1) as u16
    }

    /// Start the next source line.
    pub fn line(&mut self) -> &mut Self {
        self.cur_line += 1;
        self
    }

    /// Place a label at the current pc. Placing a label does *not* start a
    /// new line; call [`MethodBuilder::line`] first if the label starts a
    /// statement.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let pc = self.code.len() as u32;
        assert!(
            self.labels.insert(name.to_owned(), pc).is_none(),
            "duplicate label {name}"
        );
        self
    }

    fn emit(&mut self, i: Instr) -> &mut Self {
        assert!(self.cur_line > 0, "emit before first line() call");
        self.code.push(i);
        self.lines.push(self.cur_line);
        self
    }

    // -- constants -----------------------------------------------------------

    pub fn pushi(&mut self, v: i64) -> &mut Self {
        self.emit(Instr::PushI(v))
    }

    pub fn pushf(&mut self, v: f64) -> &mut Self {
        self.emit(Instr::PushF(v))
    }

    pub fn pushstr(&mut self, s: &str) -> &mut Self {
        let idx = self.class.intern(s);
        self.emit(Instr::PushStr(idx))
    }

    pub fn pushnull(&mut self) -> &mut Self {
        self.emit(Instr::PushNull)
    }

    // -- locals & stack ------------------------------------------------------

    pub fn load(&mut self, name: &str) -> &mut Self {
        let s = self.slot(name);
        self.emit(Instr::Load(s))
    }

    pub fn store(&mut self, name: &str) -> &mut Self {
        let s = self.slot(name);
        self.emit(Instr::Store(s))
    }

    pub fn dup(&mut self) -> &mut Self {
        self.emit(Instr::Dup)
    }

    pub fn pop(&mut self) -> &mut Self {
        self.emit(Instr::Pop)
    }

    pub fn swap(&mut self) -> &mut Self {
        self.emit(Instr::Swap)
    }

    // -- arithmetic ------------------------------------------------------------

    pub fn add(&mut self) -> &mut Self {
        self.emit(Instr::Add)
    }

    pub fn sub(&mut self) -> &mut Self {
        self.emit(Instr::Sub)
    }

    pub fn mul(&mut self) -> &mut Self {
        self.emit(Instr::Mul)
    }

    pub fn div(&mut self) -> &mut Self {
        self.emit(Instr::Div)
    }

    pub fn rem(&mut self) -> &mut Self {
        self.emit(Instr::Rem)
    }

    pub fn neg(&mut self) -> &mut Self {
        self.emit(Instr::Neg)
    }

    pub fn shl(&mut self) -> &mut Self {
        self.emit(Instr::Shl)
    }

    pub fn shr(&mut self) -> &mut Self {
        self.emit(Instr::Shr)
    }

    pub fn band(&mut self) -> &mut Self {
        self.emit(Instr::BAnd)
    }

    pub fn bor(&mut self) -> &mut Self {
        self.emit(Instr::BOr)
    }

    pub fn bxor(&mut self) -> &mut Self {
        self.emit(Instr::BXor)
    }

    pub fn i2f(&mut self) -> &mut Self {
        self.emit(Instr::I2F)
    }

    pub fn f2i(&mut self) -> &mut Self {
        self.emit(Instr::F2I)
    }

    // -- control flow ------------------------------------------------------------

    pub fn if_cmp(&mut self, cmp: Cmp, target: &str) -> &mut Self {
        self.branch_fixups
            .push((self.code.len(), target.to_owned()));
        self.emit(Instr::If(cmp, u32::MAX))
    }

    pub fn ifz(&mut self, cmp: Cmp, target: &str) -> &mut Self {
        self.branch_fixups
            .push((self.code.len(), target.to_owned()));
        self.emit(Instr::IfZ(cmp, u32::MAX))
    }

    pub fn ifnull(&mut self, target: &str) -> &mut Self {
        self.branch_fixups
            .push((self.code.len(), target.to_owned()));
        self.emit(Instr::IfNull(u32::MAX))
    }

    pub fn ifnonnull(&mut self, target: &str) -> &mut Self {
        self.branch_fixups
            .push((self.code.len(), target.to_owned()));
        self.emit(Instr::IfNonNull(u32::MAX))
    }

    pub fn goto(&mut self, target: &str) -> &mut Self {
        self.branch_fixups
            .push((self.code.len(), target.to_owned()));
        self.emit(Instr::Goto(u32::MAX))
    }

    /// Emit a `lookupswitch` over `(key, label)` pairs with a default label.
    pub fn switch(&mut self, pairs: &[(i64, &str)], default: &str) -> &mut Self {
        let table_idx = self.switches.len() as u16;
        self.switches.push(SwitchTable::default());
        self.switch_fixups.push((
            self.switches.len() - 1,
            pairs.iter().map(|(k, l)| (*k, (*l).to_owned())).collect(),
            default.to_owned(),
        ));
        self.emit(Instr::Switch(table_idx))
    }

    // -- objects ------------------------------------------------------------------

    pub fn new_obj(&mut self, class: &str) -> &mut Self {
        let idx = self.class.intern(class);
        self.emit(Instr::New(idx))
    }

    pub fn getfield(&mut self, field: &str) -> &mut Self {
        let idx = self.class.intern(field);
        self.emit(Instr::GetField(idx))
    }

    pub fn putfield(&mut self, field: &str) -> &mut Self {
        let idx = self.class.intern(field);
        self.emit(Instr::PutField(idx))
    }

    pub fn getstatic(&mut self, class: &str, field: &str) -> &mut Self {
        let c = self.class.intern(class);
        let f = self.class.intern(field);
        self.emit(Instr::GetStatic(c, f))
    }

    pub fn putstatic(&mut self, class: &str, field: &str) -> &mut Self {
        let c = self.class.intern(class);
        let f = self.class.intern(field);
        self.emit(Instr::PutStatic(c, f))
    }

    pub fn newarr(&mut self) -> &mut Self {
        self.emit(Instr::NewArr)
    }

    pub fn aload(&mut self) -> &mut Self {
        self.emit(Instr::ALoad)
    }

    pub fn astore(&mut self) -> &mut Self {
        self.emit(Instr::AStore)
    }

    pub fn arrlen(&mut self) -> &mut Self {
        self.emit(Instr::ArrLen)
    }

    // -- calls --------------------------------------------------------------------

    pub fn invoke(&mut self, class: &str, method: &str, nargs: u8) -> &mut Self {
        let c = self.class.intern(class);
        let m = self.class.intern(method);
        self.emit(Instr::InvokeStatic(c, m, nargs))
    }

    /// Virtual invoke; `nargs` counts the receiver.
    pub fn invokev(&mut self, method: &str, nargs: u8) -> &mut Self {
        let m = self.class.intern(method);
        self.emit(Instr::InvokeVirtual(m, nargs))
    }

    pub fn ret(&mut self) -> &mut Self {
        self.emit(Instr::Ret)
    }

    pub fn retv(&mut self) -> &mut Self {
        self.emit(Instr::RetV)
    }

    // -- exceptions -------------------------------------------------------------------

    pub fn throw_kind(&mut self, kind: ExKind) -> &mut Self {
        self.emit(Instr::ThrowKind(kind))
    }

    pub fn throw(&mut self) -> &mut Self {
        self.emit(Instr::Throw)
    }

    /// Register a catch clause: exceptions of `kind` thrown in
    /// `[from_label, to_label)` jump to `handler_label`.
    pub fn catch(&mut self, from: &str, to: &str, handler: &str, kind: ExKind) -> &mut Self {
        self.catch_fixups.push((
            from.to_owned(),
            to.to_owned(),
            handler.to_owned(),
            kind,
            false,
        ));
        self
    }

    // -- host ---------------------------------------------------------------------------

    pub fn native(&mut self, name: &str, nargs: u8) -> &mut Self {
        let idx = self.class.intern(name);
        self.emit(Instr::NativeCall(idx, nargs))
    }

    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::Nop)
    }

    // -- finish ----------------------------------------------------------------------------

    fn resolve(&self, label: &str) -> u32 {
        *self
            .labels
            .get(label)
            .unwrap_or_else(|| panic!("undefined label {label} in method {}", self.name))
    }

    fn finish(mut self) -> MethodDef {
        for (pc, label) in std::mem::take(&mut self.branch_fixups) {
            let target = self.resolve(&label);
            self.code[pc].map_targets(|_| target);
        }
        for (sidx, pairs, default) in std::mem::take(&mut self.switch_fixups) {
            let resolved: Vec<(i64, u32)> =
                pairs.iter().map(|(k, l)| (*k, self.resolve(l))).collect();
            self.switches[sidx] = SwitchTable {
                pairs: resolved,
                default: self.resolve(&default),
            };
        }
        let ex_table: Vec<ExEntry> = std::mem::take(&mut self.catch_fixups)
            .iter()
            .map(|(from, to, handler, kind, fault)| {
                let mut e = ExEntry::new(
                    self.resolve(from),
                    self.resolve(to),
                    self.resolve(handler),
                    *kind,
                );
                e.fault_handler = *fault;
                e
            })
            .collect();

        let nlocals = self.locals.len() as u16;
        MethodDef {
            name: self.name,
            nargs: self.nargs,
            nlocals,
            code: self.code,
            lines: self.lines,
            ex_table,
            switches: self.switches,
        }
    }
}

/// Convenience: build the recursive-fib class used in several tests.
pub fn fib_class() -> ClassDef {
    ClassBuilder::new("Fib")
        .method("fib", &["n"], |m| {
            m.line();
            m.load("n").pushi(2).if_cmp(Cmp::Lt, "base");
            m.line();
            m.load("n")
                .pushi(1)
                .sub()
                .invoke("Fib", "fib", 1)
                .store("a");
            m.line();
            m.load("n")
                .pushi(2)
                .sub()
                .invoke("Fib", "fib", 1)
                .store("b");
            m.line();
            m.load("a").load("b").add().retv();
            m.line();
            m.label("base");
            m.load("n").retv();
        })
        .build()
        .expect("fib class verifies")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sod_vm::interp::Vm;
    use sod_vm::value::{TypeOf, Value};

    #[test]
    fn fib_runs() {
        let class = fib_class();
        let mut vm = Vm::new();
        vm.load_class(&class).unwrap();
        let r = vm
            .run_to_completion("Fib", "fib", &[Value::Int(10)])
            .unwrap();
        assert_eq!(r, Some(Value::Int(55)));
    }

    #[test]
    fn named_locals_allocate_slots() {
        let class = ClassBuilder::new("T")
            .method("m", &["a", "b"], |m| {
                m.line();
                assert_eq!(m.slot("a"), 0);
                assert_eq!(m.slot("b"), 1);
                assert_eq!(m.slot("c"), 2);
                assert_eq!(m.slot("a"), 0); // stable
                m.load("c").retv();
            })
            .build()
            .unwrap();
        assert_eq!(class.methods[0].nargs, 2);
        assert_eq!(class.methods[0].nlocals, 3);
    }

    #[test]
    fn vmethod_has_this_slot() {
        let class = ClassBuilder::new("T")
            .field("x", TypeOf::Int)
            .vmethod("getx", &[], |m| {
                m.line();
                assert_eq!(m.slot("this"), 0);
                m.load("this").getfield("x").retv();
            })
            .build()
            .unwrap();
        assert_eq!(class.methods[0].nargs, 1);
    }

    #[test]
    fn switch_builds_and_runs() {
        let class = ClassBuilder::new("T")
            .method("pick", &["k"], |m| {
                m.line();
                m.load("k").switch(&[(1, "one"), (2, "two")], "other");
                m.line();
                m.label("one");
                m.pushi(100).retv();
                m.line();
                m.label("two");
                m.pushi(200).retv();
                m.line();
                m.label("other");
                m.pushi(-1).retv();
            })
            .build()
            .unwrap();
        let mut vm = Vm::new();
        vm.load_class(&class).unwrap();
        for (k, want) in [(1, 100), (2, 200), (9, -1)] {
            let r = vm.run_to_completion("T", "pick", &[Value::Int(k)]).unwrap();
            assert_eq!(r, Some(Value::Int(want)));
            vm = Vm::new();
            vm.load_class(&class).unwrap();
        }
    }

    #[test]
    fn catch_clause_resolves_labels() {
        let class = ClassBuilder::new("T")
            .method("m", &[], |m| {
                m.line();
                m.label("try_start");
                m.pushi(1).pushi(0).div().retv();
                m.label("try_end");
                m.line();
                m.label("handler");
                m.pop().pushi(-7).retv();
                m.catch("try_start", "try_end", "handler", ExKind::DivByZero);
            })
            .build()
            .unwrap();
        let mut vm = Vm::new();
        vm.load_class(&class).unwrap();
        let r = vm.run_to_completion("T", "m", &[]).unwrap();
        assert_eq!(r, Some(Value::Int(-7)));
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let _ = ClassBuilder::new("T")
            .method("m", &[], |m| {
                m.line();
                m.goto("nowhere").ret();
            })
            .build();
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let _ = ClassBuilder::new("T")
            .method("m", &[], |m| {
                m.line();
                m.label("l").label("l").ret();
            })
            .build();
    }

    #[test]
    #[should_panic(expected = "emit before first line")]
    fn emit_without_line_panics() {
        let _ = ClassBuilder::new("T")
            .method("m", &[], |m| {
                m.pushi(1);
            })
            .build();
    }

    #[test]
    fn build_verifies() {
        // Stack underflow is rejected at build time.
        let err = ClassBuilder::new("T")
            .method("m", &[], |m| {
                m.line();
                m.add().ret();
            })
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn fields_and_strings() {
        let class = ClassBuilder::new("T")
            .static_field("greeting", TypeOf::Ref)
            .method("m", &[], |m| {
                m.line();
                m.pushstr("hi").putstatic("T", "greeting");
                m.line();
                m.getstatic("T", "greeting").native("str_len", 1).retv();
            })
            .build()
            .unwrap();
        let mut vm = Vm::new();
        vm.load_class(&class).unwrap();
        let r = vm.run_to_completion("T", "m", &[]).unwrap();
        assert_eq!(r, Some(Value::Int(2)));
    }
}
