//! # sod-asm — assembler for the sod-vm stack machine
//!
//! Two front ends produce verified [`ClassDef`](sod_vm::class::ClassDef)s:
//!
//! * [`builder`] — a fluent Rust API with named locals, labels, and source
//!   lines. All paper workloads (`sod-workloads`) are written with it.
//! * [`text`] — a line-oriented textual assembly format (`.sasm`), useful
//!   for examples and quick experiments.
//!
//! Source *lines* matter here more than in a typical assembler: the SOD
//! preprocessor defines migration-safe points at line starts, so the
//! assembler forces every instruction to belong to an explicit line.
//!
//! ```
//! use sod_asm::builder::ClassBuilder;
//! use sod_vm::interp::Vm;
//! use sod_vm::value::Value;
//!
//! let class = ClassBuilder::new("Main")
//!     .method("main", &[], |m| {
//!         m.line();
//!         m.pushi(40).pushi(2).add().retv();
//!     })
//!     .build()
//!     .unwrap();
//! let mut vm = Vm::new();
//! vm.load_class(&class).unwrap();
//! assert_eq!(
//!     vm.run_to_completion("Main", "main", &[]).unwrap(),
//!     Some(Value::Int(42))
//! );
//! ```

pub mod builder;
pub mod text;

pub use builder::{ClassBuilder, MethodBuilder};
pub use text::assemble;
