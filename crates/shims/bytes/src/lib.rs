//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The build environment has no access to crates.io, so this workspace crate
//! provides exactly the API surface the repo uses: [`Bytes`] (a cheaply
//! cloneable, sliceable read cursor over immutable bytes), [`BytesMut`] (an
//! append-only build buffer), and the [`Buf`]/[`BufMut`] accessor traits with
//! the little-endian fixed-width getters/putters the wire codec needs.
//!
//! Semantics match the real crate for this subset: `Bytes` getters advance
//! the cursor, `split_to`/`slice` share the underlying allocation,
//! `BytesMut::freeze` converts without copying, and [`Bytes::try_into_mut`]
//! reclaims the allocation when this handle is the last owner (the hook the
//! wire codec's buffer pool uses to recycle delivered frames).

use std::ops::{Deref, Range};
use std::sync::Arc;

/// Read-side accessors. Getters consume from the front of the buffer and
/// panic when insufficient bytes remain (callers check [`Buf::remaining`]).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consume one byte.
    fn get_u8(&mut self) -> u8;
    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

/// Write-side accessors: append fixed-width little-endian values.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64);
    /// Append raw bytes.
    fn put_slice(&mut self, s: &[u8]);
}

/// An immutable byte buffer: a view (`start..end`) into shared storage.
/// Cloning and slicing are O(1) and share the allocation.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wrap a static byte slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Self::from(s.to_vec())
    }

    /// A sub-view of this buffer; `range` is relative to the current view.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.end - self.start,
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Split off and return the first `n` bytes, advancing `self` past them.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.end - self.start, "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    /// Reclaim the allocation as a [`BytesMut`] when this handle is the last
    /// owner; returns `self` unchanged otherwise. Mirrors the real crate's
    /// `try_into_mut` (bytes >= 1.7) and is what lets a buffer pool recycle a
    /// frame after its final delivery without copying.
    pub fn try_into_mut(self) -> Result<BytesMut, Bytes> {
        match Arc::try_unwrap(self.data) {
            Ok(v) => Ok(BytesMut { data: v }),
            Err(data) => Err(Bytes {
                data,
                start: self.start,
                end: self.end,
            }),
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.end - self.start, "buffer underflow");
        let s = &self.data[self.start..self.start + n];
        self.start += n;
        s
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}
impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.end - self.start
    }
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().unwrap())
    }
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }
}

/// An append-only byte builder; [`BytesMut::freeze`] converts to [`Bytes`].
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `n` bytes of capacity pre-reserved.
    pub fn with_capacity(n: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(n),
        }
    }

    /// Drop the contents, keeping the allocation (for buffer reuse).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Bytes of backing capacity currently reserved.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16_le(300);
        b.put_u32_le(70_000);
        b.put_u64_le(1 << 40);
        b.put_i64_le(-9);
        b.put_slice(b"xy");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 8 + 2);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_u64_le() as i64, -9);
        assert_eq!(&*r.split_to(2), b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_and_split_share_view() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&*s, &[2, 3, 4]);
        let mut t = s.clone();
        let head = t.split_to(1);
        assert_eq!(&*head, &[2]);
        assert_eq!(&*t, &[3, 4]);
        assert_eq!(s.len(), 3, "original view untouched");
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(&[1]);
        let _ = b.get_u32_le();
    }

    #[test]
    fn try_into_mut_reclaims_sole_owner() {
        let b = Bytes::from(vec![1, 2, 3]);
        let mut m = b.try_into_mut().expect("sole owner reclaims");
        assert_eq!(&*m, &[1, 2, 3]);
        m.clear();
        assert_eq!(m.len(), 0);
        assert!(m.capacity() >= 3, "allocation retained");
    }

    #[test]
    fn try_into_mut_rejects_shared_owner() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        let back = b.try_into_mut().expect_err("shared handle stays Bytes");
        assert_eq!(back, c);
    }
}
