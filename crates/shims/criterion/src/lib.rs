//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, covering the subset the `sod-bench` targets use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark body is warmed up
//! once, then timed over enough iterations to fill a short window, and the
//! mean per-iteration wall-clock time is printed. There are no statistics,
//! plots, or saved baselines — just a stable harness so `cargo bench`
//! compiles and produces comparable numbers offline.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// How long each benchmark samples for (after one warm-up call).
const TARGET_SAMPLE: Duration = Duration::from_millis(200);
/// Hard cap on timed iterations per benchmark.
const MAX_ITERS: u64 = 100_000;

/// The benchmark driver handed to each target function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }

    /// Open a named group; member benchmarks print as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run a named benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    /// Finish the group (upstream flushes reports here; we need nothing).
    pub fn finish(self) {}
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f`: one warm-up call, then as many timed iterations as fit
    /// the sampling window.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        black_box(f());
        let mut iters = 0u64;
        let start = Instant::now();
        while iters < MAX_ITERS {
            black_box(f());
            iters += 1;
            if start.elapsed() >= TARGET_SAMPLE {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(name: &str, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher::default();
    f(&mut b);
    let mean_ns = if b.iters == 0 {
        0
    } else {
        b.elapsed.as_nanos() / u128::from(b.iters)
    };
    println!(
        "{name:<40} time: {} ({} iters)",
        human_time(mean_ns),
        b.iters
    );
}

fn human_time(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Define a `pub fn $name()` that runs each target against a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `fn main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_counts() {
        let mut b = Bencher::default();
        b.iter(|| 21 * 2);
        assert!(b.iters >= 1);
    }

    #[test]
    fn group_and_id_formatting() {
        let id = BenchmarkId::new("jvmti", 17);
        assert_eq!(id.to_string(), "jvmti/17");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 1), &3u32, |b, &x| {
            b.iter(|| x + 1);
        });
        g.finish();
    }

    #[test]
    fn human_time_units() {
        assert_eq!(human_time(5), "5 ns");
        assert_eq!(human_time(5_000), "5.000 µs");
        assert_eq!(human_time(5_000_000), "5.000 ms");
        assert_eq!(human_time(5_000_000_000), "5.000 s");
    }
}
