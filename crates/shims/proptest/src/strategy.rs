//! Composable random-value strategies (samplers, no shrinking).

use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A composable generator of random values.
///
/// Unlike real proptest, a strategy here is only a sampler: `sample` draws
/// one value from the PRNG. Combinators mirror the upstream names so test
/// code is source-compatible.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy behind a cheaply cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            f: Arc::new(move |rng: &mut TestRng| self.sample(rng)),
        }
    }

    /// Build recursive structures: `self` generates leaves, `branch` wraps an
    /// inner strategy into recursive cases, and nesting is capped at `depth`.
    /// The size-tuning parameters of real proptest are accepted but unused.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let rec = branch(cur).boxed();
            let l = leaf.clone();
            cur = BoxedStrategy {
                // Bias toward recursion; the innermost level is all leaves,
                // so sampling always terminates.
                f: Arc::new(move |rng: &mut TestRng| {
                    if rng.below(4) == 0 {
                        l.sample(rng)
                    } else {
                        rec.sample(rng)
                    }
                }),
            };
        }
        cur
    }
}

/// A type-erased, reference-counted strategy handle.
pub struct BoxedStrategy<T> {
    f: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            f: Arc::clone(&self.f),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Any<T> {}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-varied values; NaN payload games are out of scope.
        (rng.next_u64() as i64 as f64) / 1024.0
    }
}

// ---------------------------------------------------------------------------
// Ranges, tuples, string patterns
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// String patterns: a `&str` is a strategy producing `String`s matching a
/// regex-like subset — literal characters, `[a-zA-Z0-9]` classes with
/// ranges, and `{n}` / `{m,n}` / `?` / `*` / `+` quantifiers (unbounded
/// quantifiers are capped at 8 repetitions).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

enum AtomKind {
    Literal(char),
    /// Inclusive character ranges, e.g. `[A-Za-z0-9_]`.
    Class(Vec<(char, char)>),
}

struct Atom {
    kind: AtomKind,
    min: u32,
    max: u32,
}

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let mut chars = pat.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let kind = match c {
            '[' => {
                let mut ranges = Vec::new();
                let mut pending: Option<char> = None;
                loop {
                    let c = chars.next().expect("unterminated character class");
                    match c {
                        ']' => {
                            if let Some(p) = pending {
                                ranges.push((p, p));
                            }
                            break;
                        }
                        '-' if pending.is_some() && chars.peek() != Some(&']') => {
                            let lo = pending.take().unwrap();
                            let hi = chars.next().unwrap();
                            assert!(lo <= hi, "inverted class range");
                            ranges.push((lo, hi));
                        }
                        other => {
                            if let Some(p) = pending.replace(other) {
                                ranges.push((p, p));
                            }
                        }
                    }
                }
                assert!(!ranges.is_empty(), "empty character class");
                AtomKind::Class(ranges)
            }
            '\\' => AtomKind::Literal(chars.next().expect("dangling escape")),
            lit => AtomKind::Literal(lit),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    body.push(c);
                }
                match body.split_once(',') {
                    Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
                    None => {
                        let n: u32 = body.trim().parse().unwrap();
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted quantifier");
        atoms.push(Atom { kind, min, max });
    }
    atoms
}

fn sample_pattern(pat: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse_pattern(pat) {
        let reps = atom.min + rng.below(u64::from(atom.max - atom.min) + 1) as u32;
        for _ in 0..reps {
            match &atom.kind {
                AtomKind::Literal(c) => out.push(*c),
                AtomKind::Class(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|(lo, hi)| u64::from(*hi as u32 - *lo as u32 + 1))
                        .sum();
                    let mut pick = rng.below(total);
                    for (lo, hi) in ranges {
                        let size = u64::from(*hi as u32 - *lo as u32 + 1);
                        if pick < size {
                            out.push(char::from_u32(*lo as u32 + pick as u32).unwrap());
                            break;
                        }
                        pick -= size;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(7)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (-50i64..50).sample(&mut r);
            assert!((-50..50).contains(&v));
            let u = (3u16..9).sample(&mut r);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn pattern_sampling_matches_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[A-Za-z][A-Za-z0-9]{0,12}".sample(&mut r);
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic(), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()), "{s:?}");
        }
    }

    #[test]
    fn oneof_union_hits_every_arm() {
        let s = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        // Depth of the tree; also checks every leaf stayed in range.
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(v) => {
                    assert!((0..10).contains(v));
                    0
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut r = rng();
        for _ in 0..200 {
            assert!(depth(&s.sample(&mut r)) <= 3);
        }
    }

    #[test]
    fn tuples_and_maps_compose() {
        let s = (("x{2}", 0u32..4), any::<bool>()).prop_map(|((s, n), b)| (s, n, b));
        let mut r = rng();
        let (s, n, _) = s.sample(&mut r);
        assert_eq!(s, "xx");
        assert!(n < 4);
    }
}
