//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, providing the subset of its API this repository's property tests
//! use. The build environment has no crates.io access, so randomized testing
//! is reimplemented here on a small deterministic PRNG.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its inputs via the panic
//!   message (`prop_assert!` is `assert!`), but is not minimized.
//! * **Deterministic seeds.** Each `proptest!` test derives its seed from the
//!   test's module path and name, so runs are reproducible in CI. Set
//!   `PROPTEST_RERUN_SEED` to perturb the sequence when investigating.
//! * **Strategies are samplers.** A [`Strategy`] is just a composable random
//!   generator; value trees and rejection filters are not implemented.
//!
//! Supported surface: `Strategy` (`prop_map`, `prop_recursive`, `boxed`),
//! `Just`, `any::<T>()` for primitives, integer ranges, tuples up to arity
//! six, `&str` regex-like string patterns (character classes + `{m,n}`
//! repetition), `proptest::collection::vec`, `prop_oneof!`, `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, and `ProptestConfig::with_cases`.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, BoxedStrategy, Just, Strategy};
pub use test_runner::ProptestConfig;

/// Run each `#[test]` body against `ProptestConfig::cases` sampled inputs.
///
/// In test code, annotate each function with `#[test]` as with upstream
/// proptest; the attribute passes through the macro unchanged:
///
/// ```
/// use proptest::prelude::*;
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     fn addition_commutes(a in -100i64..100, b in -100i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes(); // doctest-only: `#[test]` would register it instead
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// Uniformly choose one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert within a property test (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality within a property test (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality within a property test (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
