//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

/// See [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.range_usize(self.size.start, self.size.end);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_range() {
        let s = vec(0u8..10, 2..5);
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
        }
    }
}
