//! Deterministic PRNG and per-test configuration.

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test body runs against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64: tiny, fast, and plenty random for test-input generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed deterministically from a test's fully qualified name, so every
    /// run (and every CI machine) explores the same sequence. The optional
    /// `PROPTEST_RERUN_SEED` env var perturbs the seed to explore new cases.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_RERUN_SEED") {
            for b in extra.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform-ish `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_name("x::y");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("x::y");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = TestRng::from_name("x::z").next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_seed(42);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
