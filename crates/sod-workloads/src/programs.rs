//! The four Table I benchmarks, authored in sod-vm bytecode.

use sod_asm::builder::ClassBuilder;
use sod_vm::class::ClassDef;
use sod_vm::instr::Cmp;
use sod_vm::value::{TypeOf, Value};

/// One benchmark program: class + entry + default scaled problem size.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    pub name: &'static str,
    /// Paper's problem size (Table I).
    pub paper_n: i64,
    /// Scaled size used here (documented in EXPERIMENTS.md).
    pub n: i64,
    pub build: fn() -> ClassDef,
    pub class: &'static str,
    pub method: &'static str,
}

/// The Table I benchmark set.
pub const WORKLOADS: [Workload; 4] = [
    Workload {
        name: "Fib",
        paper_n: 46,
        n: 27,
        build: fib_class,
        class: "Fib",
        method: "main",
    },
    Workload {
        name: "NQ",
        paper_n: 14,
        n: 9,
        build: nqueens_class,
        class: "NQ",
        method: "main",
    },
    Workload {
        name: "FFT",
        paper_n: 256,
        n: 64,
        build: fft_class,
        class: "FFT",
        method: "main",
    },
    Workload {
        name: "TSP",
        paper_n: 12,
        n: 10,
        build: tsp_class,
        class: "TSP",
        method: "main",
    },
];

impl Workload {
    /// Entry arguments for the scaled size.
    pub fn args(&self) -> Vec<Value> {
        vec![Value::Int(self.n)]
    }
}

/// Recursive Fibonacci: `fib(n)` recursion depth n (Table I: h = 46).
pub fn fib_class() -> ClassDef {
    ClassBuilder::new("Fib")
        .method("fib", &["n"], |m| {
            m.line();
            m.load("n").pushi(2).if_cmp(Cmp::Lt, "base");
            m.line();
            m.load("n")
                .pushi(1)
                .sub()
                .invoke("Fib", "fib", 1)
                .store("a");
            m.line();
            m.load("n")
                .pushi(2)
                .sub()
                .invoke("Fib", "fib", 1)
                .store("b");
            m.line();
            m.load("a").load("b").add().retv();
            m.line();
            m.label("base");
            m.load("n").retv();
        })
        .method("main", &["n"], |m| {
            m.line();
            m.load("n").invoke("Fib", "fib", 1).store("r");
            m.line();
            m.load("r").retv();
        })
        .build()
        .expect("fib verifies")
}

/// N-queens: counts solutions with a column/diagonal bitmask recursion.
pub fn nqueens_class() -> ClassDef {
    ClassBuilder::new("NQ")
        // solve(row, cols, diag1, diag2, n) -> count
        .method("solve", &["row", "cols", "d1", "d2", "n"], |m| {
            m.line();
            m.load("row").load("n").if_cmp(Cmp::Lt, "go");
            m.line();
            m.pushi(1).retv();
            m.line();
            m.label("go");
            m.pushi(0).store("count");
            m.pushi(0).store("c");
            m.line();
            m.label("loop");
            m.load("c").load("n").if_cmp(Cmp::Ge, "done");
            m.line();
            // bit = 1 << c
            m.pushi(1).load("c").shl().store("bit");
            m.line();
            // if (cols|d1|d2) & bit != 0 -> skip
            m.load("cols")
                .load("d1")
                .bor()
                .load("d2")
                .bor()
                .load("bit")
                .band()
                .ifz(Cmp::Ne, "skip");
            m.line();
            m.load("row").pushi(1).add().store("nrow");
            m.line();
            m.load("cols").load("bit").bor().store("ncols");
            m.line();
            m.load("d1").load("bit").bor().pushi(1).shl().store("nd1");
            m.line();
            m.load("d2").load("bit").bor().pushi(1).shr().store("nd2");
            m.line();
            m.load("nrow")
                .load("ncols")
                .load("nd1")
                .load("nd2")
                .load("n")
                .invoke("NQ", "solve", 5)
                .store("sub");
            m.line();
            m.load("count").load("sub").add().store("count");
            m.line();
            m.label("skip");
            m.load("c").pushi(1).add().store("c").goto("loop");
            m.line();
            m.label("done");
            m.load("count").retv();
        })
        .method("main", &["n"], |m| {
            m.line();
            m.pushi(0)
                .pushi(0)
                .pushi(0)
                .pushi(0)
                .load("n")
                .invoke("NQ", "solve", 5)
                .store("r");
            m.line();
            m.load("r").retv();
        })
        .build()
        .expect("nqueens verifies")
}

/// 2-D FFT over `n × n` static arrays (real/imag), iterative
/// Cooley–Tukey per row then per column. Returns a checksum.
///
/// The static arrays are the paper's "> 64 MB of static fields" (scaled);
/// they are what makes eager-copy process migration and class-load-time
/// static allocation expensive (Tables III/IV).
pub fn fft_class() -> ClassDef {
    ClassBuilder::new("FFT")
        .static_field("re", TypeOf::Ref)
        .static_field("im", TypeOf::Ref)
        .static_field("ballast", TypeOf::Ref)
        .static_field("n", TypeOf::Int)
        // init(n): allocate and fill the n*n grids
        .method("init", &["n"], |m| {
            m.line();
            m.load("n").putstatic("FFT", "n");
            m.line();
            m.load("n").load("n").mul().store("nn");
            m.line();
            m.load("nn").newarr().putstatic("FFT", "re");
            m.line();
            m.load("nn").newarr().putstatic("FFT", "im");
            m.line();
            // The paper's FFT carries > 64 MB of static data; the grids
            // above are small at scaled sizes, so a ballast static array
            // supplies the bulk (n² × 1000 slots: 32 MB at n = 64).
            m.load("nn")
                .pushi(1000)
                .mul()
                .newarr()
                .putstatic("FFT", "ballast");
            m.line();
            m.getstatic("FFT", "re").store("r");
            m.line();
            m.getstatic("FFT", "im").store("s");
            m.line();
            m.pushi(0).store("i");
            m.line();
            m.label("fill");
            m.load("i").load("nn").if_cmp(Cmp::Ge, "done");
            m.line();
            // re[i] = (i % 13) - 6 as f64
            m.load("r").load("i");
            m.load("i").pushi(13).rem().pushi(6).sub().i2f();
            m.astore();
            m.line();
            // im[i] = 0.0
            m.load("s").load("i").pushf(0.0).astore();
            m.line();
            m.load("i").pushi(1).add().store("i").goto("fill");
            m.line();
            m.label("done");
            m.pushi(0).retv();
        })
        // butterfly pass over one row segment [base, base+len) with given
        // stride 1 — an iterative radix-2 DIT stage driver.
        .method("fft1d", &["base"], |m| {
            // Bit-reversal permutation then butterflies, operating on the
            // static arrays in place.
            m.line();
            m.getstatic("FFT", "n").store("n");
            m.line();
            m.getstatic("FFT", "re").store("re");
            m.line();
            m.getstatic("FFT", "im").store("im");
            // bit reverse
            m.line();
            m.pushi(0).store("j");
            m.pushi(0).store("i");
            m.line();
            m.label("brloop");
            m.load("i").load("n").if_cmp(Cmp::Ge, "brdone");
            m.line();
            m.load("i").load("j").if_cmp(Cmp::Ge, "noswap");
            m.line();
            // swap re[base+i] <-> re[base+j]; same for im
            m.load("base").load("i").add().store("ai");
            m.line();
            m.load("base").load("j").add().store("aj");
            m.line();
            m.load("re").load("ai").aload().store("t");
            m.line();
            m.load("re").load("ai");
            m.load("re").load("aj").aload();
            m.astore();
            m.line();
            m.load("re").load("aj").load("t").astore();
            m.line();
            m.load("im").load("ai").aload().store("t");
            m.line();
            m.load("im").load("ai");
            m.load("im").load("aj").aload();
            m.astore();
            m.line();
            m.load("im").load("aj").load("t").astore();
            m.line();
            m.label("noswap");
            // j update: k = n >> 1; while k <= j { j -= k; k >>= 1 } ; j += k
            m.load("n").pushi(1).shr().store("k");
            m.line();
            m.label("jloop");
            m.load("k").pushi(0).if_cmp(Cmp::Le, "jdone");
            m.load("k").load("j").if_cmp(Cmp::Gt, "jdone");
            m.line();
            m.load("j").load("k").sub().store("j");
            m.load("k").pushi(1).shr().store("k");
            m.goto("jloop");
            m.line();
            m.label("jdone");
            m.load("j").load("k").add().store("j");
            m.line();
            m.load("i").pushi(1).add().store("i").goto("brloop");
            m.line();
            m.label("brdone");
            // butterflies: len = 2; while len <= n
            m.pushi(2).store("len");
            m.line();
            m.label("lenloop");
            m.load("len").load("n").if_cmp(Cmp::Gt, "fftdone");
            m.line();
            // ang = -2*pi/len
            m.pushf(-std::f64::consts::TAU)
                .load("len")
                .i2f()
                .div()
                .store("ang");
            m.line();
            m.pushi(0).store("i");
            m.line();
            m.label("iloop");
            m.load("i").load("n").if_cmp(Cmp::Ge, "inext_done");
            m.line();
            m.pushi(0).store("q");
            m.line();
            m.label("qloop");
            m.load("q")
                .load("len")
                .pushi(1)
                .shr()
                .if_cmp(Cmp::Ge, "qdone");
            m.line();
            // w = exp(i*ang*q)
            m.load("ang").load("q").i2f().mul().store("phi");
            m.line();
            m.load("phi").native("cos", 1).store("wr");
            m.line();
            m.load("phi").native("sin", 1).store("wi");
            m.line();
            // u = a[base+i+q]; v = a[base+i+q+len/2] * w
            m.load("base").load("i").add().load("q").add().store("p0");
            m.line();
            m.load("p0").load("len").pushi(1).shr().add().store("p1");
            m.line();
            m.load("re").load("p0").aload().store("ur");
            m.line();
            m.load("im").load("p0").aload().store("ui");
            m.line();
            m.load("re").load("p1").aload().store("xr");
            m.line();
            m.load("im").load("p1").aload().store("xi");
            m.line();
            // vr = xr*wr - xi*wi ; vi = xr*wi + xi*wr
            m.load("xr")
                .load("wr")
                .mul()
                .load("xi")
                .load("wi")
                .mul()
                .sub()
                .store("vr");
            m.line();
            m.load("xr")
                .load("wi")
                .mul()
                .load("xi")
                .load("wr")
                .mul()
                .add()
                .store("vi");
            m.line();
            m.load("re").load("p0");
            m.load("ur").load("vr").add();
            m.astore();
            m.line();
            m.load("im").load("p0");
            m.load("ui").load("vi").add();
            m.astore();
            m.line();
            m.load("re").load("p1");
            m.load("ur").load("vr").sub();
            m.astore();
            m.line();
            m.load("im").load("p1");
            m.load("ui").load("vi").sub();
            m.astore();
            m.line();
            m.load("q").pushi(1).add().store("q").goto("qloop");
            m.line();
            m.label("qdone");
            m.load("i").load("len").add().store("i").goto("iloop");
            m.line();
            m.label("inext_done");
            m.load("len").pushi(1).shl().store("len").goto("lenloop");
            m.line();
            m.label("fftdone");
            m.pushi(0).retv();
        })
        // main(n): init, FFT each row, checksum
        .method("main", &["n"], |m| {
            m.line();
            m.load("n").invoke("FFT", "init", 1).pop();
            m.line();
            m.pushi(0).store("row");
            m.line();
            m.label("rows");
            m.load("row").load("n").if_cmp(Cmp::Ge, "sum");
            m.line();
            m.load("row")
                .load("n")
                .mul()
                .invoke("FFT", "fft1d", 1)
                .pop();
            m.line();
            m.load("row").pushi(1).add().store("row").goto("rows");
            m.line();
            m.label("sum");
            m.getstatic("FFT", "re").store("re");
            m.line();
            m.pushf(0.0).store("acc");
            m.pushi(0).store("i");
            m.line();
            m.load("n").load("n").mul().store("nn");
            m.line();
            m.label("sloop");
            m.load("i").load("nn").if_cmp(Cmp::Ge, "done");
            m.line();
            m.load("acc")
                .load("re")
                .load("i")
                .aload()
                .native("fabs", 1)
                .add()
                .store("acc");
            m.line();
            m.load("i").pushi(7).add().store("i").goto("sloop");
            m.line();
            m.label("done");
            m.load("acc").f2i().retv();
        })
        .build()
        .expect("fft verifies")
}

/// TSP branch-and-bound over a deterministic distance matrix; returns the
/// best tour cost. Distances live in a static array touched on every
/// recursion step — the paper's "almost all object fields need be used
/// frequently" workload where eager copy beats on-demand faulting.
pub fn tsp_class() -> ClassDef {
    ClassBuilder::new("TSP")
        .static_field("dist", TypeOf::Ref)
        .static_field("best", TypeOf::Int)
        .static_field("n", TypeOf::Int)
        .method("init", &["n"], |m| {
            m.line();
            m.load("n").putstatic("TSP", "n");
            m.line();
            m.pushi(1000000).putstatic("TSP", "best");
            m.line();
            m.load("n").load("n").mul().store("nn");
            m.line();
            m.load("nn").newarr().putstatic("TSP", "dist");
            m.line();
            m.getstatic("TSP", "dist").store("d");
            m.line();
            m.pushi(0).store("i");
            m.line();
            m.label("fill");
            m.load("i").load("nn").if_cmp(Cmp::Ge, "done");
            m.line();
            // dist[i] = (i*7919 % 97) + 1  (deterministic pseudo-random)
            m.load("d").load("i");
            m.load("i").pushi(7919).mul().pushi(97).rem().pushi(1).add();
            m.astore();
            m.line();
            m.load("i").pushi(1).add().store("i").goto("fill");
            m.line();
            m.label("done");
            m.pushi(0).retv();
        })
        // search(city, visitedMask, cost, depth)
        .method("search", &["city", "mask", "cost", "depth"], |m| {
            m.line();
            m.load("cost")
                .getstatic("TSP", "best")
                .if_cmp(Cmp::Ge, "prune");
            m.line();
            m.load("depth")
                .getstatic("TSP", "n")
                .if_cmp(Cmp::Lt, "expand");
            m.line();
            // complete tour: best = min(best, cost)
            m.load("cost").putstatic("TSP", "best");
            m.line();
            m.label("prune");
            m.pushi(0).retv();
            m.line();
            m.label("expand");
            m.getstatic("TSP", "n").store("n");
            m.line();
            m.getstatic("TSP", "dist").store("d");
            m.line();
            m.pushi(0).store("next");
            m.line();
            m.label("loop");
            m.load("next").load("n").if_cmp(Cmp::Ge, "done");
            m.line();
            // if visited: skip
            m.load("mask")
                .load("next")
                .shr()
                .pushi(1)
                .band()
                .ifz(Cmp::Ne, "skip");
            m.line();
            m.load("city")
                .load("n")
                .mul()
                .load("next")
                .add()
                .store("idx");
            m.line();
            m.load("d").load("idx").aload().store("step");
            m.line();
            m.load("next");
            m.load("mask").pushi(1).load("next").shl().bor();
            m.load("cost").load("step").add();
            m.load("depth").pushi(1).add();
            m.invoke("TSP", "search", 4).pop();
            m.line();
            m.label("skip");
            m.load("next").pushi(1).add().store("next").goto("loop");
            m.line();
            m.label("done");
            m.pushi(0).retv();
        })
        .method("main", &["n"], |m| {
            m.line();
            m.load("n").invoke("TSP", "init", 1).pop();
            m.line();
            m.pushi(0)
                .pushi(1)
                .pushi(0)
                .pushi(1)
                .invoke("TSP", "search", 4)
                .pop();
            m.line();
            m.getstatic("TSP", "best").retv();
        })
        .build()
        .expect("tsp verifies")
}

/// The three-class request handler for code-shipping (fleet) experiments:
/// `Gateway.main(n)` calls `Kernel.work(n)`, a long mixing loop that
/// finishes by folding its accumulator through `Mix.finish`. The loop is
/// where slice-budget offload stops the thread (`Mix` enters the stack
/// only after the loop), so the migrated frame is always `Kernel.work` —
/// and the class set the migration needs spans `Kernel` *and* `Mix`.
/// That split is what separates the `CodeShipping` policies: `BundleTop`
/// ships `Kernel` eagerly and `Mix` on demand, `BundleReachable` ships
/// both eagerly, `Never` ships both on demand, and the peer cache makes
/// every one of them free on a warm worker.
///
/// Classes come back *plain*; preprocess before deploying, as with every
/// other workload.
pub fn handler_fleet_classes() -> Vec<ClassDef> {
    let mix = ClassBuilder::new("Mix")
        .method("finish", &["a"], |m| {
            m.line();
            m.load("a").pushi(1_000_003).rem().retv();
        })
        .build()
        .expect("mix verifies");
    let kernel = ClassBuilder::new("Kernel")
        .method("work", &["n"], |m| {
            m.line();
            m.pushi(0).store("acc");
            m.pushi(0).store("i");
            m.line();
            m.label("loop");
            m.load("i").load("n").if_cmp(Cmp::Ge, "done");
            m.line();
            m.load("acc")
                .load("i")
                .pushi(3)
                .mul()
                .pushi(1)
                .add()
                .pushi(7)
                .rem()
                .add()
                .store("acc");
            m.line();
            m.load("i").pushi(1).add().store("i").goto("loop");
            m.line();
            m.label("done");
            m.load("acc").invoke("Mix", "finish", 1).retv();
        })
        .build()
        .expect("kernel verifies");
    let gateway = ClassBuilder::new("Gateway")
        .method("main", &["n"], |m| {
            m.line();
            m.load("n").invoke("Kernel", "work", 1).store("r");
            m.line();
            m.load("r").pushi(1).add().retv();
        })
        .build()
        .expect("gateway verifies");
    vec![gateway, kernel, mix]
}

/// Expected result of `Gateway.main(n)` (see [`handler_fleet_classes`]).
pub fn handler_fleet_expected(n: i64) -> i64 {
    (0..n).map(|i| (3 * i + 1) % 7).sum::<i64>() % 1_000_003 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use sod_preprocess::preprocess_sod;
    use sod_vm::interp::Vm;

    fn run(class: &ClassDef, entry: &str, n: i64) -> i64 {
        let mut vm = Vm::new();
        vm.load_class(class).unwrap();
        match vm
            .run_to_completion(entry, "main", &[Value::Int(n)])
            .unwrap()
        {
            Some(Value::Int(i)) => i,
            other => panic!("unexpected result {other:?}"),
        }
    }

    #[test]
    fn fib_correct() {
        let c = fib_class();
        assert_eq!(run(&c, "Fib", 10), 55);
        assert_eq!(run(&c, "Fib", 15), 610);
    }

    #[test]
    fn nqueens_correct() {
        let c = nqueens_class();
        assert_eq!(run(&c, "NQ", 4), 2);
        assert_eq!(run(&c, "NQ", 5), 10);
        assert_eq!(run(&c, "NQ", 6), 4);
        assert_eq!(run(&c, "NQ", 7), 40);
        assert_eq!(run(&c, "NQ", 8), 92);
    }

    #[test]
    fn tsp_finds_a_tour() {
        let c = tsp_class();
        let best = run(&c, "TSP", 6);
        assert!(best > 0 && best < 1_000_000, "best={best}");
        // Deterministic: same result every run.
        assert_eq!(run(&c, "TSP", 6), best);
    }

    #[test]
    fn fft_runs_and_is_deterministic() {
        let c = fft_class();
        let a = run(&c, "FFT", 8);
        let b = run(&c, "FFT", 8);
        assert_eq!(a, b);
        assert!(a != 0, "checksum should be nonzero");
    }

    #[test]
    fn handler_fleet_runs_and_spans_three_classes() {
        let classes = handler_fleet_classes();
        assert_eq!(classes.len(), 3);
        // The static reference chain Gateway -> Kernel -> Mix is what the
        // BundleReachable shipping closure walks.
        assert_eq!(classes[0].referenced_classes(), vec!["Kernel"]);
        assert_eq!(classes[1].referenced_classes(), vec!["Mix"]);
        assert!(classes[2].referenced_classes().is_empty());

        let mut vm = Vm::new();
        for c in &classes {
            vm.load_class(&preprocess_sod(c).unwrap()).unwrap();
        }
        let r = vm
            .run_to_completion("Gateway", "main", &[Value::Int(50)])
            .unwrap();
        assert_eq!(r, Some(Value::Int(handler_fleet_expected(50))));
    }

    #[test]
    fn all_workloads_survive_preprocessing() {
        for w in &WORKLOADS {
            let plain = (w.build)();
            let pre = preprocess_sod(&plain).unwrap();
            let mut vm1 = Vm::new();
            vm1.load_class(&plain).unwrap();
            // FFT needs a power-of-two grid.
            let small = if w.name == "FFT" { 8 } else { 6.min(w.n) };
            let r1 = vm1
                .run_to_completion(w.class, w.method, &[Value::Int(small)])
                .unwrap();
            let mut vm2 = Vm::new();
            vm2.load_class(&pre).unwrap();
            let r2 = vm2
                .run_to_completion(w.class, w.method, &[Value::Int(small)])
                .unwrap();
            assert_eq!(r1, r2, "{} diverged after preprocessing", w.name);
        }
    }
}
