//! # sod-workloads — the paper's benchmark programs
//!
//! Table I of the paper characterises four compute benchmarks: recursive
//! Fibonacci (`Fib`), n-queens (`NQ`), a 2-D FFT over a large static array
//! (`FFT`), and a branch-and-bound travelling-salesman solver (`TSP`). The
//! evaluation also uses a full-text document-search application (Table VI,
//! roaming) and a photo-sharing web server driven from a phone (Table VII).
//!
//! All programs are authored with `sod-asm`'s builder and are *plain*
//! classes: run them through `sod_preprocess::preprocess_sod` before
//! deploying to a migration-capable node. Problem sizes are scaled down
//! from the paper (e.g. `fib(28)` instead of `fib(46)`) so simulations
//! finish in laptop-seconds; `EXPERIMENTS.md` documents the scaling.

pub mod apps;
pub mod chaos;
pub mod characteristics;
pub mod fleet;
pub mod programs;

pub use characteristics::{characterize, Characteristics};
pub use fleet::ArrivalSchedule;
pub use programs::{
    fft_class, fib_class, handler_fleet_classes, handler_fleet_expected, nqueens_class, tsp_class,
    Workload, WORKLOADS,
};
