//! Table I: program characteristics — problem size `n`, maximum Java-stack
//! height `h`, and accumulated local+static field bytes `F`, measured by
//! actually running each workload on a fresh VM.

use sod_vm::class::ClassDef;
use sod_vm::interp::Vm;
use sod_vm::value::Value;

use crate::programs::Workload;

/// Measured characteristics of one workload run.
#[derive(Clone, Debug, PartialEq)]
pub struct Characteristics {
    pub name: &'static str,
    pub n: i64,
    /// Maximum stack height reached (Table I `h`).
    pub h: usize,
    /// Accumulated size of local and static fields at peak depth, bytes
    /// (Table I `F`), approximated as peak (locals-per-frame × height) +
    /// statics + static-array payloads.
    pub f_bytes: u64,
    /// Guest instructions retired (execution-length scale).
    pub instructions: u64,
    /// Result value (determinism check across systems).
    pub result: Option<i64>,
}

/// Run `workload` to completion on a plain VM and measure Table I columns.
pub fn characterize(workload: &Workload) -> Characteristics {
    let class = (workload.build)();
    characterize_class(&class, workload, workload.n)
}

/// As [`characterize`] with an explicit (already preprocessed) class.
pub fn characterize_class(class: &ClassDef, workload: &Workload, n: i64) -> Characteristics {
    let mut vm = Vm::new();
    vm.load_class(class).unwrap();
    let tid = vm
        .spawn(workload.class, workload.method, &[Value::Int(n)])
        .unwrap();
    let mut peak_state_bytes = 0u64;
    loop {
        let (out, _) = vm
            .run(tid, 20_000, sod_vm::interp::RunMode::Normal)
            .unwrap();
        let t = vm.thread(tid).unwrap();
        peak_state_bytes = peak_state_bytes.max(t.stack_state_bytes());
        match out {
            sod_vm::interp::StepOutcome::Continue => continue,
            sod_vm::interp::StepOutcome::Returned(v) => {
                let statics_bytes: u64 =
                    vm.classes.iter().map(|c| c.statics.len() as u64 * 8).sum();
                let heap_static: u64 = vm
                    .classes
                    .iter()
                    .flat_map(|c| c.statics.iter())
                    .filter_map(|v| match v {
                        Value::Ref(id) => vm.heap.get(*id).ok().map(|o| o.size_bytes()),
                        _ => None,
                    })
                    .sum();
                let t = vm.thread(tid).unwrap();
                return Characteristics {
                    name: workload.name,
                    n,
                    h: t.max_height,
                    f_bytes: peak_state_bytes + statics_bytes + heap_static,
                    instructions: vm.instr_count,
                    result: v.and_then(|v| v.as_int().ok()),
                };
            }
            other => panic!("workload blocked: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::WORKLOADS;

    #[test]
    fn table1_shapes_hold() {
        let rows: Vec<Characteristics> = WORKLOADS.iter().map(characterize).collect();
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        let fib = by_name("Fib");
        let nq = by_name("NQ");
        let fft = by_name("FFT");
        let tsp = by_name("TSP");

        // Paper Table I shapes: Fib's stack is the deepest (h ≈ n);
        // NQ recursion is ~n deep; FFT and TSP stay shallow; FFT's static
        // arrays dominate F by orders of magnitude.
        assert!(fib.h as i64 >= fib.n, "fib depth {} for n={}", fib.h, fib.n);
        assert!(nq.h as i64 >= nq.n);
        assert!(fft.h <= 6, "fft height {}", fft.h);
        assert!(tsp.h as i64 >= tsp.n, "tsp recursion h={}", tsp.h);
        assert!(
            fft.f_bytes > 50 * fib.f_bytes,
            "fft F {} must dwarf fib F {}",
            fft.f_bytes,
            fib.f_bytes
        );
    }

    #[test]
    fn fib_depth_tracks_n() {
        let w = Workload {
            n: 12,
            ..WORKLOADS[0]
        };
        let c = characterize(&w);
        // main + fib(12..1) chain.
        assert!(c.h >= 12 && c.h <= 14, "h={}", c.h);
        assert_eq!(c.result, Some(144));
    }
}
