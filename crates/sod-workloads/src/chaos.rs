//! Chaos-enabled fleet presets: standard fault profiles for stress runs.
//!
//! A fleet experiment under fault injection needs a fault *profile* — how
//! lossy the links are, how often nodes flap, whether the cluster splits —
//! and ad-hoc plans scattered across tests and benches drift apart. These
//! presets name the profiles the repository's chaos suites and the
//! `chaos` bench sweep share. Each is a pure function of its arguments
//! (the seed feeds [`ChaosPlan::seed`], never a wall clock), so a preset
//! replays bit-identically — the same contract as
//! [`ArrivalSchedule`](crate::fleet::ArrivalSchedule).
//!
//! Presets speak node *indices* (declaration order), matching the raw
//! `SodSim` API; name-based scenarios use the `sod` facade's `Chaos`
//! builder instead.

use sod_net::ChaosPlan;

/// Uniformly lossy links: every inter-node delivery drops with
/// probability `permille`/1000, drawn from the seeded stream. The
/// baseline profile for retry-policy sweeps.
pub fn lossy_links(permille: u32, seed: u64) -> ChaosPlan {
    ChaosPlan::new().seed(seed).loss_permille(permille)
}

/// A flaky fleet: `crashes` crash/restart pairs scattered across
/// `nodes` nodes at seeded-random points inside `[0, window_ns)`, on top
/// of a mild 2% link loss. The profile long-running fleet soaks use.
pub fn flaky_fleet(nodes: usize, crashes: usize, window_ns: u64, seed: u64) -> ChaosPlan {
    ChaosPlan::new()
        .seed(seed)
        .loss_permille(20)
        .scatter_crashes(crashes, nodes, window_ns)
}

/// A split brain: the `a ↔ b` link is cut at `at` and heals at
/// `heal_at`. Work spanning the cut sees partition drops; everything
/// else proceeds.
pub fn split_brain(a: usize, b: usize, at: u64, heal_at: u64) -> ChaosPlan {
    ChaosPlan::new()
        .partition_at(at, a, b)
        .heal_at(heal_at, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_pure_functions_of_their_arguments() {
        let a = flaky_fleet(8, 3, 1_000_000, 42);
        let b = flaky_fleet(8, 3, 1_000_000, 42);
        assert_eq!(a.entries(), b.entries());
        let c = flaky_fleet(8, 3, 1_000_000, 43);
        assert_ne!(a.entries(), c.entries(), "seed must perturb the schedule");
        // 3 crash/restart pairs scattered.
        assert_eq!(a.entries().len(), 6);
        assert!(!lossy_links(50, 0).is_empty());
        assert_eq!(split_brain(0, 1, 10, 20).entries().len(), 2);
    }
}
