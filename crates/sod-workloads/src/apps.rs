//! Application workloads: the document-search program (Table VI and the
//! roaming experiment) and the photo-sharing server (§IV.D).

use sod_asm::builder::ClassBuilder;
use sod_vm::class::ClassDef;
use sod_vm::instr::Cmp;

/// Document search over `nfiles` files named `/srv/<i>/doc.txt`.
///
/// `roam` selects the migration policy: `0` — stay put (NFS pulls the
/// bytes); `> 0` — roam to node `first_server + i` before file `i` (the
/// §IV.C multi-server roaming experiment); `< 0` — migrate once to
/// `first_server` and search all files there (the Table VI single-NFS-
/// server setup). Returns the number of files containing the needle.
pub fn search_class() -> ClassDef {
    ClassBuilder::new("Search")
        .method("run", &["nfiles", "roam", "first_server"], |m| {
            m.line();
            m.pushi(0).store("found");
            m.pushi(0).store("i");
            m.line();
            m.label("loop");
            m.load("i").load("nfiles").if_cmp(Cmp::Ge, "done");
            m.line();
            m.load("roam").ifz(Cmp::Eq, "noroam");
            m.line();
            m.load("roam").pushi(0).if_cmp(Cmp::Lt, "fixed");
            m.line();
            m.load("first_server").load("i").add().store("tgt");
            m.goto("move");
            m.line();
            m.label("fixed");
            m.load("first_server").store("tgt");
            m.line();
            m.label("move");
            m.load("tgt").native("sod_move", 1).pop();
            m.line();
            m.label("noroam");
            // path = "/srv/" + i + "/doc.txt"
            m.pushstr("/srv/")
                .load("i")
                .native("int_to_str", 1)
                .native("str_concat", 2)
                .store("p1");
            m.line();
            m.load("p1")
                .pushstr("/doc.txt")
                .native("str_concat", 2)
                .store("path");
            m.line();
            m.load("path")
                .pushstr("beach")
                .native("fs_search", 2)
                .store("pos");
            m.line();
            m.load("pos").pushi(0).if_cmp(Cmp::Lt, "miss");
            m.line();
            m.load("found").pushi(1).add().store("found");
            m.line();
            m.label("miss");
            m.load("i").pushi(1).add().store("i").goto("loop");
            m.line();
            m.label("done");
            m.load("found").retv();
        })
        .method("main", &["nfiles", "roam", "first_server"], |m| {
            m.line();
            m.load("nfiles")
                .load("roam")
                .load("first_server")
                .invoke("Search", "run", 3)
                .store("r");
            m.line();
            m.load("r").retv();
        })
        .build()
        .expect("search verifies")
}

/// The photo-sharing web server (§IV.D): accepts `nreq` requests; for each,
/// pushes a search task to the phone (`sod_move(phone)`), lists the photo
/// directory there, returns home (`sod_move(home)`), and replies to the
/// client. Returns the total number of photos served.
pub fn photo_server_class() -> ClassDef {
    ClassBuilder::new("Photo")
        // serve one request: roam to the device, list photos, come back.
        .method("serve", &["phone", "home"], |m| {
            m.line();
            m.load("phone").native("sod_move", 1).pop();
            m.line();
            m.pushstr("/User/Media/DCIM/")
                .native("fs_list", 1)
                .store("photos");
            m.line();
            m.load("photos").arrlen().store("count");
            m.line();
            m.load("home").native("sod_move", 1).pop();
            m.line();
            m.load("count").retv();
        })
        .method("main", &["nreq", "phone"], |m| {
            m.line();
            m.pushi(0).store("served");
            m.pushi(0).store("i");
            m.line();
            m.label("loop");
            m.load("i").load("nreq").if_cmp(Cmp::Ge, "done");
            m.line();
            m.native("sock_accept", 0).store("req");
            m.line();
            m.load("phone").native("node_id", 0).pop().pop();
            m.line();
            m.load("phone")
                .pushi(0)
                .invoke("Photo", "serve", 2)
                .store("count");
            m.line();
            m.load("req").native("sock_send", 1).pop();
            m.line();
            m.load("served").load("count").add().store("served");
            m.line();
            m.load("i").pushi(1).add().store("i").goto("loop");
            m.line();
            m.label("done");
            m.load("served").retv();
        })
        .build()
        .expect("photo server verifies")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sod_preprocess::preprocess_sod;

    #[test]
    fn apps_verify_and_preprocess() {
        for c in [search_class(), photo_server_class()] {
            let pre = preprocess_sod(&c).unwrap();
            assert!(pre.class_file_size_bytes() > c.class_file_size_bytes());
        }
    }
}
