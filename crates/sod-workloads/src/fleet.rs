//! Open-loop fleet request generation: deterministic arrival schedules.
//!
//! The paper evaluates one program at a time; cloud-elasticity claims need
//! *fleets* — hundreds of concurrent programs arriving like production
//! traffic. An [`ArrivalSchedule`] describes when requests enter the
//! system, **open-loop**: arrival times are fixed up front and never react
//! to completions, so a slow cluster builds a backlog exactly as a real
//! overloaded service would.
//!
//! Schedules are pure functions of `(schedule, count, seed)`. Jitter is
//! drawn from the repository's deterministic proptest-shim PRNG
//! ([`TestRng`]), never a wall clock, so the same seed always produces the
//! same virtual-time schedule — the property the fleet determinism suite
//! pins.

use proptest::test_runner::TestRng;

/// When fleet requests arrive, in virtual ns since the scenario start.
///
/// Every variant carries a `jitter_ns` bound: each arrival is offset by a
/// value drawn uniformly from `[0, jitter_ns]` (a draw happens even when
/// the bound is 0, so adding jitter never reshuffles the underlying PRNG
/// stream). The generated schedule is sorted ascending.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalSchedule {
    /// One request every `period_ns` (constant offered load).
    Uniform { period_ns: u64, jitter_ns: u64 },
    /// Groups of `burst` simultaneous requests separated by `gap_ns`
    /// (flash crowds; stresses accept queues and migration managers).
    Bursty {
        burst: usize,
        gap_ns: u64,
        jitter_ns: u64,
    },
    /// Inter-arrival time slides linearly from `first_period_ns` (first
    /// request) to `last_period_ns` (last request): a load ramp-up when
    /// the period shrinks, a drain when it grows.
    Ramp {
        first_period_ns: u64,
        last_period_ns: u64,
        jitter_ns: u64,
    },
}

impl ArrivalSchedule {
    /// Constant load without jitter: one request every `period_ns`.
    pub fn uniform(period_ns: u64) -> Self {
        ArrivalSchedule::Uniform {
            period_ns,
            jitter_ns: 0,
        }
    }

    /// Flash crowds without jitter: `burst` requests every `gap_ns`.
    pub fn bursty(burst: usize, gap_ns: u64) -> Self {
        ArrivalSchedule::Bursty {
            burst: burst.max(1),
            gap_ns,
            jitter_ns: 0,
        }
    }

    /// Linear ramp without jitter, from `first_period_ns` between the
    /// first two requests to `last_period_ns` between the last two.
    pub fn ramp(first_period_ns: u64, last_period_ns: u64) -> Self {
        ArrivalSchedule::Ramp {
            first_period_ns,
            last_period_ns,
            jitter_ns: 0,
        }
    }

    /// Replace the jitter bound (0 disables jitter again).
    pub fn with_jitter(self, jitter_ns: u64) -> Self {
        match self {
            ArrivalSchedule::Uniform { period_ns, .. } => ArrivalSchedule::Uniform {
                period_ns,
                jitter_ns,
            },
            ArrivalSchedule::Bursty { burst, gap_ns, .. } => ArrivalSchedule::Bursty {
                burst,
                gap_ns,
                jitter_ns,
            },
            ArrivalSchedule::Ramp {
                first_period_ns,
                last_period_ns,
                ..
            } => ArrivalSchedule::Ramp {
                first_period_ns,
                last_period_ns,
                jitter_ns,
            },
        }
    }

    /// Generate `count` arrival times (virtual ns, ascending) for this
    /// schedule, deterministically from `seed`.
    pub fn arrival_times(&self, count: usize, seed: u64) -> Vec<u64> {
        let mut rng = TestRng::from_seed(seed);
        let jitter_bound = match *self {
            ArrivalSchedule::Uniform { jitter_ns, .. }
            | ArrivalSchedule::Bursty { jitter_ns, .. }
            | ArrivalSchedule::Ramp { jitter_ns, .. } => jitter_ns,
        };
        let mut times = Vec::with_capacity(count);
        let mut ramp_clock = 0u64;
        for i in 0..count {
            let base = match *self {
                ArrivalSchedule::Uniform { period_ns, .. } => i as u64 * period_ns,
                ArrivalSchedule::Bursty { burst, gap_ns, .. } => (i / burst.max(1)) as u64 * gap_ns,
                ArrivalSchedule::Ramp {
                    first_period_ns,
                    last_period_ns,
                    ..
                } => {
                    let at = ramp_clock;
                    // Period between request i and i+1. Only count-1 gaps
                    // exist (the period computed at the last request is
                    // never consumed), so interpolate over count-2 steps:
                    // the first gap is first_period_ns, the last gap is
                    // exactly last_period_ns.
                    let steps = count.saturating_sub(2).max(1) as u64;
                    // Clamp: the period computed at the final request is
                    // dead (no gap follows), so don't extrapolate past the
                    // endpoint.
                    let step = (i as u64).min(steps);
                    let period = if last_period_ns >= first_period_ns {
                        first_period_ns + (last_period_ns - first_period_ns) * step / steps
                    } else {
                        first_period_ns - (first_period_ns - last_period_ns) * step / steps
                    };
                    ramp_clock += period;
                    at
                }
            };
            times.push(base + rng.below(jitter_bound.saturating_add(1).max(1)));
        }
        times.sort_unstable();
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        for s in [
            ArrivalSchedule::uniform(1_000).with_jitter(500),
            ArrivalSchedule::bursty(8, 50_000).with_jitter(2_000),
            ArrivalSchedule::ramp(10_000, 100).with_jitter(64),
        ] {
            let a = s.arrival_times(100, 42);
            let b = s.arrival_times(100, 42);
            assert_eq!(a, b, "{s:?}");
            let c = s.arrival_times(100, 43);
            assert_ne!(a, c, "different seeds must perturb {s:?}");
        }
    }

    #[test]
    fn uniform_is_periodic_without_jitter() {
        let t = ArrivalSchedule::uniform(250).arrival_times(5, 7);
        assert_eq!(t, vec![0, 250, 500, 750, 1000]);
        // Seed is irrelevant without jitter.
        assert_eq!(t, ArrivalSchedule::uniform(250).arrival_times(5, 8));
    }

    #[test]
    fn bursty_groups_share_an_instant() {
        let t = ArrivalSchedule::bursty(3, 1_000).arrival_times(7, 0);
        assert_eq!(t, vec![0, 0, 0, 1_000, 1_000, 1_000, 2_000]);
    }

    #[test]
    fn ramp_compresses_interarrival_times() {
        let t = ArrivalSchedule::ramp(1_000, 100).arrival_times(10, 0);
        assert!(t.windows(2).all(|w| w[0] <= w[1]));
        let first_gap = t[1] - t[0];
        let last_gap = t[9] - t[8];
        // The endpoints are hit exactly, per the constructor's contract.
        assert_eq!(first_gap, 1_000);
        assert_eq!(last_gap, 100);
        assert!(
            first_gap > last_gap,
            "ramp must speed up: {first_gap} vs {last_gap}"
        );
        // And the reverse ramp drains.
        let d = ArrivalSchedule::ramp(100, 1_000).arrival_times(10, 0);
        assert!(d[1] - d[0] < d[9] - d[8]);
    }

    #[test]
    fn output_is_sorted_even_with_large_jitter() {
        let t = ArrivalSchedule::uniform(10)
            .with_jitter(100_000)
            .arrival_times(200, 3);
        assert!(t.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(t.len(), 200);
    }
}
