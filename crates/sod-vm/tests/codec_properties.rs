//! Property tests for the wire codec: randomized classes, states, and
//! objects round-trip losslessly, and arbitrary byte garbage never panics
//! the decoder.

use proptest::prelude::*;
use sod_vm::capture::{CapturedFrame, CapturedState, CapturedStatics, CapturedValue};
use sod_vm::class::{ClassDef, ExEntry, ExKind, FieldDef, MethodDef};
use sod_vm::instr::{Cmp, Instr, SwitchTable};
use sod_vm::value::TypeOf;
use sod_vm::wire::{
    decode_class, decode_object, decode_state, encode_class, encode_object, encode_state,
    WireObjBody, WireObject,
};

fn captured_value() -> impl Strategy<Value = CapturedValue> {
    prop_oneof![
        Just(CapturedValue::Null),
        any::<i64>().prop_map(CapturedValue::Int),
        any::<i64>().prop_map(|b| CapturedValue::Num(b as f64 / 7.0)),
        (0u32..1_000_000).prop_map(CapturedValue::HomeRef),
    ]
}

fn instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        any::<i64>().prop_map(Instr::PushI),
        (0u16..64).prop_map(Instr::Load),
        (0u16..64).prop_map(Instr::Store),
        Just(Instr::Add),
        Just(Instr::Mul),
        (0u32..1000).prop_map(|t| Instr::If(Cmp::Le, t)),
        (0u16..32).prop_map(Instr::GetField),
        ((0u16..32), (0u16..32)).prop_map(|(c, m)| Instr::InvokeStatic(c, m, 2)),
        Just(Instr::RetV),
        (0u16..16).prop_map(Instr::BringObjLocal),
        (0u8..4).prop_map(Instr::CheckStatus),
        (0u16..16).prop_map(Instr::RestoreLocal),
    ]
}

fn class_def() -> impl Strategy<Value = ClassDef> {
    (
        "[A-Za-z][A-Za-z0-9]{0,12}",
        proptest::collection::vec(("[a-z][a-z0-9]{0,8}", any::<bool>()), 0..6),
        proptest::collection::vec(instr(), 1..40),
        proptest::collection::vec("[a-z]{1,10}".prop_map(String::from), 0..8),
    )
        .prop_map(|(name, fields, code, pool)| {
            let n = code.len();
            let mut c = ClassDef::new(name);
            for (fname, is_static) in fields {
                c.fields.push(FieldDef {
                    name: fname,
                    ty: TypeOf::Int,
                    is_static,
                });
            }
            c.pool = pool;
            let mut m = MethodDef::new("m", 1, 7);
            m.code = code;
            m.lines = (0..n as u32).map(|i| i / 3 + 1).collect();
            m.ex_table = vec![ExEntry::new(0, n as u32 / 2, 0, ExKind::NullPointer)];
            m.switches = vec![SwitchTable {
                pairs: vec![(1, 0), (9, 0)],
                default: 0,
            }];
            c.methods.push(m);
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn class_roundtrip(c in class_def()) {
        let decoded = decode_class(encode_class(&c)).unwrap();
        prop_assert_eq!(c, decoded);
    }

    #[test]
    fn state_roundtrip(
        frames in proptest::collection::vec(
            ("[A-Z][a-z]{0,6}", "[a-z]{1,6}", 0u32..500,
             proptest::collection::vec(captured_value(), 0..12)),
            1..6),
        statics in proptest::collection::vec(
            ("[A-Z][a-z]{0,6}", proptest::collection::vec(captured_value(), 0..6)),
            0..3),
    ) {
        let state = CapturedState {
            frames: frames
                .into_iter()
                .map(|(class, method, pc, locals)| CapturedFrame { class, method, pc, locals })
                .collect(),
            statics: statics
                .into_iter()
                .map(|(class, values)| CapturedStatics { class, values })
                .collect(),
        };
        let decoded = decode_state(encode_state(&state)).unwrap();
        prop_assert_eq!(&state, &decoded);
        // Size model consistent with the encoder within a factor.
        let encoded_len = encode_state(&state).len() as u64;
        prop_assert!(state.wire_bytes() >= encoded_len / 4);
    }

    #[test]
    fn object_roundtrip(
        home in 0u32..1_000_000,
        fields in proptest::collection::vec(captured_value(), 0..20),
        tag in 0u8..3,
    ) {
        let body = match tag {
            0 => WireObjBody::Obj { class: "C".into(), fields },
            1 => WireObjBody::Arr { elems: fields },
            _ => WireObjBody::Str("hello world".into()),
        };
        let obj = WireObject { home_id: home, body };
        let decoded = decode_object(encode_object(&obj)).unwrap();
        prop_assert_eq!(obj, decoded);
    }

    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let b = bytes::Bytes::from(bytes);
        let _ = decode_class(b.clone());
        let _ = decode_state(b.clone());
        let _ = decode_object(b);
    }

    #[test]
    fn truncation_of_valid_class_errors_not_panics(c in class_def(), cut in 1usize..32) {
        let encoded = encode_class(&c);
        if encoded.len() > cut {
            let truncated = encoded.slice(0..encoded.len() - cut);
            prop_assert!(decode_class(truncated).is_err());
        }
    }
}
