//! Property tests for the wire codec: randomized classes, states, and
//! objects round-trip losslessly (directly and through [`FrameBatch`]
//! delivery frames), the encoded frame length equals the arithmetic
//! `*_wire_bytes()` size model for every sample, and arbitrary byte garbage
//! never panics the decoder.

use proptest::prelude::*;
use sod_vm::capture::{CapturedFrame, CapturedState, CapturedStatics, CapturedValue};
use sod_vm::class::{ClassDef, ExEntry, ExKind, FieldDef, MethodDef};
use sod_vm::instr::{Cmp, Instr, SwitchTable};
use sod_vm::value::TypeOf;
use sod_vm::wire::{
    class_wire_bytes, decode_class, decode_object, decode_state, encode_class, encode_object,
    encode_state, BufferPool, FrameBatch, WireObjBody, WireObject,
};

fn captured_value() -> impl Strategy<Value = CapturedValue> {
    prop_oneof![
        Just(CapturedValue::Null),
        any::<i64>().prop_map(CapturedValue::Int),
        any::<i64>().prop_map(|b| CapturedValue::Num(b as f64 / 7.0)),
        (0u32..1_000_000).prop_map(CapturedValue::HomeRef),
    ]
}

fn instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        any::<i64>().prop_map(Instr::PushI),
        (0u16..64).prop_map(Instr::Load),
        (0u16..64).prop_map(Instr::Store),
        Just(Instr::Add),
        Just(Instr::Mul),
        (0u32..1000).prop_map(|t| Instr::If(Cmp::Le, t)),
        (0u16..32).prop_map(Instr::GetField),
        ((0u16..32), (0u16..32)).prop_map(|(c, m)| Instr::InvokeStatic(c, m, 2)),
        Just(Instr::RetV),
        (0u16..16).prop_map(Instr::BringObjLocal),
        (0u8..4).prop_map(Instr::CheckStatus),
        (0u16..16).prop_map(Instr::RestoreLocal),
    ]
}

fn class_def() -> impl Strategy<Value = ClassDef> {
    (
        "[A-Za-z][A-Za-z0-9]{0,12}",
        proptest::collection::vec(("[a-z][a-z0-9]{0,8}", any::<bool>()), 0..6),
        proptest::collection::vec(instr(), 1..40),
        proptest::collection::vec("[a-z]{1,10}".prop_map(String::from), 0..8),
    )
        .prop_map(|(name, fields, code, pool)| {
            let n = code.len();
            let mut c = ClassDef::new(name);
            for (fname, is_static) in fields {
                c.fields.push(FieldDef {
                    name: fname,
                    ty: TypeOf::Int,
                    is_static,
                });
            }
            c.pool = pool;
            let mut m = MethodDef::new("m", 1, 7);
            m.code = code;
            m.lines = (0..n as u32).map(|i| i / 3 + 1).collect();
            m.ex_table = vec![ExEntry::new(0, n as u32 / 2, 0, ExKind::NullPointer)];
            m.switches = vec![SwitchTable {
                pairs: vec![(1, 0), (9, 0)],
                default: 0,
            }];
            c.methods.push(m);
            c
        })
}

fn captured_state() -> impl Strategy<Value = CapturedState> {
    (
        proptest::collection::vec(
            (
                "[A-Z][a-z]{0,6}",
                "[a-z]{1,6}",
                0u32..500,
                proptest::collection::vec(captured_value(), 0..12),
            ),
            1..6,
        ),
        proptest::collection::vec(
            (
                "[A-Z][a-z]{0,6}",
                proptest::collection::vec(captured_value(), 0..6),
            ),
            0..3,
        ),
    )
        .prop_map(|(frames, statics)| CapturedState {
            frames: frames
                .into_iter()
                .map(|(class, method, pc, locals)| CapturedFrame {
                    class,
                    method,
                    pc,
                    locals,
                })
                .collect(),
            statics: statics
                .into_iter()
                .map(|(class, values)| CapturedStatics { class, values })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn class_roundtrip(c in class_def()) {
        let encoded = encode_class(&c).unwrap();
        // Encode-once contract: the frame length IS the byte metric.
        prop_assert_eq!(encoded.len() as u64, class_wire_bytes(&c));
        let decoded = decode_class(encoded).unwrap();
        prop_assert_eq!(c, decoded);
    }

    #[test]
    fn state_roundtrip(state in captured_state()) {
        let encoded = encode_state(&state).unwrap();
        // The framed layout is sized so the frame length equals the
        // arithmetic size model exactly — no re-encoding at size queries.
        prop_assert_eq!(encoded.len() as u64, state.wire_bytes());
        let decoded = decode_state(encoded).unwrap();
        prop_assert_eq!(&state, &decoded);
    }

    #[test]
    fn object_roundtrip(
        home in 0u32..1_000_000,
        fields in proptest::collection::vec(captured_value(), 0..20),
        tag in 0u8..3,
    ) {
        let body = match tag {
            0 => WireObjBody::Obj { class: "C".into(), fields },
            1 => WireObjBody::Arr { elems: fields },
            _ => WireObjBody::Str("hello world".into()),
        };
        let obj = WireObject { home_id: home, body };
        let encoded = encode_object(&obj).unwrap();
        prop_assert_eq!(encoded.len() as u64, obj.wire_bytes());
        let decoded = decode_object(encoded).unwrap();
        prop_assert_eq!(obj, decoded);
    }

    /// Payloads batched into one delivery frame survive the trip and the
    /// batch's payload metric equals the sum of the members' wire sizes.
    #[test]
    fn batched_frames_roundtrip(
        c in class_def(),
        state in captured_state(),
        home in 0u32..1_000_000,
    ) {
        let pool = BufferPool::new();
        let obj = WireObject { home_id: home, body: WireObjBody::Str("s".into()) };
        let mut batch = FrameBatch::new();
        batch.push(encode_class(&c).unwrap());
        batch.push(encode_state(&state).unwrap());
        batch.push(encode_object(&obj).unwrap());
        prop_assert_eq!(
            batch.payload_bytes(),
            class_wire_bytes(&c) + state.wire_bytes() + obj.wire_bytes()
        );
        let delivered = batch.encode_pooled(&pool).unwrap();
        let back = FrameBatch::decode(delivered.clone()).unwrap();
        prop_assert_eq!(decode_class(back.frames()[0].clone()).unwrap(), c);
        prop_assert_eq!(decode_state(back.frames()[1].clone()).unwrap(), state);
        prop_assert_eq!(decode_object(back.frames()[2].clone()).unwrap(), obj);
        // After the last handle drops, the pool reclaims the delivery buffer.
        drop(back);
        prop_assert!(pool.recycle(delivered));
        prop_assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let b = bytes::Bytes::from(bytes);
        let _ = decode_class(b.clone());
        let _ = decode_state(b.clone());
        let _ = decode_object(b.clone());
        let _ = FrameBatch::decode(b);
    }

    #[test]
    fn truncation_of_valid_class_errors_not_panics(c in class_def(), cut in 1usize..32) {
        let encoded = encode_class(&c).unwrap();
        if encoded.len() > cut {
            let truncated = encoded.slice(0..encoded.len() - cut);
            prop_assert!(decode_class(truncated).is_err());
        }
    }

    #[test]
    fn truncation_of_valid_state_errors_not_panics(state in captured_state(), cut in 1usize..32) {
        let encoded = encode_state(&state).unwrap();
        if encoded.len() > cut {
            let truncated = encoded.slice(0..encoded.len() - cut);
            prop_assert!(decode_state(truncated).is_err());
        }
    }
}
