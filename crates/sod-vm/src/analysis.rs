//! Static analysis over method bodies.
//!
//! Two results feed the SOD machinery:
//!
//! 1. **Operand-stack depth at every pc**, computed by abstract
//!    interpretation over the control-flow graph. Verification requires the
//!    depth to be consistent across all paths reaching a pc (the same rule
//!    the JVM verifier enforces), which is what makes depths well-defined.
//! 2. **Migration-safe points (MSPs)**: pcs that start a source line *and*
//!    have depth 0. The paper: "migration-safe points are essentially
//!    located at the first bytecode instruction of a source code line where
//!    the operand stack is always empty."
//!
//! The preprocessor's statement rearrangement exists precisely to maximise
//! MSP density; [`method_summary`] is how it (and the capture machinery)
//! observes the result.

use crate::class::{ClassDef, MethodDef};
use crate::error::{VmError, VmResult};
use crate::instr::Instr;

/// Analysis results for one method.
#[derive(Clone, Debug, PartialEq)]
pub struct MethodSummary {
    /// Operand-stack depth on entry to each instruction; `None` for
    /// unreachable instructions.
    pub depth: Vec<Option<u32>>,
    /// Maximum operand-stack depth anywhere in the method.
    pub max_stack: u32,
    /// `msp[pc]` — pc is a migration-safe point.
    pub msp: Vec<bool>,
}

impl MethodSummary {
    /// Whether `pc` is a migration-safe point.
    pub fn is_msp(&self, pc: u32) -> bool {
        self.msp.get(pc as usize).copied().unwrap_or(false)
    }

    /// All migration-safe pcs.
    pub fn msp_pcs(&self) -> impl Iterator<Item = u32> + '_ {
        self.msp
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(pc, _)| pc as u32)
    }
}

/// Compute the [`MethodSummary`] for `method` of `class`, verifying stack
/// discipline along the way.
///
/// Exception-handler entry points are seeded with depth 1 (the thrown
/// exception reference is on the stack), matching JVM semantics.
pub fn method_summary(class: &ClassDef, method: &MethodDef) -> VmResult<MethodSummary> {
    let n = method.code.len();
    let mut depth: Vec<Option<u32>> = vec![None; n];
    let mut work: Vec<(u32, u32)> = Vec::with_capacity(16);

    if n > 0 {
        work.push((0, 0));
    }
    // Exception handlers are entered with the exception ref on the stack.
    for e in &method.ex_table {
        work.push((e.target, 1));
    }

    let verify_err = |reason: String| VmError::Verify {
        method: format!("{}.{}", class.name, method.name),
        reason,
    };

    while let Some((pc, d)) = work.pop() {
        let idx = pc as usize;
        if idx >= n {
            return Err(verify_err(format!("branch to pc {pc} out of range")));
        }
        match depth[idx] {
            Some(existing) => {
                if existing != d {
                    return Err(verify_err(format!(
                        "inconsistent stack depth at pc {pc}: {existing} vs {d}"
                    )));
                }
                continue;
            }
            None => depth[idx] = Some(d),
        }

        let instr = &method.code[idx];
        if d < instr.pops() {
            return Err(verify_err(format!(
                "stack underflow at pc {pc}: {instr:?} needs {} values, has {d}",
                instr.pops()
            )));
        }

        if let Instr::Switch(t) = instr {
            let table = method
                .switches
                .get(*t as usize)
                .ok_or_else(|| verify_err(format!("switch table {t} missing")))?;
            let after = d - 1;
            for target in table.targets() {
                work.push((target, after));
            }
            continue;
        }

        match instr.stack_delta() {
            Some(delta) => {
                let after = (d as i32 + delta) as u32;
                for t in instr.branch_targets() {
                    work.push((t, after));
                }
                if instr.falls_through() {
                    work.push((pc + 1, after));
                }
            }
            None => {
                // Return or throw: no successors.
            }
        }
    }

    let max_stack = depth
        .iter()
        .zip(&method.code)
        .map(|(d, i)| d.map_or(0, |d| d.saturating_add(positive_delta(i))))
        .max()
        .unwrap_or(0);

    let mut msp = vec![false; n];
    for pc in 0..n {
        if method.is_line_start(pc as u32) && depth[pc] == Some(0) {
            msp[pc] = true;
        }
    }

    Ok(MethodSummary {
        depth,
        max_stack,
        msp,
    })
}

fn positive_delta(i: &Instr) -> u32 {
    i.stack_delta().map_or(0, |d| d.max(0) as u32)
}

/// Verify every method in a class, returning summaries in method order.
pub fn class_summaries(class: &ClassDef) -> VmResult<Vec<MethodSummary>> {
    class
        .methods
        .iter()
        .map(|m| method_summary(class, m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{ClassDef, ExEntry, ExKind, MethodDef};
    use crate::instr::{Cmp, Instr, SwitchTable};

    fn cls(m: MethodDef) -> ClassDef {
        ClassDef::new("T").with_method(m)
    }

    #[test]
    fn straight_line_depths() {
        // line 1: push push add store ; line 2: ret
        let m = MethodDef::new("m", 0, 1).with_code(
            vec![
                Instr::PushI(1),
                Instr::PushI(2),
                Instr::Add,
                Instr::Store(0),
                Instr::Ret,
            ],
            vec![1, 1, 1, 1, 2],
        );
        let c = cls(m);
        let s = method_summary(&c, c.method("m").unwrap()).unwrap();
        assert_eq!(s.depth, vec![Some(0), Some(1), Some(2), Some(1), Some(0)]);
        assert_eq!(s.max_stack, 2);
        // pc 0 is a line start at depth 0 => MSP; pc 4 (line 2) also.
        assert!(s.is_msp(0));
        assert!(!s.is_msp(1));
        assert!(s.is_msp(4));
    }

    #[test]
    fn branch_join_consistent() {
        // if (x == 0) goto L; push; L: (depth must match: 0 via both)
        let m = MethodDef::new("m", 1, 0).with_code(
            vec![
                Instr::Load(0),
                Instr::IfZ(Cmp::Eq, 4),
                Instr::PushI(1),
                Instr::Store(0),
                Instr::Ret,
            ],
            vec![1, 1, 2, 2, 3],
        );
        let c = cls(m);
        let s = method_summary(&c, c.method("m").unwrap()).unwrap();
        assert_eq!(s.depth[4], Some(0));
        assert!(s.is_msp(4));
    }

    #[test]
    fn inconsistent_depth_rejected() {
        // Path A reaches pc 3 with depth 1, path B with depth 0.
        let m = MethodDef::new("m", 1, 0).with_code(
            vec![
                Instr::Load(0),
                Instr::IfZ(Cmp::Eq, 3), // jumps to 3 with depth 0
                Instr::PushI(7),        // falls into 3 with depth 1
                Instr::Ret,
            ],
            vec![1, 1, 2, 3],
        );
        let c = cls(m);
        let err = method_summary(&c, c.method("m").unwrap()).unwrap_err();
        assert!(matches!(err, VmError::Verify { .. }));
    }

    #[test]
    fn underflow_rejected() {
        let m = MethodDef::new("m", 0, 0).with_code(vec![Instr::Add, Instr::Ret], vec![1, 1]);
        let c = cls(m);
        assert!(method_summary(&c, c.method("m").unwrap()).is_err());
    }

    #[test]
    fn branch_out_of_range_rejected() {
        let m = MethodDef::new("m", 0, 0).with_code(vec![Instr::Goto(9)], vec![1]);
        let c = cls(m);
        assert!(method_summary(&c, c.method("m").unwrap()).is_err());
    }

    #[test]
    fn handler_entered_with_exception_on_stack() {
        let m = MethodDef::new("m", 0, 1)
            .with_code(
                vec![
                    Instr::PushNull, // 0 (line 1)
                    Instr::Store(0), // 1
                    Instr::Ret,      // 2 (line 2)
                    Instr::Pop,      // 3 handler: pops the exception
                    Instr::Ret,      // 4
                ],
                vec![1, 1, 2, 3, 3],
            )
            .with_ex_table(vec![ExEntry::new(0, 2, 3, ExKind::NullPointer)]);
        let c = cls(m);
        let s = method_summary(&c, c.method("m").unwrap()).unwrap();
        assert_eq!(s.depth[3], Some(1));
        // Handler start is a line start but has depth 1 => not an MSP.
        assert!(!s.is_msp(3));
    }

    #[test]
    fn switch_targets_analysed() {
        let m = MethodDef::new("m", 1, 0)
            .with_code(
                vec![
                    Instr::Load(0),   // 0
                    Instr::Switch(0), // 1
                    Instr::Ret,       // 2
                    Instr::Ret,       // 3
                ],
                vec![1, 1, 2, 3],
            )
            .with_switches(vec![SwitchTable {
                pairs: vec![(5, 3)],
                default: 2,
            }]);
        let c = cls(m);
        let s = method_summary(&c, c.method("m").unwrap()).unwrap();
        assert_eq!(s.depth[2], Some(0));
        assert_eq!(s.depth[3], Some(0));
    }

    #[test]
    fn unreachable_code_has_no_depth() {
        let m = MethodDef::new("m", 0, 0)
            .with_code(vec![Instr::Ret, Instr::PushI(1), Instr::Ret], vec![1, 2, 2]);
        let c = cls(m);
        let s = method_summary(&c, c.method("m").unwrap()).unwrap();
        assert_eq!(s.depth[1], None);
        assert!(!s.is_msp(1));
    }

    #[test]
    fn max_stack_accounts_for_peak_inside_instruction() {
        // Depth before Add is 2, and Add's positive contribution is 0, so
        // max_stack is 2 at the Add.
        let m = MethodDef::new("m", 0, 0).with_code(
            vec![Instr::PushI(1), Instr::PushI(2), Instr::Add, Instr::RetV],
            vec![1, 1, 1, 1],
        );
        let c = cls(m);
        let s = method_summary(&c, c.method("m").unwrap()).unwrap();
        assert_eq!(s.max_stack, 2);
    }
}
