//! Runtime values of the stack machine.
//!
//! The VM is dynamically typed over three storage classes, mirroring the
//! JVM's computational types collapsed to 64 bits: integers (`Int`, covering
//! `boolean`/`byte`/`short`/`int`/`long`), floating point (`Num`, covering
//! `float`/`double`), and references (`Ref`/`Null`). A reference is an index
//! into the owning VM's [heap](crate::heap::Heap); references are only
//! meaningful within one VM and are never sent on the wire directly — the
//! [wire codec](crate::wire) and [capture](crate::capture) layers translate
//! them to home-object identities or null them, exactly as the SOD paper's
//! state capturing does.

use std::fmt;

use crate::error::{VmError, VmResult};

/// Index of an object in a VM heap. Only meaningful within one VM instance.
pub type ObjId = u32;

/// A single stack-machine value (one local-variable slot / operand).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// All integral types, collapsed to `i64`.
    Int(i64),
    /// All floating-point types, collapsed to `f64`.
    Num(f64),
    /// A non-null reference into the local heap.
    Ref(ObjId),
    /// The null reference.
    Null,
    /// A reference *nulled in transfer*: behaves exactly like `Null` to the
    /// guest (it is what the SOD paper's state restoration writes into
    /// locals and fields), but carries the home-node object identity so an
    /// object-fault handler can fetch the master copy. Guest code cannot
    /// distinguish it from `Null`; only the `BringObj*` fault instructions
    /// inspect the payload.
    NulledRef(ObjId),
}

/// Storage class of a value, used in field declarations and on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TypeOf {
    Int,
    Num,
    Ref,
}

impl Value {
    /// Size of one value slot in bytes, for the paper's `F` accounting
    /// (accumulated size of local and static fields) and for serialization
    /// cost modelling. Every slot is one machine word.
    pub const SLOT_BYTES: u64 = 8;

    /// Storage class of this value. `Null` classifies as `Ref`.
    pub fn type_of(self) -> TypeOf {
        match self {
            Value::Int(_) => TypeOf::Int,
            Value::Num(_) => TypeOf::Num,
            Value::Ref(_) | Value::Null | Value::NulledRef(_) => TypeOf::Ref,
        }
    }

    /// Extract an integer, failing with a type error otherwise.
    pub fn as_int(self) -> VmResult<i64> {
        match self {
            Value::Int(i) => Ok(i),
            other => Err(VmError::TypeMismatch {
                expected: "int",
                found: other.type_name(),
            }),
        }
    }

    /// Extract a float. Integers are *not* implicitly widened; the
    /// instruction set has an explicit `I2F`.
    pub fn as_num(self) -> VmResult<f64> {
        match self {
            Value::Num(n) => Ok(n),
            other => Err(VmError::TypeMismatch {
                expected: "num",
                found: other.type_name(),
            }),
        }
    }

    /// Extract a non-null reference. `NulledRef` derefs as null — the guest
    /// cannot observe the home identity.
    pub fn as_ref_id(self) -> VmResult<ObjId> {
        match self {
            Value::Ref(id) => Ok(id),
            Value::Null | Value::NulledRef(_) => Err(VmError::NullDeref),
            other => Err(VmError::TypeMismatch {
                expected: "ref",
                found: other.type_name(),
            }),
        }
    }

    /// True if this is any reference (including null).
    pub fn is_reference(self) -> bool {
        matches!(self, Value::Ref(_) | Value::Null | Value::NulledRef(_))
    }

    /// True if the guest observes this value as the null reference.
    ///
    /// A transfer-nulled reference is *not* null to the guest: it stands
    /// for a live home object, so null tests must report non-null and only
    /// dereferences fault. (This is stronger than the paper's plain-null
    /// restoration, where an explicit `x == null` test on an unfetched
    /// reference would silently diverge.)
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null)
    }

    /// Home identity carried by a transfer-nulled reference.
    pub fn nulled_home(self) -> Option<ObjId> {
        match self {
            Value::NulledRef(h) => Some(h),
            _ => None,
        }
    }

    /// Human-readable type name for diagnostics.
    pub fn type_name(self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Num(_) => "num",
            Value::Ref(_) => "ref",
            Value::Null | Value::NulledRef(_) => "null",
        }
    }

    /// Default (zero) value for a storage class, used to initialise fields
    /// and fresh local slots, like the JVM's default field values.
    pub fn default_for(ty: TypeOf) -> Value {
        match ty {
            TypeOf::Int => Value::Int(0),
            TypeOf::Num => Value::Num(0.0),
            TypeOf::Ref => Value::Null,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Num(n) => write!(f, "{n}"),
            Value::Ref(id) => write!(f, "@{id}"),
            Value::Null => write!(f, "null"),
            Value::NulledRef(h) => write!(f, "null~@{h}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Int(v as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_classification() {
        assert_eq!(Value::Int(3).type_of(), TypeOf::Int);
        assert_eq!(Value::Num(3.5).type_of(), TypeOf::Num);
        assert_eq!(Value::Ref(7).type_of(), TypeOf::Ref);
        assert_eq!(Value::Null.type_of(), TypeOf::Ref);
    }

    #[test]
    fn extraction_ok() {
        assert_eq!(Value::Int(11).as_int().unwrap(), 11);
        assert_eq!(Value::Num(2.5).as_num().unwrap(), 2.5);
        assert_eq!(Value::Ref(4).as_ref_id().unwrap(), 4);
    }

    #[test]
    fn extraction_type_errors() {
        assert!(Value::Num(1.0).as_int().is_err());
        assert!(Value::Int(1).as_num().is_err());
        assert!(Value::Int(1).as_ref_id().is_err());
    }

    #[test]
    fn null_deref_is_distinguished() {
        match Value::Null.as_ref_id() {
            Err(VmError::NullDeref) => {}
            other => panic!("expected NullDeref, got {other:?}"),
        }
    }

    #[test]
    fn defaults_match_types() {
        for ty in [TypeOf::Int, TypeOf::Num, TypeOf::Ref] {
            assert_eq!(Value::default_for(ty).type_of(), ty);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Ref(9).to_string(), "@9");
        assert_eq!(Value::Null.to_string(), "null");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(true), Value::Int(1));
        assert_eq!(Value::from(0.5f64), Value::Num(0.5));
    }
}
