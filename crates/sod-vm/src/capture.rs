//! Partial-stack capture and restore — the heart of stack-on-demand.
//!
//! [`capture_segment`] exports the **topmost `nframes` frames** of a
//! suspended thread as a [`CapturedState`]: per frame the class/method
//! names, the pc, and the local-variable values; plus the static fields of
//! all loaded classes. References are captured as [`CapturedValue::HomeRef`]
//! (the home object identity) and are **nulled on restore** — the object
//! fault machinery then fetches them on demand, which is exactly the
//! paper's heap-on-demand co-design.
//!
//! Restore comes in two fidelity levels:
//!
//! * [`restore_segment_direct`] — in-VM re-establishment (what JESSICA2
//!   does inside the JVM kernel, and what a production Rust runtime would
//!   do). One call, frames pushed bottom-up.
//! * handler-based restore (see `begin_handler_restore`) — the paper's
//!   portable protocol: invoke the bottom method, arm a breakpoint at its
//!   entry, throw `InvalidStateException`, and let the preprocessor-injected
//!   *restoration handler* rebuild locals and `lookupswitch`-jump to the
//!   saved pc, re-invoking the next method up. The two must agree — a
//!   property test in `sod-preprocess` verifies it.
//!
//! **What is deliberately *not* captured:** the interpreter's pre-resolved
//! operand form — inline-cache slots, canonical class-name `Arc`s, and
//! superinstruction tables (see `sod_vm::fastpath`). Those are node-local
//! acceleration state rebuilt at link time and rewarmed by execution; a
//! migrated segment restores *cold* at the destination and must behave (and
//! meter) identically to one restored warm, which
//! `tests/interp_equivalence.rs` pins.

use crate::error::{VmError, VmResult};
use crate::frame::Frame;
use crate::interp::{RestoreSession, Vm};
use crate::tooling::{Tooling, ToolingPath};
use crate::value::{ObjId, Value};

/// A captured value: primitives travel by value, references by home
/// identity (to be nulled or remapped at the destination).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CapturedValue {
    Int(i64),
    Num(f64),
    Null,
    /// A reference, recorded as the home VM's object id.
    HomeRef(ObjId),
}

impl CapturedValue {
    /// Capture a value from a VM that *is* the home node: local refs export
    /// their own ids. (For worker-side re-export, use
    /// [`crate::interp::Vm::export_value`], which maps cached copies back to
    /// their master identity.)
    pub fn from_value(v: Value) -> Self {
        match v {
            Value::Int(i) => CapturedValue::Int(i),
            Value::Num(n) => CapturedValue::Num(n),
            Value::Null => CapturedValue::Null,
            Value::Ref(id) => CapturedValue::HomeRef(id),
            Value::NulledRef(h) => CapturedValue::HomeRef(h),
        }
    }

    /// SOD restore semantics: references become transfer-nulled values —
    /// indistinguishable from `null` to the guest, but carrying the home
    /// identity for the object-fault machinery.
    pub fn to_nulled_value(self) -> Value {
        match self {
            CapturedValue::Int(i) => Value::Int(i),
            CapturedValue::Num(n) => Value::Num(n),
            CapturedValue::Null => Value::Null,
            CapturedValue::HomeRef(h) => Value::NulledRef(h),
        }
    }

    /// Eager-copy restore semantics: references remap through a home→local
    /// object id table (process-migration baseline).
    pub fn to_mapped_value(self, map: impl Fn(ObjId) -> Option<ObjId>) -> VmResult<Value> {
        Ok(match self {
            CapturedValue::Int(i) => Value::Int(i),
            CapturedValue::Num(n) => Value::Num(n),
            CapturedValue::Null => Value::Null,
            CapturedValue::HomeRef(h) => Value::Ref(map(h).ok_or(VmError::BadRef(h))?),
        })
    }

    /// Serialized size in bytes (tag + payload), for transfer costing.
    pub fn wire_bytes(self) -> u64 {
        match self {
            CapturedValue::Null => 1,
            _ => 9,
        }
    }
}

/// One captured frame.
#[derive(Clone, Debug, PartialEq)]
pub struct CapturedFrame {
    pub class: String,
    pub method: String,
    pub pc: u32,
    pub locals: Vec<CapturedValue>,
}

impl CapturedFrame {
    pub fn wire_bytes(&self) -> u64 {
        8 + self.class.len() as u64
            + self.method.len() as u64
            + 4
            + self.locals.iter().map(|v| v.wire_bytes()).sum::<u64>()
    }
}

/// Captured statics of one class.
#[derive(Clone, Debug, PartialEq)]
pub struct CapturedStatics {
    pub class: String,
    pub values: Vec<CapturedValue>,
}

impl CapturedStatics {
    pub fn wire_bytes(&self) -> u64 {
        4 + self.class.len() as u64 + self.values.iter().map(|v| v.wire_bytes()).sum::<u64>()
    }
}

/// The unit SOD ships: a segment of frames (bottom-up) plus class statics.
#[derive(Clone, Debug, PartialEq)]
pub struct CapturedState {
    /// Frames bottom-up: `frames[0]` is the oldest frame of the segment.
    pub frames: Vec<CapturedFrame>,
    pub statics: Vec<CapturedStatics>,
}

impl CapturedState {
    /// Serialized size of the state message (drives transfer time).
    pub fn wire_bytes(&self) -> u64 {
        16 + self.frames.iter().map(|f| f.wire_bytes()).sum::<u64>()
            + self.statics.iter().map(|s| s.wire_bytes()).sum::<u64>()
    }

    /// Accumulated size of local and static fields — the paper's Table I
    /// `F` column.
    pub fn field_bytes(&self) -> u64 {
        let locals: u64 = self
            .frames
            .iter()
            .map(|f| f.locals.len() as u64 * Value::SLOT_BYTES)
            .sum();
        let statics: u64 = self
            .statics
            .iter()
            .map(|s| s.values.len() as u64 * Value::SLOT_BYTES)
            .sum();
        locals + statics
    }
}

/// Capture the top `nframes` frames of thread `tid` through the given
/// tooling path, charging the returned meter total.
///
/// Requirements (mirroring the paper's migration-safe points):
/// * the top frame must sit at an MSP (line start, empty operand stack);
/// * every other captured frame must have an empty operand stack (true at
///   call sites by construction after preprocessing);
/// * no captured frame may be pinned.
pub fn capture_segment(
    vm: &mut Vm,
    tid: usize,
    nframes: usize,
    path: ToolingPath,
) -> VmResult<(CapturedState, u64)> {
    // Validate the migration point first (no tooling charges for errors).
    {
        let t = vm.thread(tid)?;
        let height = t.frames.len();
        if nframes == 0 || nframes > height {
            return Err(VmError::BadThread(tid));
        }
        let top = t.top().expect("frames");
        let summary = &vm.classes[top.class_idx].summaries[top.method_idx];
        if !top.ostack.is_empty() || !summary.is_msp(top.pc) {
            let m = &vm.classes[top.class_idx].def.methods[top.method_idx];
            return Err(VmError::NotAtMigrationSafePoint {
                method: m.name.clone(),
                pc: top.pc,
            });
        }
        for f in &t.frames[height - nframes..] {
            if f.pinned {
                return Err(VmError::NotAtMigrationSafePoint {
                    method: "pinned frame in segment".into(),
                    pc: f.pc,
                });
            }
            if !f.ostack.is_empty() && !std::ptr::eq(f, top) {
                // Call-site frames must have empty operand stacks; this is
                // guaranteed by preprocessing, so a violation is an error.
                return Err(VmError::NotAtMigrationSafePoint {
                    method: "non-empty operand stack below top".into(),
                    pc: f.pc,
                });
            }
        }
    }

    let mut tool = Tooling::new(vm, path);
    tool.suspend_thread(tid);

    let mut frames = Vec::with_capacity(nframes);
    // JVMTI depth 0 = top; we want bottom-up order in the segment.
    for depth in (0..nframes).rev() {
        let (class, method, pc) = tool.get_frame_location(tid, depth)?;
        let nlocals = tool.get_local_count(tid, depth)?;
        let mut locals = Vec::with_capacity(nlocals as usize);
        for slot in 0..nlocals {
            locals.push(tool.get_local(tid, depth, slot)?);
        }
        frames.push(CapturedFrame {
            class,
            method,
            pc,
            locals,
        });
    }

    // Statics of all loaded classes ("the information and static fields of
    // loaded classes are saved").
    let nclasses = tool.vm().classes.len();
    let mut statics = Vec::new();
    for ci in 0..nclasses {
        let n = tool.vm().classes[ci].statics.len();
        if n == 0 {
            continue;
        }
        let mut values = Vec::with_capacity(n);
        for si in 0..n {
            values.push(tool.get_static(ci, si)?);
        }
        let class = tool.vm().classes[ci].def.name.clone();
        statics.push(CapturedStatics { class, values });
    }

    let cost = tool.meter.ns;
    Ok((CapturedState { frames, statics }, cost))
}

/// Re-establish a captured segment in `vm` directly (in-kernel restore):
/// spawn a fresh thread whose frames are the captured ones, references
/// nulled, statics installed. Returns the new thread id.
///
/// All referenced classes must already be loaded (the runtime's class
/// shipping handles misses before calling this).
pub fn restore_segment_direct(vm: &mut Vm, state: &CapturedState) -> VmResult<usize> {
    install_statics(vm, state, true)?;

    let mut frames = Vec::with_capacity(state.frames.len());
    for cf in &state.frames {
        let ci = vm
            .class_idx(&cf.class)
            .ok_or_else(|| VmError::ClassNotFound(cf.class.clone()))?;
        let mi = vm.classes[ci]
            .method_idx(&cf.method)
            .ok_or_else(|| VmError::MethodNotFound {
                class: cf.class.clone(),
                method: cf.method.clone(),
            })?;
        let nlocals = vm.classes[ci].def.methods[mi].nlocals;
        if cf.locals.len() != nlocals as usize {
            return Err(VmError::Verify {
                method: cf.method.clone(),
                reason: "locals layout mismatch".into(),
            });
        }
        let mut f = Frame::new(ci, mi, nlocals);
        f.pc = cf.pc;
        for (i, v) in cf.locals.iter().enumerate() {
            f.locals[i] = v.to_nulled_value();
        }
        frames.push(f);
    }

    let tid = {
        let mut t = crate::interp::VmThread::new_restored(frames);
        t.seg_frames = state.frames.len();
        vm.threads.push(t);
        vm.threads.len() - 1
    };
    Ok(tid)
}

/// Install captured statics into `vm`, nulling references and recording
/// restored-null flags. `strict` demands exact layout agreement.
fn install_statics(vm: &mut Vm, state: &CapturedState, strict: bool) -> VmResult<()> {
    for s in &state.statics {
        let Some(ci) = vm.class_idx(&s.class) else {
            return Err(VmError::ClassNotFound(s.class.clone()));
        };
        if strict && vm.classes[ci].statics.len() != s.values.len() {
            return Err(VmError::Verify {
                method: s.class.clone(),
                reason: "statics layout mismatch".into(),
            });
        }
        let n = vm.classes[ci].statics.len();
        for (i, v) in s.values.iter().enumerate() {
            if i < n {
                vm.classes[ci].statics[i] = v.to_nulled_value();
            }
        }
    }
    Ok(())
}

/// Begin the paper's handler-based restore protocol: install the restore
/// session, spawn the bottom method with captured (nulled) arguments, and
/// arm a breakpoint at its entry. The caller then drives the
/// breakpoint → `InvalidStateException` → restoration-handler cycle (see
/// `sod-runtime`'s worker session) until all frames are re-established.
///
/// Returns the new thread id.
pub fn begin_handler_restore(vm: &mut Vm, state: &CapturedState) -> VmResult<usize> {
    if state.frames.is_empty() {
        return Err(VmError::RestoreProtocol("empty segment"));
    }
    install_statics(vm, state, false)?;

    let bottom = &state.frames[0];
    let ci = vm
        .class_idx(&bottom.class)
        .ok_or_else(|| VmError::ClassNotFound(bottom.class.clone()))?;
    let mi = vm.classes[ci]
        .method_idx(&bottom.method)
        .ok_or_else(|| VmError::MethodNotFound {
            class: bottom.class.clone(),
            method: bottom.method.clone(),
        })?;
    let nargs = vm.classes[ci].def.methods[mi].nargs as usize;
    let args: Vec<Value> = bottom
        .locals
        .iter()
        .take(nargs)
        .map(|v| v.to_nulled_value())
        .collect();

    let names: (String, String) = (bottom.class.clone(), bottom.method.clone());
    let tid = vm.spawn(&names.0, &names.1, &args)?;
    vm.threads[tid].seg_frames = state.frames.len();
    // Session and breakpoint are thread-scoped: concurrent restores on a
    // shared destination node must not clobber each other.
    vm.threads[tid].restore_session = Some(RestoreSession {
        frames: state
            .frames
            .iter()
            .map(|f| (f.locals.clone(), f.pc))
            .collect(),
        cursor: 0,
    });
    vm.set_breakpoint(tid, ci, mi, 0);
    Ok(tid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{ClassDef, FieldDef, MethodDef};
    use crate::instr::{Cmp, Instr};
    use crate::interp::{RunMode, StepOutcome};
    use crate::value::TypeOf;

    /// Main.main: x=10; y=f(x); return y+1  /  f(n): loop forever at line 2.
    fn looping_vm() -> (Vm, usize) {
        let mut c = ClassDef::new("Main").with_field(FieldDef::stat("s", TypeOf::Int));
        let main_n = c.intern("Main");
        let f = c.intern("f");
        let s = c.intern("s");
        c.methods.push(MethodDef::new("main", 0, 2).with_code(
            vec![
                Instr::PushI(10),                  // 0 line 1
                Instr::Store(0),                   // 1
                Instr::PushI(77),                  // 2 line 2
                Instr::PutStatic(main_n, s),       // 3
                Instr::Load(0),                    // 4 line 3
                Instr::InvokeStatic(main_n, f, 1), // 5
                Instr::Store(1),                   // 6
                Instr::Load(1),                    // 7 line 4
                Instr::PushI(1),                   // 8
                Instr::Add,                        // 9
                Instr::RetV,                       // 10
            ],
            vec![1, 1, 2, 2, 3, 3, 3, 4, 4, 4, 4],
        ));
        c.methods.push(MethodDef::new("f", 1, 1).with_code(
            vec![
                Instr::PushI(5),        // 0 line 1
                Instr::Store(1),        // 1
                Instr::Load(1),         // 2 line 2 (MSP), loop here
                Instr::IfZ(Cmp::Ge, 2), // 3  (5 >= 0 always)
                Instr::Load(0),         // 4 line 3
                Instr::RetV,            // 5
            ],
            vec![1, 1, 2, 2, 3, 3],
        ));
        let mut vm = Vm::new();
        vm.load_class(&c).unwrap();
        let tid = vm.spawn("Main", "main", &[]).unwrap();
        // Run until inside f's loop.
        vm.run(tid, 400, RunMode::Normal).unwrap();
        assert_eq!(vm.thread(tid).unwrap().frames.len(), 2);
        (vm, tid)
    }

    fn stop_at_msp(vm: &mut Vm, tid: usize) {
        let (out, _) = vm.run(tid, u64::MAX, RunMode::StopAtMsp).unwrap();
        assert!(matches!(out, StepOutcome::AtMsp { .. }), "got {out:?}");
    }

    #[test]
    fn capture_top_frame_shape() {
        let (mut vm, tid) = looping_vm();
        stop_at_msp(&mut vm, tid);
        let (state, cost) = capture_segment(&mut vm, tid, 1, ToolingPath::Jvmti).unwrap();
        assert_eq!(state.frames.len(), 1);
        let f = &state.frames[0];
        assert_eq!(f.method, "f");
        assert_eq!(f.locals.len(), 2);
        assert_eq!(f.locals[0], CapturedValue::Int(10)); // arg n
                                                         // Statics captured.
        assert_eq!(state.statics.len(), 1);
        assert_eq!(state.statics[0].values, vec![CapturedValue::Int(77)]);
        // JVMTI costs: suspend + per-frame + 2 locals ≥ 60us.
        assert!(cost > 60_000, "cost {cost}");
        assert!(state.wire_bytes() > 0);
    }

    #[test]
    fn capture_two_frames_bottom_up() {
        let (mut vm, tid) = looping_vm();
        stop_at_msp(&mut vm, tid);
        let (state, _) = capture_segment(&mut vm, tid, 2, ToolingPath::Jvmti).unwrap();
        assert_eq!(state.frames.len(), 2);
        assert_eq!(state.frames[0].method, "main"); // bottom first
        assert_eq!(state.frames[1].method, "f");
        assert_eq!(state.frames[0].pc, 5); // parked at the invoke
    }

    #[test]
    fn internal_path_is_cheaper() {
        let (mut vm, tid) = looping_vm();
        stop_at_msp(&mut vm, tid);
        let (_, jvmti_cost) = capture_segment(&mut vm, tid, 2, ToolingPath::Jvmti).unwrap();
        let (_, internal_cost) = capture_segment(&mut vm, tid, 2, ToolingPath::Internal).unwrap();
        assert!(jvmti_cost > 5 * internal_cost);
    }

    #[test]
    fn capture_requires_msp() {
        let (mut vm, tid) = looping_vm();
        // Step to a non-MSP point: pc 3 of f (mid line 2).
        loop {
            let f = vm.thread(tid).unwrap().top().unwrap();
            if f.pc == 3 && vm.classes[f.class_idx].def.methods[f.method_idx].name == "f" {
                break;
            }
            vm.step(tid).unwrap();
        }
        let err = capture_segment(&mut vm, tid, 1, ToolingPath::Jvmti).unwrap_err();
        assert!(matches!(err, VmError::NotAtMigrationSafePoint { .. }));
    }

    #[test]
    fn pinned_frames_refuse_capture() {
        let (mut vm, tid) = looping_vm();
        stop_at_msp(&mut vm, tid);
        vm.thread_mut(tid).unwrap().frames[0].pinned = true;
        // Top frame alone is fine...
        assert!(capture_segment(&mut vm, tid, 1, ToolingPath::Jvmti).is_ok());
        // ...but a segment including the pinned frame is not.
        assert!(capture_segment(&mut vm, tid, 2, ToolingPath::Jvmti).is_err());
    }

    #[test]
    fn direct_restore_resumes_identically() {
        let (mut vm, tid) = looping_vm();
        stop_at_msp(&mut vm, tid);
        let (state, _) = capture_segment(&mut vm, tid, 2, ToolingPath::Internal).unwrap();

        // Fresh "worker" VM with the same class.
        let mut worker = Vm::new();
        let def = vm.classes[0].def.clone();
        worker.load_class(&def).unwrap();
        let wtid = restore_segment_direct(&mut worker, &state).unwrap();
        assert_eq!(worker.thread(wtid).unwrap().frames.len(), 2);
        assert_eq!(worker.thread(wtid).unwrap().seg_frames, 2);
        // Statics came across.
        assert_eq!(worker.classes[0].statics, vec![Value::Int(77)]);
        // The restored thread continues: f loops forever, so force the loop
        // exit by zeroing its loop counter, then run to completion.
        worker.thread_mut(wtid).unwrap().frames[1].locals[1] = Value::Int(-1);
        let (out, _) = worker.run(wtid, u64::MAX, RunMode::Normal).unwrap();
        // f returns n (=10), main returns 11.
        assert_eq!(out, StepOutcome::Returned(Some(Value::Int(11))));
    }

    #[test]
    fn captured_state_sizes() {
        let (mut vm, tid) = looping_vm();
        stop_at_msp(&mut vm, tid);
        let (s1, _) = capture_segment(&mut vm, tid, 1, ToolingPath::Internal).unwrap();
        let (s2, _) = capture_segment(&mut vm, tid, 2, ToolingPath::Internal).unwrap();
        assert!(s2.wire_bytes() > s1.wire_bytes());
        assert!(s1.field_bytes() >= 2 * 8);
    }

    #[test]
    fn captured_value_roundtrips() {
        assert_eq!(
            CapturedValue::from_value(Value::Int(3)).to_nulled_value(),
            Value::Int(3)
        );
        assert_eq!(
            CapturedValue::from_value(Value::Ref(9)).to_nulled_value(),
            Value::NulledRef(9)
        );
        // A transfer-nulled ref is NOT guest-null (it denotes a live home
        // object); only dereferencing it faults.
        assert!(!Value::NulledRef(9).is_null());
        assert!(Value::NulledRef(9).as_ref_id().is_err());
        assert_eq!(Value::NulledRef(9).nulled_home(), Some(9));
        let mapped = CapturedValue::HomeRef(9)
            .to_mapped_value(|h| (h == 9).then_some(4))
            .unwrap();
        assert_eq!(mapped, Value::Ref(4));
        assert!(CapturedValue::HomeRef(9).to_mapped_value(|_| None).is_err());
    }
}
