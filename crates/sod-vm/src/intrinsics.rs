//! Intrinsic ("native") methods.
//!
//! Intrinsics come in two flavours:
//!
//! * **Pure intrinsics** run inline in the VM: math helpers, string
//!   operations, and `print` (which appends to the VM's captured stdout).
//!   They have no host-visible side effects, so a frame suspended right
//!   before one is still migration-safe.
//! * **Host intrinsics** (anything not in the pure registry — file system,
//!   sockets, clocks) park the thread and surface as
//!   [`StepOutcome::HostCall`](crate::interp::StepOutcome::HostCall). The
//!   distributed runtime answers them, charging virtual time as appropriate.
//!   This mirrors the paper's treatment of native methods: execution state
//!   inside a native method is machine-dependent and non-migratable, so
//!   migration-safe points are "right outside a native method".

use crate::error::{VmError, VmResult};
use crate::heap::Heap;
use crate::value::Value;

/// Result of attempting to evaluate an intrinsic inline.
pub enum IntrinsicEval {
    /// Pure intrinsic evaluated; push this value.
    Done(Value),
    /// Not a pure intrinsic; the caller must surface a host call.
    Host,
}

/// Whether `name` names a pure intrinsic (evaluable inline, migration-safe).
pub fn is_pure(name: &str) -> bool {
    matches!(
        name,
        "sqrt"
            | "sin"
            | "cos"
            | "pow"
            | "abs"
            | "fabs"
            | "floor"
            | "min"
            | "max"
            | "fmin"
            | "fmax"
            | "print"
            | "str_len"
            | "str_eq"
            | "str_concat"
            | "str_char_at"
            | "str_find"
            | "str_sub"
            | "int_to_str"
            | "num_to_str"
            | "str_to_int"
    )
}

/// Evaluate a pure intrinsic, or report that it must go to the host.
///
/// `stdout` collects `print` output so tests can assert on program output
/// without real I/O.
pub fn eval(
    name: &str,
    args: &[Value],
    heap: &mut Heap,
    stdout: &mut Vec<String>,
) -> VmResult<IntrinsicEval> {
    let need = |n: usize| -> VmResult<()> {
        if args.len() != n {
            Err(VmError::UnknownIntrinsic(format!(
                "{name}: expected {n} args, got {}",
                args.len()
            )))
        } else {
            Ok(())
        }
    };

    let v = match name {
        "sqrt" => {
            need(1)?;
            Value::Num(args[0].as_num()?.sqrt())
        }
        "sin" => {
            need(1)?;
            Value::Num(args[0].as_num()?.sin())
        }
        "cos" => {
            need(1)?;
            Value::Num(args[0].as_num()?.cos())
        }
        "pow" => {
            need(2)?;
            Value::Num(args[0].as_num()?.powf(args[1].as_num()?))
        }
        "abs" => {
            need(1)?;
            Value::Int(args[0].as_int()?.wrapping_abs())
        }
        "fabs" => {
            need(1)?;
            Value::Num(args[0].as_num()?.abs())
        }
        "floor" => {
            need(1)?;
            Value::Num(args[0].as_num()?.floor())
        }
        "min" => {
            need(2)?;
            Value::Int(args[0].as_int()?.min(args[1].as_int()?))
        }
        "max" => {
            need(2)?;
            Value::Int(args[0].as_int()?.max(args[1].as_int()?))
        }
        "fmin" => {
            need(2)?;
            Value::Num(args[0].as_num()?.min(args[1].as_num()?))
        }
        "fmax" => {
            need(2)?;
            Value::Num(args[0].as_num()?.max(args[1].as_num()?))
        }
        "print" => {
            need(1)?;
            let text = match args[0] {
                Value::Ref(id) => heap
                    .get_str(id)
                    .map(str::to_owned)
                    .unwrap_or_else(|_| format!("@{id}")),
                other => other.to_string(),
            };
            stdout.push(text);
            Value::Int(0)
        }
        "str_len" => {
            need(1)?;
            Value::Int(heap.get_str(args[0].as_ref_id()?)?.len() as i64)
        }
        "str_eq" => {
            need(2)?;
            let a = heap.get_str(args[0].as_ref_id()?)?;
            let b = heap.get_str(args[1].as_ref_id()?)?;
            Value::from(a == b)
        }
        "str_concat" => {
            need(2)?;
            let a = heap.get_str(args[0].as_ref_id()?)?.to_owned();
            let b = heap.get_str(args[1].as_ref_id()?)?;
            let joined = a + b;
            Value::Ref(heap.alloc_str(joined))
        }
        "str_char_at" => {
            need(2)?;
            let s = heap.get_str(args[0].as_ref_id()?)?;
            let i = args[1].as_int()?;
            let b = s.as_bytes().get(i as usize).copied().unwrap_or(0);
            Value::Int(b as i64)
        }
        "str_find" => {
            need(2)?;
            let hay = heap.get_str(args[0].as_ref_id()?)?;
            let needle = heap.get_str(args[1].as_ref_id()?)?;
            Value::Int(hay.find(needle).map(|i| i as i64).unwrap_or(-1))
        }
        "str_sub" => {
            need(3)?;
            let s = heap.get_str(args[0].as_ref_id()?)?;
            let from = (args[1].as_int()?.max(0) as usize).min(s.len());
            let to = (args[2].as_int()?.max(0) as usize).clamp(from, s.len());
            let sub = s[from..to].to_owned();
            Value::Ref(heap.alloc_str(sub))
        }
        "int_to_str" => {
            need(1)?;
            let s = args[0].as_int()?.to_string();
            Value::Ref(heap.alloc_str(s))
        }
        "num_to_str" => {
            need(1)?;
            let s = args[0].as_num()?.to_string();
            Value::Ref(heap.alloc_str(s))
        }
        "str_to_int" => {
            need(1)?;
            let s = heap.get_str(args[0].as_ref_id()?)?;
            Value::Int(s.trim().parse::<i64>().unwrap_or(0))
        }
        _ => return Ok(IntrinsicEval::Host),
    };
    Ok(IntrinsicEval::Done(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Heap {
        Heap::new()
    }

    #[test]
    fn math_intrinsics() {
        let mut h = heap();
        let mut out = Vec::new();
        match eval("sqrt", &[Value::Num(9.0)], &mut h, &mut out).unwrap() {
            IntrinsicEval::Done(Value::Num(n)) => assert_eq!(n, 3.0),
            _ => panic!(),
        }
        match eval("max", &[Value::Int(3), Value::Int(8)], &mut h, &mut out).unwrap() {
            IntrinsicEval::Done(v) => assert_eq!(v, Value::Int(8)),
            _ => panic!(),
        }
    }

    #[test]
    fn string_intrinsics() {
        let mut h = heap();
        let mut out = Vec::new();
        let a = Value::Ref(h.alloc_str("hello "));
        let b = Value::Ref(h.alloc_str("world"));
        let joined = match eval("str_concat", &[a, b], &mut h, &mut out).unwrap() {
            IntrinsicEval::Done(Value::Ref(id)) => id,
            _ => panic!(),
        };
        assert_eq!(h.get_str(joined).unwrap(), "hello world");
        match eval("str_find", &[Value::Ref(joined), b], &mut h, &mut out).unwrap() {
            IntrinsicEval::Done(v) => assert_eq!(v, Value::Int(6)),
            _ => panic!(),
        }
        match eval("str_len", &[Value::Ref(joined)], &mut h, &mut out).unwrap() {
            IntrinsicEval::Done(v) => assert_eq!(v, Value::Int(11)),
            _ => panic!(),
        }
    }

    #[test]
    fn print_captures_output() {
        let mut h = heap();
        let mut out = Vec::new();
        let s = Value::Ref(h.alloc_str("line"));
        eval("print", &[s], &mut h, &mut out).unwrap();
        eval("print", &[Value::Int(42)], &mut h, &mut out).unwrap();
        assert_eq!(out, vec!["line".to_string(), "42".to_string()]);
    }

    #[test]
    fn unknown_goes_to_host() {
        let mut h = heap();
        let mut out = Vec::new();
        assert!(matches!(
            eval("fs_search", &[], &mut h, &mut out).unwrap(),
            IntrinsicEval::Host
        ));
        assert!(!is_pure("fs_search"));
        assert!(is_pure("sqrt"));
    }

    #[test]
    fn arity_errors() {
        let mut h = heap();
        let mut out = Vec::new();
        assert!(eval("sqrt", &[], &mut h, &mut out).is_err());
        assert!(eval("max", &[Value::Int(1)], &mut h, &mut out).is_err());
    }

    #[test]
    fn str_sub_clamps() {
        let mut h = heap();
        let mut out = Vec::new();
        let s = Value::Ref(h.alloc_str("abcdef"));
        let sub = match eval(
            "str_sub",
            &[s, Value::Int(2), Value::Int(100)],
            &mut h,
            &mut out,
        )
        .unwrap()
        {
            IntrinsicEval::Done(Value::Ref(id)) => id,
            _ => panic!(),
        };
        assert_eq!(h.get_str(sub).unwrap(), "cdef");
    }
}
