//! Class, method, and field definitions — the unit of code shipping.
//!
//! A [`ClassDef`] is pure data: it can be serialized with the [wire
//! codec](crate::wire) and shipped between nodes, which is how SOD's
//! on-demand code migration works (the paper's
//! `JVMTI_EVENT_CLASS_FILE_LOAD_HOOK` path). All intra-class references are
//! by name through a string pool, so a class loaded on a worker node links
//! against the worker's own loaded classes.

use crate::error::{VmError, VmResult};
use crate::instr::{Instr, SwitchTable};
use crate::value::{TypeOf, Value};

/// Storage class of a field. Re-exported alias of [`TypeOf`].
pub type TypeTag = TypeOf;

/// Guest exception kinds. A small closed set mirrors the exceptions the SOD
/// paper manipulates, plus `User` codes for application-defined ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExKind {
    /// `java.lang.NullPointerException` — the carrier of SOD object faults.
    NullPointer,
    /// The paper's `InvalidStateException` — drives restoration handlers.
    InvalidState,
    /// `OutOfMemoryError` — drives exception-triggered offload to the cloud.
    OutOfMemory,
    /// `ClassNotFoundException` — also a trigger for speculative offload.
    ClassNotFound,
    /// Array index out of bounds.
    ArrayBounds,
    /// Integer division by zero.
    DivByZero,
    /// Application-defined exception code.
    User(u16),
}

impl ExKind {
    /// Whether a catch clause for `self` catches a thrown `thrown`.
    /// `User(0)` in a catch clause acts as a catch-all for user exceptions.
    pub fn catches(self, thrown: ExKind) -> bool {
        self == thrown
    }

    /// Stable numeric code for the wire format.
    pub fn code(self) -> u16 {
        match self {
            ExKind::NullPointer => 0,
            ExKind::InvalidState => 1,
            ExKind::OutOfMemory => 2,
            ExKind::ClassNotFound => 3,
            ExKind::ArrayBounds => 4,
            ExKind::DivByZero => 5,
            ExKind::User(c) => 16 + c,
        }
    }

    /// Inverse of [`ExKind::code`].
    pub fn from_code(code: u16) -> ExKind {
        match code {
            0 => ExKind::NullPointer,
            1 => ExKind::InvalidState,
            2 => ExKind::OutOfMemory,
            3 => ExKind::ClassNotFound,
            4 => ExKind::ArrayBounds,
            5 => ExKind::DivByZero,
            c => ExKind::User(c.saturating_sub(16)),
        }
    }
}

/// One exception-table entry: pcs in `[from, to)` route a matching thrown
/// exception to `target`. Entries are matched in order, first match wins —
/// the preprocessor relies on this to put object-fault handlers ahead of
/// user handlers.
#[derive(Clone, Debug, PartialEq)]
pub struct ExEntry {
    pub from: u32,
    pub to: u32,
    pub target: u32,
    pub kind: ExKind,
    /// Fault-handler entries are skipped when dispatching application-level
    /// NPEs (the paper's "another null pointer exception ... from the
    /// application level"). Set by the preprocessor on injected handlers.
    pub fault_handler: bool,
}

impl ExEntry {
    pub fn new(from: u32, to: u32, target: u32, kind: ExKind) -> Self {
        ExEntry {
            from,
            to,
            target,
            kind,
            fault_handler: false,
        }
    }

    /// Mark this entry as a preprocessor-injected object-fault handler.
    pub fn as_fault_handler(mut self) -> Self {
        self.fault_handler = true;
        self
    }

    pub fn covers(&self, pc: u32) -> bool {
        self.from <= pc && pc < self.to
    }
}

/// A field declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct FieldDef {
    pub name: String,
    pub ty: TypeTag,
    pub is_static: bool,
}

impl FieldDef {
    pub fn instance(name: impl Into<String>, ty: TypeTag) -> Self {
        FieldDef {
            name: name.into(),
            ty,
            is_static: false,
        }
    }

    pub fn stat(name: impl Into<String>, ty: TypeTag) -> Self {
        FieldDef {
            name: name.into(),
            ty,
            is_static: true,
        }
    }
}

/// A method body plus metadata.
///
/// `lines` runs parallel to `code`: `lines[pc]` is the source line of the
/// instruction at `pc`. Line boundaries with empty operand stacks define
/// migration-safe points, exactly as in the paper ("the first bytecode
/// instruction of a source code line where the operand stack is always
/// empty").
#[derive(Clone, Debug, PartialEq)]
pub struct MethodDef {
    pub name: String,
    /// Number of declared parameters (for virtual methods this includes the
    /// receiver in slot 0).
    pub nargs: u16,
    /// Total local slots (≥ `nargs`).
    pub nlocals: u16,
    pub code: Vec<Instr>,
    pub lines: Vec<u32>,
    pub ex_table: Vec<ExEntry>,
    pub switches: Vec<SwitchTable>,
}

impl MethodDef {
    pub fn new(name: impl Into<String>, nargs: u16, extra_locals: u16) -> Self {
        MethodDef {
            name: name.into(),
            nargs,
            nlocals: nargs + extra_locals,
            code: Vec::new(),
            lines: Vec::new(),
            ex_table: Vec::new(),
            switches: Vec::new(),
        }
    }

    /// Attach a body. `lines` must be the same length as `code`.
    pub fn with_code(mut self, code: Vec<Instr>, lines: Vec<u32>) -> Self {
        assert_eq!(code.len(), lines.len(), "lines must parallel code");
        self.code = code;
        self.lines = lines;
        self
    }

    pub fn with_ex_table(mut self, ex: Vec<ExEntry>) -> Self {
        self.ex_table = ex;
        self
    }

    pub fn with_switches(mut self, switches: Vec<SwitchTable>) -> Self {
        self.switches = switches;
        self
    }

    /// Line number of the instruction at `pc` (0 if out of range).
    pub fn line_of(&self, pc: u32) -> u32 {
        self.lines.get(pc as usize).copied().unwrap_or(0)
    }

    /// Whether `pc` is the first instruction of its source line.
    pub fn is_line_start(&self, pc: u32) -> bool {
        let pc = pc as usize;
        if pc >= self.code.len() {
            return false;
        }
        pc == 0 || self.lines[pc] != self.lines[pc - 1]
    }

    /// Approximate serialized size of this method in bytes; feeds the class
    /// file size accounting of the paper's Fig. 5 and code-shipping costs.
    pub fn code_size_bytes(&self) -> u64 {
        // Model: 4 bytes per instruction word + operands (flat 8), plus
        // exception table entries at 8 bytes, plus the line table at 2.
        let instrs = self.code.len() as u64 * 8;
        let extab = self.ex_table.len() as u64 * 8;
        let lines = self.lines.len() as u64 * 2;
        let switches: u64 = self
            .switches
            .iter()
            .map(|s| 8 + s.pairs.len() as u64 * 12)
            .sum();
        instrs + extab + lines + switches + self.name.len() as u64 + 8
    }
}

/// A class definition: the unit of loading, preprocessing, and code shipping.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ClassDef {
    pub name: String,
    pub fields: Vec<FieldDef>,
    pub methods: Vec<MethodDef>,
    /// String pool: class/method/field/intrinsic names and string literals
    /// referenced by `u16` operands in instructions.
    pub pool: Vec<String>,
}

impl ClassDef {
    pub fn new(name: impl Into<String>) -> Self {
        ClassDef {
            name: name.into(),
            ..Default::default()
        }
    }

    pub fn with_field(mut self, f: FieldDef) -> Self {
        self.fields.push(f);
        self
    }

    pub fn with_method(mut self, m: MethodDef) -> Self {
        self.methods.push(m);
        self
    }

    /// Intern `s` in the pool, returning its index.
    pub fn intern(&mut self, s: &str) -> u16 {
        if let Some(i) = self.pool.iter().position(|p| p == s) {
            return i as u16;
        }
        assert!(self.pool.len() < u16::MAX as usize, "string pool overflow");
        self.pool.push(s.to_owned());
        (self.pool.len() - 1) as u16
    }

    /// Pool lookup.
    pub fn pool_str(&self, idx: u16) -> VmResult<&str> {
        self.pool
            .get(idx as usize)
            .map(String::as_str)
            .ok_or(VmError::BadPoolIndex(idx))
    }

    pub fn method(&self, name: &str) -> Option<&MethodDef> {
        self.methods.iter().find(|m| m.name == name)
    }

    pub fn method_mut(&mut self, name: &str) -> Option<&mut MethodDef> {
        self.methods.iter_mut().find(|m| m.name == name)
    }

    /// Index of a method by name.
    pub fn method_index(&self, name: &str) -> Option<usize> {
        self.methods.iter().position(|m| m.name == name)
    }

    /// Instance fields in declaration order (their indices define the object
    /// layout).
    pub fn instance_fields(&self) -> impl Iterator<Item = (usize, &FieldDef)> {
        self.fields.iter().filter(|f| !f.is_static).enumerate()
    }

    /// Static fields in declaration order (their indices define the statics
    /// layout).
    pub fn static_fields(&self) -> impl Iterator<Item = (usize, &FieldDef)> {
        self.fields.iter().filter(|f| f.is_static).enumerate()
    }

    /// Default values for an instance of this class.
    pub fn default_instance_values(&self) -> Vec<Value> {
        self.fields
            .iter()
            .filter(|f| !f.is_static)
            .map(|f| Value::default_for(f.ty))
            .collect()
    }

    /// Default values for this class's statics.
    pub fn default_static_values(&self) -> Vec<Value> {
        self.fields
            .iter()
            .filter(|f| f.is_static)
            .map(|f| Value::default_for(f.ty))
            .collect()
    }

    /// Names of the classes this class's code statically references —
    /// `InvokeStatic` targets, `New` allocations, and static-field owners
    /// — excluding itself. Sorted and deduplicated, so callers walking
    /// the reference graph (the code-shipping closure) are deterministic.
    ///
    /// Virtual-call targets dispatch on the receiver's runtime class and
    /// are *not* included; anything missed here still ships through the
    /// on-demand class-request path.
    pub fn referenced_classes(&self) -> Vec<String> {
        let mut out = std::collections::BTreeSet::new();
        for m in &self.methods {
            for i in &m.code {
                let idx = match i {
                    Instr::New(c)
                    | Instr::GetStatic(c, _)
                    | Instr::PutStatic(c, _)
                    | Instr::InvokeStatic(c, _, _)
                    | Instr::BringObjStaticTo(c, _, _) => *c,
                    _ => continue,
                };
                if let Ok(name) = self.pool_str(idx) {
                    if name != self.name {
                        out.insert(name.to_owned());
                    }
                }
            }
        }
        out.into_iter().collect()
    }

    /// Approximate serialized "class file" size in bytes (paper Fig. 5
    /// compares 501 / 667 / 902 bytes for original / status-check /
    /// fault-handler variants of the same class).
    pub fn class_file_size_bytes(&self) -> u64 {
        let header = 32 + self.name.len() as u64;
        let pool: u64 = self.pool.iter().map(|s| 4 + s.len() as u64).sum();
        let fields: u64 = self.fields.iter().map(|f| 8 + f.name.len() as u64).sum();
        let methods: u64 = self.methods.iter().map(|m| m.code_size_bytes()).sum();
        header + pool + fields + methods
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    fn sample_class() -> ClassDef {
        let mut c = ClassDef::new("Geometry")
            .with_field(FieldDef::instance("r", TypeOf::Ref))
            .with_field(FieldDef::instance("p", TypeOf::Ref))
            .with_field(FieldDef::stat("count", TypeOf::Int));
        let i = c.intern("displaceX");
        assert_eq!(c.pool_str(i).unwrap(), "displaceX");
        c.methods.push(MethodDef::new("displaceX", 1, 2).with_code(
            vec![Instr::PushI(0), Instr::Store(1), Instr::Ret],
            vec![1, 1, 2],
        ));
        c
    }

    #[test]
    fn pool_interning_dedups() {
        let mut c = ClassDef::new("C");
        let a = c.intern("foo");
        let b = c.intern("foo");
        let d = c.intern("bar");
        assert_eq!(a, b);
        assert_ne!(a, d);
        assert_eq!(c.pool.len(), 2);
    }

    #[test]
    fn field_partitioning() {
        let c = sample_class();
        assert_eq!(c.instance_fields().count(), 2);
        assert_eq!(c.static_fields().count(), 1);
        assert_eq!(c.default_instance_values(), vec![Value::Null, Value::Null]);
        assert_eq!(c.default_static_values(), vec![Value::Int(0)]);
    }

    #[test]
    fn line_starts() {
        let c = sample_class();
        let m = c.method("displaceX").unwrap();
        assert!(m.is_line_start(0));
        assert!(!m.is_line_start(1));
        assert!(m.is_line_start(2));
        assert!(!m.is_line_start(99));
    }

    #[test]
    fn exkind_code_roundtrip() {
        for k in [
            ExKind::NullPointer,
            ExKind::InvalidState,
            ExKind::OutOfMemory,
            ExKind::ClassNotFound,
            ExKind::ArrayBounds,
            ExKind::DivByZero,
            ExKind::User(0),
            ExKind::User(42),
        ] {
            assert_eq!(ExKind::from_code(k.code()), k);
        }
    }

    #[test]
    fn ex_entry_coverage() {
        let e = ExEntry::new(2, 5, 10, ExKind::NullPointer);
        assert!(!e.covers(1));
        assert!(e.covers(2));
        assert!(e.covers(4));
        assert!(!e.covers(5));
    }

    #[test]
    fn referenced_classes_are_static_refs_minus_self() {
        let mut c = ClassDef::new("Main");
        let helper = c.intern("Helper");
        let util = c.intern("Util");
        let this = c.intern("Main");
        let f = c.intern("f");
        c.methods.push(MethodDef::new("m", 0, 0).with_code(
            vec![
                Instr::New(helper),
                Instr::InvokeStatic(util, f, 0),
                Instr::GetStatic(util, f),
                // Self-references are excluded.
                Instr::InvokeStatic(this, f, 0),
                Instr::Ret,
            ],
            vec![1, 1, 1, 1, 1],
        ));
        assert_eq!(c.referenced_classes(), vec!["Helper", "Util"]);
        // A class with no code references nothing.
        assert!(ClassDef::new("Leaf").referenced_classes().is_empty());
    }

    #[test]
    fn class_file_size_grows_with_instrumentation() {
        let plain = sample_class();
        let mut instrumented = plain.clone();
        let m = instrumented.method_mut("displaceX").unwrap();
        // Simulate added handler code.
        m.code
            .extend([Instr::Nop, Instr::Nop, Instr::Nop, Instr::Nop]);
        m.lines.extend([2, 2, 2, 2]);
        m.ex_table
            .push(ExEntry::new(0, 3, 3, ExKind::NullPointer).as_fault_handler());
        assert!(instrumented.class_file_size_bytes() > plain.class_file_size_bytes());
    }

    #[test]
    #[should_panic(expected = "lines must parallel code")]
    fn with_code_length_mismatch_panics() {
        let _ = MethodDef::new("m", 0, 0).with_code(vec![Instr::Ret], vec![]);
    }
}
