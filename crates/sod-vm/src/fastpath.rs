//! Interpreter fast path: inline-cache slots and link-time
//! superinstruction fusion.
//!
//! Three rules keep the fast path *observably identical* to name-by-name
//! resolution (the reference semantics, still reachable via
//! [`crate::interp::Vm::slow_resolve`] / the `slow-resolve` cargo feature):
//!
//! * **Caches are positive-only and node-local.** A VM's class table is
//!   append-only — a resolved `(class, member)` pair never changes for the
//!   life of the VM — so a filled cache never needs invalidation; class
//!   *load* (local deploy or code shipping) only makes previously-missing
//!   names resolvable, and misses are never cached (the thread parks on
//!   `ClassMiss` exactly as before). Caches live in [`crate::interp::LoadedClass`],
//!   which `capture`/`wire` never serialize: a migrated stack arrives cold
//!   and rewarms at the destination, so reports stay bit-identical.
//! * **Receiver-keyed caches validate by pointer.** Field and virtual-call
//!   sites cache `(receiver class, slot index)`; the receiver check is an
//!   `Arc::ptr_eq` against the loaded class's canonical name `Arc`. Objects
//!   that arrive over the wire carry a fresh `Arc` and simply take the slow
//!   resolve once, after which their class pointer is canonicalized.
//! * **Fused pairs charge and retire as two instructions.** A fused cell
//!   charges `c1` and `c2` through two separate [`crate::interp::Vm`] meter
//!   charges (per-charge scaling does not distribute over sums), bumps
//!   `instr_count` twice, and honours the slice budget *between* the halves
//!   — exactly where the unfused loop would have stopped.
//!
//! Fusion is restricted to pairs whose first half is a pure single-value
//! push ([`Instr::Load`] / [`Instr::PushI`] — together roughly 40 % of
//! retired instructions on the fib/nqueens/fft workloads). A pure push
//! cannot park, throw a guest exception, or leave the operand stack empty,
//! so the mid-pair pc is never a migration-safe point (statically *and*
//! dynamically: the stack is non-empty) and a `StopAtMsp` run loop cannot
//! miss a stop by skipping the mid-pair check. The second half is executed
//! through the ordinary single-instruction path with the frame pc already
//! advanced, so every throw/park records the same pc as unfused execution.
//! Fused dispatch is bypassed entirely while any breakpoint is armed.

use crate::class::MethodDef;
use crate::costs::instr_cost;
use crate::instr::Instr;

/// Empty-slot sentinel for [`IcCell`] (`ObjId` and class indices never
/// reach `u32::MAX`).
pub const IC_EMPTY: u32 = u32::MAX;

/// One inline-cache slot, addressed by `(method, pc)` inside a loaded
/// class. Interpretation depends on the opcode at that pc:
///
/// * `New`: `a` = resolved class index.
/// * `GetStatic`/`PutStatic`: `a` = class index, `b` = static slot.
/// * `InvokeStatic`: `a` = class index, `b` = method index.
/// * `GetField`/`PutField`: `a` = *receiver* class index, `b` = field slot
///   (monomorphic; validated by `Arc::ptr_eq` on the receiver's class).
/// * `InvokeVirtual`: `a` = receiver class index, `b` = method index.
/// * `PushStr`: `a` = interned string `ObjId`.
///
/// `a == IC_EMPTY` means the slot has never been filled.
#[derive(Clone, Copy, Debug)]
pub struct IcCell {
    pub a: u32,
    pub b: u32,
}

impl IcCell {
    pub const EMPTY: IcCell = IcCell { a: IC_EMPTY, b: 0 };

    #[inline]
    pub fn is_filled(self) -> bool {
        self.a != IC_EMPTY
    }
}

/// The first half of a fused pair: a pure single-value push. `Load` can
/// fail only with the hard `BadLocalSlot` verification error (charged and
/// counted first, exactly as the unfused path would).
#[derive(Clone, Copy, Debug)]
pub enum FusedFirst {
    Load(u16),
    PushI(i64),
}

/// A superinstruction cell at pc `i`: execute the pure push, advance to
/// `i + 1`, then (budget permitting) execute `second` in place. `c1`/`c2`
/// are the unscaled [`instr_cost`]s of the two halves, precomputed at link
/// time so the hot loop never re-derives them.
#[derive(Clone, Copy, Debug)]
pub struct FusedPair {
    pub first: FusedFirst,
    pub second: Instr,
    pub c1: u32,
    pub c2: u32,
}

/// Build the per-pc fusion table for one method: `table[i]` is `Some` when
/// the pair `(code[i], code[i + 1])` is fusable. Entering at `i + 1` (e.g.
/// as a branch target) simply executes unfused — fused cells are an
/// *alternative* dispatch for pc `i`, not a rewrite of the stream, so pcs,
/// branch targets, exception ranges and capture offsets are untouched.
pub fn build_fusion_table(method: &MethodDef) -> Vec<Option<FusedPair>> {
    let code = &method.code;
    let mut table: Vec<Option<FusedPair>> = vec![None; code.len()];
    for i in 0..code.len().saturating_sub(1) {
        let first = match code[i] {
            Instr::Load(slot) => FusedFirst::Load(slot),
            Instr::PushI(v) => FusedFirst::PushI(v),
            _ => continue,
        };
        let second = code[i + 1];
        table[i] = Some(FusedPair {
            first,
            second,
            c1: instr_cost(&code[i]) as u32,
            c2: instr_cost(&second) as u32,
        });
    }
    table
}

/// Build one empty inline-cache row per pc of `method`.
pub fn build_ic_row(method: &MethodDef) -> Vec<IcCell> {
    vec![IcCell::EMPTY; method.code.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::MethodDef;
    use crate::instr::Cmp;

    #[test]
    fn fuses_only_pure_push_prefixes() {
        let m = MethodDef::new("m", 0, 2).with_code(
            vec![
                Instr::Load(0),  // 0: fusable (Load, PushI)
                Instr::PushI(5), // 1: fusable (PushI, Add)
                Instr::Add,      // 2: not a pure push
                Instr::Store(1), // 3: not a pure push
                Instr::Load(1),  // 4: fusable (Load, RetV)
                Instr::RetV,     // 5: last instruction, no successor
            ],
            vec![1; 6],
        );
        let t = build_fusion_table(&m);
        assert!(t[0].is_some() && t[1].is_some() && t[4].is_some());
        assert!(t[2].is_none() && t[3].is_none() && t[5].is_none());
        // Costs are the two halves' unfused costs, not a combined figure.
        let p = t[1].unwrap();
        assert_eq!(p.c1 as u64, instr_cost(&Instr::PushI(5)));
        assert_eq!(p.c2 as u64, instr_cost(&Instr::Add));
    }

    #[test]
    fn fused_second_half_may_branch_or_return() {
        // Branches and returns are fine as second halves: the pc is set
        // before they execute, so their control transfer is unchanged.
        let m = MethodDef::new("m", 0, 1).with_code(
            vec![
                Instr::Load(0),
                Instr::IfZ(Cmp::Eq, 3),
                Instr::PushI(1),
                Instr::RetV,
            ],
            vec![1; 4],
        );
        let t = build_fusion_table(&m);
        assert!(matches!(
            t[0],
            Some(FusedPair {
                second: Instr::IfZ(Cmp::Eq, 3),
                ..
            })
        ));
        assert!(matches!(
            t[2],
            Some(FusedPair {
                second: Instr::RetV,
                ..
            })
        ));
    }

    #[test]
    fn ic_rows_start_empty() {
        let m = MethodDef::new("m", 0, 0).with_code(vec![Instr::PushI(1), Instr::RetV], vec![1; 2]);
        let row = build_ic_row(&m);
        assert_eq!(row.len(), 2);
        assert!(row.iter().all(|c| !c.is_filled()));
    }
}
