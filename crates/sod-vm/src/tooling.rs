//! The tooling interface: a JVMTI work-alike with explicit virtual costs.
//!
//! The SOD paper's middleware deliberately stays *outside* the JVM, using
//! JVMTI to read frames and locals. That choice is portable but not free:
//! the paper measures `GetLocal<Type>` at ≈30 µs against ≈1 µs for
//! `GetFrameLocation`, and it is exactly this asymmetry that makes SODEE's
//! capture slower than JESSICA2's in-kernel capture (Table IV). We reproduce
//! the asymmetry with two cost tables: [`jvmti`] for the debugger-interface
//! path and [`internal`] for the in-VM path.
//!
//! All tooling operations charge a [`CostMeter`] owned by the caller; the
//! meter's total becomes capture/restore time in the migration latency
//! breakdowns.

use crate::capture::CapturedValue;
use crate::error::{VmError, VmResult};
use crate::interp::Vm;
use crate::value::Value;

/// Accumulates virtual nanoseconds charged by tooling operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostMeter {
    pub ns: u64,
}

impl CostMeter {
    pub fn new() -> Self {
        CostMeter::default()
    }

    pub fn charge(&mut self, ns: u64) {
        self.ns += ns;
    }

    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.ns)
    }
}

/// Virtual costs of the JVMTI (debugger interface) path, from the paper:
/// "Most of the JVMTI functions ... finish within 1 us. However, some
/// functions take much longer time (e.g. GetLocalInt take about 30 us)."
pub mod jvmti {
    /// Suspending the thread and preparing the agent for a migration event.
    pub const SUSPEND_NS: u64 = 250_000;
    /// `GetFrameLocation` / `GetMethodDeclaringClass` / `GetMethodName`.
    pub const GET_FRAME_LOCATION_NS: u64 = 1_000;
    /// `GetLocal<Type>` per local-variable slot.
    pub const GET_LOCAL_NS: u64 = 30_000;
    /// Reading one static field through JVMTI/JNI.
    pub const GET_STATIC_NS: u64 = 2_000;
    /// `SetBreakpoint`.
    pub const SET_BREAKPOINT_NS: u64 = 8_000;
    /// Injecting an exception into the target thread (restoration driver).
    pub const THROW_INTO_NS: u64 = 25_000;
    /// `ForceEarlyReturn<type>` on the home node.
    pub const FORCE_EARLY_RETURN_NS: u64 = 30_000;
    /// `SetStatic<Type>Field` via JNI during restore.
    pub const SET_STATIC_NS: u64 = 3_000;
    /// Invoking a method through JNI (restore entry).
    pub const JNI_INVOKE_NS: u64 = 40_000;
}

/// Virtual costs of the in-VM path (JESSICA2-style thread migration, where
/// "state information can be retrieved directly from the JVM kernel").
pub mod internal {
    pub const SUSPEND_NS: u64 = 30_000;
    pub const GET_FRAME_LOCATION_NS: u64 = 500;
    pub const GET_LOCAL_NS: u64 = 2_000;
    pub const GET_STATIC_NS: u64 = 500;
    pub const SET_STATIC_NS: u64 = 500;
    pub const RESTORE_FRAME_NS: u64 = 4_000;
}

/// Which cost table a tooling session charges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ToolingPath {
    /// Portable debugger-interface access (SODEE, G-JavaMPI).
    Jvmti,
    /// Direct in-kernel access (JESSICA2).
    Internal,
}

/// A tooling session over a VM: JVMTI-flavoured accessors that charge a
/// cost meter.
pub struct Tooling<'a> {
    vm: &'a mut Vm,
    pub meter: CostMeter,
    path: ToolingPath,
}

impl<'a> Tooling<'a> {
    pub fn new(vm: &'a mut Vm, path: ToolingPath) -> Self {
        Tooling {
            vm,
            meter: CostMeter::new(),
            path,
        }
    }

    fn c(&mut self, jvmti_ns: u64, internal_ns: u64) {
        self.meter.charge(match self.path {
            ToolingPath::Jvmti => jvmti_ns,
            ToolingPath::Internal => internal_ns,
        });
    }

    /// Suspend the target thread (charges the per-migration fixed cost).
    /// Our VM threads are always suspendable between instructions, so this
    /// is purely an accounting operation.
    pub fn suspend_thread(&mut self, _tid: usize) {
        self.c(jvmti::SUSPEND_NS, internal::SUSPEND_NS);
    }

    /// `GetFrameCount`.
    pub fn get_frame_count(&mut self, tid: usize) -> VmResult<usize> {
        self.c(
            jvmti::GET_FRAME_LOCATION_NS,
            internal::GET_FRAME_LOCATION_NS,
        );
        Ok(self.vm.thread(tid)?.frames.len())
    }

    /// `GetFrameLocation`: (class name, method name, pc) of frame `depth`,
    /// where depth 0 is the *top* frame (JVMTI convention).
    pub fn get_frame_location(
        &mut self,
        tid: usize,
        depth: usize,
    ) -> VmResult<(String, String, u32)> {
        self.c(
            jvmti::GET_FRAME_LOCATION_NS,
            internal::GET_FRAME_LOCATION_NS,
        );
        let t = self.vm.thread(tid)?;
        let n = t.frames.len();
        let f = t
            .frames
            .get(n.checked_sub(1 + depth).ok_or(VmError::BadThread(tid))?)
            .ok_or(VmError::BadThread(tid))?;
        let c = &self.vm.classes[f.class_idx];
        Ok((
            c.def.name.clone(),
            c.def.methods[f.method_idx].name.clone(),
            f.pc,
        ))
    }

    /// `GetLocal<Type>`: local `slot` of frame `depth` (0 = top), captured
    /// with references mapped to their home object ids.
    pub fn get_local(&mut self, tid: usize, depth: usize, slot: u16) -> VmResult<CapturedValue> {
        self.c(jvmti::GET_LOCAL_NS, internal::GET_LOCAL_NS);
        let t = self.vm.thread(tid)?;
        let n = t.frames.len();
        let f = t
            .frames
            .get(n.checked_sub(1 + depth).ok_or(VmError::BadThread(tid))?)
            .ok_or(VmError::BadThread(tid))?;
        let v = f
            .locals
            .get(slot as usize)
            .copied()
            .ok_or(VmError::BadLocalSlot(slot))?;
        Ok(self.vm.export_value(v))
    }

    /// Number of local slots in frame `depth` (the JVMTI
    /// `GetLocalVariableTable` step).
    pub fn get_local_count(&mut self, tid: usize, depth: usize) -> VmResult<u16> {
        self.c(
            jvmti::GET_FRAME_LOCATION_NS,
            internal::GET_FRAME_LOCATION_NS,
        );
        let t = self.vm.thread(tid)?;
        let n = t.frames.len();
        let f = t
            .frames
            .get(n.checked_sub(1 + depth).ok_or(VmError::BadThread(tid))?)
            .ok_or(VmError::BadThread(tid))?;
        Ok(f.locals.len() as u16)
    }

    /// Read one static field (for capture).
    pub fn get_static(&mut self, class_idx: usize, static_idx: usize) -> VmResult<CapturedValue> {
        self.c(jvmti::GET_STATIC_NS, internal::GET_STATIC_NS);
        let v = *self.vm.classes[class_idx]
            .statics
            .get(static_idx)
            .ok_or(VmError::BadPoolIndex(static_idx as u16))?;
        Ok(self.vm.export_value(v))
    }

    /// `SetStatic<Type>Field` (for restore); refs in captured values restore
    /// as null, per the SOD design.
    pub fn set_static(
        &mut self,
        class_idx: usize,
        static_idx: usize,
        v: &CapturedValue,
    ) -> VmResult<()> {
        self.c(jvmti::SET_STATIC_NS, internal::SET_STATIC_NS);
        let slot = self.vm.classes[class_idx]
            .statics
            .get_mut(static_idx)
            .ok_or(VmError::BadPoolIndex(static_idx as u16))?;
        *slot = v.to_nulled_value();
        Ok(())
    }

    /// `SetBreakpoint` (thread-scoped, like the VM's breakpoint table).
    pub fn set_breakpoint(&mut self, tid: usize, class_idx: usize, method_idx: usize, pc: u32) {
        self.c(jvmti::SET_BREAKPOINT_NS, internal::GET_FRAME_LOCATION_NS);
        self.vm.set_breakpoint(tid, class_idx, method_idx, pc);
    }

    /// Throw `InvalidStateException` into the thread (restoration driver).
    pub fn throw_invalid_state(&mut self, tid: usize) -> VmResult<()> {
        self.c(jvmti::THROW_INTO_NS, internal::RESTORE_FRAME_NS);
        self.vm
            .throw_into(tid, crate::class::ExKind::InvalidState, "restore", false)
    }

    /// `ForceEarlyReturn<type>`: used on the home node to pop the stale
    /// frame(s) once the migrated segment's return value arrives.
    pub fn force_early_return(&mut self, tid: usize, v: Option<Value>) -> VmResult<()> {
        self.c(jvmti::FORCE_EARLY_RETURN_NS, internal::RESTORE_FRAME_NS);
        self.vm.force_early_return(tid, v)
    }

    /// Access the underlying VM (no charge).
    pub fn vm(&mut self) -> &mut Vm {
        self.vm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{ClassDef, MethodDef};
    use crate::instr::Instr;

    fn sample_vm() -> (Vm, usize) {
        let mut c = ClassDef::new("Main");
        let main_n = c.intern("Main");
        let f = c.intern("f");
        c.methods.push(MethodDef::new("main", 0, 1).with_code(
            vec![
                Instr::PushI(7),
                Instr::Store(0),
                Instr::Load(0),
                Instr::InvokeStatic(main_n, f, 1),
                Instr::RetV,
            ],
            vec![1, 1, 2, 2, 2],
        ));
        c.methods
            .push(MethodDef::new("f", 1, 0).with_code(vec![Instr::Goto(0)], vec![1]));
        let mut vm = Vm::new();
        vm.load_class(&c).unwrap();
        let tid = vm.spawn("Main", "main", &[]).unwrap();
        // Run into the callee's infinite loop.
        vm.run(tid, 500, crate::interp::RunMode::Normal).unwrap();
        (vm, tid)
    }

    #[test]
    fn frame_inspection() {
        let (mut vm, tid) = sample_vm();
        let mut t = Tooling::new(&mut vm, ToolingPath::Jvmti);
        assert_eq!(t.get_frame_count(tid).unwrap(), 2);
        let (c, m, _pc) = t.get_frame_location(tid, 0).unwrap();
        assert_eq!((c.as_str(), m.as_str()), ("Main", "f"));
        let (_, m, pc) = t.get_frame_location(tid, 1).unwrap();
        assert_eq!(m, "main");
        assert_eq!(pc, 3); // parked at the invoke
        let v = t.get_local(tid, 0, 0).unwrap();
        assert_eq!(v, CapturedValue::Int(7));
    }

    #[test]
    fn jvmti_charges_more_than_internal() {
        let (mut vm, tid) = sample_vm();
        let spent_jvmti = {
            let mut t = Tooling::new(&mut vm, ToolingPath::Jvmti);
            t.suspend_thread(tid);
            t.get_frame_location(tid, 0).unwrap();
            t.get_local(tid, 0, 0).unwrap();
            t.meter.ns
        };
        let spent_internal = {
            let mut t = Tooling::new(&mut vm, ToolingPath::Internal);
            t.suspend_thread(tid);
            t.get_frame_location(tid, 0).unwrap();
            t.get_local(tid, 0, 0).unwrap();
            t.meter.ns
        };
        assert!(spent_jvmti > 5 * spent_internal);
    }

    #[test]
    fn force_early_return_through_tooling() {
        let (mut vm, tid) = sample_vm();
        let mut t = Tooling::new(&mut vm, ToolingPath::Jvmti);
        t.force_early_return(tid, Some(Value::Int(5))).unwrap();
        assert!(t.meter.ns >= jvmti::FORCE_EARLY_RETURN_NS);
        let (out, _) = vm
            .run(tid, u64::MAX, crate::interp::RunMode::Normal)
            .unwrap();
        assert_eq!(
            out,
            crate::interp::StepOutcome::Returned(Some(Value::Int(5)))
        );
    }

    #[test]
    fn meter_take_resets() {
        let mut m = CostMeter::new();
        m.charge(100);
        assert_eq!(m.take(), 100);
        assert_eq!(m.ns, 0);
    }
}
