//! The bytecode instruction set.
//!
//! The ISA is a compact JVM-like subset plus a handful of instructions that
//! exist only because the SOD preprocessor injects them:
//!
//! * [`Instr::ReadCaptured`] / [`Instr::ReadCapturedPc`] — used inside
//!   *restoration handlers* (the paper's `CapturedState.read<Type>` calls) to
//!   rebuild local variables and the saved program counter when a migrated
//!   frame is re-established by throwing `InvalidStateException` into a
//!   freshly invoked method.
//! * The `Bring*` family — used inside *object fault handlers* (the paper's
//!   `ObjMan.bringObj` calls) to fetch a missed object from the home node and
//!   rebind the null link that faulted, then retry the statement.
//!
//! Branch targets are absolute instruction indices (our "bytecode index",
//! `bci`). Name references (classes, methods, fields, intrinsics, strings)
//! are indices into the owning class's string pool — resolution happens at
//! link time inside the VM, which is what lets class files travel between
//! nodes byte-for-byte, as SOD's on-demand code shipping requires.

use crate::class::ExKind;

/// Comparison operators for fused compare-and-branch instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cmp {
    /// Evaluate on the ordering `a ? b` given `a.cmp(&b)` as an i32 sign.
    pub fn eval_sign(self, sign: i32) -> bool {
        match self {
            Cmp::Eq => sign == 0,
            Cmp::Ne => sign != 0,
            Cmp::Lt => sign < 0,
            Cmp::Le => sign <= 0,
            Cmp::Gt => sign > 0,
            Cmp::Ge => sign >= 0,
        }
    }
}

/// One bytecode instruction.
///
/// `u16` operands index the class string pool unless noted; `u32` operands
/// are absolute branch targets (instruction indices). Every payload is a
/// primitive (switch tables live in [`crate::class::MethodDef::switches`],
/// referenced by index), so the whole enum is `Copy`: the interpreter's
/// fetch is a register-width move, never a clone.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Instr {
    // -- constants ---------------------------------------------------------
    /// Push an integer constant.
    PushI(i64),
    /// Push a float constant.
    PushF(f64),
    /// Push an interned string object for pool entry (JVM `ldc`).
    PushStr(u16),
    /// Push `null`.
    PushNull,

    // -- locals & stack ----------------------------------------------------
    /// Push local slot.
    Load(u16),
    /// Pop into local slot.
    Store(u16),
    /// Duplicate top of stack.
    Dup,
    /// Discard top of stack.
    Pop,
    /// Swap the two top stack values.
    Swap,

    // -- arithmetic (polymorphic over Int/Num where sensible) ---------------
    Add,
    Sub,
    Mul,
    /// Integer division by zero raises a guest `DivByZero` exception.
    Div,
    Rem,
    Neg,
    /// Integer shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
    BAnd,
    BOr,
    BXor,
    /// Int → Num conversion (JVM `i2d`).
    I2F,
    /// Num → Int truncation (JVM `d2i`).
    F2I,

    // -- control flow --------------------------------------------------------
    /// Pop `b`, pop `a`; branch if `a cmp b`.
    If(Cmp, u32),
    /// Pop `a`; branch if `a cmp 0`.
    IfZ(Cmp, u32),
    /// Pop a reference; branch if null.
    IfNull(u32),
    /// Pop a reference; branch if non-null.
    IfNonNull(u32),
    Goto(u32),
    /// Pop an int key and jump through the method's switch table
    /// (JVM `lookupswitch`); operand indexes [`crate::class::MethodDef::switches`].
    Switch(u16),

    // -- objects -------------------------------------------------------------
    /// Allocate an instance of the named class (pool index).
    New(u16),
    /// Pop object ref; push value of named instance field.
    GetField(u16),
    /// Pop value, pop object ref; store into named instance field.
    PutField(u16),
    /// Push value of static field `(class, field)`.
    GetStatic(u16, u16),
    /// Pop value into static field `(class, field)`.
    PutStatic(u16, u16),

    // -- arrays --------------------------------------------------------------
    /// Pop length; allocate an array filled with `Int(0)`.
    NewArr,
    /// Pop index, pop array ref; push element.
    ALoad,
    /// Pop value, pop index, pop array ref; store element.
    AStore,
    /// Pop array ref; push length.
    ArrLen,

    // -- calls ---------------------------------------------------------------
    /// Call `class.method` with `nargs` popped arguments (pool, pool, count).
    InvokeStatic(u16, u16, u8),
    /// Call `method` on a receiver: `nargs` includes the receiver, which is
    /// arg 0. Dispatch uses the receiver's runtime class.
    InvokeVirtual(u16, u8),
    /// Return with no value.
    Ret,
    /// Pop and return a value.
    RetV,

    // -- exceptions ------------------------------------------------------------
    /// Construct and throw a guest exception of the given kind.
    ThrowKind(ExKind),
    /// Pop an exception object (created by `New` on an exception class) and
    /// throw it as `ExKind::User`.
    Throw,

    // -- host calls --------------------------------------------------------------
    /// Call the named intrinsic with `nargs` popped arguments; pushes one
    /// result value (pure intrinsics run inline, host intrinsics park the
    /// thread and surface as [`crate::interp::StepOutcome::HostCall`]).
    NativeCall(u16, u8),

    // -- SOD restoration handlers (preprocessor-injected) -------------------------
    /// Inside a restoration handler: push the captured value of local `slot`
    /// from the active restore session.
    ReadCaptured(u16),
    /// Push the captured pc (as Int) of the frame being restored.
    ReadCapturedPc,
    /// Fused `ReadCaptured` + `Store`: install the captured value of local
    /// `slot` into the frame, marking the slot *restored-null* when the
    /// captured value was a live reference (so later null derefs on it are
    /// treated as object faults, not application NPEs).
    RestoreLocal(u16),

    // -- SOD object fault handlers (preprocessor-injected) ------------------------
    /// Fetch the home value of local `slot` of the faulting frame and store
    /// it into that slot.
    BringObjLocal(u16),
    /// Fetch field `.1` of the object in base slot `.0` from home; rebind
    /// the local copy's field.
    BringObjField(u16, u16),
    /// Fetch static `(class .0, field .1)` from home, install it in the local
    /// statics, and also store it into dest slot `.2` (rebinding the temp that
    /// was assigned from the stale null static).
    BringObjStaticTo(u16, u16, u16),
    /// Fetch element `[idx slot .1]` of the array in base slot `.0`; store
    /// the fetched ref into dest slot `.2`.
    BringObjElemTo(u16, u16, u16),
    /// Re-throw the `NullPointerException` that triggered the enclosing fault
    /// handler as an *application-level* NPE (skipping fault handlers), used
    /// when the home object is genuinely null.
    RethrowAppNpe,

    // -- status-checking baseline (traditional object-based DSM) ------------------
    /// Peek the reference at stack depth `.0` (0 = top) and check its status
    /// word; if the object is a remote/invalid stub, park and fetch it. This
    /// is the per-access check the paper's Fig. 5 B1 variant injects — its
    /// cost is paid on *every* access, which is exactly what Table V
    /// measures against SOD's free-on-fast-path object faulting.
    CheckStatus(u8),

    /// No operation.
    Nop,
}

impl Instr {
    /// Net change this instruction applies to the operand-stack depth,
    /// or `None` for returns/throws (which tear the frame down).
    ///
    /// Used by the [analysis](crate::analysis) pass to abstract-interpret
    /// stack depths and find migration-safe points.
    pub fn stack_delta(&self) -> Option<i32> {
        use Instr::*;
        Some(match self {
            PushI(_) | PushF(_) | PushStr(_) | PushNull => 1,
            Load(_) => 1,
            Store(_) => -1,
            Dup => 1,
            Pop => -1,
            Swap => 0,
            Add | Sub | Mul | Div | Rem | Shl | Shr | BAnd | BOr | BXor => -1,
            Neg | I2F | F2I => 0,
            If(_, _) => -2,
            IfZ(_, _) => -1,
            IfNull(_) | IfNonNull(_) => -1,
            Goto(_) => 0,
            Switch(_) => -1,
            New(_) => 1,
            GetField(_) => 0,
            PutField(_) => -2,
            GetStatic(_, _) => 1,
            PutStatic(_, _) => -1,
            NewArr => 0,
            ALoad => -1,
            AStore => -3,
            ArrLen => 0,
            InvokeStatic(_, _, n) => 1 - i32::from(*n),
            InvokeVirtual(_, n) => 1 - i32::from(*n),
            Ret | RetV => return None,
            ThrowKind(_) => return None,
            Throw => return None,
            NativeCall(_, n) => 1 - i32::from(*n),
            ReadCaptured(_) => 1,
            ReadCapturedPc => 1,
            RestoreLocal(_) => 0,
            BringObjLocal(_) | BringObjField(_, _) => 0,
            BringObjStaticTo(_, _, _) | BringObjElemTo(_, _, _) => 0,
            RethrowAppNpe => return None,
            CheckStatus(_) => 0,
            Nop => 0,
        })
    }

    /// Number of operand-stack values this instruction pops (its "stack
    /// demand"); verification requires at least this depth before execution.
    pub fn pops(&self) -> u32 {
        use Instr::*;
        match self {
            PushI(_) | PushF(_) | PushStr(_) | PushNull | Load(_) | New(_) | GetStatic(_, _) => 0,
            Store(_) | Pop | Neg | I2F | F2I | IfZ(_, _) | IfNull(_) | IfNonNull(_) => 1,
            Dup | GetField(_) | NewArr | ArrLen | Switch(_) | PutStatic(_, _) | Throw => 1,
            Swap | Add | Sub | Mul | Div | Rem | Shl | Shr | BAnd | BOr | BXor => 2,
            If(_, _) | PutField(_) | ALoad => 2,
            AStore => 3,
            InvokeStatic(_, _, n) => u32::from(*n),
            InvokeVirtual(_, n) => u32::from(*n),
            NativeCall(_, n) => u32::from(*n),
            Ret | RetV => {
                if matches!(self, RetV) {
                    1
                } else {
                    0
                }
            }
            Goto(_) | ThrowKind(_) | Nop => 0,
            ReadCaptured(_) | ReadCapturedPc | RestoreLocal(_) => 0,
            BringObjLocal(_) | BringObjField(_, _) => 0,
            BringObjStaticTo(_, _, _) | BringObjElemTo(_, _, _) => 0,
            RethrowAppNpe => 0,
            CheckStatus(_) => 0,
        }
    }

    /// All branch targets encoded in this instruction (switch targets are
    /// held in the method's switch tables and not included here).
    pub fn branch_targets(&self) -> Vec<u32> {
        use Instr::*;
        match self {
            If(_, t) | IfZ(_, t) | IfNull(t) | IfNonNull(t) | Goto(t) => vec![*t],
            _ => Vec::new(),
        }
    }

    /// Whether control can fall through to the next instruction.
    pub fn falls_through(&self) -> bool {
        use Instr::*;
        !matches!(
            self,
            Goto(_) | Ret | RetV | ThrowKind(_) | Throw | Switch(_) | RethrowAppNpe
        )
    }

    /// Whether this instruction dereferences an object reference and can
    /// therefore raise a guest `NullPointerException` — the instructions the
    /// preprocessor must cover with object-fault handlers or status checks.
    pub fn is_deref(&self) -> bool {
        use Instr::*;
        matches!(
            self,
            GetField(_) | PutField(_) | ALoad | AStore | ArrLen | InvokeVirtual(_, _) | Throw
        )
    }

    /// Whether this instruction is a *barrier* for statement rearrangement:
    /// an effectful operation after which the preprocessor cuts the
    /// statement (spilling the operand stack to temps) so that every
    /// statement performs at most one such operation and every statement
    /// start is a migration-safe-point candidate.
    pub fn is_barrier(&self) -> bool {
        use Instr::*;
        matches!(
            self,
            GetField(_)
                | PutField(_)
                | ALoad
                | AStore
                | ArrLen
                | InvokeStatic(_, _, _)
                | InvokeVirtual(_, _)
                | NativeCall(_, _)
                | New(_)
                | NewArr
                | GetStatic(_, _)
                | PutStatic(_, _)
        )
    }

    /// For deref instructions: operand-stack depth (from the top, 0-based)
    /// of the reference being dereferenced at the moment of execution.
    pub fn deref_depth(&self) -> Option<u32> {
        use Instr::*;
        Some(match self {
            GetField(_) | ArrLen | Throw => 0,
            PutField(_) | ALoad => 1,
            AStore => 2,
            InvokeVirtual(_, n) => u32::from(*n) - 1,
            _ => return None,
        })
    }

    /// Remap every branch target through `f` (used by the preprocessor when
    /// it splices instructions into a method body).
    pub fn map_targets(&mut self, f: impl Fn(u32) -> u32) {
        use Instr::*;
        match self {
            If(_, t) | IfZ(_, t) | IfNull(t) | IfNonNull(t) | Goto(t) => *t = f(*t),
            _ => {}
        }
    }
}

/// One `lookupswitch`-style jump table: `(key, target)` pairs plus a default
/// target. Keys are matched exactly.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SwitchTable {
    pub pairs: Vec<(i64, u32)>,
    pub default: u32,
}

impl SwitchTable {
    /// Resolve a key to a branch target.
    pub fn lookup(&self, key: i64) -> u32 {
        self.pairs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, t)| *t)
            .unwrap_or(self.default)
    }

    /// All targets (pairs plus default).
    pub fn targets(&self) -> impl Iterator<Item = u32> + '_ {
        self.pairs
            .iter()
            .map(|(_, t)| *t)
            .chain(std::iter::once(self.default))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval() {
        assert!(Cmp::Eq.eval_sign(0));
        assert!(Cmp::Ne.eval_sign(1));
        assert!(Cmp::Lt.eval_sign(-1));
        assert!(Cmp::Le.eval_sign(0));
        assert!(Cmp::Gt.eval_sign(1));
        assert!(Cmp::Ge.eval_sign(0));
        assert!(!Cmp::Lt.eval_sign(1));
    }

    #[test]
    fn stack_delta_consistency() {
        // delta must equal pushes - pops for instructions with a delta.
        // Spot-check a representative sample.
        assert_eq!(Instr::PushI(1).stack_delta(), Some(1));
        assert_eq!(Instr::InvokeStatic(0, 0, 3).stack_delta(), Some(-2));
        assert_eq!(Instr::InvokeVirtual(0, 1).stack_delta(), Some(0));
        assert_eq!(Instr::AStore.stack_delta(), Some(-3));
        assert_eq!(Instr::Ret.stack_delta(), None);
    }

    #[test]
    fn switch_lookup() {
        let t = SwitchTable {
            pairs: vec![(0, 10), (8, 20), (17, 30)],
            default: 0,
        };
        assert_eq!(t.lookup(8), 20);
        assert_eq!(t.lookup(17), 30);
        assert_eq!(t.lookup(99), 0);
        assert_eq!(t.targets().count(), 4);
    }

    #[test]
    fn map_targets_rewrites_branches() {
        let mut i = Instr::Goto(5);
        i.map_targets(|t| t + 100);
        assert_eq!(i, Instr::Goto(105));
        let mut i = Instr::If(Cmp::Lt, 3);
        i.map_targets(|t| t * 2);
        assert_eq!(i, Instr::If(Cmp::Lt, 6));
        let mut i = Instr::Add;
        i.map_targets(|_| unreachable!());
        assert_eq!(i, Instr::Add);
    }

    #[test]
    fn falls_through_classification() {
        assert!(Instr::Add.falls_through());
        assert!(Instr::If(Cmp::Eq, 0).falls_through());
        assert!(!Instr::Goto(0).falls_through());
        assert!(!Instr::Ret.falls_through());
        assert!(!Instr::Switch(0).falls_through());
    }
}
