//! Binary wire codec for everything that travels between nodes.
//!
//! Hand-rolled (no serde): the encoded length *is* the paper's
//! "Java-serialized size", which drives every transfer-time computation in
//! the evaluation, so the codec and the cost model must be the same thing.
//!
//! Encodable entities:
//! * [`CapturedState`] — SOD state messages,
//! * [`ClassDef`] — on-demand code shipping (the class-file-load-hook path),
//! * [`WireObject`] — on-demand heap object fetches and dirty write-backs.
//!
//! Layout discipline: little-endian fixed-width integers, length-prefixed
//! strings and sequences. Every `encode_*` has a matching `decode_*`;
//! property tests round-trip all of them.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::capture::{CapturedFrame, CapturedState, CapturedStatics, CapturedValue};
use crate::class::{ClassDef, ExEntry, ExKind, FieldDef, MethodDef};
use crate::error::{VmError, VmResult};
use crate::instr::{Cmp, Instr, SwitchTable};
use crate::value::{ObjId, TypeOf};

/// A heap object on the wire: the payload of an object-fault reply or a
/// dirty-object flush. References inside travel as home object ids.
#[derive(Clone, Debug, PartialEq)]
pub struct WireObject {
    /// Identity of the master copy on the home node. For objects created on
    /// a worker and flushed home for the first time this is a temporary id
    /// the home node remaps.
    pub home_id: ObjId,
    pub body: WireObjBody,
}

/// Body of a shipped object.
#[derive(Clone, Debug, PartialEq)]
pub enum WireObjBody {
    Obj {
        class: String,
        fields: Vec<CapturedValue>,
    },
    Arr {
        elems: Vec<CapturedValue>,
    },
    Str(String),
}

impl WireObject {
    /// Serialized size (the object-fetch transfer cost).
    pub fn wire_bytes(&self) -> u64 {
        encode_object(self).len() as u64
    }
}

// ---------------------------------------------------------------------------
// Primitive helpers
// ---------------------------------------------------------------------------

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> VmResult<String> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(VmError::Decode("string truncated"));
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| VmError::Decode("invalid utf8"))
}

fn get_u8(buf: &mut Bytes) -> VmResult<u8> {
    if buf.remaining() < 1 {
        return Err(VmError::Decode("u8 truncated"));
    }
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut Bytes) -> VmResult<u16> {
    if buf.remaining() < 2 {
        return Err(VmError::Decode("u16 truncated"));
    }
    Ok(buf.get_u16_le())
}

fn get_u32(buf: &mut Bytes) -> VmResult<u32> {
    if buf.remaining() < 4 {
        return Err(VmError::Decode("u32 truncated"));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut Bytes) -> VmResult<u64> {
    if buf.remaining() < 8 {
        return Err(VmError::Decode("u64 truncated"));
    }
    Ok(buf.get_u64_le())
}

fn get_i64(buf: &mut Bytes) -> VmResult<i64> {
    Ok(get_u64(buf)? as i64)
}

fn get_f64(buf: &mut Bytes) -> VmResult<f64> {
    Ok(f64::from_bits(get_u64(buf)?))
}

// ---------------------------------------------------------------------------
// CapturedValue
// ---------------------------------------------------------------------------

fn put_captured_value(buf: &mut BytesMut, v: &CapturedValue) {
    match v {
        CapturedValue::Null => buf.put_u8(0),
        CapturedValue::Int(i) => {
            buf.put_u8(1);
            buf.put_i64_le(*i);
        }
        CapturedValue::Num(n) => {
            buf.put_u8(2);
            buf.put_u64_le(n.to_bits());
        }
        CapturedValue::HomeRef(id) => {
            buf.put_u8(3);
            buf.put_u64_le(u64::from(*id));
        }
    }
}

fn get_captured_value(buf: &mut Bytes) -> VmResult<CapturedValue> {
    Ok(match get_u8(buf)? {
        0 => CapturedValue::Null,
        1 => CapturedValue::Int(get_i64(buf)?),
        2 => CapturedValue::Num(get_f64(buf)?),
        3 => CapturedValue::HomeRef(get_u64(buf)? as ObjId),
        _ => return Err(VmError::Decode("bad CapturedValue tag")),
    })
}

fn put_values(buf: &mut BytesMut, vs: &[CapturedValue]) {
    buf.put_u32_le(vs.len() as u32);
    for v in vs {
        put_captured_value(buf, v);
    }
}

fn get_values(buf: &mut Bytes) -> VmResult<Vec<CapturedValue>> {
    let n = get_u32(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(get_captured_value(buf)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// CapturedState
// ---------------------------------------------------------------------------

/// Encode a captured state message.
pub fn encode_state(state: &CapturedState) -> Bytes {
    let mut buf = BytesMut::with_capacity(256);
    buf.put_u32_le(state.frames.len() as u32);
    for f in &state.frames {
        put_str(&mut buf, &f.class);
        put_str(&mut buf, &f.method);
        buf.put_u32_le(f.pc);
        put_values(&mut buf, &f.locals);
    }
    buf.put_u32_le(state.statics.len() as u32);
    for s in &state.statics {
        put_str(&mut buf, &s.class);
        put_values(&mut buf, &s.values);
    }
    buf.freeze()
}

/// Decode a captured state message.
pub fn decode_state(mut buf: Bytes) -> VmResult<CapturedState> {
    let nframes = get_u32(&mut buf)? as usize;
    let mut frames = Vec::with_capacity(nframes.min(1 << 16));
    for _ in 0..nframes {
        let class = get_str(&mut buf)?;
        let method = get_str(&mut buf)?;
        let pc = get_u32(&mut buf)?;
        let locals = get_values(&mut buf)?;
        frames.push(CapturedFrame {
            class,
            method,
            pc,
            locals,
        });
    }
    let nstatics = get_u32(&mut buf)? as usize;
    let mut statics = Vec::with_capacity(nstatics.min(1 << 16));
    for _ in 0..nstatics {
        let class = get_str(&mut buf)?;
        let values = get_values(&mut buf)?;
        statics.push(CapturedStatics { class, values });
    }
    Ok(CapturedState { frames, statics })
}

// ---------------------------------------------------------------------------
// Objects
// ---------------------------------------------------------------------------

/// Encode a shipped heap object.
pub fn encode_object(obj: &WireObject) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u64_le(u64::from(obj.home_id));
    match &obj.body {
        WireObjBody::Obj { class, fields } => {
            buf.put_u8(0);
            put_str(&mut buf, class);
            put_values(&mut buf, fields);
        }
        WireObjBody::Arr { elems } => {
            buf.put_u8(1);
            put_values(&mut buf, elems);
        }
        WireObjBody::Str(s) => {
            buf.put_u8(2);
            put_str(&mut buf, s);
        }
    }
    buf.freeze()
}

/// Decode a shipped heap object.
pub fn decode_object(mut buf: Bytes) -> VmResult<WireObject> {
    let home_id = get_u64(&mut buf)? as ObjId;
    let body = match get_u8(&mut buf)? {
        0 => WireObjBody::Obj {
            class: get_str(&mut buf)?,
            fields: get_values(&mut buf)?,
        },
        1 => WireObjBody::Arr {
            elems: get_values(&mut buf)?,
        },
        2 => WireObjBody::Str(get_str(&mut buf)?),
        _ => return Err(VmError::Decode("bad WireObject tag")),
    };
    Ok(WireObject { home_id, body })
}

// ---------------------------------------------------------------------------
// Object extraction / installation (home ↔ worker heap transfer)
// ---------------------------------------------------------------------------

use crate::heap::{Heap, ObjKind};
use crate::value::Value;

/// Extract object `id` from a heap as a shallow [`WireObject`]: primitive
/// slots by value, reference slots as home ids (nulled + flagged on
/// install). This is the home-side half of an object-fault reply.
pub fn extract_object(heap: &Heap, id: ObjId) -> VmResult<WireObject> {
    let obj = heap.get(id)?;
    let conv = |vs: &[Value]| -> Vec<CapturedValue> {
        vs.iter().map(|v| CapturedValue::from_value(*v)).collect()
    };
    let body = match &obj.kind {
        ObjKind::Obj { class, fields } => WireObjBody::Obj {
            class: class.to_string(),
            fields: conv(fields),
        },
        ObjKind::Arr { elems } => WireObjBody::Arr { elems: conv(elems) },
        ObjKind::Str(s) => WireObjBody::Str(s.clone()),
        ObjKind::Exception { message, .. } => WireObjBody::Str(message.clone()),
    };
    Ok(WireObject { home_id: id, body })
}

/// Extract the transitive closure of `id` (deep fetch / eager copy):
/// breadth-first over reference slots. Returns objects in BFS order, root
/// first.
pub fn extract_closure(heap: &Heap, id: ObjId) -> VmResult<Vec<WireObject>> {
    let mut seen = std::collections::HashSet::new();
    let mut queue = std::collections::VecDeque::new();
    let mut out = Vec::new();
    seen.insert(id);
    queue.push_back(id);
    while let Some(cur) = queue.pop_front() {
        let wire = extract_object(heap, cur)?;
        let refs: Vec<ObjId> = match &wire.body {
            WireObjBody::Obj { fields, .. } => fields
                .iter()
                .filter_map(|v| match v {
                    CapturedValue::HomeRef(r) => Some(*r),
                    _ => None,
                })
                .collect(),
            WireObjBody::Arr { elems } => elems
                .iter()
                .filter_map(|v| match v {
                    CapturedValue::HomeRef(r) => Some(*r),
                    _ => None,
                })
                .collect(),
            WireObjBody::Str(_) => Vec::new(),
        };
        out.push(wire);
        for r in refs {
            if seen.insert(r) {
                queue.push_back(r);
            }
        }
    }
    Ok(out)
}

/// Install a shipped object into a worker heap as a cached copy: reference
/// slots become transfer-nulled values carrying their home identity (they
/// fault in on demand), and `home_id` is recorded for nested fault
/// resolution and write-back. If a copy of the same home object already
/// exists it is refreshed in place.
pub fn install_object(heap: &mut Heap, obj: &WireObject) -> VmResult<ObjId> {
    let conv =
        |vs: &[CapturedValue]| -> Vec<Value> { vs.iter().map(|v| v.to_nulled_value()).collect() };
    let kind = match &obj.body {
        // The decoded class name gets a fresh `Arc`; the interpreter
        // canonicalizes it to the loaded class's shared `Arc` on the first
        // slow resolve at any receiver-keyed inline-cache site.
        WireObjBody::Obj { class, fields } => ObjKind::Obj {
            class: class.as_str().into(),
            fields: conv(fields),
        },
        WireObjBody::Arr { elems } => ObjKind::Arr { elems: conv(elems) },
        WireObjBody::Str(s) => ObjKind::Str(s.clone()),
    };
    if let Some(existing) = heap.find_cached(obj.home_id) {
        let slot = heap.get_mut(existing)?;
        slot.kind = kind;
        slot.status = crate::heap::ObjStatus::Local;
        slot.dirty = false;
        return Ok(existing);
    }
    let id = match kind {
        ObjKind::Obj { class, fields } => heap.alloc_obj(class, fields),
        ObjKind::Arr { elems } => heap.alloc_arr_from(elems),
        ObjKind::Str(s) => heap.alloc_str(s),
        ObjKind::Exception { .. } => unreachable!("wire bodies never decode to exceptions"),
    };
    heap.get_mut(id)?.home_id = Some(obj.home_id);
    Ok(id)
}

/// Build the wire form of a *dirty* object for the write-back flush: values
/// convert refs to home ids where the local copy knows them; refs to
/// worker-created objects are encoded as `HomeRef(temp_base + local_id)` so
/// the home side can remap them after allocating masters (see the runtime's
/// flush protocol). Transfer-nulled refs re-export the home identity they
/// carry.
pub fn extract_dirty(heap: &Heap, id: ObjId, temp_base: ObjId) -> VmResult<WireObject> {
    let obj = heap.get(id)?;
    let conv = |vs: &[Value]| -> VmResult<Vec<CapturedValue>> {
        vs.iter()
            .map(|v| {
                Ok(match v {
                    Value::Ref(r) => match heap.get(*r)?.home_id {
                        Some(h) => CapturedValue::HomeRef(h),
                        None => CapturedValue::HomeRef(temp_base + r),
                    },
                    other => CapturedValue::from_value(*other),
                })
            })
            .collect()
    };
    let body = match &obj.kind {
        ObjKind::Obj { class, fields } => WireObjBody::Obj {
            class: class.to_string(),
            fields: conv(fields)?,
        },
        ObjKind::Arr { elems } => WireObjBody::Arr {
            elems: conv(elems)?,
        },
        ObjKind::Str(s) => WireObjBody::Str(s.clone()),
        ObjKind::Exception { message, .. } => WireObjBody::Str(message.clone()),
    };
    let home_id = obj.home_id.unwrap_or(temp_base + id);
    Ok(WireObject { home_id, body })
}

/// Serialized size of a [`crate::heap::HeapObj`] as shipped (for cost models that need a
/// size without building the message).
pub fn object_wire_bytes(heap: &Heap, id: ObjId) -> VmResult<u64> {
    Ok(extract_object(heap, id)?.wire_bytes())
}

// ---------------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------------

fn put_instr(buf: &mut BytesMut, i: &Instr) {
    use Instr::*;
    let cmp_code = |c: &Cmp| -> u8 {
        match c {
            Cmp::Eq => 0,
            Cmp::Ne => 1,
            Cmp::Lt => 2,
            Cmp::Le => 3,
            Cmp::Gt => 4,
            Cmp::Ge => 5,
        }
    };
    match i {
        PushI(v) => {
            buf.put_u8(0);
            buf.put_i64_le(*v);
        }
        PushF(v) => {
            buf.put_u8(1);
            buf.put_u64_le(v.to_bits());
        }
        PushStr(p) => {
            buf.put_u8(2);
            buf.put_u16_le(*p);
        }
        PushNull => buf.put_u8(3),
        Load(s) => {
            buf.put_u8(4);
            buf.put_u16_le(*s);
        }
        Store(s) => {
            buf.put_u8(5);
            buf.put_u16_le(*s);
        }
        Dup => buf.put_u8(6),
        Pop => buf.put_u8(7),
        Swap => buf.put_u8(8),
        Add => buf.put_u8(9),
        Sub => buf.put_u8(10),
        Mul => buf.put_u8(11),
        Div => buf.put_u8(12),
        Rem => buf.put_u8(13),
        Neg => buf.put_u8(14),
        Shl => buf.put_u8(15),
        Shr => buf.put_u8(16),
        BAnd => buf.put_u8(17),
        BOr => buf.put_u8(18),
        BXor => buf.put_u8(19),
        I2F => buf.put_u8(20),
        F2I => buf.put_u8(21),
        If(c, t) => {
            buf.put_u8(22);
            buf.put_u8(cmp_code(c));
            buf.put_u32_le(*t);
        }
        IfZ(c, t) => {
            buf.put_u8(23);
            buf.put_u8(cmp_code(c));
            buf.put_u32_le(*t);
        }
        IfNull(t) => {
            buf.put_u8(24);
            buf.put_u32_le(*t);
        }
        IfNonNull(t) => {
            buf.put_u8(25);
            buf.put_u32_le(*t);
        }
        Goto(t) => {
            buf.put_u8(26);
            buf.put_u32_le(*t);
        }
        Switch(s) => {
            buf.put_u8(27);
            buf.put_u16_le(*s);
        }
        New(c) => {
            buf.put_u8(28);
            buf.put_u16_le(*c);
        }
        GetField(f) => {
            buf.put_u8(29);
            buf.put_u16_le(*f);
        }
        PutField(f) => {
            buf.put_u8(30);
            buf.put_u16_le(*f);
        }
        GetStatic(c, f) => {
            buf.put_u8(31);
            buf.put_u16_le(*c);
            buf.put_u16_le(*f);
        }
        PutStatic(c, f) => {
            buf.put_u8(32);
            buf.put_u16_le(*c);
            buf.put_u16_le(*f);
        }
        NewArr => buf.put_u8(33),
        ALoad => buf.put_u8(34),
        AStore => buf.put_u8(35),
        ArrLen => buf.put_u8(36),
        InvokeStatic(c, m, n) => {
            buf.put_u8(37);
            buf.put_u16_le(*c);
            buf.put_u16_le(*m);
            buf.put_u8(*n);
        }
        InvokeVirtual(m, n) => {
            buf.put_u8(38);
            buf.put_u16_le(*m);
            buf.put_u8(*n);
        }
        Ret => buf.put_u8(39),
        RetV => buf.put_u8(40),
        ThrowKind(k) => {
            buf.put_u8(41);
            buf.put_u16_le(k.code());
        }
        Throw => buf.put_u8(42),
        NativeCall(n, a) => {
            buf.put_u8(43);
            buf.put_u16_le(*n);
            buf.put_u8(*a);
        }
        ReadCaptured(s) => {
            buf.put_u8(44);
            buf.put_u16_le(*s);
        }
        ReadCapturedPc => buf.put_u8(45),
        BringObjLocal(s) => {
            buf.put_u8(46);
            buf.put_u16_le(*s);
        }
        BringObjField(b, f) => {
            buf.put_u8(47);
            buf.put_u16_le(*b);
            buf.put_u16_le(*f);
        }
        BringObjStaticTo(c, f, d) => {
            buf.put_u8(48);
            buf.put_u16_le(*c);
            buf.put_u16_le(*f);
            buf.put_u16_le(*d);
        }
        BringObjElemTo(b, x, d) => {
            buf.put_u8(49);
            buf.put_u16_le(*b);
            buf.put_u16_le(*x);
            buf.put_u16_le(*d);
        }
        RethrowAppNpe => buf.put_u8(50),
        Nop => buf.put_u8(51),
        CheckStatus(d) => {
            buf.put_u8(52);
            buf.put_u8(*d);
        }
        RestoreLocal(s) => {
            buf.put_u8(53);
            buf.put_u16_le(*s);
        }
    }
}

fn get_cmp(buf: &mut Bytes) -> VmResult<Cmp> {
    Ok(match get_u8(buf)? {
        0 => Cmp::Eq,
        1 => Cmp::Ne,
        2 => Cmp::Lt,
        3 => Cmp::Le,
        4 => Cmp::Gt,
        5 => Cmp::Ge,
        _ => return Err(VmError::Decode("bad Cmp")),
    })
}

fn get_instr(buf: &mut Bytes) -> VmResult<Instr> {
    use Instr::*;
    Ok(match get_u8(buf)? {
        0 => PushI(get_i64(buf)?),
        1 => PushF(get_f64(buf)?),
        2 => PushStr(get_u16(buf)?),
        3 => PushNull,
        4 => Load(get_u16(buf)?),
        5 => Store(get_u16(buf)?),
        6 => Dup,
        7 => Pop,
        8 => Swap,
        9 => Add,
        10 => Sub,
        11 => Mul,
        12 => Div,
        13 => Rem,
        14 => Neg,
        15 => Shl,
        16 => Shr,
        17 => BAnd,
        18 => BOr,
        19 => BXor,
        20 => I2F,
        21 => F2I,
        22 => If(get_cmp(buf)?, get_u32(buf)?),
        23 => IfZ(get_cmp(buf)?, get_u32(buf)?),
        24 => IfNull(get_u32(buf)?),
        25 => IfNonNull(get_u32(buf)?),
        26 => Goto(get_u32(buf)?),
        27 => Switch(get_u16(buf)?),
        28 => New(get_u16(buf)?),
        29 => GetField(get_u16(buf)?),
        30 => PutField(get_u16(buf)?),
        31 => GetStatic(get_u16(buf)?, get_u16(buf)?),
        32 => PutStatic(get_u16(buf)?, get_u16(buf)?),
        33 => NewArr,
        34 => ALoad,
        35 => AStore,
        36 => ArrLen,
        37 => InvokeStatic(get_u16(buf)?, get_u16(buf)?, get_u8(buf)?),
        38 => InvokeVirtual(get_u16(buf)?, get_u8(buf)?),
        39 => Ret,
        40 => RetV,
        41 => ThrowKind(ExKind::from_code(get_u16(buf)?)),
        42 => Throw,
        43 => NativeCall(get_u16(buf)?, get_u8(buf)?),
        44 => ReadCaptured(get_u16(buf)?),
        45 => ReadCapturedPc,
        46 => BringObjLocal(get_u16(buf)?),
        47 => BringObjField(get_u16(buf)?, get_u16(buf)?),
        48 => BringObjStaticTo(get_u16(buf)?, get_u16(buf)?, get_u16(buf)?),
        49 => BringObjElemTo(get_u16(buf)?, get_u16(buf)?, get_u16(buf)?),
        50 => RethrowAppNpe,
        51 => Nop,
        52 => CheckStatus(get_u8(buf)?),
        53 => RestoreLocal(get_u16(buf)?),
        _ => return Err(VmError::Decode("bad opcode")),
    })
}

// ---------------------------------------------------------------------------
// Classes
// ---------------------------------------------------------------------------

fn type_code(t: TypeOf) -> u8 {
    match t {
        TypeOf::Int => 0,
        TypeOf::Num => 1,
        TypeOf::Ref => 2,
    }
}

fn get_type(buf: &mut Bytes) -> VmResult<TypeOf> {
    Ok(match get_u8(buf)? {
        0 => TypeOf::Int,
        1 => TypeOf::Num,
        2 => TypeOf::Ref,
        _ => return Err(VmError::Decode("bad TypeOf")),
    })
}

/// Encode a class definition (the "class file" that code shipping moves).
pub fn encode_class(c: &ClassDef) -> Bytes {
    let mut buf = BytesMut::with_capacity(512);
    put_str(&mut buf, &c.name);
    buf.put_u32_le(c.pool.len() as u32);
    for s in &c.pool {
        put_str(&mut buf, s);
    }
    buf.put_u32_le(c.fields.len() as u32);
    for f in &c.fields {
        put_str(&mut buf, &f.name);
        buf.put_u8(type_code(f.ty));
        buf.put_u8(f.is_static as u8);
    }
    buf.put_u32_le(c.methods.len() as u32);
    for m in &c.methods {
        put_str(&mut buf, &m.name);
        buf.put_u16_le(m.nargs);
        buf.put_u16_le(m.nlocals);
        buf.put_u32_le(m.code.len() as u32);
        for i in &m.code {
            put_instr(&mut buf, i);
        }
        for l in &m.lines {
            buf.put_u32_le(*l);
        }
        buf.put_u32_le(m.ex_table.len() as u32);
        for e in &m.ex_table {
            buf.put_u32_le(e.from);
            buf.put_u32_le(e.to);
            buf.put_u32_le(e.target);
            buf.put_u16_le(e.kind.code());
            buf.put_u8(e.fault_handler as u8);
        }
        buf.put_u32_le(m.switches.len() as u32);
        for s in &m.switches {
            buf.put_u32_le(s.pairs.len() as u32);
            for (k, t) in &s.pairs {
                buf.put_i64_le(*k);
                buf.put_u32_le(*t);
            }
            buf.put_u32_le(s.default);
        }
    }
    buf.freeze()
}

/// Decode a class definition.
pub fn decode_class(mut buf: Bytes) -> VmResult<ClassDef> {
    let name = get_str(&mut buf)?;
    let npool = get_u32(&mut buf)? as usize;
    let mut pool = Vec::with_capacity(npool.min(1 << 16));
    for _ in 0..npool {
        pool.push(get_str(&mut buf)?);
    }
    let nfields = get_u32(&mut buf)? as usize;
    let mut fields = Vec::with_capacity(nfields.min(1 << 16));
    for _ in 0..nfields {
        let name = get_str(&mut buf)?;
        let ty = get_type(&mut buf)?;
        let is_static = get_u8(&mut buf)? != 0;
        fields.push(FieldDef {
            name,
            ty,
            is_static,
        });
    }
    let nmethods = get_u32(&mut buf)? as usize;
    let mut methods = Vec::with_capacity(nmethods.min(1 << 16));
    for _ in 0..nmethods {
        let name = get_str(&mut buf)?;
        let nargs = get_u16(&mut buf)?;
        let nlocals = get_u16(&mut buf)?;
        let ncode = get_u32(&mut buf)? as usize;
        let mut code = Vec::with_capacity(ncode.min(1 << 20));
        for _ in 0..ncode {
            code.push(get_instr(&mut buf)?);
        }
        let mut lines = Vec::with_capacity(ncode.min(1 << 20));
        for _ in 0..ncode {
            lines.push(get_u32(&mut buf)?);
        }
        let nex = get_u32(&mut buf)? as usize;
        let mut ex_table = Vec::with_capacity(nex.min(1 << 16));
        for _ in 0..nex {
            let from = get_u32(&mut buf)?;
            let to = get_u32(&mut buf)?;
            let target = get_u32(&mut buf)?;
            let kind = ExKind::from_code(get_u16(&mut buf)?);
            let fault_handler = get_u8(&mut buf)? != 0;
            ex_table.push(ExEntry {
                from,
                to,
                target,
                kind,
                fault_handler,
            });
        }
        let nsw = get_u32(&mut buf)? as usize;
        let mut switches = Vec::with_capacity(nsw.min(1 << 16));
        for _ in 0..nsw {
            let npairs = get_u32(&mut buf)? as usize;
            let mut pairs = Vec::with_capacity(npairs.min(1 << 16));
            for _ in 0..npairs {
                let k = get_i64(&mut buf)?;
                let t = get_u32(&mut buf)?;
                pairs.push((k, t));
            }
            let default = get_u32(&mut buf)?;
            switches.push(SwitchTable { pairs, default });
        }
        methods.push(MethodDef {
            name,
            nargs,
            nlocals,
            code,
            lines,
            ex_table,
            switches,
        });
    }
    Ok(ClassDef {
        name,
        fields,
        methods,
        pool,
    })
}

/// Serialized size of a class, used for code-shipping transfer costs.
pub fn class_wire_bytes(c: &ClassDef) -> u64 {
    encode_class(c).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::FieldDef;

    fn sample_class() -> ClassDef {
        let mut c = ClassDef::new("Geometry")
            .with_field(FieldDef::instance("r", TypeOf::Ref))
            .with_field(FieldDef::stat("count", TypeOf::Int));
        let r = c.intern("r");
        c.methods.push(
            MethodDef::new("displaceX", 1, 2)
                .with_code(
                    vec![
                        Instr::Load(0),
                        Instr::GetField(r),
                        Instr::Store(1),
                        Instr::PushI(3),
                        Instr::Switch(0),
                        Instr::Ret,
                    ],
                    vec![1, 1, 1, 2, 2, 3],
                )
                .with_ex_table(vec![
                    ExEntry::new(0, 3, 5, ExKind::NullPointer).as_fault_handler()
                ])
                .with_switches(vec![SwitchTable {
                    pairs: vec![(0, 0), (3, 3)],
                    default: 5,
                }]),
        );
        c
    }

    #[test]
    fn class_roundtrip() {
        let c = sample_class();
        let encoded = encode_class(&c);
        let decoded = decode_class(encoded).unwrap();
        assert_eq!(c, decoded);
    }

    #[test]
    fn state_roundtrip() {
        let state = CapturedState {
            frames: vec![
                CapturedFrame {
                    class: "Main".into(),
                    method: "main".into(),
                    pc: 5,
                    locals: vec![CapturedValue::Int(-3), CapturedValue::HomeRef(12)],
                },
                CapturedFrame {
                    class: "Main".into(),
                    method: "f".into(),
                    pc: 2,
                    locals: vec![CapturedValue::Num(2.5), CapturedValue::Null],
                },
            ],
            statics: vec![CapturedStatics {
                class: "Main".into(),
                values: vec![CapturedValue::Int(77)],
            }],
        };
        let decoded = decode_state(encode_state(&state)).unwrap();
        assert_eq!(state, decoded);
    }

    #[test]
    fn object_roundtrip() {
        for obj in [
            WireObject {
                home_id: 7,
                body: WireObjBody::Obj {
                    class: "Point".into(),
                    fields: vec![CapturedValue::Int(1), CapturedValue::HomeRef(3)],
                },
            },
            WireObject {
                home_id: 8,
                body: WireObjBody::Arr {
                    elems: vec![CapturedValue::Num(0.5); 4],
                },
            },
            WireObject {
                home_id: 9,
                body: WireObjBody::Str("hello".into()),
            },
        ] {
            let decoded = decode_object(encode_object(&obj)).unwrap();
            assert_eq!(obj, decoded);
        }
    }

    #[test]
    fn all_instrs_roundtrip() {
        use Instr::*;
        let all = vec![
            PushI(i64::MIN),
            PushF(-0.0),
            PushStr(9),
            PushNull,
            Load(1),
            Store(2),
            Dup,
            Pop,
            Swap,
            Add,
            Sub,
            Mul,
            Div,
            Rem,
            Neg,
            Shl,
            Shr,
            BAnd,
            BOr,
            BXor,
            I2F,
            F2I,
            If(Cmp::Le, 77),
            IfZ(Cmp::Gt, 3),
            IfNull(4),
            IfNonNull(5),
            Goto(6),
            Switch(0),
            New(1),
            GetField(2),
            PutField(3),
            GetStatic(4, 5),
            PutStatic(6, 7),
            NewArr,
            ALoad,
            AStore,
            ArrLen,
            InvokeStatic(1, 2, 3),
            InvokeVirtual(4, 5),
            Ret,
            RetV,
            ThrowKind(ExKind::OutOfMemory),
            Throw,
            NativeCall(8, 2),
            ReadCaptured(3),
            ReadCapturedPc,
            BringObjLocal(1),
            BringObjField(2, 3),
            BringObjStaticTo(4, 5, 6),
            BringObjElemTo(7, 8, 9),
            RethrowAppNpe,
            Nop,
            CheckStatus(1),
            RestoreLocal(2),
        ];
        let mut buf = BytesMut::new();
        for i in &all {
            put_instr(&mut buf, i);
        }
        let mut bytes = buf.freeze();
        for expect in &all {
            let got = get_instr(&mut bytes).unwrap();
            assert_eq!(&got, expect);
        }
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn truncated_input_errors() {
        let c = sample_class();
        let encoded = encode_class(&c);
        let truncated = encoded.slice(0..encoded.len() - 3);
        assert!(decode_class(truncated).is_err());
        assert!(decode_state(Bytes::from_static(&[1, 2])).is_err());
        assert!(decode_object(Bytes::from_static(&[0])).is_err());
    }

    #[test]
    fn wire_size_reflects_instrumentation_growth() {
        let plain = sample_class();
        let mut fat = plain.clone();
        let m = &mut fat.methods[0];
        for _ in 0..10 {
            m.code.push(Instr::Nop);
            m.lines.push(9);
        }
        assert!(class_wire_bytes(&fat) > class_wire_bytes(&plain));
    }
}
