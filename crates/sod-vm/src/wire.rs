//! Binary wire codec for everything that travels between nodes.
//!
//! Hand-rolled (no serde): the encoded length *is* the paper's
//! "Java-serialized size", which drives every transfer-time computation in
//! the evaluation, so the codec and the cost model must be the same thing.
//! `CapturedState::wire_bytes()` (an arithmetic formula), the streaming
//! [`CountBuf`] counter, and the actual encoders all agree byte-for-byte —
//! property tests pin `encode_*(x).len() == x.wire_bytes()` for every
//! entity, which is what lets the runtime serialize **once** and use the
//! frame length as the byte metric everywhere.
//!
//! Encodable entities:
//! * [`CapturedState`] — SOD state messages (16-byte magic/kind header,
//!   u16-prefixed names, u32-prefixed value sequences),
//! * [`ClassDef`] — on-demand code shipping (the class-file-load-hook path),
//! * [`WireObject`] — on-demand heap object fetches and dirty write-backs.
//!
//! Layout discipline: little-endian fixed-width integers, length-prefixed
//! strings and sequences. Every `encode_*` has a matching `decode_*`;
//! property tests round-trip all of them. Decoders validate every declared
//! length against `buf.remaining()` **before** allocating, so corrupt or
//! adversarial prefixes produce a typed [`VmError::Decode`] rather than a
//! huge allocation; encoders reject payloads whose lengths overflow their
//! prefix width with [`VmError::Encode`], so encode and decode can never
//! disagree on layout.
//!
//! Buffer lifecycle: encoders can write into pooled buffers
//! ([`BufferPool`]) checked out at encode time and recycled after the last
//! delivery (`Bytes::try_into_mut` reclaims the allocation when the frame's
//! refcount drops to one). Per-link sends batch multiple payloads into one
//! length-prefixed [`FrameBatch`] per delivery window.

use std::sync::Mutex;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::capture::{CapturedFrame, CapturedState, CapturedStatics, CapturedValue};
use crate::class::{ClassDef, ExEntry, ExKind, FieldDef, MethodDef};
use crate::error::{VmError, VmResult};
use crate::instr::{Cmp, Instr, SwitchTable};
use crate::value::{ObjId, TypeOf};

/// Magic word opening every framed state payload (`"SODW"` little-endian).
pub const STATE_MAGIC: u32 = 0x534F_4457;
/// Frame-kind discriminant for captured-state payloads.
pub const KIND_STATE: u32 = 1;

/// A heap object on the wire: the payload of an object-fault reply or a
/// dirty-object flush. References inside travel as home object ids.
#[derive(Clone, Debug, PartialEq)]
pub struct WireObject {
    /// Identity of the master copy on the home node. For objects created on
    /// a worker and flushed home for the first time this is a temporary id
    /// the home node remaps.
    pub home_id: ObjId,
    pub body: WireObjBody,
}

/// Body of a shipped object.
#[derive(Clone, Debug, PartialEq)]
pub enum WireObjBody {
    Obj {
        class: String,
        fields: Vec<CapturedValue>,
    },
    Arr {
        elems: Vec<CapturedValue>,
    },
    Str(String),
}

impl WireObject {
    /// Serialized size (the object-fetch transfer cost), counted without
    /// allocating. Equals `encode_object(self).len()`.
    pub fn wire_bytes(&self) -> u64 {
        let mut counter = CountBuf::default();
        let _ = put_object(&mut counter, self);
        counter.count()
    }
}

// ---------------------------------------------------------------------------
// Streaming size counter
// ---------------------------------------------------------------------------

/// A [`BufMut`] that discards bytes and only counts them: running an encoder
/// against a `CountBuf` yields the exact frame length without allocating.
/// This is how size queries on not-yet-encoded values stay allocation-free.
#[derive(Clone, Copy, Debug, Default)]
pub struct CountBuf {
    count: u64,
}

impl CountBuf {
    /// Bytes the encoder would have written so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl BufMut for CountBuf {
    fn put_u8(&mut self, _v: u8) {
        self.count += 1;
    }
    fn put_u16_le(&mut self, _v: u16) {
        self.count += 2;
    }
    fn put_u32_le(&mut self, _v: u32) {
        self.count += 4;
    }
    fn put_u64_le(&mut self, _v: u64) {
        self.count += 8;
    }
    fn put_i64_le(&mut self, _v: i64) {
        self.count += 8;
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.count += s.len() as u64;
    }
}

// ---------------------------------------------------------------------------
// Buffer pool
// ---------------------------------------------------------------------------

/// Retain at most this many idle buffers (beyond that, drop to the allocator).
const POOL_MAX_IDLE: usize = 64;
/// Capacity pre-reserved for buffers minted when the pool is empty.
const POOL_SEED_CAPACITY: usize = 256;

/// A small free-list of encode buffers. Encoders check a [`BytesMut`] out,
/// fill it, and freeze it into the [`Bytes`] frame that travels; after the
/// final delivery [`BufferPool::recycle`] reclaims the allocation when the
/// frame was the last owner. Pool state never influences encoded bytes, so
/// sharing one pool across parallel shards cannot perturb determinism.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Mutex<Vec<BytesMut>>,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a cleared buffer from the free list, or mint a fresh one.
    pub fn checkout(&self) -> BytesMut {
        self.free
            .lock()
            .expect("buffer pool lock")
            .pop()
            .unwrap_or_else(|| BytesMut::with_capacity(POOL_SEED_CAPACITY))
    }

    /// Return a delivered frame's allocation to the free list. Succeeds only
    /// when `frame` is the last handle on its allocation (clones still in
    /// flight keep it alive); returns whether the buffer was reclaimed.
    pub fn recycle(&self, frame: Bytes) -> bool {
        match frame.try_into_mut() {
            Ok(mut buf) => {
                buf.clear();
                self.give_back(buf);
                true
            }
            Err(_) => false,
        }
    }

    /// Return a checked-out buffer that never became a frame.
    pub fn give_back(&self, mut buf: BytesMut) {
        buf.clear();
        let mut free = self.free.lock().expect("buffer pool lock");
        if free.len() < POOL_MAX_IDLE {
            free.push(buf);
        }
    }

    /// Idle buffers currently held.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("buffer pool lock").len()
    }
}

// ---------------------------------------------------------------------------
// Frame batches (one length-prefixed frame per delivery window)
// ---------------------------------------------------------------------------

/// An ordered batch of encoded frames travelling over one link in one
/// delivery window, wire form `[u32 n] ([u32 len_i] [payload_i])*`.
/// [`FrameBatch::payload_bytes`] excludes the framing overhead, so batching
/// leaves every byte metric numerically identical to per-payload sends.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FrameBatch {
    frames: Vec<Bytes>,
}

impl FrameBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one encoded payload frame.
    pub fn push(&mut self, frame: Bytes) {
        self.frames.push(frame);
    }

    /// Number of frames in the batch.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the batch holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The batched frames, in push order.
    pub fn frames(&self) -> &[Bytes] {
        &self.frames
    }

    /// Consume the batch, yielding the owned frames (e.g. to recycle their
    /// allocations into a [`BufferPool`] after the final delivery).
    pub fn into_frames(self) -> Vec<Bytes> {
        self.frames
    }

    /// Sum of payload lengths — the byte metric, identical to summing
    /// `wire_bytes()` over the original values.
    pub fn payload_bytes(&self) -> u64 {
        self.frames.iter().map(|f| f.len() as u64).sum()
    }

    /// Encode the batch into its single length-prefixed delivery frame.
    pub fn encode(&self) -> VmResult<Bytes> {
        let mut buf =
            BytesMut::with_capacity(4 + self.frames.len() * 4 + self.payload_bytes() as usize);
        self.put_into(&mut buf)?;
        Ok(buf.freeze())
    }

    /// Encode into a pooled buffer (see [`BufferPool`]).
    pub fn encode_pooled(&self, pool: &BufferPool) -> VmResult<Bytes> {
        let mut buf = pool.checkout();
        self.put_into(&mut buf)?;
        Ok(buf.freeze())
    }

    fn put_into<B: BufMut>(&self, buf: &mut B) -> VmResult<()> {
        buf.put_u32_le(seq_len32(self.frames.len(), "frame batch too large")?);
        for f in &self.frames {
            buf.put_u32_le(seq_len32(f.len(), "batched frame too large")?);
            buf.put_slice(f);
        }
        Ok(())
    }

    /// Decode a delivery frame back into its payload frames. Zero-copy: the
    /// returned frames are sub-views of `buf`'s allocation.
    pub fn decode(mut buf: Bytes) -> VmResult<FrameBatch> {
        let n = get_u32(&mut buf)? as usize;
        ensure_seq(&buf, n, 4, "frame batch count overruns buffer")?;
        let mut frames = Vec::with_capacity(n);
        for _ in 0..n {
            let len = get_u32(&mut buf)? as usize;
            if buf.remaining() < len {
                return Err(VmError::Decode("batched frame truncated"));
            }
            frames.push(buf.split_to(len));
        }
        Ok(FrameBatch { frames })
    }
}

impl FromIterator<Bytes> for FrameBatch {
    fn from_iter<I: IntoIterator<Item = Bytes>>(iter: I) -> Self {
        FrameBatch {
            frames: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a FrameBatch {
    type Item = &'a Bytes;
    type IntoIter = std::slice::Iter<'a, Bytes>;
    fn into_iter(self) -> Self::IntoIter {
        self.frames.iter()
    }
}

// ---------------------------------------------------------------------------
// Primitive helpers
// ---------------------------------------------------------------------------

/// Check a declared sequence length against what the buffer can possibly
/// hold (`min_elem` = smallest encoded element) *before* allocating.
fn ensure_seq(buf: &Bytes, n: usize, min_elem: usize, what: &'static str) -> VmResult<()> {
    match n.checked_mul(min_elem) {
        Some(need) if need <= buf.remaining() => Ok(()),
        _ => Err(VmError::Decode(what)),
    }
}

fn seq_len32(n: usize, what: &'static str) -> VmResult<u32> {
    u32::try_from(n).map_err(|_| VmError::Encode(what))
}

fn seq_len16(n: usize, what: &'static str) -> VmResult<u16> {
    u16::try_from(n).map_err(|_| VmError::Encode(what))
}

fn put_str<B: BufMut>(buf: &mut B, s: &str) -> VmResult<()> {
    buf.put_u32_le(seq_len32(s.len(), "string exceeds u32 length prefix")?);
    buf.put_slice(s.as_bytes());
    Ok(())
}

fn get_str(buf: &mut Bytes) -> VmResult<String> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(VmError::Decode("string truncated"));
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| VmError::Decode("invalid utf8"))
}

/// Name strings in state frames use a compact u16 prefix.
fn put_str16<B: BufMut>(buf: &mut B, s: &str) -> VmResult<()> {
    buf.put_u16_le(seq_len16(s.len(), "name exceeds u16 length prefix")?);
    buf.put_slice(s.as_bytes());
    Ok(())
}

fn get_str16(buf: &mut Bytes) -> VmResult<String> {
    let len = get_u16(buf)? as usize;
    if buf.remaining() < len {
        return Err(VmError::Decode("string truncated"));
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| VmError::Decode("invalid utf8"))
}

fn get_u8(buf: &mut Bytes) -> VmResult<u8> {
    if buf.remaining() < 1 {
        return Err(VmError::Decode("u8 truncated"));
    }
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut Bytes) -> VmResult<u16> {
    if buf.remaining() < 2 {
        return Err(VmError::Decode("u16 truncated"));
    }
    Ok(buf.get_u16_le())
}

fn get_u32(buf: &mut Bytes) -> VmResult<u32> {
    if buf.remaining() < 4 {
        return Err(VmError::Decode("u32 truncated"));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut Bytes) -> VmResult<u64> {
    if buf.remaining() < 8 {
        return Err(VmError::Decode("u64 truncated"));
    }
    Ok(buf.get_u64_le())
}

fn get_i64(buf: &mut Bytes) -> VmResult<i64> {
    Ok(get_u64(buf)? as i64)
}

fn get_f64(buf: &mut Bytes) -> VmResult<f64> {
    Ok(f64::from_bits(get_u64(buf)?))
}

// ---------------------------------------------------------------------------
// CapturedValue
// ---------------------------------------------------------------------------

fn put_captured_value<B: BufMut>(buf: &mut B, v: &CapturedValue) {
    match v {
        CapturedValue::Null => buf.put_u8(0),
        CapturedValue::Int(i) => {
            buf.put_u8(1);
            buf.put_i64_le(*i);
        }
        CapturedValue::Num(n) => {
            buf.put_u8(2);
            buf.put_u64_le(n.to_bits());
        }
        CapturedValue::HomeRef(id) => {
            buf.put_u8(3);
            buf.put_u64_le(u64::from(*id));
        }
    }
}

fn get_captured_value(buf: &mut Bytes) -> VmResult<CapturedValue> {
    Ok(match get_u8(buf)? {
        0 => CapturedValue::Null,
        1 => CapturedValue::Int(get_i64(buf)?),
        2 => CapturedValue::Num(get_f64(buf)?),
        3 => CapturedValue::HomeRef(get_u64(buf)? as ObjId),
        _ => return Err(VmError::Decode("bad CapturedValue tag")),
    })
}

fn put_values<B: BufMut>(buf: &mut B, vs: &[CapturedValue]) -> VmResult<()> {
    buf.put_u32_le(seq_len32(vs.len(), "value sequence exceeds u32 prefix")?);
    for v in vs {
        put_captured_value(buf, v);
    }
    Ok(())
}

fn get_values(buf: &mut Bytes) -> VmResult<Vec<CapturedValue>> {
    let n = get_u32(buf)? as usize;
    ensure_seq(buf, n, 1, "value count overruns buffer")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_captured_value(buf)?);
    }
    Ok(out)
}

/// Statics value sequences use a compact u16 prefix.
fn put_values16<B: BufMut>(buf: &mut B, vs: &[CapturedValue]) -> VmResult<()> {
    buf.put_u16_le(seq_len16(vs.len(), "value sequence exceeds u16 prefix")?);
    for v in vs {
        put_captured_value(buf, v);
    }
    Ok(())
}

fn get_values16(buf: &mut Bytes) -> VmResult<Vec<CapturedValue>> {
    let n = get_u16(buf)? as usize;
    ensure_seq(buf, n, 1, "value count overruns buffer")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_captured_value(buf)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// CapturedState
// ---------------------------------------------------------------------------

/// Write a captured state message to any [`BufMut`] sink. The layout is
/// sized so the frame length equals `CapturedState::wire_bytes()` exactly:
/// a 16-byte `[magic][kind][nframes][nstatics]` header, then per frame
/// `[u16 class_len][class][u16 method_len][method][u32 pc][u32 nlocals]
/// [locals]` (12 fixed bytes) and per statics entry
/// `[u16 class_len][class][u16 nvalues][values]` (4 fixed bytes).
fn put_state<B: BufMut>(buf: &mut B, state: &CapturedState) -> VmResult<()> {
    buf.put_u32_le(STATE_MAGIC);
    buf.put_u32_le(KIND_STATE);
    buf.put_u32_le(seq_len32(
        state.frames.len(),
        "frame count exceeds u32 prefix",
    )?);
    buf.put_u32_le(seq_len32(
        state.statics.len(),
        "statics count exceeds u32 prefix",
    )?);
    for f in &state.frames {
        put_str16(buf, &f.class)?;
        put_str16(buf, &f.method)?;
        buf.put_u32_le(f.pc);
        put_values(buf, &f.locals)?;
    }
    for s in &state.statics {
        put_str16(buf, &s.class)?;
        put_values16(buf, &s.values)?;
    }
    Ok(())
}

/// Encode a captured state message into a fresh exact-size buffer.
pub fn encode_state(state: &CapturedState) -> VmResult<Bytes> {
    let mut buf = BytesMut::with_capacity(state.wire_bytes() as usize);
    put_state(&mut buf, state)?;
    Ok(buf.freeze())
}

/// Encode a captured state message into a pooled buffer.
pub fn encode_state_pooled(pool: &BufferPool, state: &CapturedState) -> VmResult<Bytes> {
    let mut buf = pool.checkout();
    put_state(&mut buf, state)?;
    Ok(buf.freeze())
}

/// Decode a captured state message, validating the frame header and every
/// declared length before allocating.
pub fn decode_state(mut buf: Bytes) -> VmResult<CapturedState> {
    if get_u32(&mut buf)? != STATE_MAGIC {
        return Err(VmError::Decode("bad state magic"));
    }
    if get_u32(&mut buf)? != KIND_STATE {
        return Err(VmError::Decode("bad state frame kind"));
    }
    let nframes = get_u32(&mut buf)? as usize;
    let nstatics = get_u32(&mut buf)? as usize;
    ensure_seq(&buf, nframes, 12, "frame count overruns buffer")?;
    // Statics follow the frames; their minimum footprint must fit too.
    ensure_seq(&buf, nstatics, 4, "statics count overruns buffer")?;
    let mut frames = Vec::with_capacity(nframes);
    for _ in 0..nframes {
        let class = get_str16(&mut buf)?;
        let method = get_str16(&mut buf)?;
        let pc = get_u32(&mut buf)?;
        let locals = get_values(&mut buf)?;
        frames.push(CapturedFrame {
            class,
            method,
            pc,
            locals,
        });
    }
    let mut statics = Vec::with_capacity(nstatics);
    for _ in 0..nstatics {
        let class = get_str16(&mut buf)?;
        let values = get_values16(&mut buf)?;
        statics.push(CapturedStatics { class, values });
    }
    Ok(CapturedState { frames, statics })
}

// ---------------------------------------------------------------------------
// Objects
// ---------------------------------------------------------------------------

fn put_object<B: BufMut>(buf: &mut B, obj: &WireObject) -> VmResult<()> {
    buf.put_u64_le(u64::from(obj.home_id));
    match &obj.body {
        WireObjBody::Obj { class, fields } => {
            buf.put_u8(0);
            put_str(buf, class)?;
            put_values(buf, fields)?;
        }
        WireObjBody::Arr { elems } => {
            buf.put_u8(1);
            put_values(buf, elems)?;
        }
        WireObjBody::Str(s) => {
            buf.put_u8(2);
            put_str(buf, s)?;
        }
    }
    Ok(())
}

/// Encode a shipped heap object.
pub fn encode_object(obj: &WireObject) -> VmResult<Bytes> {
    let mut buf = BytesMut::with_capacity(64);
    put_object(&mut buf, obj)?;
    Ok(buf.freeze())
}

/// Encode a shipped heap object into a pooled buffer.
pub fn encode_object_pooled(pool: &BufferPool, obj: &WireObject) -> VmResult<Bytes> {
    let mut buf = pool.checkout();
    put_object(&mut buf, obj)?;
    Ok(buf.freeze())
}

/// Decode a shipped heap object.
pub fn decode_object(mut buf: Bytes) -> VmResult<WireObject> {
    let home_id = get_u64(&mut buf)? as ObjId;
    let body = match get_u8(&mut buf)? {
        0 => WireObjBody::Obj {
            class: get_str(&mut buf)?,
            fields: get_values(&mut buf)?,
        },
        1 => WireObjBody::Arr {
            elems: get_values(&mut buf)?,
        },
        2 => WireObjBody::Str(get_str(&mut buf)?),
        _ => return Err(VmError::Decode("bad WireObject tag")),
    };
    Ok(WireObject { home_id, body })
}

// ---------------------------------------------------------------------------
// Object extraction / installation (home ↔ worker heap transfer)
// ---------------------------------------------------------------------------

use crate::heap::{Heap, ObjKind};
use crate::value::Value;

/// Extract object `id` from a heap as a shallow [`WireObject`]: primitive
/// slots by value, reference slots as home ids (nulled + flagged on
/// install). This is the home-side half of an object-fault reply.
pub fn extract_object(heap: &Heap, id: ObjId) -> VmResult<WireObject> {
    let obj = heap.get(id)?;
    let conv = |vs: &[Value]| -> Vec<CapturedValue> {
        vs.iter().map(|v| CapturedValue::from_value(*v)).collect()
    };
    let body = match &obj.kind {
        ObjKind::Obj { class, fields } => WireObjBody::Obj {
            class: class.to_string(),
            fields: conv(fields),
        },
        ObjKind::Arr { elems } => WireObjBody::Arr { elems: conv(elems) },
        ObjKind::Str(s) => WireObjBody::Str(s.clone()),
        ObjKind::Exception { message, .. } => WireObjBody::Str(message.clone()),
    };
    Ok(WireObject { home_id: id, body })
}

/// Extract the transitive closure of `id` (deep fetch / eager copy):
/// breadth-first over reference slots. Returns objects in BFS order, root
/// first.
pub fn extract_closure(heap: &Heap, id: ObjId) -> VmResult<Vec<WireObject>> {
    let mut seen = std::collections::HashSet::new();
    let mut queue = std::collections::VecDeque::new();
    let mut out = Vec::new();
    seen.insert(id);
    queue.push_back(id);
    while let Some(cur) = queue.pop_front() {
        let wire = extract_object(heap, cur)?;
        let refs: Vec<ObjId> = match &wire.body {
            WireObjBody::Obj { fields, .. } => fields
                .iter()
                .filter_map(|v| match v {
                    CapturedValue::HomeRef(r) => Some(*r),
                    _ => None,
                })
                .collect(),
            WireObjBody::Arr { elems } => elems
                .iter()
                .filter_map(|v| match v {
                    CapturedValue::HomeRef(r) => Some(*r),
                    _ => None,
                })
                .collect(),
            WireObjBody::Str(_) => Vec::new(),
        };
        out.push(wire);
        for r in refs {
            if seen.insert(r) {
                queue.push_back(r);
            }
        }
    }
    Ok(out)
}

/// Install a shipped object into a worker heap as a cached copy: reference
/// slots become transfer-nulled values carrying their home identity (they
/// fault in on demand), and `home_id` is recorded for nested fault
/// resolution and write-back. If a copy of the same home object already
/// exists it is refreshed in place.
pub fn install_object(heap: &mut Heap, obj: &WireObject) -> VmResult<ObjId> {
    let conv =
        |vs: &[CapturedValue]| -> Vec<Value> { vs.iter().map(|v| v.to_nulled_value()).collect() };
    let kind = match &obj.body {
        // The decoded class name gets a fresh `Arc`; the interpreter
        // canonicalizes it to the loaded class's shared `Arc` on the first
        // slow resolve at any receiver-keyed inline-cache site.
        WireObjBody::Obj { class, fields } => ObjKind::Obj {
            class: class.as_str().into(),
            fields: conv(fields),
        },
        WireObjBody::Arr { elems } => ObjKind::Arr { elems: conv(elems) },
        WireObjBody::Str(s) => ObjKind::Str(s.clone()),
    };
    if let Some(existing) = heap.find_cached(obj.home_id) {
        let slot = heap.get_mut(existing)?;
        slot.kind = kind;
        slot.status = crate::heap::ObjStatus::Local;
        slot.dirty = false;
        return Ok(existing);
    }
    let id = match kind {
        ObjKind::Obj { class, fields } => heap.alloc_obj(class, fields),
        ObjKind::Arr { elems } => heap.alloc_arr_from(elems),
        ObjKind::Str(s) => heap.alloc_str(s),
        ObjKind::Exception { .. } => unreachable!("wire bodies never decode to exceptions"),
    };
    heap.get_mut(id)?.home_id = Some(obj.home_id);
    Ok(id)
}

/// Build the wire form of a *dirty* object for the write-back flush: values
/// convert refs to home ids where the local copy knows them; refs to
/// worker-created objects are encoded as `HomeRef(temp_base + local_id)` so
/// the home side can remap them after allocating masters (see the runtime's
/// flush protocol). Transfer-nulled refs re-export the home identity they
/// carry.
pub fn extract_dirty(heap: &Heap, id: ObjId, temp_base: ObjId) -> VmResult<WireObject> {
    let obj = heap.get(id)?;
    let conv = |vs: &[Value]| -> VmResult<Vec<CapturedValue>> {
        vs.iter()
            .map(|v| {
                Ok(match v {
                    Value::Ref(r) => match heap.get(*r)?.home_id {
                        Some(h) => CapturedValue::HomeRef(h),
                        None => CapturedValue::HomeRef(temp_base + r),
                    },
                    other => CapturedValue::from_value(*other),
                })
            })
            .collect()
    };
    let body = match &obj.kind {
        ObjKind::Obj { class, fields } => WireObjBody::Obj {
            class: class.to_string(),
            fields: conv(fields)?,
        },
        ObjKind::Arr { elems } => WireObjBody::Arr {
            elems: conv(elems)?,
        },
        ObjKind::Str(s) => WireObjBody::Str(s.clone()),
        ObjKind::Exception { message, .. } => WireObjBody::Str(message.clone()),
    };
    let home_id = obj.home_id.unwrap_or(temp_base + id);
    Ok(WireObject { home_id, body })
}

/// Serialized size of a [`crate::heap::HeapObj`] as shipped (for cost models that need a
/// size without building the message).
pub fn object_wire_bytes(heap: &Heap, id: ObjId) -> VmResult<u64> {
    Ok(extract_object(heap, id)?.wire_bytes())
}

// ---------------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------------

fn put_instr<B: BufMut>(buf: &mut B, i: &Instr) {
    use Instr::*;
    let cmp_code = |c: &Cmp| -> u8 {
        match c {
            Cmp::Eq => 0,
            Cmp::Ne => 1,
            Cmp::Lt => 2,
            Cmp::Le => 3,
            Cmp::Gt => 4,
            Cmp::Ge => 5,
        }
    };
    match i {
        PushI(v) => {
            buf.put_u8(0);
            buf.put_i64_le(*v);
        }
        PushF(v) => {
            buf.put_u8(1);
            buf.put_u64_le(v.to_bits());
        }
        PushStr(p) => {
            buf.put_u8(2);
            buf.put_u16_le(*p);
        }
        PushNull => buf.put_u8(3),
        Load(s) => {
            buf.put_u8(4);
            buf.put_u16_le(*s);
        }
        Store(s) => {
            buf.put_u8(5);
            buf.put_u16_le(*s);
        }
        Dup => buf.put_u8(6),
        Pop => buf.put_u8(7),
        Swap => buf.put_u8(8),
        Add => buf.put_u8(9),
        Sub => buf.put_u8(10),
        Mul => buf.put_u8(11),
        Div => buf.put_u8(12),
        Rem => buf.put_u8(13),
        Neg => buf.put_u8(14),
        Shl => buf.put_u8(15),
        Shr => buf.put_u8(16),
        BAnd => buf.put_u8(17),
        BOr => buf.put_u8(18),
        BXor => buf.put_u8(19),
        I2F => buf.put_u8(20),
        F2I => buf.put_u8(21),
        If(c, t) => {
            buf.put_u8(22);
            buf.put_u8(cmp_code(c));
            buf.put_u32_le(*t);
        }
        IfZ(c, t) => {
            buf.put_u8(23);
            buf.put_u8(cmp_code(c));
            buf.put_u32_le(*t);
        }
        IfNull(t) => {
            buf.put_u8(24);
            buf.put_u32_le(*t);
        }
        IfNonNull(t) => {
            buf.put_u8(25);
            buf.put_u32_le(*t);
        }
        Goto(t) => {
            buf.put_u8(26);
            buf.put_u32_le(*t);
        }
        Switch(s) => {
            buf.put_u8(27);
            buf.put_u16_le(*s);
        }
        New(c) => {
            buf.put_u8(28);
            buf.put_u16_le(*c);
        }
        GetField(f) => {
            buf.put_u8(29);
            buf.put_u16_le(*f);
        }
        PutField(f) => {
            buf.put_u8(30);
            buf.put_u16_le(*f);
        }
        GetStatic(c, f) => {
            buf.put_u8(31);
            buf.put_u16_le(*c);
            buf.put_u16_le(*f);
        }
        PutStatic(c, f) => {
            buf.put_u8(32);
            buf.put_u16_le(*c);
            buf.put_u16_le(*f);
        }
        NewArr => buf.put_u8(33),
        ALoad => buf.put_u8(34),
        AStore => buf.put_u8(35),
        ArrLen => buf.put_u8(36),
        InvokeStatic(c, m, n) => {
            buf.put_u8(37);
            buf.put_u16_le(*c);
            buf.put_u16_le(*m);
            buf.put_u8(*n);
        }
        InvokeVirtual(m, n) => {
            buf.put_u8(38);
            buf.put_u16_le(*m);
            buf.put_u8(*n);
        }
        Ret => buf.put_u8(39),
        RetV => buf.put_u8(40),
        ThrowKind(k) => {
            buf.put_u8(41);
            buf.put_u16_le(k.code());
        }
        Throw => buf.put_u8(42),
        NativeCall(n, a) => {
            buf.put_u8(43);
            buf.put_u16_le(*n);
            buf.put_u8(*a);
        }
        ReadCaptured(s) => {
            buf.put_u8(44);
            buf.put_u16_le(*s);
        }
        ReadCapturedPc => buf.put_u8(45),
        BringObjLocal(s) => {
            buf.put_u8(46);
            buf.put_u16_le(*s);
        }
        BringObjField(b, f) => {
            buf.put_u8(47);
            buf.put_u16_le(*b);
            buf.put_u16_le(*f);
        }
        BringObjStaticTo(c, f, d) => {
            buf.put_u8(48);
            buf.put_u16_le(*c);
            buf.put_u16_le(*f);
            buf.put_u16_le(*d);
        }
        BringObjElemTo(b, x, d) => {
            buf.put_u8(49);
            buf.put_u16_le(*b);
            buf.put_u16_le(*x);
            buf.put_u16_le(*d);
        }
        RethrowAppNpe => buf.put_u8(50),
        Nop => buf.put_u8(51),
        CheckStatus(d) => {
            buf.put_u8(52);
            buf.put_u8(*d);
        }
        RestoreLocal(s) => {
            buf.put_u8(53);
            buf.put_u16_le(*s);
        }
    }
}

fn get_cmp(buf: &mut Bytes) -> VmResult<Cmp> {
    Ok(match get_u8(buf)? {
        0 => Cmp::Eq,
        1 => Cmp::Ne,
        2 => Cmp::Lt,
        3 => Cmp::Le,
        4 => Cmp::Gt,
        5 => Cmp::Ge,
        _ => return Err(VmError::Decode("bad Cmp")),
    })
}

fn get_instr(buf: &mut Bytes) -> VmResult<Instr> {
    use Instr::*;
    Ok(match get_u8(buf)? {
        0 => PushI(get_i64(buf)?),
        1 => PushF(get_f64(buf)?),
        2 => PushStr(get_u16(buf)?),
        3 => PushNull,
        4 => Load(get_u16(buf)?),
        5 => Store(get_u16(buf)?),
        6 => Dup,
        7 => Pop,
        8 => Swap,
        9 => Add,
        10 => Sub,
        11 => Mul,
        12 => Div,
        13 => Rem,
        14 => Neg,
        15 => Shl,
        16 => Shr,
        17 => BAnd,
        18 => BOr,
        19 => BXor,
        20 => I2F,
        21 => F2I,
        22 => If(get_cmp(buf)?, get_u32(buf)?),
        23 => IfZ(get_cmp(buf)?, get_u32(buf)?),
        24 => IfNull(get_u32(buf)?),
        25 => IfNonNull(get_u32(buf)?),
        26 => Goto(get_u32(buf)?),
        27 => Switch(get_u16(buf)?),
        28 => New(get_u16(buf)?),
        29 => GetField(get_u16(buf)?),
        30 => PutField(get_u16(buf)?),
        31 => GetStatic(get_u16(buf)?, get_u16(buf)?),
        32 => PutStatic(get_u16(buf)?, get_u16(buf)?),
        33 => NewArr,
        34 => ALoad,
        35 => AStore,
        36 => ArrLen,
        37 => InvokeStatic(get_u16(buf)?, get_u16(buf)?, get_u8(buf)?),
        38 => InvokeVirtual(get_u16(buf)?, get_u8(buf)?),
        39 => Ret,
        40 => RetV,
        41 => ThrowKind(ExKind::from_code(get_u16(buf)?)),
        42 => Throw,
        43 => NativeCall(get_u16(buf)?, get_u8(buf)?),
        44 => ReadCaptured(get_u16(buf)?),
        45 => ReadCapturedPc,
        46 => BringObjLocal(get_u16(buf)?),
        47 => BringObjField(get_u16(buf)?, get_u16(buf)?),
        48 => BringObjStaticTo(get_u16(buf)?, get_u16(buf)?, get_u16(buf)?),
        49 => BringObjElemTo(get_u16(buf)?, get_u16(buf)?, get_u16(buf)?),
        50 => RethrowAppNpe,
        51 => Nop,
        52 => CheckStatus(get_u8(buf)?),
        53 => RestoreLocal(get_u16(buf)?),
        _ => return Err(VmError::Decode("bad opcode")),
    })
}

// ---------------------------------------------------------------------------
// Classes
// ---------------------------------------------------------------------------

fn type_code(t: TypeOf) -> u8 {
    match t {
        TypeOf::Int => 0,
        TypeOf::Num => 1,
        TypeOf::Ref => 2,
    }
}

fn get_type(buf: &mut Bytes) -> VmResult<TypeOf> {
    Ok(match get_u8(buf)? {
        0 => TypeOf::Int,
        1 => TypeOf::Num,
        2 => TypeOf::Ref,
        _ => return Err(VmError::Decode("bad TypeOf")),
    })
}

fn put_class<B: BufMut>(buf: &mut B, c: &ClassDef) -> VmResult<()> {
    put_str(buf, &c.name)?;
    buf.put_u32_le(seq_len32(c.pool.len(), "constant pool exceeds u32 prefix")?);
    for s in &c.pool {
        put_str(buf, s)?;
    }
    buf.put_u32_le(seq_len32(c.fields.len(), "field count exceeds u32 prefix")?);
    for f in &c.fields {
        put_str(buf, &f.name)?;
        buf.put_u8(type_code(f.ty));
        buf.put_u8(f.is_static as u8);
    }
    buf.put_u32_le(seq_len32(
        c.methods.len(),
        "method count exceeds u32 prefix",
    )?);
    for m in &c.methods {
        put_str(buf, &m.name)?;
        buf.put_u16_le(m.nargs);
        buf.put_u16_le(m.nlocals);
        buf.put_u32_le(seq_len32(m.code.len(), "code length exceeds u32 prefix")?);
        for i in &m.code {
            put_instr(buf, i);
        }
        for l in &m.lines {
            buf.put_u32_le(*l);
        }
        buf.put_u32_le(seq_len32(
            m.ex_table.len(),
            "exception table exceeds u32 prefix",
        )?);
        for e in &m.ex_table {
            buf.put_u32_le(e.from);
            buf.put_u32_le(e.to);
            buf.put_u32_le(e.target);
            buf.put_u16_le(e.kind.code());
            buf.put_u8(e.fault_handler as u8);
        }
        buf.put_u32_le(seq_len32(
            m.switches.len(),
            "switch count exceeds u32 prefix",
        )?);
        for s in &m.switches {
            buf.put_u32_le(seq_len32(s.pairs.len(), "switch pairs exceed u32 prefix")?);
            for (k, t) in &s.pairs {
                buf.put_i64_le(*k);
                buf.put_u32_le(*t);
            }
            buf.put_u32_le(s.default);
        }
    }
    Ok(())
}

/// Encode a class definition (the "class file" that code shipping moves).
pub fn encode_class(c: &ClassDef) -> VmResult<Bytes> {
    let mut buf = BytesMut::with_capacity(class_wire_bytes(c) as usize);
    put_class(&mut buf, c)?;
    Ok(buf.freeze())
}

/// Encode a class definition into a pooled buffer.
pub fn encode_class_pooled(pool: &BufferPool, c: &ClassDef) -> VmResult<Bytes> {
    let mut buf = pool.checkout();
    put_class(&mut buf, c)?;
    Ok(buf.freeze())
}

/// Decode a class definition.
pub fn decode_class(mut buf: Bytes) -> VmResult<ClassDef> {
    let name = get_str(&mut buf)?;
    let npool = get_u32(&mut buf)? as usize;
    ensure_seq(&buf, npool, 4, "pool count overruns buffer")?;
    let mut pool = Vec::with_capacity(npool);
    for _ in 0..npool {
        pool.push(get_str(&mut buf)?);
    }
    let nfields = get_u32(&mut buf)? as usize;
    ensure_seq(&buf, nfields, 6, "field count overruns buffer")?;
    let mut fields = Vec::with_capacity(nfields);
    for _ in 0..nfields {
        let name = get_str(&mut buf)?;
        let ty = get_type(&mut buf)?;
        let is_static = get_u8(&mut buf)? != 0;
        fields.push(FieldDef {
            name,
            ty,
            is_static,
        });
    }
    let nmethods = get_u32(&mut buf)? as usize;
    ensure_seq(&buf, nmethods, 20, "method count overruns buffer")?;
    let mut methods = Vec::with_capacity(nmethods);
    for _ in 0..nmethods {
        let name = get_str(&mut buf)?;
        let nargs = get_u16(&mut buf)?;
        let nlocals = get_u16(&mut buf)?;
        let ncode = get_u32(&mut buf)? as usize;
        // Each instruction is at least 1 byte and is followed by a 4-byte
        // line entry, so the method body needs at least 5 bytes per pc.
        ensure_seq(&buf, ncode, 5, "code length overruns buffer")?;
        let mut code = Vec::with_capacity(ncode);
        for _ in 0..ncode {
            code.push(get_instr(&mut buf)?);
        }
        let mut lines = Vec::with_capacity(ncode);
        for _ in 0..ncode {
            lines.push(get_u32(&mut buf)?);
        }
        let nex = get_u32(&mut buf)? as usize;
        ensure_seq(&buf, nex, 15, "exception table overruns buffer")?;
        let mut ex_table = Vec::with_capacity(nex);
        for _ in 0..nex {
            let from = get_u32(&mut buf)?;
            let to = get_u32(&mut buf)?;
            let target = get_u32(&mut buf)?;
            let kind = ExKind::from_code(get_u16(&mut buf)?);
            let fault_handler = get_u8(&mut buf)? != 0;
            ex_table.push(ExEntry {
                from,
                to,
                target,
                kind,
                fault_handler,
            });
        }
        let nsw = get_u32(&mut buf)? as usize;
        ensure_seq(&buf, nsw, 8, "switch count overruns buffer")?;
        let mut switches = Vec::with_capacity(nsw);
        for _ in 0..nsw {
            let npairs = get_u32(&mut buf)? as usize;
            ensure_seq(&buf, npairs, 12, "switch pairs overrun buffer")?;
            let mut pairs = Vec::with_capacity(npairs);
            for _ in 0..npairs {
                let k = get_i64(&mut buf)?;
                let t = get_u32(&mut buf)?;
                pairs.push((k, t));
            }
            let default = get_u32(&mut buf)?;
            switches.push(SwitchTable { pairs, default });
        }
        methods.push(MethodDef {
            name,
            nargs,
            nlocals,
            code,
            lines,
            ex_table,
            switches,
        });
    }
    Ok(ClassDef {
        name,
        fields,
        methods,
        pool,
    })
}

/// Serialized size of a class, used for code-shipping transfer costs.
/// Streams through [`CountBuf`] — no allocation. A class whose lengths
/// overflow their prefix widths is unencodable (`encode_class` rejects it
/// before anything ships), so the partial count returned for such a class
/// is never used as a transfer size.
pub fn class_wire_bytes(c: &ClassDef) -> u64 {
    let mut counter = CountBuf::default();
    let _ = put_class(&mut counter, c);
    counter.count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::FieldDef;

    fn sample_class() -> ClassDef {
        let mut c = ClassDef::new("Geometry")
            .with_field(FieldDef::instance("r", TypeOf::Ref))
            .with_field(FieldDef::stat("count", TypeOf::Int));
        let r = c.intern("r");
        c.methods.push(
            MethodDef::new("displaceX", 1, 2)
                .with_code(
                    vec![
                        Instr::Load(0),
                        Instr::GetField(r),
                        Instr::Store(1),
                        Instr::PushI(3),
                        Instr::Switch(0),
                        Instr::Ret,
                    ],
                    vec![1, 1, 1, 2, 2, 3],
                )
                .with_ex_table(vec![
                    ExEntry::new(0, 3, 5, ExKind::NullPointer).as_fault_handler()
                ])
                .with_switches(vec![SwitchTable {
                    pairs: vec![(0, 0), (3, 3)],
                    default: 5,
                }]),
        );
        c
    }

    fn sample_state() -> CapturedState {
        CapturedState {
            frames: vec![
                CapturedFrame {
                    class: "Main".into(),
                    method: "main".into(),
                    pc: 5,
                    locals: vec![CapturedValue::Int(-3), CapturedValue::HomeRef(12)],
                },
                CapturedFrame {
                    class: "Main".into(),
                    method: "f".into(),
                    pc: 2,
                    locals: vec![CapturedValue::Num(2.5), CapturedValue::Null],
                },
            ],
            statics: vec![CapturedStatics {
                class: "Main".into(),
                values: vec![CapturedValue::Int(77)],
            }],
        }
    }

    #[test]
    fn class_roundtrip() {
        let c = sample_class();
        let encoded = encode_class(&c).unwrap();
        let decoded = decode_class(encoded).unwrap();
        assert_eq!(c, decoded);
    }

    #[test]
    fn state_roundtrip() {
        let state = sample_state();
        let decoded = decode_state(encode_state(&state).unwrap()).unwrap();
        assert_eq!(state, decoded);
    }

    #[test]
    fn frame_length_is_the_byte_metric() {
        let state = sample_state();
        assert_eq!(
            encode_state(&state).unwrap().len() as u64,
            state.wire_bytes()
        );
        let c = sample_class();
        assert_eq!(encode_class(&c).unwrap().len() as u64, class_wire_bytes(&c));
        let obj = WireObject {
            home_id: 7,
            body: WireObjBody::Obj {
                class: "Point".into(),
                fields: vec![CapturedValue::Int(1), CapturedValue::Null],
            },
        };
        assert_eq!(encode_object(&obj).unwrap().len() as u64, obj.wire_bytes());
    }

    #[test]
    fn object_roundtrip() {
        for obj in [
            WireObject {
                home_id: 7,
                body: WireObjBody::Obj {
                    class: "Point".into(),
                    fields: vec![CapturedValue::Int(1), CapturedValue::HomeRef(3)],
                },
            },
            WireObject {
                home_id: 8,
                body: WireObjBody::Arr {
                    elems: vec![CapturedValue::Num(0.5); 4],
                },
            },
            WireObject {
                home_id: 9,
                body: WireObjBody::Str("hello".into()),
            },
        ] {
            let decoded = decode_object(encode_object(&obj).unwrap()).unwrap();
            assert_eq!(obj, decoded);
        }
    }

    #[test]
    fn all_instrs_roundtrip() {
        use Instr::*;
        let all = vec![
            PushI(i64::MIN),
            PushF(-0.0),
            PushStr(9),
            PushNull,
            Load(1),
            Store(2),
            Dup,
            Pop,
            Swap,
            Add,
            Sub,
            Mul,
            Div,
            Rem,
            Neg,
            Shl,
            Shr,
            BAnd,
            BOr,
            BXor,
            I2F,
            F2I,
            If(Cmp::Le, 77),
            IfZ(Cmp::Gt, 3),
            IfNull(4),
            IfNonNull(5),
            Goto(6),
            Switch(0),
            New(1),
            GetField(2),
            PutField(3),
            GetStatic(4, 5),
            PutStatic(6, 7),
            NewArr,
            ALoad,
            AStore,
            ArrLen,
            InvokeStatic(1, 2, 3),
            InvokeVirtual(4, 5),
            Ret,
            RetV,
            ThrowKind(ExKind::OutOfMemory),
            Throw,
            NativeCall(8, 2),
            ReadCaptured(3),
            ReadCapturedPc,
            BringObjLocal(1),
            BringObjField(2, 3),
            BringObjStaticTo(4, 5, 6),
            BringObjElemTo(7, 8, 9),
            RethrowAppNpe,
            Nop,
            CheckStatus(1),
            RestoreLocal(2),
        ];
        let mut buf = BytesMut::new();
        for i in &all {
            put_instr(&mut buf, i);
        }
        let mut bytes = buf.freeze();
        for expect in &all {
            let got = get_instr(&mut bytes).unwrap();
            assert_eq!(&got, expect);
        }
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn truncated_input_errors() {
        let c = sample_class();
        let encoded = encode_class(&c).unwrap();
        for cut in 1..encoded.len() {
            assert!(
                decode_class(encoded.slice(0..encoded.len() - cut)).is_err(),
                "truncation at {cut} must error"
            );
        }
        assert!(decode_state(Bytes::from_static(&[1, 2])).is_err());
        assert!(decode_object(Bytes::from_static(&[0])).is_err());
    }

    #[test]
    fn state_header_is_validated() {
        let state = sample_state();
        let good = encode_state(&state).unwrap();
        // Corrupt the magic word.
        let mut bad = good.to_vec();
        bad[0] ^= 0xFF;
        assert_eq!(
            decode_state(Bytes::from(bad)),
            Err(VmError::Decode("bad state magic"))
        );
        // Corrupt the frame kind.
        let mut bad = good.to_vec();
        bad[4] = 9;
        assert_eq!(
            decode_state(Bytes::from(bad)),
            Err(VmError::Decode("bad state frame kind"))
        );
    }

    /// Adversarial length prefixes must be rejected *before* any allocation
    /// proportional to the declared count happens.
    #[test]
    fn oversized_counts_rejected_without_allocation() {
        // State claiming u32::MAX frames in a 16-byte message.
        let mut b = BytesMut::new();
        b.put_u32_le(STATE_MAGIC);
        b.put_u32_le(KIND_STATE);
        b.put_u32_le(u32::MAX);
        b.put_u32_le(0);
        assert_eq!(
            decode_state(b.freeze()),
            Err(VmError::Decode("frame count overruns buffer"))
        );

        // Array object claiming u32::MAX elements with an empty body.
        let mut b = BytesMut::new();
        b.put_u64_le(1);
        b.put_u8(1); // Arr tag
        b.put_u32_le(u32::MAX);
        assert_eq!(
            decode_object(b.freeze()),
            Err(VmError::Decode("value count overruns buffer"))
        );

        // Class claiming a huge constant pool.
        let mut b = BytesMut::new();
        b.put_u32_le(1);
        b.put_slice(b"C");
        b.put_u32_le(u32::MAX);
        assert_eq!(
            decode_class(b.freeze()),
            Err(VmError::Decode("pool count overruns buffer"))
        );

        // Method body claiming a huge instruction count.
        let mut b = BytesMut::new();
        b.put_u32_le(1);
        b.put_slice(b"C");
        b.put_u32_le(0); // pool
        b.put_u32_le(0); // fields
        b.put_u32_le(1); // one method
        b.put_u32_le(1);
        b.put_slice(b"m");
        b.put_u16_le(0);
        b.put_u16_le(0);
        b.put_u32_le(u32::MAX); // ncode
        b.put_slice(&[0; 7]); // pad past the min-method-size guard
        assert_eq!(
            decode_class(b.freeze()),
            Err(VmError::Decode("code length overruns buffer"))
        );

        // Oversized string length inside an object payload.
        let mut b = BytesMut::new();
        b.put_u64_le(1);
        b.put_u8(2); // Str tag
        b.put_u32_le(u32::MAX);
        assert_eq!(
            decode_object(b.freeze()),
            Err(VmError::Decode("string truncated"))
        );
    }

    #[test]
    fn oversize_names_are_typed_encode_errors() {
        // State-frame names carry a u16 prefix: 65536 bytes cannot encode.
        let state = CapturedState {
            frames: vec![CapturedFrame {
                class: "x".repeat(1 << 16),
                method: "m".into(),
                pc: 0,
                locals: vec![],
            }],
            statics: vec![],
        };
        assert_eq!(
            encode_state(&state),
            Err(VmError::Encode("name exceeds u16 length prefix"))
        );
        // Statics value sequences carry a u16 prefix.
        let state = CapturedState {
            frames: vec![],
            statics: vec![CapturedStatics {
                class: "C".into(),
                values: vec![CapturedValue::Null; 1 << 16],
            }],
        };
        assert_eq!(
            encode_state(&state),
            Err(VmError::Encode("value sequence exceeds u16 prefix"))
        );
    }

    #[test]
    fn frame_batch_roundtrip_and_payload_metric() {
        let c = sample_class();
        let state = sample_state();
        let mut batch = FrameBatch::new();
        batch.push(encode_class(&c).unwrap());
        batch.push(encode_state(&state).unwrap());
        assert_eq!(batch.len(), 2);
        assert_eq!(
            batch.payload_bytes(),
            class_wire_bytes(&c) + state.wire_bytes()
        );
        let delivered = batch.encode().unwrap();
        // Framing overhead: u32 count + u32 per frame.
        assert_eq!(delivered.len() as u64, 4 + 8 + batch.payload_bytes());
        let back = FrameBatch::decode(delivered).unwrap();
        assert_eq!(back, batch);
        assert_eq!(decode_class(back.frames()[0].clone()).unwrap(), c);
        assert_eq!(decode_state(back.frames()[1].clone()).unwrap(), state);

        // Corrupt batch counts are rejected before allocation.
        let mut b = BytesMut::new();
        b.put_u32_le(u32::MAX);
        assert_eq!(
            FrameBatch::decode(b.freeze()),
            Err(VmError::Decode("frame batch count overruns buffer"))
        );
    }

    #[test]
    fn buffer_pool_recycles_last_owner() {
        let pool = BufferPool::new();
        let state = sample_state();
        let frame = encode_state_pooled(&pool, &state).unwrap();
        assert_eq!(pool.idle(), 0);
        let cheap = frame.clone();
        assert!(!pool.recycle(frame), "clone in flight blocks reclaim");
        assert_eq!(decode_state(cheap.clone()).unwrap(), state);
        assert!(pool.recycle(cheap), "last owner reclaims");
        assert_eq!(pool.idle(), 1);
        // The recycled buffer is reused, cleared.
        let again = encode_state_pooled(&pool, &state).unwrap();
        assert_eq!(pool.idle(), 0);
        assert_eq!(again.len() as u64, state.wire_bytes());
    }

    #[test]
    fn wire_size_reflects_instrumentation_growth() {
        let plain = sample_class();
        let mut fat = plain.clone();
        let m = &mut fat.methods[0];
        for _ in 0..10 {
            m.code.push(Instr::Nop);
            m.lines.push(9);
        }
        assert!(class_wire_bytes(&fat) > class_wire_bytes(&plain));
    }
}
