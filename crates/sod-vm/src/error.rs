//! VM error types.
//!
//! [`VmError`] covers *engine-level* failures: malformed bytecode, linkage
//! problems, type confusion. These are distinct from *guest-level* Java-style
//! exceptions (`NullPointerException` and friends), which are modelled by
//! [`crate::class::ExKind`] and dispatched through exception tables. A guest
//! exception only becomes a `VmError::UnhandledException` if it escapes the
//! outermost frame.

use std::fmt;

use crate::class::ExKind;

/// Result alias used throughout the VM.
pub type VmResult<T> = Result<T, VmError>;

/// Engine-level errors.
#[derive(Clone, Debug, PartialEq)]
pub enum VmError {
    /// A value had the wrong storage class for an instruction.
    TypeMismatch {
        expected: &'static str,
        found: &'static str,
    },
    /// A reference operation was attempted on `null` (converted into a guest
    /// `NullPointerException` by the interpreter).
    NullDeref,
    /// Operand stack underflow: malformed bytecode.
    StackUnderflow,
    /// Local-variable slot out of range.
    BadLocalSlot(u16),
    /// Branch or pc outside the method body.
    BadPc(u32),
    /// Constant-pool index out of range.
    BadPoolIndex(u16),
    /// Named class is not loaded and no loader hook produced it.
    ClassNotFound(String),
    /// Named method not found in the named class.
    MethodNotFound { class: String, method: String },
    /// Named field not found.
    FieldNotFound { class: String, field: String },
    /// Named intrinsic not registered.
    UnknownIntrinsic(String),
    /// A guest exception escaped the outermost frame.
    UnhandledException { kind: ExKind, message: String },
    /// Heap reference is stale or out of range.
    BadRef(u32),
    /// A thread id was out of range or the thread has finished.
    BadThread(usize),
    /// Attempted to run a thread that is parked on a host request.
    ThreadParked(usize),
    /// Capture was requested at a point that is not migration-safe.
    NotAtMigrationSafePoint { method: String, pc: u32 },
    /// Restore-session protocol was violated (e.g. `ReadCaptured` outside a
    /// restoration).
    RestoreProtocol(&'static str),
    /// Bytecode failed structural verification.
    Verify { method: String, reason: String },
    /// Wire decoding failed.
    Decode(&'static str),
    /// Wire encoding failed (a length exceeded its prefix width).
    Encode(&'static str),
    /// Class is already loaded.
    DuplicateClass(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            VmError::NullDeref => write!(f, "null dereference"),
            VmError::StackUnderflow => write!(f, "operand stack underflow"),
            VmError::BadLocalSlot(s) => write!(f, "local slot {s} out of range"),
            VmError::BadPc(pc) => write!(f, "pc {pc} out of range"),
            VmError::BadPoolIndex(i) => write!(f, "constant pool index {i} out of range"),
            VmError::ClassNotFound(c) => write!(f, "class not found: {c}"),
            VmError::MethodNotFound { class, method } => {
                write!(f, "method not found: {class}.{method}")
            }
            VmError::FieldNotFound { class, field } => {
                write!(f, "field not found: {class}.{field}")
            }
            VmError::UnknownIntrinsic(n) => write!(f, "unknown intrinsic: {n}"),
            VmError::UnhandledException { kind, message } => {
                write!(f, "unhandled guest exception {kind:?}: {message}")
            }
            VmError::BadRef(id) => write!(f, "bad heap reference @{id}"),
            VmError::BadThread(t) => write!(f, "bad thread id {t}"),
            VmError::ThreadParked(t) => write!(f, "thread {t} is parked on a host request"),
            VmError::NotAtMigrationSafePoint { method, pc } => {
                write!(f, "not at a migration-safe point: {method} pc={pc}")
            }
            VmError::RestoreProtocol(m) => write!(f, "restore protocol violation: {m}"),
            VmError::Verify { method, reason } => {
                write!(f, "verification of {method} failed: {reason}")
            }
            VmError::Decode(m) => write!(f, "wire decode error: {m}"),
            VmError::Encode(m) => write!(f, "wire encode error: {m}"),
            VmError::DuplicateClass(c) => write!(f, "class already loaded: {c}"),
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = VmError::MethodNotFound {
            class: "Main".into(),
            method: "run".into(),
        };
        assert!(e.to_string().contains("Main.run"));
        let e = VmError::UnhandledException {
            kind: ExKind::NullPointer,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
    }
}
