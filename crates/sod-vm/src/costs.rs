//! Virtual-time cost model for VM execution.
//!
//! All evaluation in this reproduction runs on a deterministic virtual clock
//! (see `sod-net`). Every instruction is charged a cost in *virtual
//! nanoseconds*; nodes scale these by a CPU-speed factor, and the VM applies
//! a multiplier when running in interpreted (debug) mode — modelling the
//! JVM's mixed-mode execution that the paper describes ("program will run in
//! interpreted mode ... if some debugging functions are enabled").
//!
//! The base constants approximate a 2009-era 2.5 GHz Xeon running JIT-ed
//! Java: simple ops retire at a few ns, calls and allocations cost tens of
//! ns. Absolute values only matter up to scale; the paper comparisons are
//! ratio-shaped.

use crate::instr::Instr;

/// Multiplier applied to instruction costs while the VM runs with debugging
/// facilities enabled (breakpoints armed / restore in progress), modelling
/// interpreted mode. The paper's JESSICA2 baseline, built on an old Kaffe
/// JIT, is modelled with a similar externally applied factor.
pub const INTERP_MODE_FACTOR: u32 = 12;

/// Cost in virtual nanoseconds of executing `i` once in JIT mode.
///
/// Superinstructions charge *exactly* this, twice: a fused pair precomputes
/// the two halves' costs at link time and pushes each through a separate
/// meter charge (per-charge scaling does not distribute over a summed
/// cost), so fusion changes host time only, never virtual time.
#[inline]
pub fn instr_cost(i: &Instr) -> u64 {
    use Instr::*;
    match i {
        PushI(_) | PushF(_) | PushNull | Nop => 1,
        PushStr(_) => 4,
        Load(_) | Store(_) | Dup | Pop | Swap => 1,
        Add | Sub | Neg | BAnd | BOr | BXor | Shl | Shr | I2F | F2I => 1,
        Mul => 2,
        Div | Rem => 8,
        If(_, _) | IfZ(_, _) | IfNull(_) | IfNonNull(_) | Goto(_) => 1,
        Switch(_) => 6,
        New(_) => 30,
        NewArr => 25,
        GetField(_) | PutField(_) => 3,
        GetStatic(_, _) | PutStatic(_, _) => 2,
        ALoad | AStore | ArrLen => 2,
        InvokeStatic(_, _, _) | InvokeVirtual(_, _) => 12,
        Ret | RetV => 6,
        ThrowKind(_) | Throw | RethrowAppNpe => 400,
        NativeCall(_, _) => 40,
        ReadCaptured(_) | ReadCapturedPc => 20,
        RestoreLocal(_) => 25,
        BringObjLocal(_) | BringObjField(_, _) => 50,
        BringObjStaticTo(_, _, _) | BringObjElemTo(_, _, _) => 50,
        // One status-word load, a compare and a branch: the per-access tax
        // of the traditional DSM object-checking approach (paper Table V).
        CheckStatus(_) => 2,
    }
}

/// Extra cost charged per byte when a `New`/`NewArr` allocation commits,
/// modelling zeroing of large arrays (this is what makes JESSICA2's 64 MB
/// static-array allocation at class-load time expensive in Table IV).
pub const ALLOC_COST_PER_BYTE_NS_X100: u64 = 105; // 1.05 ns/B

/// Cost per byte of allocation, in ns.
#[inline]
pub fn alloc_cost(bytes: u64) -> u64 {
    bytes * ALLOC_COST_PER_BYTE_NS_X100 / 100
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Cmp;

    #[test]
    fn relative_order_is_sane() {
        // Throws must dwarf field accesses, which exceed simple ALU ops.
        assert!(instr_cost(&Instr::ThrowKind(crate::class::ExKind::NullPointer)) > 50);
        assert!(instr_cost(&Instr::GetField(0)) > instr_cost(&Instr::Add));
        assert!(instr_cost(&Instr::InvokeStatic(0, 0, 0)) > instr_cost(&Instr::Goto(0)));
        assert!(instr_cost(&Instr::If(Cmp::Eq, 0)) >= 1);
    }

    #[test]
    fn alloc_cost_scales_linearly() {
        assert_eq!(alloc_cost(0), 0);
        assert_eq!(alloc_cost(100), 105);
        assert_eq!(alloc_cost(64 << 20), ((64u64 << 20) * 105) / 100);
    }
}
