//! The VM heap: objects, arrays, strings, status words, byte accounting.
//!
//! Two details exist specifically for the SOD reproduction:
//!
//! * every object carries an [`ObjStatus`] word. In normal execution it is
//!   `Local`. The *status-checking* baseline (the traditional object-based
//!   DSM approach the paper compares against, e.g. JavaSplit) injects an
//!   explicit check of this word before every access; the SOD *object
//!   faulting* approach never reads it on the fast path.
//! * every object tracks its `home_id` — the identity of its master copy on
//!   the home node after a migration. Fetched copies are cache entries; the
//!   object manager uses `home_id` to resolve nested faults and to write
//!   dirty objects back.
//!
//! The heap also maintains a running byte total so a node memory budget can
//! trigger guest `OutOfMemoryError`s (the paper's exception-driven offload).

use std::sync::Arc;

use crate::class::ExKind;
use crate::error::{VmError, VmResult};
use crate::value::{ObjId, Value};

/// Cache status of a heap object (one machine word in the model).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjStatus {
    /// Master copy, or an up-to-date cached copy.
    Local,
    /// Known-stale cached copy; must be refetched before use (only the
    /// status-checking baseline materialises objects in this state).
    Invalid,
}

/// Payload of a heap entry.
#[derive(Clone, Debug, PartialEq)]
pub enum ObjKind {
    /// A class instance; `fields` uses the class's instance-field layout.
    /// The class name is a shared `Arc<str>`: allocating an instance clones
    /// a pointer from the loaded class (no per-`New` string allocation), and
    /// the interpreter's inline caches validate field/method resolutions
    /// with a pointer comparison against the canonical per-class `Arc`.
    Obj { class: Arc<str>, fields: Vec<Value> },
    /// An array of value slots.
    Arr { elems: Vec<Value> },
    /// An immutable string.
    Str(String),
    /// A guest exception object.
    Exception { kind: ExKind, message: String },
}

/// One heap entry.
#[derive(Clone, Debug, PartialEq)]
pub struct HeapObj {
    pub kind: ObjKind,
    pub status: ObjStatus,
    /// Identity of the master copy on the home node (home's `ObjId`), when
    /// this entry is a migrated-in cache copy.
    pub home_id: Option<ObjId>,
    /// Set by `PutField`/`AStore` after a migration restore; dirty objects
    /// are flushed home when the migrated segment completes.
    pub dirty: bool,
}

impl HeapObj {
    fn new(kind: ObjKind) -> Self {
        HeapObj {
            kind,
            status: ObjStatus::Local,
            home_id: None,
            dirty: false,
        }
    }

    /// Heap bytes charged for this entry (object header modelled at 16 B).
    pub fn size_bytes(&self) -> u64 {
        const HEADER: u64 = 16;
        match &self.kind {
            ObjKind::Obj { fields, .. } => HEADER + fields.len() as u64 * Value::SLOT_BYTES,
            ObjKind::Arr { elems } => HEADER + elems.len() as u64 * Value::SLOT_BYTES,
            ObjKind::Str(s) => HEADER + s.len() as u64,
            ObjKind::Exception { message, .. } => HEADER + message.len() as u64,
        }
    }

    /// Class name for instances, pseudo-class names for built-ins.
    pub fn class_name(&self) -> &str {
        match &self.kind {
            ObjKind::Obj { class, .. } => class,
            ObjKind::Arr { .. } => "[array]",
            ObjKind::Str(_) => "[string]",
            ObjKind::Exception { .. } => "[exception]",
        }
    }
}

/// The heap of one VM.
#[derive(Clone, Debug, Default)]
pub struct Heap {
    entries: Vec<HeapObj>,
    used_bytes: u64,
    /// Running count of allocations, for metrics.
    allocs: u64,
}

impl Heap {
    pub fn new() -> Self {
        Heap::default()
    }

    /// Total live bytes (we never free: programs under test are bounded and
    /// the paper's experiments do not depend on GC).
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    pub fn alloc_count(&self) -> u64 {
        self.allocs
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn alloc(&mut self, obj: HeapObj) -> ObjId {
        self.used_bytes += obj.size_bytes();
        self.allocs += 1;
        self.entries.push(obj);
        (self.entries.len() - 1) as ObjId
    }

    /// Allocate a class instance with the given field values.
    pub fn alloc_obj(&mut self, class: impl Into<Arc<str>>, fields: Vec<Value>) -> ObjId {
        self.alloc(HeapObj::new(ObjKind::Obj {
            class: class.into(),
            fields,
        }))
    }

    /// Allocate an array of `len` zero ints.
    pub fn alloc_arr(&mut self, len: usize) -> ObjId {
        self.alloc(HeapObj::new(ObjKind::Arr {
            elems: vec![Value::Int(0); len],
        }))
    }

    /// Allocate an array from existing elements.
    pub fn alloc_arr_from(&mut self, elems: Vec<Value>) -> ObjId {
        self.alloc(HeapObj::new(ObjKind::Arr { elems }))
    }

    /// Allocate a string.
    pub fn alloc_str(&mut self, s: impl Into<String>) -> ObjId {
        self.alloc(HeapObj::new(ObjKind::Str(s.into())))
    }

    /// Allocate a guest exception object.
    pub fn alloc_exception(&mut self, kind: ExKind, message: impl Into<String>) -> ObjId {
        self.alloc(HeapObj::new(ObjKind::Exception {
            kind,
            message: message.into(),
        }))
    }

    pub fn get(&self, id: ObjId) -> VmResult<&HeapObj> {
        self.entries.get(id as usize).ok_or(VmError::BadRef(id))
    }

    pub fn get_mut(&mut self, id: ObjId) -> VmResult<&mut HeapObj> {
        self.entries.get_mut(id as usize).ok_or(VmError::BadRef(id))
    }

    /// Read a string object.
    pub fn get_str(&self, id: ObjId) -> VmResult<&str> {
        match &self.get(id)?.kind {
            ObjKind::Str(s) => Ok(s),
            _ => Err(VmError::TypeMismatch {
                expected: "string",
                found: "object",
            }),
        }
    }

    /// Read an array element with bounds checking.
    pub fn arr_get(&self, id: ObjId, idx: i64) -> VmResult<Option<Value>> {
        match &self.get(id)?.kind {
            ObjKind::Arr { elems } => {
                if idx < 0 || idx as usize >= elems.len() {
                    Ok(None)
                } else {
                    Ok(Some(elems[idx as usize]))
                }
            }
            _ => Err(VmError::TypeMismatch {
                expected: "array",
                found: "object",
            }),
        }
    }

    /// Write an array element with bounds checking. Returns false when out of
    /// bounds; marks the array dirty.
    pub fn arr_set(&mut self, id: ObjId, idx: i64, v: Value) -> VmResult<bool> {
        let obj = self.get_mut(id)?;
        match &mut obj.kind {
            ObjKind::Arr { elems } => {
                if idx < 0 || idx as usize >= elems.len() {
                    Ok(false)
                } else {
                    elems[idx as usize] = v;
                    obj.dirty = true;
                    Ok(true)
                }
            }
            _ => Err(VmError::TypeMismatch {
                expected: "array",
                found: "object",
            }),
        }
    }

    /// Array length.
    pub fn arr_len(&self, id: ObjId) -> VmResult<i64> {
        match &self.get(id)?.kind {
            ObjKind::Arr { elems } => Ok(elems.len() as i64),
            _ => Err(VmError::TypeMismatch {
                expected: "array",
                found: "object",
            }),
        }
    }

    /// All objects marked dirty since the given heap snapshot point.
    pub fn dirty_objects(&self) -> impl Iterator<Item = (ObjId, &HeapObj)> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, o)| o.dirty)
            .map(|(i, o)| (i as ObjId, o))
    }

    /// Clear all dirty bits (after a flush to home).
    pub fn clear_dirty(&mut self) {
        for o in &mut self.entries {
            o.dirty = false;
        }
    }

    /// Look up a cached copy of a home object, if one exists.
    pub fn find_cached(&self, home_id: ObjId) -> Option<ObjId> {
        self.entries
            .iter()
            .position(|o| o.home_id == Some(home_id))
            .map(|i| i as ObjId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_read_back() {
        let mut h = Heap::new();
        let o = h.alloc_obj("Point", vec![Value::Int(1), Value::Int(2)]);
        let a = h.alloc_arr(3);
        let s = h.alloc_str("hi");
        assert_eq!(h.len(), 3);
        assert_eq!(h.get(o).unwrap().class_name(), "Point");
        assert_eq!(h.arr_len(a).unwrap(), 3);
        assert_eq!(h.get_str(s).unwrap(), "hi");
    }

    #[test]
    fn byte_accounting() {
        let mut h = Heap::new();
        assert_eq!(h.used_bytes(), 0);
        h.alloc_arr(10); // 16 + 80
        assert_eq!(h.used_bytes(), 96);
        h.alloc_str("abcd"); // 16 + 4
        assert_eq!(h.used_bytes(), 116);
        assert_eq!(h.alloc_count(), 2);
    }

    #[test]
    fn array_bounds() {
        let mut h = Heap::new();
        let a = h.alloc_arr(2);
        assert_eq!(h.arr_get(a, 0).unwrap(), Some(Value::Int(0)));
        assert_eq!(h.arr_get(a, 2).unwrap(), None);
        assert_eq!(h.arr_get(a, -1).unwrap(), None);
        assert!(h.arr_set(a, 1, Value::Int(9)).unwrap());
        assert!(!h.arr_set(a, 5, Value::Int(9)).unwrap());
        assert_eq!(h.arr_get(a, 1).unwrap(), Some(Value::Int(9)));
    }

    #[test]
    fn dirty_tracking() {
        let mut h = Heap::new();
        let a = h.alloc_arr(1);
        let _b = h.alloc_arr(1);
        assert_eq!(h.dirty_objects().count(), 0);
        h.arr_set(a, 0, Value::Int(5)).unwrap();
        let dirty: Vec<_> = h.dirty_objects().map(|(id, _)| id).collect();
        assert_eq!(dirty, vec![a]);
        h.clear_dirty();
        assert_eq!(h.dirty_objects().count(), 0);
    }

    #[test]
    fn cached_lookup_by_home_id() {
        let mut h = Heap::new();
        let a = h.alloc_obj("C", vec![]);
        h.get_mut(a).unwrap().home_id = Some(77);
        assert_eq!(h.find_cached(77), Some(a));
        assert_eq!(h.find_cached(78), None);
    }

    #[test]
    fn bad_ref_is_error() {
        let h = Heap::new();
        assert!(matches!(h.get(3), Err(VmError::BadRef(3))));
    }

    #[test]
    fn type_confusion_errors() {
        let mut h = Heap::new();
        let s = h.alloc_str("x");
        assert!(h.arr_len(s).is_err());
        let o = h.alloc_obj("C", vec![]);
        assert!(h.get_str(o).is_err());
    }
}
