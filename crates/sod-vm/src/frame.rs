//! Activation records (stack frames).
//!
//! A [`Frame`] is exactly the paper's unit of migration: method identity,
//! program counter, local variables, and an operand stack. SOD's key
//! invariant — established by the preprocessor's bytecode rearrangement — is
//! that at every migration-safe point the operand stack is *empty*, so a
//! captured frame is fully described by `(class, method, pc, locals)`.

use crate::value::Value;

/// One activation record.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Index of the class in the VM's loaded-class table.
    pub class_idx: usize,
    /// Index of the method within its class.
    pub method_idx: usize,
    /// Next instruction to execute (bytecode index).
    pub pc: u32,
    /// Local variable slots (arguments first).
    pub locals: Vec<Value>,
    /// Operand stack.
    pub ostack: Vec<Value>,
    /// Pinned frames may not migrate (the paper pins frames holding socket
    /// connections so the web server keeps its connections at home).
    pub pinned: bool,
}

impl Frame {
    pub fn new(class_idx: usize, method_idx: usize, nlocals: u16) -> Self {
        Frame {
            class_idx,
            method_idx,
            pc: 0,
            locals: vec![Value::Int(0); nlocals as usize],
            ostack: Vec::with_capacity(8),
            pinned: false,
        }
    }

    /// Build a frame with arguments placed in the first local slots and the
    /// remaining slots zeroed, as the JVM does on invocation.
    pub fn with_args(class_idx: usize, method_idx: usize, nlocals: u16, args: &[Value]) -> Self {
        let mut f = Frame::new(class_idx, method_idx, nlocals);
        debug_assert!(args.len() <= nlocals as usize, "more args than locals");
        f.locals[..args.len()].copy_from_slice(args);
        f
    }

    /// Bytes of state in this frame (locals + operand stack), for the
    /// paper's state-size accounting.
    pub fn state_bytes(&self) -> u64 {
        (self.locals.len() + self.ostack.len()) as u64 * Value::SLOT_BYTES + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_fill_first_slots() {
        let f = Frame::with_args(0, 1, 4, &[Value::Int(7), Value::Num(1.5)]);
        assert_eq!(f.locals[0], Value::Int(7));
        assert_eq!(f.locals[1], Value::Num(1.5));
        assert_eq!(f.locals[2], Value::Int(0));
        assert_eq!(f.locals.len(), 4);
        assert_eq!(f.pc, 0);
        assert!(f.ostack.is_empty());
    }

    #[test]
    fn state_bytes_counts_locals_and_stack() {
        let mut f = Frame::new(0, 0, 2);
        assert_eq!(f.state_bytes(), 2 * 8 + 16);
        f.ostack.push(Value::Int(1));
        assert_eq!(f.state_bytes(), 3 * 8 + 16);
    }
}
