//! # sod-vm — a stack-machine virtual machine substrate
//!
//! This crate implements the stack-machine VM on which the stack-on-demand
//! (SOD) execution model is built. It is a from-scratch, JVM-like virtual
//! machine:
//!
//! * dynamically-typed [`value::Value`]s (64-bit ints, doubles, heap
//!   references),
//! * classes with fields, methods, string constant pools, exception tables
//!   and line-number tables ([`class`]),
//! * a bytecode instruction set close to a JVM subset ([`instr`]),
//! * per-thread stacks of frames, each with locals and an operand stack
//!   ([`frame`], [`interp`]),
//! * a heap with per-object status words and byte-size accounting ([`heap`]),
//! * exception dispatch through per-method exception tables,
//! * a *tooling interface* modelled on JVMTI — suspension, frame inspection,
//!   `GetLocal`, `ForceEarlyReturn`, breakpoints — with a virtual cost meter
//!   so that migration systems built on top can be charged realistic costs
//!   ([`tooling`]),
//! * capture/restore of partial stacks, i.e. *segments* of frames
//!   ([`capture`]),
//! * a binary wire codec that doubles as the Java-serialization cost model
//!   ([`wire`]),
//! * static analysis: operand-stack depth abstract interpretation and
//!   migration-safe-point (MSP) computation ([`analysis`]).
//!
//! The VM is a *pure state machine*: all host interaction (file systems,
//! sockets, remote-object fetches) surfaces as [`interp::StepOutcome`]
//! values, making every thread trivially suspendable, serializable and
//! resumable — the property the SOD model depends on.
//!
//! ## Quick example
//!
//! ```
//! use sod_vm::class::{ClassDef, MethodDef};
//! use sod_vm::instr::Instr;
//! use sod_vm::interp::Vm;
//! use sod_vm::value::Value;
//!
//! // fn main() { return 40 + 2; }
//! let method = MethodDef::new("main", 0, 0)
//!     .with_code(
//!         vec![Instr::PushI(40), Instr::PushI(2), Instr::Add, Instr::RetV],
//!         vec![1, 1, 1, 1],
//!     );
//! let class = ClassDef::new("Main").with_method(method);
//! let mut vm = Vm::new();
//! vm.load_class(&class).unwrap();
//! let result = vm.run_to_completion("Main", "main", &[]).unwrap();
//! assert_eq!(result, Some(Value::Int(42)));
//! ```

pub mod analysis;
pub mod capture;
pub mod class;
pub mod costs;
pub mod error;
pub mod fastpath;
pub mod frame;
pub mod heap;
pub mod instr;
pub mod interp;
pub mod intrinsics;
pub mod tooling;
pub mod value;
pub mod wire;

/// Convenience re-exports of the most frequently used types.
pub mod prelude {
    pub use crate::capture::{CapturedFrame, CapturedState, CapturedValue};
    pub use crate::class::{ClassDef, ExEntry, ExKind, FieldDef, MethodDef, TypeTag};
    pub use crate::error::{VmError, VmResult};
    pub use crate::frame::Frame;
    pub use crate::heap::{Heap, HeapObj, ObjKind, ObjStatus};
    pub use crate::instr::{Cmp, Instr};
    pub use crate::interp::{ExceptionInfo, StepOutcome, Vm};
    pub use crate::tooling::{CostMeter, Tooling};
    pub use crate::value::{ObjId, Value};
}
