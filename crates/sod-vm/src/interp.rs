//! The interpreter: a pure, steppable state machine over frames.
//!
//! Design principles:
//!
//! * **Everything suspends.** Each [`Vm::step`] executes exactly one
//!   instruction; [`Vm::run`] executes until a virtual-time budget runs out
//!   or the thread blocks. Blocking conditions — host intrinsics, object
//!   faults, missing classes, breakpoints, unhandled exceptions — are
//!   returned as [`StepOutcome`] values, never handled with callbacks. This
//!   keeps the VM deterministic and lets the discrete-event runtime
//!   interleave many VMs on one virtual clock.
//! * **Costs are explicit.** Every instruction charges virtual nanoseconds
//!   from [`crate::costs`]; allocations charge per byte. The meter is the
//!   source of execution time for every experiment in the paper
//!   reproduction.
//! * **Migration hooks are first-class.** The interpreter understands
//!   migration-safe points (line starts with empty operand stacks), tracks
//!   the last-passed safe point of every frame (for exception-driven
//!   offload), and exposes run modes that stop at the next safe point when a
//!   migration request is pending.

use std::collections::HashMap;
use std::sync::Arc;

use crate::analysis::{class_summaries, MethodSummary};
use crate::capture::CapturedValue;
use crate::class::{ClassDef, ExKind};
use crate::costs::{alloc_cost, instr_cost, INTERP_MODE_FACTOR};
use crate::error::{VmError, VmResult};
use crate::fastpath::{build_fusion_table, build_ic_row, FusedFirst, FusedPair, IcCell};
use crate::frame::Frame;
use crate::heap::{Heap, ObjKind};
use crate::instr::Instr;
use crate::intrinsics::{self, IntrinsicEval};
use crate::value::{ObjId, Value};

/// A class loaded (linked) into a VM.
///
/// Besides the verified definition this carries the *pre-resolved operand
/// form* the interpreter fast path runs on: name→index maps built once at
/// link time, the canonical class-name `Arc` that instances share, one
/// inline-cache row per method, and the link-time superinstruction table.
/// None of this is serialized — `capture`/`wire` ship only the `ClassDef`
/// and name-based frame state, so a migrated stack rebuilds (rewarms) all
/// of it at the destination.
#[derive(Clone, Debug)]
pub struct LoadedClass {
    pub def: ClassDef,
    pub summaries: Vec<MethodSummary>,
    pub statics: Vec<Value>,
    method_map: HashMap<String, usize>,
    instance_field_map: HashMap<String, usize>,
    static_field_map: HashMap<String, usize>,
    /// Canonical shared name: every instance allocated by `New` clones this
    /// `Arc`, so receiver-keyed inline caches validate with a pointer
    /// comparison and allocation never copies the string.
    name_arc: Arc<str>,
    /// Inline-cache slots, `ics[method][pc]` (see [`IcCell`]). Node-local,
    /// positive-only, mutated during execution, never serialized.
    ics: Vec<Vec<IcCell>>,
    /// Superinstruction table, `fused[method][pc]` (see [`FusedPair`]).
    fused: Vec<Vec<Option<FusedPair>>>,
}

impl LoadedClass {
    fn link(def: ClassDef) -> VmResult<Self> {
        let summaries = class_summaries(&def)?;
        let method_map = def
            .methods
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name.clone(), i))
            .collect();
        let instance_field_map = def
            .fields
            .iter()
            .filter(|f| !f.is_static)
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();
        let static_field_map = def
            .fields
            .iter()
            .filter(|f| f.is_static)
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();
        let statics = def.default_static_values();
        let name_arc: Arc<str> = Arc::from(def.name.as_str());
        let ics = def.methods.iter().map(build_ic_row).collect();
        let fused = def.methods.iter().map(build_fusion_table).collect();
        Ok(LoadedClass {
            def,
            summaries,
            statics,
            method_map,
            instance_field_map,
            static_field_map,
            name_arc,
            ics,
            fused,
        })
    }

    /// Number of inline-cache slots this class has filled (warm sites).
    pub fn ic_warm_count(&self) -> usize {
        self.ics.iter().flatten().filter(|c| c.is_filled()).count()
    }

    pub fn method_idx(&self, name: &str) -> Option<usize> {
        self.method_map.get(name).copied()
    }

    pub fn instance_field_idx(&self, name: &str) -> Option<usize> {
        self.instance_field_map.get(name).copied()
    }

    pub fn static_field_idx(&self, name: &str) -> Option<usize> {
        self.static_field_map.get(name).copied()
    }
}

/// Why a thread is parked.
#[derive(Clone, Debug, PartialEq)]
pub enum ParkReason {
    /// Waiting for a host intrinsic reply.
    HostCall { name: String, args: Vec<Value> },
    /// Waiting for a remote object (SOD object fault).
    ObjectFault(ObjectQuery),
    /// Waiting for a class to be loaded (on-demand code shipping).
    ClassMiss(String),
}

/// Scheduling state of a thread.
#[derive(Clone, Debug, PartialEq)]
pub enum ThreadState {
    Runnable,
    Parked(ParkReason),
    /// Finished normally with an optional return value of the root frame.
    Finished(Option<Value>),
    /// A guest exception escaped; frames are preserved at the throw point so
    /// a migration policy can inspect or retry (exception-driven offload).
    Faulted(ExceptionInfo),
}

/// Description of an escaped guest exception.
#[derive(Clone, Debug, PartialEq)]
pub struct ExceptionInfo {
    pub kind: ExKind,
    pub message: String,
    /// pc of the faulting instruction in the top frame.
    pub pc: u32,
}

/// What the home node must resolve to satisfy an object fault: the master
/// copy of a home object. Because every transfer-nulled reference carries
/// its home identity ([`Value::NulledRef`]), all fault resolution is
/// fetch-by-home-id against the home heap — the same home-based protocol
/// the paper's object manager implements via JVMTI lookups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjectQuery {
    /// Identity of the master copy in the home VM's heap.
    pub home_id: ObjId,
}

/// Where to install a fetched object (mirrors the `Bring*` instruction that
/// faulted).
#[derive(Clone, Debug, PartialEq)]
enum FaultBind {
    Local {
        slot: u16,
    },
    Field {
        base: ObjId,
        field_idx: usize,
    },
    StaticTo {
        class_idx: usize,
        static_idx: usize,
        dest_slot: u16,
    },
    ElemTo {
        base: ObjId,
        index: i64,
        dest_slot: u16,
    },
    /// Status-checking baseline: the runtime filled the stub in place; no
    /// binding beyond unparking is required.
    Stub,
}

/// A parked object fault: what was asked and where the answer goes.
#[derive(Clone, Debug, PartialEq)]
pub struct PendingFault {
    pub query: ObjectQuery,
    bind: FaultBind,
}

/// One guest thread.
#[derive(Clone, Debug)]
pub struct VmThread {
    pub frames: Vec<Frame>,
    pub state: ThreadState,
    /// Pending fault metadata while parked on `ObjectFault`.
    pub pending_fault: Option<PendingFault>,
    /// pc the active NPE fault handler should treat as the fault origin
    /// (for application-level NPE rethrow).
    npe_origin_pc: Option<u32>,
    /// Highest frame count ever reached (the paper's Table I `h`).
    pub max_height: usize,
    /// Number of the bottom frames restored from a migrated segment; frames
    /// `0..seg_frames` correspond to home segment frames 0..n (bottom-up).
    pub seg_frames: usize,
    /// Active restoration session, if any. Per-thread: concurrent
    /// handler-protocol restores (multi-tenant destinations) each carry
    /// their own cursor and captured frames.
    pub restore_session: Option<RestoreSession>,
    /// When true, this thread's instruction costs are multiplied by
    /// [`INTERP_MODE_FACTOR`] (debugger active → interpreted mode during
    /// a handler-protocol restore).
    pub interp_mode: bool,
}

impl VmThread {
    fn new() -> Self {
        VmThread {
            frames: Vec::with_capacity(16),
            state: ThreadState::Runnable,
            pending_fault: None,
            npe_origin_pc: None,
            max_height: 0,
            seg_frames: 0,
            restore_session: None,
            interp_mode: false,
        }
    }

    /// Build a runnable thread from pre-established frames (direct restore
    /// of a migrated segment).
    pub fn new_restored(frames: Vec<Frame>) -> Self {
        let height = frames.len();
        VmThread {
            frames,
            state: ThreadState::Runnable,
            pending_fault: None,
            npe_origin_pc: None,
            max_height: height,
            seg_frames: 0,
            restore_session: None,
            interp_mode: false,
        }
    }

    pub fn top(&self) -> Option<&Frame> {
        self.frames.last()
    }

    pub fn top_mut(&mut self) -> Option<&mut Frame> {
        self.frames.last_mut()
    }

    pub fn is_runnable(&self) -> bool {
        matches!(self.state, ThreadState::Runnable)
    }

    pub fn is_finished(&self) -> bool {
        matches!(
            self.state,
            ThreadState::Finished(_) | ThreadState::Faulted(_)
        )
    }

    /// Total state bytes across frames (paper's captured-state sizing).
    pub fn stack_state_bytes(&self) -> u64 {
        self.frames.iter().map(Frame::state_bytes).sum()
    }
}

/// Result of one [`Vm::step`] or a [`Vm::run`] slice.
#[derive(Clone, Debug, PartialEq)]
pub enum StepOutcome {
    /// Instruction executed; thread still runnable.
    Continue,
    /// An armed breakpoint at (class_idx, method_idx, pc) was hit *before*
    /// executing that pc; the breakpoint is disarmed. Used by the
    /// restoration driver (the paper's `cbBreakpoint`).
    Breakpoint {
        class_idx: usize,
        method_idx: usize,
        pc: u32,
    },
    /// Thread parked on a host intrinsic.
    HostCall { name: String, args: Vec<Value> },
    /// Thread parked on a remote-object fault.
    ObjectFault(ObjectQuery),
    /// Thread parked awaiting a class definition.
    ClassMiss(String),
    /// Stopped at a migration-safe point (only in [`RunMode::StopAtMsp`]).
    AtMsp { pc: u32 },
    /// Thread finished; root return value.
    Returned(Option<Value>),
    /// A guest exception escaped the outermost frame; frames preserved.
    Unhandled(ExceptionInfo),
}

/// How [`Vm::run`] decides to stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunMode {
    /// Run until budget exhaustion or a blocking outcome.
    Normal,
    /// Additionally stop when the *top frame* reaches a migration-safe point
    /// (used when a migration request is pending).
    StopAtMsp,
}

/// Restoration session state: the captured frames being re-established by
/// the breakpoint + `InvalidStateException` protocol.
#[derive(Clone, Debug)]
pub struct RestoreSession {
    /// Captured locals per frame (bottom-up) and the captured pc.
    pub frames: Vec<(Vec<CapturedValue>, u32)>,
    /// Frame currently being restored.
    pub cursor: usize,
}

/// The virtual machine: loaded classes, heap, threads, meters.
#[derive(Clone, Debug)]
pub struct Vm {
    pub classes: Vec<LoadedClass>,
    class_index: HashMap<String, usize>,
    pub heap: Heap,
    pub threads: Vec<VmThread>,
    interned: HashMap<String, ObjId>,
    /// Captured `print` output.
    pub stdout: Vec<String>,
    /// Armed breakpoints (tid, class_idx, method_idx, pc). Thread-scoped:
    /// with many migrated segments restoring concurrently on one node,
    /// a breakpoint armed for one restoring thread must never trip on
    /// another thread running the same method.
    breakpoints: Vec<(usize, usize, usize, u32)>,
    /// Virtual nanoseconds of guest execution accumulated so far.
    pub meter_ns: u64,
    /// Instructions retired.
    pub instr_count: u64,
    /// Per-mille execution cost scale ≥ 1000; models the idle overhead of an
    /// attached tooling agent (the paper's C1) and slower JITs (JESSICA2).
    pub cost_scale_per_mille: u32,
    /// Heap byte budget; allocations beyond it raise guest `OutOfMemory`.
    pub mem_limit: Option<u64>,
    /// Reference-semantics switch for differential testing: resolve every
    /// name per execution (the pre-fast-path behaviour), never consult or
    /// fill inline caches, and never dispatch fused pairs. Defaults to the
    /// `slow-resolve` cargo feature. Reports must be bit-identical either
    /// way — pinned by `tests/interp_equivalence.rs`.
    pub slow_resolve: bool,
}

impl Default for Vm {
    fn default() -> Self {
        Self::new()
    }
}

impl Vm {
    pub fn new() -> Self {
        Vm {
            classes: Vec::new(),
            class_index: HashMap::new(),
            heap: Heap::new(),
            threads: Vec::new(),
            interned: HashMap::new(),
            stdout: Vec::new(),
            breakpoints: Vec::new(),
            meter_ns: 0,
            instr_count: 0,
            cost_scale_per_mille: 1000,
            mem_limit: None,
            slow_resolve: cfg!(feature = "slow-resolve"),
        }
    }

    // ------------------------------------------------------------------
    // Class management
    // ------------------------------------------------------------------

    /// Load (verify + link) a class. Duplicate names are rejected.
    pub fn load_class(&mut self, def: &ClassDef) -> VmResult<usize> {
        if self.class_index.contains_key(&def.name) {
            return Err(VmError::DuplicateClass(def.name.clone()));
        }
        let linked = LoadedClass::link(def.clone())?;
        let idx = self.classes.len();
        self.class_index.insert(def.name.clone(), idx);
        self.classes.push(linked);
        Ok(idx)
    }

    pub fn class_idx(&self, name: &str) -> Option<usize> {
        self.class_index.get(name).copied()
    }

    pub fn has_class(&self, name: &str) -> bool {
        self.class_index.contains_key(name)
    }

    /// Names of all loaded classes.
    pub fn class_names(&self) -> impl Iterator<Item = &str> {
        self.classes.iter().map(|c| c.def.name.as_str())
    }

    // ------------------------------------------------------------------
    // Threads
    // ------------------------------------------------------------------

    /// Spawn a thread at `class.method(args)`. Returns the thread id.
    pub fn spawn(&mut self, class: &str, method: &str, args: &[Value]) -> VmResult<usize> {
        let ci = self
            .class_idx(class)
            .ok_or_else(|| VmError::ClassNotFound(class.to_owned()))?;
        let mi = self.classes[ci]
            .method_idx(method)
            .ok_or_else(|| VmError::MethodNotFound {
                class: class.to_owned(),
                method: method.to_owned(),
            })?;
        let m = &self.classes[ci].def.methods[mi];
        if args.len() != m.nargs as usize {
            return Err(VmError::MethodNotFound {
                class: class.to_owned(),
                method: format!("{method}/{} (got {} args)", m.nargs, args.len()),
            });
        }
        let mut t = VmThread::new();
        t.frames.push(Frame::with_args(ci, mi, m.nlocals, args));
        t.max_height = 1;
        self.threads.push(t);
        Ok(self.threads.len() - 1)
    }

    pub fn thread(&self, tid: usize) -> VmResult<&VmThread> {
        self.threads.get(tid).ok_or(VmError::BadThread(tid))
    }

    pub fn thread_mut(&mut self, tid: usize) -> VmResult<&mut VmThread> {
        self.threads.get_mut(tid).ok_or(VmError::BadThread(tid))
    }

    /// Ids of runnable threads.
    pub fn runnable_threads(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_runnable())
            .map(|(i, _)| i)
            .collect()
    }

    // ------------------------------------------------------------------
    // Strings
    // ------------------------------------------------------------------

    /// Capture-export a value from this VM: a reference exports its
    /// *master* identity — the home id recorded on a cached copy, or the
    /// local id when this VM owns the object. Transfer-nulled refs re-export
    /// the home identity they carry (multi-hop roaming).
    pub fn export_value(&self, v: Value) -> crate::capture::CapturedValue {
        use crate::capture::CapturedValue;
        match v {
            Value::Ref(id) => {
                let home = self.heap.get(id).ok().and_then(|o| o.home_id).unwrap_or(id);
                CapturedValue::HomeRef(home)
            }
            other => CapturedValue::from_value(other),
        }
    }

    /// Intern a string (the JVM's `ldc` string semantics).
    pub fn intern_str(&mut self, s: &str) -> ObjId {
        if let Some(&id) = self.interned.get(s) {
            return id;
        }
        let id = self.heap.alloc_str(s);
        self.interned.insert(s.to_owned(), id);
        id
    }

    // ------------------------------------------------------------------
    // Breakpoints (tooling support)
    // ------------------------------------------------------------------

    /// Arm a breakpoint for thread `tid` at `(class, method, pc)`. Only
    /// `tid` stepping onto that location trips (and disarms) it; other
    /// threads executing the same method pass through.
    pub fn set_breakpoint(&mut self, tid: usize, class_idx: usize, method_idx: usize, pc: u32) {
        if !self.breakpoints.contains(&(tid, class_idx, method_idx, pc)) {
            self.breakpoints.push((tid, class_idx, method_idx, pc));
        }
    }

    pub fn clear_breakpoint(&mut self, tid: usize, class_idx: usize, method_idx: usize, pc: u32) {
        self.breakpoints
            .retain(|&b| b != (tid, class_idx, method_idx, pc));
    }

    pub fn breakpoints_armed(&self) -> usize {
        self.breakpoints.len()
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Execute one instruction of thread `tid`. Always strictly
    /// single-instruction — superinstruction dispatch happens only inside
    /// [`Vm::run`] — so restore drivers and tooling that step a thread see
    /// every pc.
    pub fn step(&mut self, tid: usize) -> VmResult<StepOutcome> {
        match &self.thread(tid)?.state {
            ThreadState::Runnable => {}
            ThreadState::Parked(_) => return Err(VmError::ThreadParked(tid)),
            ThreadState::Finished(v) => return Ok(StepOutcome::Returned((*v).flatten_unit())),
            ThreadState::Faulted(e) => return Ok(StepOutcome::Unhandled(e.clone())),
        }

        let (ci, mi, pc) = {
            let f = self.threads[tid].top().expect("runnable thread has frames");
            (f.class_idx, f.method_idx, f.pc)
        };

        // Breakpoint check happens before execution and disarms the point.
        // The scan is skipped entirely when nothing is armed — the common
        // case for every non-migrating slice.
        if !self.breakpoints.is_empty() {
            if let Some(bp_pos) = self
                .breakpoints
                .iter()
                .position(|&(t, c, m, p)| (t, c, m, p) == (tid, ci, mi, pc))
            {
                self.breakpoints.swap_remove(bp_pos);
                return Ok(StepOutcome::Breakpoint {
                    class_idx: ci,
                    method_idx: mi,
                    pc,
                });
            }
        }

        let instr = {
            let code = &self.classes[ci].def.methods[mi].code;
            match code.get(pc as usize) {
                Some(i) => *i,
                None => return Err(VmError::BadPc(pc)),
            }
        };

        self.charge(tid, instr_cost(&instr));
        self.instr_count += 1;

        self.exec_instr(tid, ci, mi, pc, instr)
    }

    /// One dispatch inside a [`Vm::run`] slice: like [`Vm::step`], but when
    /// no breakpoint is armed and the reference path is off, a fused
    /// superinstruction cell at the current pc executes both halves —
    /// honouring `remaining_ns` between them, exactly where the unfused
    /// loop would have checked its budget.
    fn step_sliced(&mut self, tid: usize, remaining_ns: u64) -> VmResult<StepOutcome> {
        if self.breakpoints.is_empty() && !self.slow_resolve {
            match &self.thread(tid)?.state {
                ThreadState::Runnable => {}
                ThreadState::Parked(_) => return Err(VmError::ThreadParked(tid)),
                ThreadState::Finished(v) => return Ok(StepOutcome::Returned((*v).flatten_unit())),
                ThreadState::Faulted(e) => return Ok(StepOutcome::Unhandled(e.clone())),
            }
            let (ci, mi, pc) = {
                let f = self.threads[tid].top().expect("runnable thread has frames");
                (f.class_idx, f.method_idx, f.pc)
            };
            if let Some(&Some(pair)) = self.classes[ci].fused[mi].get(pc as usize) {
                return self.exec_fused(tid, ci, mi, pc, pair, remaining_ns);
            }
            let instr = {
                let code = &self.classes[ci].def.methods[mi].code;
                match code.get(pc as usize) {
                    Some(i) => *i,
                    None => return Err(VmError::BadPc(pc)),
                }
            };
            self.charge(tid, instr_cost(&instr));
            self.instr_count += 1;
            return self.exec_instr(tid, ci, mi, pc, instr);
        }
        self.step(tid)
    }

    /// Execute a fused pair: charge + retire the pure push, advance the pc,
    /// then (budget permitting) charge + retire the second half in place.
    /// The mid-pair pc is never a migration-safe point (the push leaves the
    /// operand stack non-empty), and fused dispatch is disabled while any
    /// breakpoint is armed, so no observer can tell the halves were fused.
    fn exec_fused(
        &mut self,
        tid: usize,
        ci: usize,
        mi: usize,
        pc: u32,
        pair: FusedPair,
        remaining_ns: u64,
    ) -> VmResult<StepOutcome> {
        let before = self.meter_ns;
        self.charge(tid, u64::from(pair.c1));
        self.instr_count += 1;
        {
            let f = self.threads[tid].frames.last_mut().expect("frame");
            match pair.first {
                FusedFirst::Load(slot) => {
                    let v = *f
                        .locals
                        .get(slot as usize)
                        .ok_or(VmError::BadLocalSlot(slot))?;
                    f.ostack.push(v);
                }
                FusedFirst::PushI(v) => f.ostack.push(Value::Int(v)),
            }
            f.pc = pc + 1;
        }
        // Slice boundary between the halves: the unfused loop would stop
        // here with pc already at i + 1, so we do too.
        if self.meter_ns - before >= remaining_ns {
            return Ok(StepOutcome::Continue);
        }
        self.charge(tid, u64::from(pair.c2));
        self.instr_count += 1;
        self.exec_instr(tid, ci, mi, pc + 1, pair.second)
    }

    fn charge(&mut self, tid: usize, ns: u64) {
        let mut cost = ns;
        if self.threads[tid].interp_mode {
            cost *= u64::from(INTERP_MODE_FACTOR);
        }
        cost = cost * u64::from(self.cost_scale_per_mille) / 1000;
        self.meter_ns += cost;
    }

    /// Run thread `tid` for at most `budget_ns` of charged virtual time.
    /// Returns the outcome and the virtual ns actually consumed.
    pub fn run(
        &mut self,
        tid: usize,
        budget_ns: u64,
        mode: RunMode,
    ) -> VmResult<(StepOutcome, u64)> {
        let start = self.meter_ns;
        loop {
            if mode == RunMode::StopAtMsp {
                if let Some(pc) = self.at_msp(tid)? {
                    return Ok((StepOutcome::AtMsp { pc }, self.meter_ns - start));
                }
            }
            // `remaining` is what a fused pair may consume before it must
            // yield between its halves; at this point spent < budget always
            // holds, so the subtraction cannot wrap.
            let remaining = budget_ns - (self.meter_ns - start);
            let out = self.step_sliced(tid, remaining)?;
            if out != StepOutcome::Continue {
                return Ok((out, self.meter_ns - start));
            }
            if self.meter_ns - start >= budget_ns {
                return Ok((StepOutcome::Continue, self.meter_ns - start));
            }
        }
    }

    /// If thread `tid` is runnable and its top frame sits at a
    /// migration-safe point, return that pc.
    pub fn at_msp(&self, tid: usize) -> VmResult<Option<u32>> {
        let t = self.thread(tid)?;
        if !t.is_runnable() {
            return Ok(None);
        }
        let f = t.top().ok_or(VmError::BadThread(tid))?;
        let summary = &self.classes[f.class_idx].summaries[f.method_idx];
        Ok((f.ostack.is_empty() && summary.is_msp(f.pc)).then_some(f.pc))
    }

    /// Convenience driver for single-VM execution: spawns `class.method`,
    /// runs to completion, answering host calls with `host`.
    pub fn run_to_completion_with(
        &mut self,
        class: &str,
        method: &str,
        args: &[Value],
        mut host: impl FnMut(&str, &[Value], &mut Vm) -> VmResult<Value>,
    ) -> VmResult<Option<Value>> {
        let tid = self.spawn(class, method, args)?;
        loop {
            let (out, _) = self.run(tid, u64::MAX, RunMode::Normal)?;
            match out {
                StepOutcome::Returned(v) => return Ok(v),
                StepOutcome::HostCall { name, args } => {
                    let v = host(&name, &args, self)?;
                    self.resume_host(tid, v)?;
                }
                StepOutcome::Unhandled(e) => {
                    return Err(VmError::UnhandledException {
                        kind: e.kind,
                        message: e.message,
                    })
                }
                StepOutcome::ObjectFault(_) => {
                    // In a single VM there is no home node: the null was real.
                    self.fail_fault_app_npe(tid)?;
                }
                StepOutcome::ClassMiss(name) => {
                    return Err(VmError::ClassNotFound(name));
                }
                StepOutcome::Breakpoint { .. } | StepOutcome::AtMsp { .. } => {
                    // No breakpoints/migration in this driver; keep running.
                }
                StepOutcome::Continue => {}
            }
        }
    }

    /// As [`Vm::run_to_completion_with`] but failing on any host call.
    pub fn run_to_completion(
        &mut self,
        class: &str,
        method: &str,
        args: &[Value],
    ) -> VmResult<Option<Value>> {
        self.run_to_completion_with(class, method, args, |name, _, _| {
            Err(VmError::UnknownIntrinsic(name.to_owned()))
        })
    }

    // ------------------------------------------------------------------
    // Park/resume protocol
    // ------------------------------------------------------------------

    /// Resume a thread parked on [`ParkReason::HostCall`], pushing `value`
    /// as the intrinsic result.
    pub fn resume_host(&mut self, tid: usize, value: Value) -> VmResult<()> {
        let t = self.thread_mut(tid)?;
        match &t.state {
            ThreadState::Parked(ParkReason::HostCall { .. }) => {}
            _ => return Err(VmError::ThreadParked(tid)),
        }
        t.state = ThreadState::Runnable;
        let f = t.top_mut().ok_or(VmError::BadThread(tid))?;
        f.ostack.push(value);
        f.pc += 1;
        Ok(())
    }

    /// Resume a thread parked on [`ParkReason::ClassMiss`] after the class
    /// has been loaded; the faulting instruction re-executes.
    pub fn resume_class_loaded(&mut self, tid: usize) -> VmResult<()> {
        let t = self.thread_mut(tid)?;
        match &t.state {
            ThreadState::Parked(ParkReason::ClassMiss(_)) => {}
            _ => return Err(VmError::ThreadParked(tid)),
        }
        t.state = ThreadState::Runnable;
        Ok(())
    }

    /// Resume a thread parked on an object fault by installing a fetched
    /// object copy. `local_id` must already be in this VM's heap with its
    /// `home_id` recorded; the pending fault's binding is applied and the
    /// faulting `Bring*` instruction completes.
    pub fn resume_fetched(&mut self, tid: usize, local_id: ObjId) -> VmResult<()> {
        let pending = {
            let t = self.thread_mut(tid)?;
            match &t.state {
                ThreadState::Parked(ParkReason::ObjectFault(_)) => {}
                _ => return Err(VmError::ThreadParked(tid)),
            }
            t.pending_fault.take().ok_or(VmError::RestoreProtocol(
                "resume_fetched without pending fault",
            ))?
        };
        self.apply_bind(tid, pending.bind, local_id)?;
        let t = &mut self.threads[tid];
        t.state = ThreadState::Runnable;
        let f = t.top_mut().ok_or(VmError::BadThread(tid))?;
        f.pc += 1; // move past the Bring* instruction (next is the retry Goto)
        Ok(())
    }

    fn apply_bind(&mut self, tid: usize, bind: FaultBind, local_id: ObjId) -> VmResult<()> {
        match bind {
            FaultBind::Local { slot } => {
                let t = &mut self.threads[tid];
                let f = t.top_mut().ok_or(VmError::BadThread(tid))?;
                *f.locals
                    .get_mut(slot as usize)
                    .ok_or(VmError::BadLocalSlot(slot))? = Value::Ref(local_id);
            }
            FaultBind::Field { base, field_idx } => {
                let obj = self.heap.get_mut(base)?;
                match &mut obj.kind {
                    ObjKind::Obj { fields, .. } => {
                        *fields.get_mut(field_idx).ok_or(VmError::BadRef(base))? =
                            Value::Ref(local_id);
                    }
                    _ => return Err(VmError::BadRef(base)),
                }
            }
            FaultBind::StaticTo {
                class_idx,
                static_idx,
                dest_slot,
            } => {
                self.classes[class_idx].statics[static_idx] = Value::Ref(local_id);
                let t = &mut self.threads[tid];
                let f = t.top_mut().ok_or(VmError::BadThread(tid))?;
                *f.locals
                    .get_mut(dest_slot as usize)
                    .ok_or(VmError::BadLocalSlot(dest_slot))? = Value::Ref(local_id);
            }
            FaultBind::ElemTo {
                base,
                index,
                dest_slot,
            } => {
                self.heap.arr_set(base, index, Value::Ref(local_id))?;
                // arr_set marks dirty, but installing a fetched elem is not a
                // guest write; undo the dirty mark.
                self.heap.get_mut(base)?.dirty = false;
                let t = &mut self.threads[tid];
                let f = t.top_mut().ok_or(VmError::BadThread(tid))?;
                *f.locals
                    .get_mut(dest_slot as usize)
                    .ok_or(VmError::BadLocalSlot(dest_slot))? = Value::Ref(local_id);
            }
            FaultBind::Stub => {
                // The runtime filled the stub in place; nothing to bind.
            }
        }
        Ok(())
    }

    /// Fail a parked object fault: the home value was genuinely null, so
    /// deliver an application-level `NullPointerException` at the fault
    /// origin (skipping fault handlers).
    pub fn fail_fault_app_npe(&mut self, tid: usize) -> VmResult<()> {
        let t = self.thread_mut(tid)?;
        match &t.state {
            ThreadState::Parked(ParkReason::ObjectFault(_)) => {}
            _ => return Err(VmError::ThreadParked(tid)),
        }
        t.pending_fault = None;
        t.state = ThreadState::Runnable;
        let origin = t.npe_origin_pc.take();
        if let Some(pc) = origin {
            if let Some(f) = t.top_mut() {
                f.pc = pc;
            }
        }
        self.throw_into(tid, ExKind::NullPointer, "null (application level)", true)
    }

    // ------------------------------------------------------------------
    // Exception machinery
    // ------------------------------------------------------------------

    /// Throw a guest exception of `kind` into thread `tid` at its current
    /// pc. With `suppress_fault_handlers`, preprocessor-injected fault
    /// handler entries are skipped during dispatch (application-level NPE).
    pub fn throw_into(
        &mut self,
        tid: usize,
        kind: ExKind,
        message: &str,
        suppress_fault_handlers: bool,
    ) -> VmResult<()> {
        let ex_ref = self.heap.alloc_exception(kind, message);
        self.dispatch_exception(tid, kind, message, ex_ref, suppress_fault_handlers)
            .map(|_| ())
    }

    /// Find a handler for `kind` walking frames top-down. On success, frames
    /// above the handler are popped and the handler frame's pc/ostack are
    /// set. On failure the thread faults with frames preserved.
    ///
    /// Returns `true` if a handler was entered.
    fn dispatch_exception(
        &mut self,
        tid: usize,
        kind: ExKind,
        message: &str,
        ex_ref: ObjId,
        suppress_fault_handlers: bool,
    ) -> VmResult<bool> {
        // Search phase (no mutation).
        let mut target: Option<(usize, u32)> = None; // (frame index, handler pc)
        {
            let t = self.thread(tid)?;
            'search: for (fi, frame) in t.frames.iter().enumerate().rev() {
                let m = &self.classes[frame.class_idx].def.methods[frame.method_idx];
                for e in &m.ex_table {
                    if e.covers(frame.pc)
                        && e.kind.catches(kind)
                        && !(suppress_fault_handlers && e.fault_handler)
                    {
                        target = Some((fi, e.target));
                        break 'search;
                    }
                }
            }
        }

        match target {
            Some((fi, hpc)) => {
                let t = &mut self.threads[tid];
                // Record the fault origin if we are entering a fault handler
                // for an NPE: RethrowAppNpe needs it.
                if kind == ExKind::NullPointer {
                    t.npe_origin_pc = Some(t.frames[fi].pc);
                }
                t.frames.truncate(fi + 1);
                if t.seg_frames > t.frames.len() {
                    t.seg_frames = t.frames.len();
                }
                let f = t.frames.last_mut().expect("handler frame");
                f.ostack.clear();
                f.ostack.push(Value::Ref(ex_ref));
                f.pc = hpc;
                Ok(true)
            }
            None => {
                let t = &mut self.threads[tid];
                let pc = t.top().map(|f| f.pc).unwrap_or(0);
                t.state = ThreadState::Faulted(ExceptionInfo {
                    kind,
                    message: message.to_owned(),
                    pc,
                });
                Ok(false)
            }
        }
    }

    /// Deliver an application-level NPE at the recorded fault origin,
    /// skipping object-fault handlers (the paper's "another null pointer
    /// exception ... from the application level").
    fn app_npe(&mut self, tid: usize) -> VmResult<StepOutcome> {
        let origin = self.threads[tid].npe_origin_pc.take();
        if let Some(opc) = origin {
            if let Some(f) = self.threads[tid].top_mut() {
                f.pc = opc;
            }
        }
        self.throw_into(tid, ExKind::NullPointer, "null (application level)", true)?;
        match &self.threads[tid].state {
            ThreadState::Faulted(e) => Ok(StepOutcome::Unhandled(e.clone())),
            _ => Ok(StepOutcome::Continue),
        }
    }

    /// Helper used by instruction execution: throw and translate into a
    /// step outcome.
    fn throw_and_outcome(
        &mut self,
        tid: usize,
        kind: ExKind,
        message: &str,
    ) -> VmResult<StepOutcome> {
        self.throw_into(tid, kind, message, false)?;
        match &self.threads[tid].state {
            ThreadState::Faulted(e) => Ok(StepOutcome::Unhandled(e.clone())),
            _ => Ok(StepOutcome::Continue),
        }
    }

    // ------------------------------------------------------------------
    // Allocation with memory budget
    // ------------------------------------------------------------------

    fn alloc_checked(
        &mut self,
        tid: usize,
        bytes_estimate: u64,
        alloc: impl FnOnce(&mut Heap) -> ObjId,
    ) -> Result<ObjId, StepOutcome> {
        if let Some(limit) = self.mem_limit {
            if self.heap.used_bytes() + bytes_estimate > limit {
                let out = self
                    .throw_and_outcome(tid, ExKind::OutOfMemory, "heap budget exceeded")
                    .expect("throw never fails");
                return Err(out);
            }
        }
        self.charge(tid, alloc_cost(bytes_estimate));
        Ok(alloc(&mut self.heap))
    }

    // ------------------------------------------------------------------
    // Instruction execution
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn exec_instr(
        &mut self,
        tid: usize,
        ci: usize,
        mi: usize,
        pc: u32,
        instr: Instr,
    ) -> VmResult<StepOutcome> {
        use Instr::*;

        macro_rules! frame {
            () => {
                self.threads[tid].frames.last_mut().expect("frame")
            };
        }
        macro_rules! pop {
            () => {
                frame!().ostack.pop().ok_or(VmError::StackUnderflow)?
            };
        }
        macro_rules! push {
            ($v:expr) => {{
                let v = $v;
                frame!().ostack.push(v);
            }};
        }
        macro_rules! advance {
            () => {{
                frame!().pc = pc + 1;
                Ok(StepOutcome::Continue)
            }};
        }
        macro_rules! jump {
            ($t:expr) => {{
                frame!().pc = $t;
                Ok(StepOutcome::Continue)
            }};
        }
        macro_rules! npe {
            () => {
                return self.throw_and_outcome(tid, ExKind::NullPointer, "null dereference")
            };
        }

        match instr {
            PushI(v) => {
                push!(Value::Int(v));
                advance!()
            }
            PushF(v) => {
                push!(Value::Num(v));
                advance!()
            }
            PushStr(idx) => {
                // IC: `a` caches the interned ObjId for this site. Interning
                // is VM-global and immutable once assigned, so a filled cell
                // is valid forever.
                let cell = if self.slow_resolve {
                    IcCell::EMPTY
                } else {
                    self.classes[ci].ics[mi][pc as usize]
                };
                if cell.is_filled() {
                    push!(Value::Ref(cell.a));
                    return advance!();
                }
                let s = self.classes[ci].def.pool_str(idx)?;
                let id = match self.interned.get(s) {
                    Some(&id) => id,
                    None => {
                        let id = self.heap.alloc_str(s);
                        self.interned.insert(s.to_owned(), id);
                        id
                    }
                };
                if !self.slow_resolve {
                    self.classes[ci].ics[mi][pc as usize] = IcCell { a: id, b: 0 };
                }
                push!(Value::Ref(id));
                advance!()
            }
            PushNull => {
                push!(Value::Null);
                advance!()
            }
            Load(slot) => {
                let v = *self.threads[tid]
                    .top()
                    .unwrap()
                    .locals
                    .get(slot as usize)
                    .ok_or(VmError::BadLocalSlot(slot))?;
                push!(v);
                advance!()
            }
            Store(slot) => {
                let v = pop!();
                *frame!()
                    .locals
                    .get_mut(slot as usize)
                    .ok_or(VmError::BadLocalSlot(slot))? = v;
                advance!()
            }
            Dup => {
                let v = *frame!().ostack.last().ok_or(VmError::StackUnderflow)?;
                push!(v);
                advance!()
            }
            Pop => {
                pop!();
                advance!()
            }
            Swap => {
                let b = pop!();
                let a = pop!();
                push!(b);
                push!(a);
                advance!()
            }
            Add | Sub | Mul | Div | Rem => {
                let b = pop!();
                let a = pop!();
                match (a, b) {
                    (Value::Int(x), Value::Int(y)) => {
                        let r = match instr {
                            Add => x.wrapping_add(y),
                            Sub => x.wrapping_sub(y),
                            Mul => x.wrapping_mul(y),
                            Div | Rem => {
                                if y == 0 {
                                    return self.throw_and_outcome(
                                        tid,
                                        ExKind::DivByZero,
                                        "integer division by zero",
                                    );
                                }
                                if matches!(instr, Div) {
                                    x.wrapping_div(y)
                                } else {
                                    x.wrapping_rem(y)
                                }
                            }
                            _ => unreachable!(),
                        };
                        push!(Value::Int(r));
                    }
                    (Value::Num(x), Value::Num(y)) => {
                        let r = match instr {
                            Add => x + y,
                            Sub => x - y,
                            Mul => x * y,
                            Div => x / y,
                            Rem => x % y,
                            _ => unreachable!(),
                        };
                        push!(Value::Num(r));
                    }
                    (a, b) => {
                        return Err(VmError::TypeMismatch {
                            expected: "matching numeric operands",
                            found: if a.is_reference() {
                                b.type_name()
                            } else {
                                a.type_name()
                            },
                        })
                    }
                }
                advance!()
            }
            Neg => {
                let a = pop!();
                match a {
                    Value::Int(x) => push!(Value::Int(x.wrapping_neg())),
                    Value::Num(x) => push!(Value::Num(-x)),
                    other => {
                        return Err(VmError::TypeMismatch {
                            expected: "numeric",
                            found: other.type_name(),
                        })
                    }
                }
                advance!()
            }
            Shl | Shr | BAnd | BOr | BXor => {
                let b = pop!().as_int()?;
                let a = pop!().as_int()?;
                let r = match instr {
                    Shl => a.wrapping_shl(b as u32),
                    Shr => a.wrapping_shr(b as u32),
                    BAnd => a & b,
                    BOr => a | b,
                    BXor => a ^ b,
                    _ => unreachable!(),
                };
                push!(Value::Int(r));
                advance!()
            }
            I2F => {
                let a = pop!().as_int()?;
                push!(Value::Num(a as f64));
                advance!()
            }
            F2I => {
                let a = pop!().as_num()?;
                push!(Value::Int(a as i64));
                advance!()
            }
            If(cmp, t) => {
                let b = pop!();
                let a = pop!();
                let sign = match (a, b) {
                    (Value::Int(x), Value::Int(y)) => x.cmp(&y) as i32,
                    (Value::Num(x), Value::Num(y)) => {
                        x.partial_cmp(&y).map(|o| o as i32).unwrap_or(1)
                    }
                    (Value::Ref(x), Value::Ref(y)) => (x != y) as i32,
                    // Reference identity across fetch states: a
                    // transfer-nulled ref equals the cached copy of the
                    // same home object.
                    (a, b) if a.is_reference() && b.is_reference() => {
                        let ident = |v: Value| -> Option<(bool, ObjId)> {
                            match v {
                                Value::Null => None,
                                Value::NulledRef(h) => Some((true, h)),
                                Value::Ref(id) => {
                                    match self.heap.get(id).ok().and_then(|o| o.home_id) {
                                        Some(h) => Some((true, h)),
                                        None => Some((false, id)),
                                    }
                                }
                                _ => unreachable!("is_reference"),
                            }
                        };
                        match (ident(a), ident(b)) {
                            (None, None) => 0,
                            (Some(x), Some(y)) => (x != y) as i32,
                            _ => 1,
                        }
                    }
                    (a, b) => {
                        return Err(VmError::TypeMismatch {
                            expected: "comparable operands",
                            found: if a.is_reference() {
                                b.type_name()
                            } else {
                                a.type_name()
                            },
                        })
                    }
                };
                if cmp.eval_sign(sign) {
                    jump!(t)
                } else {
                    advance!()
                }
            }
            IfZ(cmp, t) => {
                let a = pop!().as_int()?;
                if cmp.eval_sign(a.cmp(&0) as i32) {
                    jump!(t)
                } else {
                    advance!()
                }
            }
            IfNull(t) => {
                let a = pop!();
                if a.is_null() {
                    jump!(t)
                } else {
                    advance!()
                }
            }
            IfNonNull(t) => {
                let a = pop!();
                if !a.is_null() {
                    jump!(t)
                } else {
                    advance!()
                }
            }
            Goto(t) => jump!(t),
            Switch(sidx) => {
                let key = pop!().as_int()?;
                let table = self.classes[ci].def.methods[mi]
                    .switches
                    .get(sidx as usize)
                    .ok_or(VmError::BadPoolIndex(sidx))?;
                let t = table.lookup(key);
                jump!(t)
            }
            New(cidx) => {
                // IC: `a` caches the resolved class index. The class table is
                // append-only, so a filled cell never needs revalidation; a
                // miss parks (never cached) exactly like the reference path.
                let cell = if self.slow_resolve {
                    IcCell::EMPTY
                } else {
                    self.classes[ci].ics[mi][pc as usize]
                };
                let target_ci = if cell.is_filled() {
                    cell.a as usize
                } else {
                    let cname = self.classes[ci].def.pool_str(cidx)?;
                    match self.class_index.get(cname) {
                        Some(&tci) => tci,
                        None => {
                            let cname = cname.to_owned();
                            return self.park_class_miss(tid, cname);
                        }
                    }
                };
                if !self.slow_resolve && !cell.is_filled() {
                    self.classes[ci].ics[mi][pc as usize] = IcCell {
                        a: target_ci as u32,
                        b: 0,
                    };
                }
                let fields = self.classes[target_ci].def.default_instance_values();
                // The instance shares the loaded class's canonical name Arc:
                // no string copy per allocation, and receiver-keyed caches
                // validate it with a pointer comparison.
                let cname = self.classes[target_ci].name_arc.clone();
                let bytes = 16 + fields.len() as u64 * Value::SLOT_BYTES;
                match self.alloc_checked(tid, bytes, |h| h.alloc_obj(cname, fields)) {
                    Ok(id) => {
                        push!(Value::Ref(id));
                        advance!()
                    }
                    Err(out) => Ok(out),
                }
            }
            GetField(fidx) => {
                // IC: `a` = receiver class index, `b` = field slot, valid
                // when the receiver's class Arc is pointer-equal to the
                // cached class's canonical name.
                let cell = if self.slow_resolve {
                    IcCell::EMPTY
                } else {
                    self.classes[ci].ics[mi][pc as usize]
                };
                if !cell.is_filled() {
                    // Validate the pool index before popping, as the
                    // reference path does; a filled cell proves a prior
                    // successful resolution of this very operand.
                    self.classes[ci].def.pool_str(fidx)?;
                }
                let base = pop!();
                let Value::Ref(id) = base else { npe!() };
                if cell.is_filled() {
                    if let ObjKind::Obj { class, fields } = &self.heap.get(id)?.kind {
                        if Arc::ptr_eq(class, &self.classes[cell.a as usize].name_arc) {
                            let v = fields[cell.b as usize];
                            push!(v);
                            return advance!();
                        }
                    }
                }
                let (target_ci, fi, v) = {
                    let obj = self.heap.get(id)?;
                    let ObjKind::Obj { class, fields } = &obj.kind else {
                        return Err(VmError::TypeMismatch {
                            expected: "object",
                            found: "array/string",
                        });
                    };
                    let target_ci = self
                        .class_index
                        .get(class.as_ref())
                        .copied()
                        .ok_or_else(|| VmError::ClassNotFound(class.to_string()))?;
                    let fname = self.classes[ci].def.pool_str(fidx)?;
                    let fi = self.classes[target_ci]
                        .instance_field_idx(fname)
                        .ok_or_else(|| VmError::FieldNotFound {
                            class: class.to_string(),
                            field: fname.to_owned(),
                        })?;
                    (target_ci, fi, fields[fi])
                };
                if !self.slow_resolve {
                    self.classes[ci].ics[mi][pc as usize] = IcCell {
                        a: target_ci as u32,
                        b: fi as u32,
                    };
                    // Canonicalize the receiver's class Arc (wire-installed
                    // objects arrive with a fresh one) so the next access at
                    // any receiver-keyed site is a pointer match.
                    let canon = self.classes[target_ci].name_arc.clone();
                    if let ObjKind::Obj { class, .. } = &mut self.heap.get_mut(id)?.kind {
                        *class = canon;
                    }
                }
                push!(v);
                advance!()
            }
            PutField(fidx) => {
                // IC layout as GetField: receiver class index + field slot.
                let cell = if self.slow_resolve {
                    IcCell::EMPTY
                } else {
                    self.classes[ci].ics[mi][pc as usize]
                };
                if !cell.is_filled() {
                    self.classes[ci].def.pool_str(fidx)?;
                }
                let v = pop!();
                let base = pop!();
                let Value::Ref(id) = base else { npe!() };
                if cell.is_filled() {
                    let obj = self.heap.get_mut(id)?;
                    if let ObjKind::Obj { class, fields } = &mut obj.kind {
                        if Arc::ptr_eq(class, &self.classes[cell.a as usize].name_arc) {
                            fields[cell.b as usize] = v;
                            obj.dirty = true;
                            return advance!();
                        }
                    }
                }
                let (target_ci, fi) = {
                    let class = self.heap.get(id)?.class_name();
                    let target_ci = self
                        .class_index
                        .get(class)
                        .copied()
                        .ok_or_else(|| VmError::ClassNotFound(class.to_owned()))?;
                    let fname = self.classes[ci].def.pool_str(fidx)?;
                    let fi = self.classes[target_ci]
                        .instance_field_idx(fname)
                        .ok_or_else(|| VmError::FieldNotFound {
                            class: class.to_owned(),
                            field: fname.to_owned(),
                        })?;
                    (target_ci, fi)
                };
                let canon = (!self.slow_resolve).then(|| self.classes[target_ci].name_arc.clone());
                let obj = self.heap.get_mut(id)?;
                match &mut obj.kind {
                    ObjKind::Obj { class, fields } => {
                        if let Some(canon) = canon {
                            *class = canon;
                        }
                        fields[fi] = v;
                        obj.dirty = true;
                    }
                    _ => unreachable!("class_name returned a class"),
                }
                if !self.slow_resolve {
                    self.classes[ci].ics[mi][pc as usize] = IcCell {
                        a: target_ci as u32,
                        b: fi as u32,
                    };
                }
                advance!()
            }
            GetStatic(cidx, fidx) => {
                // IC: `a` = class index, `b` = static slot. Statics never
                // move once linked, so a filled cell reads directly.
                let cell = if self.slow_resolve {
                    IcCell::EMPTY
                } else {
                    self.classes[ci].ics[mi][pc as usize]
                };
                if cell.is_filled() {
                    let v = self.classes[cell.a as usize].statics[cell.b as usize];
                    push!(v);
                    return advance!();
                }
                let resolved = {
                    let cname = self.classes[ci].def.pool_str(cidx)?;
                    let fname = self.classes[ci].def.pool_str(fidx)?;
                    match self.class_index.get(cname).copied() {
                        Some(tci) => match self.classes[tci].static_field_idx(fname) {
                            Some(fi) => Some((tci, fi)),
                            None => {
                                return Err(VmError::FieldNotFound {
                                    class: cname.to_owned(),
                                    field: fname.to_owned(),
                                })
                            }
                        },
                        None => None,
                    }
                };
                let Some((target_ci, fi)) = resolved else {
                    let cname = self.classes[ci].def.pool_str(cidx)?.to_owned();
                    return self.park_class_miss(tid, cname);
                };
                if !self.slow_resolve {
                    self.classes[ci].ics[mi][pc as usize] = IcCell {
                        a: target_ci as u32,
                        b: fi as u32,
                    };
                }
                let v = self.classes[target_ci].statics[fi];
                push!(v);
                advance!()
            }
            PutStatic(cidx, fidx) => {
                // IC layout as GetStatic. A filled cell proves class and
                // slot exist, so the popped value is always consumed.
                let cell = if self.slow_resolve {
                    IcCell::EMPTY
                } else {
                    self.classes[ci].ics[mi][pc as usize]
                };
                if cell.is_filled() {
                    let v = pop!();
                    self.classes[cell.a as usize].statics[cell.b as usize] = v;
                    return advance!();
                }
                // Validate both pool indices before the pop, as the
                // reference path does.
                self.classes[ci].def.pool_str(cidx)?;
                self.classes[ci].def.pool_str(fidx)?;
                let v = pop!();
                let resolved = {
                    let cname = self.classes[ci].def.pool_str(cidx)?;
                    let fname = self.classes[ci].def.pool_str(fidx)?;
                    match self.class_index.get(cname).copied() {
                        Some(tci) => match self.classes[tci].static_field_idx(fname) {
                            Some(fi) => Ok((tci, fi)),
                            None => Err(VmError::FieldNotFound {
                                class: cname.to_owned(),
                                field: fname.to_owned(),
                            }),
                        },
                        None => {
                            // Undo the pop before parking so re-execution is
                            // clean.
                            let cname = cname.to_owned();
                            push!(v);
                            return self.park_class_miss(tid, cname);
                        }
                    }
                };
                let (target_ci, fi) = resolved?;
                self.classes[target_ci].statics[fi] = v;
                if !self.slow_resolve {
                    self.classes[ci].ics[mi][pc as usize] = IcCell {
                        a: target_ci as u32,
                        b: fi as u32,
                    };
                }
                advance!()
            }
            NewArr => {
                let len = pop!().as_int()?;
                if len < 0 {
                    return self.throw_and_outcome(tid, ExKind::ArrayBounds, "negative length");
                }
                let bytes = 16 + len as u64 * Value::SLOT_BYTES;
                match self.alloc_checked(tid, bytes, |h| h.alloc_arr(len as usize)) {
                    Ok(id) => {
                        push!(Value::Ref(id));
                        advance!()
                    }
                    Err(out) => Ok(out),
                }
            }
            ALoad => {
                let idx = pop!().as_int()?;
                let base = pop!();
                let Value::Ref(id) = base else { npe!() };
                match self.heap.arr_get(id, idx)? {
                    Some(v) => {
                        push!(v);
                        advance!()
                    }
                    None => self.throw_and_outcome(
                        tid,
                        ExKind::ArrayBounds,
                        &format!("index {idx} out of bounds"),
                    ),
                }
            }
            AStore => {
                let v = pop!();
                let idx = pop!().as_int()?;
                let base = pop!();
                let Value::Ref(id) = base else { npe!() };
                if self.heap.arr_set(id, idx, v)? {
                    advance!()
                } else {
                    self.throw_and_outcome(
                        tid,
                        ExKind::ArrayBounds,
                        &format!("index {idx} out of bounds"),
                    )
                }
            }
            ArrLen => {
                let base = pop!();
                let Value::Ref(id) = base else { npe!() };
                let len = self.heap.arr_len(id)?;
                push!(Value::Int(len));
                advance!()
            }
            InvokeStatic(cidx, midx, nargs) => {
                // IC: `a` = class index, `b` = method index — static call
                // targets are fixed once resolved.
                let cell = if self.slow_resolve {
                    IcCell::EMPTY
                } else {
                    self.classes[ci].ics[mi][pc as usize]
                };
                if cell.is_filled() {
                    return self.push_callee_frame(tid, cell.a as usize, cell.b as usize, nargs);
                }
                let resolved = {
                    let cname = self.classes[ci].def.pool_str(cidx)?;
                    let mname = self.classes[ci].def.pool_str(midx)?;
                    match self.class_index.get(cname).copied() {
                        Some(tci) => match self.classes[tci].method_idx(mname) {
                            Some(tmi) => Some((tci, tmi)),
                            None => {
                                return Err(VmError::MethodNotFound {
                                    class: cname.to_owned(),
                                    method: mname.to_owned(),
                                })
                            }
                        },
                        None => None,
                    }
                };
                let Some((target_ci, target_mi)) = resolved else {
                    let cname = self.classes[ci].def.pool_str(cidx)?.to_owned();
                    return self.park_class_miss(tid, cname);
                };
                if !self.slow_resolve {
                    self.classes[ci].ics[mi][pc as usize] = IcCell {
                        a: target_ci as u32,
                        b: target_mi as u32,
                    };
                }
                self.push_callee_frame(tid, target_ci, target_mi, nargs)
            }
            InvokeVirtual(midx, nargs) => {
                debug_assert!(nargs >= 1, "virtual call needs a receiver");
                // IC: `a` = receiver class index, `b` = method index,
                // validated by pointer against the receiver's class Arc
                // (monomorphic sites hit; a new receiver class re-resolves
                // and re-fills).
                let cell = if self.slow_resolve {
                    IcCell::EMPTY
                } else {
                    self.classes[ci].ics[mi][pc as usize]
                };
                if !cell.is_filled() {
                    self.classes[ci].def.pool_str(midx)?;
                }
                let recv = {
                    let f = self.threads[tid].top().unwrap();
                    let n = f.ostack.len();
                    if n < nargs as usize {
                        return Err(VmError::StackUnderflow);
                    }
                    f.ostack[n - nargs as usize]
                };
                let Value::Ref(id) = recv else { npe!() };
                if cell.is_filled() {
                    if let ObjKind::Obj { class, .. } = &self.heap.get(id)?.kind {
                        if Arc::ptr_eq(class, &self.classes[cell.a as usize].name_arc) {
                            return self.push_callee_frame(
                                tid,
                                cell.a as usize,
                                cell.b as usize,
                                nargs,
                            );
                        }
                    }
                }
                let resolved = {
                    let cname = self.heap.get(id)?.class_name();
                    match self.class_index.get(cname).copied() {
                        Some(tci) => {
                            let mname = self.classes[ci].def.pool_str(midx)?;
                            match self.classes[tci].method_idx(mname) {
                                Some(tmi) => Some((tci, tmi)),
                                None => {
                                    return Err(VmError::MethodNotFound {
                                        class: cname.to_owned(),
                                        method: mname.to_owned(),
                                    })
                                }
                            }
                        }
                        None => None,
                    }
                };
                let Some((target_ci, target_mi)) = resolved else {
                    // Strings, arrays and unshipped classes park by
                    // (pseudo-)class name, exactly as the reference path.
                    let cname = self.heap.get(id)?.class_name().to_owned();
                    return self.park_class_miss(tid, cname);
                };
                if !self.slow_resolve {
                    self.classes[ci].ics[mi][pc as usize] = IcCell {
                        a: target_ci as u32,
                        b: target_mi as u32,
                    };
                    let canon = self.classes[target_ci].name_arc.clone();
                    if let ObjKind::Obj { class, .. } = &mut self.heap.get_mut(id)?.kind {
                        *class = canon;
                    }
                }
                self.push_callee_frame(tid, target_ci, target_mi, nargs)
            }
            Ret => self.pop_frame(tid, None),
            RetV => {
                let v = pop!();
                self.pop_frame(tid, Some(v))
            }
            ThrowKind(kind) => self.throw_and_outcome(tid, kind, "thrown by bytecode"),
            Throw => {
                let exv = pop!();
                let Value::Ref(id) = exv else { npe!() };
                let (kind, message) = match &self.heap.get(id)?.kind {
                    ObjKind::Exception { kind, message } => (*kind, message.clone()),
                    _ => (ExKind::User(0), String::from("user object thrown")),
                };
                self.throw_and_outcome(tid, kind, &message)
            }
            NativeCall(nidx, nargs) => {
                // The intrinsic name is borrowed straight from the constant
                // pool (`classes` and `heap`/`stdout` are disjoint fields) —
                // an owned copy is made only on the cold host-park path.
                self.classes[ci].def.pool_str(nidx)?;
                let mut args = vec![Value::Null; nargs as usize];
                {
                    let f = frame!();
                    for i in (0..nargs as usize).rev() {
                        args[i] = f.ostack.pop().ok_or(VmError::StackUnderflow)?;
                    }
                }
                let result = {
                    let name = self.classes[ci].def.pool_str(nidx)?;
                    intrinsics::eval(name, &args, &mut self.heap, &mut self.stdout)
                };
                match result {
                    Err(VmError::NullDeref) => {
                        // A null (or unfetched) reference reached a pure
                        // intrinsic: surface as a guest NPE.
                        self.throw_and_outcome(
                            tid,
                            ExKind::NullPointer,
                            "null argument to intrinsic",
                        )
                    }
                    Err(e) => Err(e),
                    Ok(IntrinsicEval::Done(v)) => {
                        push!(v);
                        advance!()
                    }
                    Ok(IntrinsicEval::Host) => {
                        let name = self.classes[ci].def.pool_str(nidx)?.to_owned();
                        let t = &mut self.threads[tid];
                        t.state = ThreadState::Parked(ParkReason::HostCall {
                            name: name.clone(),
                            args: args.clone(),
                        });
                        Ok(StepOutcome::HostCall { name, args })
                    }
                }
            }
            ReadCaptured(slot) => {
                let session = self.threads[tid]
                    .restore_session
                    .as_ref()
                    .ok_or(VmError::RestoreProtocol("ReadCaptured without session"))?;
                let (locals, _) = session
                    .frames
                    .get(session.cursor)
                    .ok_or(VmError::RestoreProtocol("restore cursor out of range"))?;
                let v = locals
                    .get(slot as usize)
                    .ok_or(VmError::BadLocalSlot(slot))?
                    .to_nulled_value();
                push!(v);
                advance!()
            }
            ReadCapturedPc => {
                let session = self.threads[tid]
                    .restore_session
                    .as_ref()
                    .ok_or(VmError::RestoreProtocol("ReadCapturedPc without session"))?;
                let (_, cap_pc) = session
                    .frames
                    .get(session.cursor)
                    .ok_or(VmError::RestoreProtocol("restore cursor out of range"))?;
                push!(Value::Int(*cap_pc as i64));
                advance!()
            }
            BringObjLocal(slot) => {
                let f = self.threads[tid].top().unwrap();
                let cur = *f
                    .locals
                    .get(slot as usize)
                    .ok_or(VmError::BadLocalSlot(slot))?;
                match cur {
                    // Another fault already repaired this slot; retry.
                    Value::Ref(_) => advance!(),
                    Value::NulledRef(home) => self.park_fault(
                        tid,
                        ObjectQuery { home_id: home },
                        FaultBind::Local { slot },
                    ),
                    // The null was computed by the guest: a genuine
                    // application NPE, not an object miss.
                    _ => self.app_npe(tid),
                }
            }
            BringObjField(base_slot, fidx) => {
                let fname = self.classes[ci].def.pool_str(fidx)?.to_owned();
                let f = self.threads[tid].top().unwrap();
                let base = *f
                    .locals
                    .get(base_slot as usize)
                    .ok_or(VmError::BadLocalSlot(base_slot))?;
                let Value::Ref(base_id) = base else {
                    // Base itself is null: handler chains fix the base first;
                    // reaching here means the handler chain is malformed.
                    return Err(VmError::RestoreProtocol("BringObjField on null base"));
                };
                let obj = self.heap.get(base_id)?;
                let class = obj.class_name().to_owned();
                let target_ci = self
                    .class_idx(&class)
                    .ok_or_else(|| VmError::ClassNotFound(class.clone()))?;
                let field_idx = self.classes[target_ci]
                    .instance_field_idx(&fname)
                    .ok_or_else(|| VmError::FieldNotFound {
                        class,
                        field: fname.clone(),
                    })?;
                let current = match &self.heap.get(base_id)?.kind {
                    ObjKind::Obj { fields, .. } => fields[field_idx],
                    _ => return Err(VmError::BadRef(base_id)),
                };
                match current {
                    Value::Ref(_) => advance!(),
                    Value::NulledRef(home) => self.park_fault(
                        tid,
                        ObjectQuery { home_id: home },
                        FaultBind::Field {
                            base: base_id,
                            field_idx,
                        },
                    ),
                    _ => self.app_npe(tid),
                }
            }
            BringObjStaticTo(cidx, fidx, dest) => {
                let cname = self.classes[ci].def.pool_str(cidx)?.to_owned();
                let fname = self.classes[ci].def.pool_str(fidx)?.to_owned();
                let target_ci = self
                    .class_idx(&cname)
                    .ok_or_else(|| VmError::ClassNotFound(cname.clone()))?;
                let static_idx = self.classes[target_ci]
                    .static_field_idx(&fname)
                    .ok_or_else(|| VmError::FieldNotFound {
                        class: cname.clone(),
                        field: fname.clone(),
                    })?;
                match self.classes[target_ci].statics[static_idx] {
                    Value::Ref(_) => advance!(),
                    Value::NulledRef(home) => self.park_fault(
                        tid,
                        ObjectQuery { home_id: home },
                        FaultBind::StaticTo {
                            class_idx: target_ci,
                            static_idx,
                            dest_slot: dest,
                        },
                    ),
                    _ => self.app_npe(tid),
                }
            }
            BringObjElemTo(base_slot, idx_slot, dest) => {
                let f = self.threads[tid].top().unwrap();
                let base = *f
                    .locals
                    .get(base_slot as usize)
                    .ok_or(VmError::BadLocalSlot(base_slot))?;
                let idx = f
                    .locals
                    .get(idx_slot as usize)
                    .ok_or(VmError::BadLocalSlot(idx_slot))?
                    .as_int()?;
                let Value::Ref(base_id) = base else {
                    return Err(VmError::RestoreProtocol("BringObjElemTo on null base"));
                };
                match self.heap.arr_get(base_id, idx)? {
                    Some(Value::Ref(_)) => advance!(),
                    Some(Value::NulledRef(home)) => self.park_fault(
                        tid,
                        ObjectQuery { home_id: home },
                        FaultBind::ElemTo {
                            base: base_id,
                            index: idx,
                            dest_slot: dest,
                        },
                    ),
                    Some(_) => self.app_npe(tid),
                    None => self.throw_and_outcome(
                        tid,
                        ExKind::ArrayBounds,
                        &format!("index {idx} out of bounds"),
                    ),
                }
            }
            RethrowAppNpe => self.app_npe(tid),
            CheckStatus(depth) => {
                let f = self.threads[tid].top().unwrap();
                let n = f.ostack.len();
                let pos = n
                    .checked_sub(1 + depth as usize)
                    .ok_or(VmError::StackUnderflow)?;
                let v = f.ostack[pos];
                if let Value::Ref(id) = v {
                    let obj = self.heap.get(id)?;
                    if obj.status == crate::heap::ObjStatus::Invalid {
                        let home = obj.home_id.ok_or(VmError::BadRef(id))?;
                        return self.park_fault(
                            tid,
                            ObjectQuery { home_id: home },
                            FaultBind::Stub,
                        );
                    }
                }
                advance!()
            }
            RestoreLocal(slot) => {
                let session = self.threads[tid]
                    .restore_session
                    .as_ref()
                    .ok_or(VmError::RestoreProtocol("RestoreLocal without session"))?;
                let (locals, _) = session
                    .frames
                    .get(session.cursor)
                    .ok_or(VmError::RestoreProtocol("restore cursor out of range"))?;
                let cap = *locals
                    .get(slot as usize)
                    .ok_or(VmError::BadLocalSlot(slot))?;
                let f = frame!();
                *f.locals
                    .get_mut(slot as usize)
                    .ok_or(VmError::BadLocalSlot(slot))? = cap.to_nulled_value();
                advance!()
            }
            Nop => advance!(),
        }
    }

    fn park_fault(
        &mut self,
        tid: usize,
        query: ObjectQuery,
        bind: FaultBind,
    ) -> VmResult<StepOutcome> {
        // A cached copy of the home object (e.g. installed by a prefetch)
        // satisfies the fault locally — no round trip.
        if !matches!(bind, FaultBind::Stub) {
            if let Some(local) = self.heap.find_cached(query.home_id) {
                self.apply_bind(tid, bind, local)?;
                let f = self.threads[tid].top_mut().ok_or(VmError::BadThread(tid))?;
                f.pc += 1;
                return Ok(StepOutcome::Continue);
            }
        }
        let t = &mut self.threads[tid];
        t.state = ThreadState::Parked(ParkReason::ObjectFault(query));
        t.pending_fault = Some(PendingFault { query, bind });
        Ok(StepOutcome::ObjectFault(query))
    }

    fn park_class_miss(&mut self, tid: usize, name: String) -> VmResult<StepOutcome> {
        let t = &mut self.threads[tid];
        t.state = ThreadState::Parked(ParkReason::ClassMiss(name.clone()));
        Ok(StepOutcome::ClassMiss(name))
    }

    fn push_callee_frame(
        &mut self,
        tid: usize,
        target_ci: usize,
        target_mi: usize,
        nargs: u8,
    ) -> VmResult<StepOutcome> {
        let m = &self.classes[target_ci].def.methods[target_mi];
        debug_assert_eq!(m.nargs as usize, nargs as usize, "arity mismatch");
        let nlocals = m.nlocals;
        let mut callee = Frame::new(target_ci, target_mi, nlocals);
        {
            let caller = self.threads[tid].top_mut().unwrap();
            let n = caller.ostack.len();
            if n < nargs as usize {
                return Err(VmError::StackUnderflow);
            }
            let args = caller.ostack.split_off(n - nargs as usize);
            callee.locals[..args.len()].copy_from_slice(&args);
        }
        let t = &mut self.threads[tid];
        t.frames.push(callee);
        t.max_height = t.max_height.max(t.frames.len());
        Ok(StepOutcome::Continue)
    }

    /// Pop the top frame, delivering `retval` to the caller (or finishing
    /// the thread). The caller's pc — parked at its Invoke — advances.
    fn pop_frame(&mut self, tid: usize, retval: Option<Value>) -> VmResult<StepOutcome> {
        let t = &mut self.threads[tid];
        let popped = t.frames.pop().expect("frame to pop");
        if t.seg_frames > t.frames.len() {
            t.seg_frames = t.frames.len();
        }
        match t.frames.last_mut() {
            Some(caller) => {
                caller.pc += 1;
                if let Some(v) = retval {
                    caller.ostack.push(v);
                }
                drop(popped);
                Ok(StepOutcome::Continue)
            }
            None => {
                t.state = ThreadState::Finished(retval);
                Ok(StepOutcome::Returned(retval))
            }
        }
    }

    /// First pc of the source line containing `pc` in the given method —
    /// the statement start. Exception-driven offload rolls a faulted frame
    /// back here before capturing (rearranged statements are single-effect,
    /// so re-executing from the line start is safe).
    pub fn line_start_pc(&self, class_idx: usize, method_idx: usize, pc: u32) -> u32 {
        let m = &self.classes[class_idx].def.methods[method_idx];
        let line = m.line_of(pc);
        let mut start = pc;
        while start > 0 && m.line_of(start - 1) == line {
            start -= 1;
        }
        start
    }

    /// The paper's `ForceEarlyReturn<type>`: pop the top frame of a
    /// *suspended* thread, delivering `retval` to the caller as if the
    /// method had returned. Used by the home node when a migrated segment
    /// completes remotely.
    pub fn force_early_return(&mut self, tid: usize, retval: Option<Value>) -> VmResult<()> {
        let t = self.thread_mut(tid)?;
        if t.frames.is_empty() {
            return Err(VmError::BadThread(tid));
        }
        t.frames.pop();
        if t.seg_frames > t.frames.len() {
            t.seg_frames = t.frames.len();
        }
        match t.frames.last_mut() {
            Some(caller) => {
                caller.pc += 1;
                if let Some(v) = retval {
                    caller.ostack.push(v);
                }
                t.state = ThreadState::Runnable;
            }
            None => {
                t.state = ThreadState::Finished(retval);
            }
        }
        Ok(())
    }
}

/// Small helper so `Finished(None)`/`Finished(Some(v))` both map cleanly.
trait FlattenUnit {
    fn flatten_unit(self) -> Option<Value>;
}

impl FlattenUnit for Option<Value> {
    fn flatten_unit(self) -> Option<Value> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{ClassDef, ExEntry, FieldDef, MethodDef};
    use crate::instr::Cmp;
    use crate::value::TypeOf;

    fn vm_with(classes: &[ClassDef]) -> Vm {
        let mut vm = Vm::new();
        for c in classes {
            vm.load_class(c).unwrap();
        }
        vm
    }

    fn main_class(code: Vec<Instr>, lines: Vec<u32>, extra_locals: u16) -> ClassDef {
        ClassDef::new("Main")
            .with_method(MethodDef::new("main", 0, extra_locals).with_code(code, lines))
    }

    #[test]
    fn arithmetic_and_return() {
        let c = main_class(
            vec![Instr::PushI(6), Instr::PushI(7), Instr::Mul, Instr::RetV],
            vec![1, 1, 1, 1],
            0,
        );
        let mut vm = vm_with(&[c]);
        let r = vm.run_to_completion("Main", "main", &[]).unwrap();
        assert_eq!(r, Some(Value::Int(42)));
        assert!(vm.meter_ns > 0);
        assert_eq!(vm.instr_count, 4);
    }

    #[test]
    fn float_arithmetic() {
        let c = main_class(
            vec![
                Instr::PushF(1.5),
                Instr::PushF(2.5),
                Instr::Add,
                Instr::PushI(2),
                Instr::I2F,
                Instr::Mul,
                Instr::RetV,
            ],
            vec![1; 7],
            0,
        );
        let mut vm = vm_with(&[c]);
        let r = vm.run_to_completion("Main", "main", &[]).unwrap();
        assert_eq!(r, Some(Value::Num(8.0)));
    }

    #[test]
    fn locals_and_branches_loop() {
        // sum 1..=5 via loop
        // l0: i, l1: sum
        let c = main_class(
            vec![
                Instr::PushI(1),
                Instr::Store(0), // i = 1
                Instr::PushI(0),
                Instr::Store(1), // sum = 0
                // loop:
                Instr::Load(0),
                Instr::PushI(5),
                Instr::If(Cmp::Gt, 13), // if i > 5 goto end
                Instr::Load(1),
                Instr::Load(0),
                Instr::Add,
                Instr::Store(1), // sum += i
                Instr::Load(0),
                Instr::PushI(1),
                // ^ careful: pc13 must be end; recount below
                Instr::Add,
                Instr::Store(0),
                Instr::Goto(4),
                // end:
                Instr::Load(1),
                Instr::RetV,
            ],
            vec![1, 1, 2, 2, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 5, 6, 6],
            2,
        );
        // Fix the branch target: end is at index 16.
        let mut c = c;
        c.methods[0].code[6] = Instr::If(Cmp::Gt, 16);
        let mut vm = vm_with(&[c]);
        let r = vm.run_to_completion("Main", "main", &[]).unwrap();
        assert_eq!(r, Some(Value::Int(15)));
    }

    #[test]
    fn static_and_virtual_calls() {
        // Helper.twice(x) = x*2 ; Main.main() = twice(10) + obj.one()
        let mut helper = ClassDef::new("Helper");
        helper.methods.push(MethodDef::new("twice", 1, 0).with_code(
            vec![Instr::Load(0), Instr::PushI(2), Instr::Mul, Instr::RetV],
            vec![1; 4],
        ));
        helper.methods.push(
            MethodDef::new("one", 1, 0) // virtual: receiver in slot 0
                .with_code(vec![Instr::PushI(1), Instr::RetV], vec![1, 1]),
        );
        let mut main = ClassDef::new("Main");
        let h = main.intern("Helper");
        let tw = main.intern("twice");
        let one = main.intern("one");
        main.methods.push(MethodDef::new("main", 0, 0).with_code(
            vec![
                Instr::PushI(10),
                Instr::InvokeStatic(h, tw, 1),
                Instr::New(h),
                Instr::InvokeVirtual(one, 1),
                Instr::Add,
                Instr::RetV,
            ],
            vec![1; 6],
        ));
        let mut vm = vm_with(&[helper, main]);
        let r = vm.run_to_completion("Main", "main", &[]).unwrap();
        assert_eq!(r, Some(Value::Int(21)));
    }

    #[test]
    fn fields_and_objects() {
        let mut point = ClassDef::new("Point")
            .with_field(FieldDef::instance("x", TypeOf::Int))
            .with_field(FieldDef::instance("y", TypeOf::Int));
        let getx = point.intern("x");
        point.methods.push(MethodDef::new("getX", 1, 0).with_code(
            vec![Instr::Load(0), Instr::GetField(getx), Instr::RetV],
            vec![1; 3],
        ));
        let mut main = ClassDef::new("Main");
        let p = main.intern("Point");
        let x = main.intern("x");
        let getx_m = main.intern("getX");
        main.methods.push(MethodDef::new("main", 0, 1).with_code(
            vec![
                Instr::New(p),
                Instr::Store(0),
                Instr::Load(0),
                Instr::PushI(5),
                Instr::PutField(x),
                Instr::Load(0),
                Instr::InvokeVirtual(getx_m, 1),
                Instr::RetV,
            ],
            vec![1, 1, 2, 2, 2, 3, 3, 3],
        ));
        let mut vm = vm_with(&[point, main]);
        let r = vm.run_to_completion("Main", "main", &[]).unwrap();
        assert_eq!(r, Some(Value::Int(5)));
    }

    #[test]
    fn statics_roundtrip() {
        let mut c = ClassDef::new("Main").with_field(FieldDef::stat("counter", TypeOf::Int));
        let main_n = c.intern("Main");
        let counter = c.intern("counter");
        c.methods.push(MethodDef::new("main", 0, 0).with_code(
            vec![
                Instr::PushI(3),
                Instr::PutStatic(main_n, counter),
                Instr::GetStatic(main_n, counter),
                Instr::PushI(4),
                Instr::Add,
                Instr::RetV,
            ],
            vec![1, 1, 2, 2, 2, 2],
        ));
        let mut vm = vm_with(&[c]);
        let r = vm.run_to_completion("Main", "main", &[]).unwrap();
        assert_eq!(r, Some(Value::Int(7)));
    }

    #[test]
    fn arrays() {
        let c = main_class(
            vec![
                Instr::PushI(3),
                Instr::NewArr,
                Instr::Store(0),
                Instr::Load(0),
                Instr::PushI(1),
                Instr::PushI(99),
                Instr::AStore,
                Instr::Load(0),
                Instr::PushI(1),
                Instr::ALoad,
                Instr::Load(0),
                Instr::ArrLen,
                Instr::Add,
                Instr::RetV,
            ],
            vec![1; 14],
            1,
        );
        let mut vm = vm_with(&[c]);
        let r = vm.run_to_completion("Main", "main", &[]).unwrap();
        assert_eq!(r, Some(Value::Int(102)));
    }

    #[test]
    fn exception_caught_by_table() {
        // Divide by zero, caught; handler returns 7.
        let m = MethodDef::new("main", 0, 0)
            .with_code(
                vec![
                    Instr::PushI(1), // 0 line 1
                    Instr::PushI(0),
                    Instr::Div,
                    Instr::RetV,
                    Instr::Pop, // 4: handler, line 2
                    Instr::PushI(7),
                    Instr::RetV,
                ],
                vec![1, 1, 1, 1, 2, 2, 2],
            )
            .with_ex_table(vec![ExEntry::new(0, 4, 4, ExKind::DivByZero)]);
        let c = ClassDef::new("Main").with_method(m);
        let mut vm = vm_with(&[c]);
        let r = vm.run_to_completion("Main", "main", &[]).unwrap();
        assert_eq!(r, Some(Value::Int(7)));
    }

    #[test]
    fn exception_unwinds_frames() {
        // Main calls Thrower.boom() which divides by zero; Main catches it.
        let thrower = ClassDef::new("Thrower").with_method(MethodDef::new("boom", 0, 0).with_code(
            vec![Instr::PushI(1), Instr::PushI(0), Instr::Div, Instr::RetV],
            vec![1; 4],
        ));
        let mut main = ClassDef::new("Main");
        let t = main.intern("Thrower");
        let b = main.intern("boom");
        main.methods.push(
            MethodDef::new("main", 0, 0)
                .with_code(
                    vec![
                        Instr::InvokeStatic(t, b, 0), // 0 line 1
                        Instr::RetV,                  // 1
                        Instr::Pop,                   // 2 handler line 2
                        Instr::PushI(55),
                        Instr::RetV,
                    ],
                    vec![1, 1, 2, 2, 2],
                )
                .with_ex_table(vec![ExEntry::new(0, 2, 2, ExKind::DivByZero)]),
        );
        let mut vm = vm_with(&[thrower, main]);
        let r = vm.run_to_completion("Main", "main", &[]).unwrap();
        assert_eq!(r, Some(Value::Int(55)));
    }

    #[test]
    fn unhandled_exception_preserves_frames() {
        let c = main_class(
            vec![Instr::PushI(1), Instr::PushI(0), Instr::Div, Instr::RetV],
            vec![1; 4],
            0,
        );
        let mut vm = vm_with(&[c]);
        let tid = vm.spawn("Main", "main", &[]).unwrap();
        let (out, _) = vm.run(tid, u64::MAX, RunMode::Normal).unwrap();
        match out {
            StepOutcome::Unhandled(e) => assert_eq!(e.kind, ExKind::DivByZero),
            other => panic!("expected Unhandled, got {other:?}"),
        }
        // Frames are preserved for policy inspection.
        assert_eq!(vm.thread(tid).unwrap().frames.len(), 1);
    }

    #[test]
    fn null_deref_raises_guest_npe() {
        let c = main_class(
            vec![Instr::PushNull, Instr::ArrLen, Instr::RetV],
            vec![1; 3],
            0,
        );
        let mut vm = vm_with(&[c]);
        let tid = vm.spawn("Main", "main", &[]).unwrap();
        let (out, _) = vm.run(tid, u64::MAX, RunMode::Normal).unwrap();
        assert!(matches!(
            out,
            StepOutcome::Unhandled(ExceptionInfo {
                kind: ExKind::NullPointer,
                ..
            })
        ));
    }

    #[test]
    fn host_call_parks_and_resumes() {
        let mut c = ClassDef::new("Main");
        let fs = c.intern("fs_size");
        let path = c.intern("/data/file");
        c.methods.push(MethodDef::new("main", 0, 0).with_code(
            vec![Instr::PushStr(path), Instr::NativeCall(fs, 1), Instr::RetV],
            vec![1; 3],
        ));
        let mut vm = vm_with(&[c]);
        let tid = vm.spawn("Main", "main", &[]).unwrap();
        let (out, _) = vm.run(tid, u64::MAX, RunMode::Normal).unwrap();
        match out {
            StepOutcome::HostCall { name, args } => {
                assert_eq!(name, "fs_size");
                assert_eq!(args.len(), 1);
            }
            other => panic!("expected HostCall, got {other:?}"),
        }
        vm.resume_host(tid, Value::Int(4096)).unwrap();
        let (out, _) = vm.run(tid, u64::MAX, RunMode::Normal).unwrap();
        assert_eq!(out, StepOutcome::Returned(Some(Value::Int(4096))));
    }

    #[test]
    fn class_miss_parks_until_loaded() {
        let mut main = ClassDef::new("Main");
        let lazy = main.intern("Lazy");
        let get = main.intern("get");
        main.methods.push(MethodDef::new("main", 0, 0).with_code(
            vec![Instr::InvokeStatic(lazy, get, 0), Instr::RetV],
            vec![1, 1],
        ));
        let mut vm = vm_with(&[main]);
        let tid = vm.spawn("Main", "main", &[]).unwrap();
        let (out, _) = vm.run(tid, u64::MAX, RunMode::Normal).unwrap();
        assert_eq!(out, StepOutcome::ClassMiss("Lazy".to_owned()));
        // Load the class and resume: instruction re-executes.
        let lazy_def = ClassDef::new("Lazy").with_method(
            MethodDef::new("get", 0, 0).with_code(vec![Instr::PushI(9), Instr::RetV], vec![1, 1]),
        );
        vm.load_class(&lazy_def).unwrap();
        vm.resume_class_loaded(tid).unwrap();
        let (out, _) = vm.run(tid, u64::MAX, RunMode::Normal).unwrap();
        assert_eq!(out, StepOutcome::Returned(Some(Value::Int(9))));
    }

    #[test]
    fn breakpoint_hits_once() {
        let c = main_class(vec![Instr::PushI(1), Instr::RetV], vec![1, 1], 0);
        let mut vm = vm_with(&[c]);
        let tid = vm.spawn("Main", "main", &[]).unwrap();
        vm.set_breakpoint(tid, 0, 0, 0);
        // A different thread on the same location sails through: the
        // breakpoint is armed for `tid` alone.
        let other = vm.spawn("Main", "main", &[]).unwrap();
        let (out, _) = vm.run(other, u64::MAX, RunMode::Normal).unwrap();
        assert!(matches!(out, StepOutcome::Returned(_)));
        let out = vm.step(tid).unwrap();
        assert!(matches!(out, StepOutcome::Breakpoint { pc: 0, .. }));
        // Disarmed: next step executes normally.
        let out = vm.step(tid).unwrap();
        assert_eq!(out, StepOutcome::Continue);
    }

    #[test]
    fn run_budget_slices_execution() {
        // An infinite loop only consumes its budget per slice.
        let c = main_class(vec![Instr::Goto(0)], vec![1], 0);
        let mut vm = vm_with(&[c]);
        let tid = vm.spawn("Main", "main", &[]).unwrap();
        let (out, spent) = vm.run(tid, 1000, RunMode::Normal).unwrap();
        assert_eq!(out, StepOutcome::Continue);
        assert!(spent >= 1000);
        assert!(spent < 2000);
    }

    /// Counter class with an instance field `n` and a virtual `bump`, plus a
    /// Main that allocates one Counter and bumps it `iters` times — traffic
    /// for the New / GetField / PutField / InvokeVirtual inline caches and
    /// plenty of fusable (Load, x) pairs.
    fn counter_program(iters: i64) -> Vec<ClassDef> {
        let mut counter = ClassDef::new("Counter").with_field(FieldDef::instance("n", TypeOf::Int));
        let n = counter.intern("n");
        counter.methods.push(MethodDef::new("bump", 1, 0).with_code(
            vec![
                Instr::Load(0),
                Instr::Load(0),
                Instr::GetField(n),
                Instr::PushI(1),
                Instr::Add,
                Instr::PutField(n),
                Instr::PushI(0),
                Instr::RetV,
            ],
            vec![1; 8],
        ));
        let mut main = ClassDef::new("Main");
        let cc = main.intern("Counter");
        let bump = main.intern("bump");
        let n = main.intern("n");
        main.methods.push(
            // l0: counter, l1: i
            MethodDef::new("main", 0, 2).with_code(
                vec![
                    Instr::New(cc),
                    Instr::Store(0),
                    Instr::PushI(0),
                    Instr::Store(1),
                    // loop:
                    Instr::Load(1),
                    Instr::PushI(iters),
                    Instr::If(Cmp::Ge, 15),
                    Instr::Load(0),
                    Instr::InvokeVirtual(bump, 1),
                    Instr::Pop,
                    Instr::Load(1),
                    Instr::PushI(1),
                    Instr::Add,
                    Instr::Store(1),
                    Instr::Goto(4),
                    // end:
                    Instr::Load(0),
                    Instr::GetField(n),
                    Instr::RetV,
                ],
                vec![1, 1, 2, 2, 3, 3, 3, 4, 4, 4, 5, 5, 5, 5, 5, 6, 6, 6],
            ),
        );
        vec![counter, main]
    }

    #[test]
    fn fast_path_matches_reference_slice_by_slice() {
        // Same program in two VMs — inline caches + superinstructions vs
        // the name-resolution reference — run in tiny budget slices so
        // fused pairs straddle slice boundaries. Every observable meter
        // must agree after every slice.
        let classes = counter_program(10);
        let mut fast = vm_with(&classes);
        let mut slow = vm_with(&classes);
        slow.slow_resolve = true;
        let ft = fast.spawn("Main", "main", &[]).unwrap();
        let st = slow.spawn("Main", "main", &[]).unwrap();
        loop {
            let (fo, fspent) = fast.run(ft, 37, RunMode::Normal).unwrap();
            let (so, sspent) = slow.run(st, 37, RunMode::Normal).unwrap();
            assert_eq!(fo, so);
            assert_eq!(fspent, sspent);
            assert_eq!(fast.meter_ns, slow.meter_ns);
            assert_eq!(fast.instr_count, slow.instr_count);
            if let StepOutcome::Returned(v) = fo {
                assert_eq!(v, Some(Value::Int(10)));
                break;
            }
        }
        assert_eq!(fast.heap.used_bytes(), slow.heap.used_bytes());
        assert_eq!(fast.heap.alloc_count(), slow.heap.alloc_count());
        // The fast VM warmed its caches; the reference VM never fills any.
        assert!(fast.classes.iter().any(|c| c.ic_warm_count() > 0));
        assert!(slow.classes.iter().all(|c| c.ic_warm_count() == 0));
    }

    #[test]
    fn armed_breakpoint_disables_fused_dispatch() {
        // Arm a breakpoint at the *second half* of a fusable (Load, PushI)
        // pair. Fused dispatch must stand down while anything is armed, so
        // run() still observes the mid-pair pc.
        let classes = counter_program(3);
        let mut vm = vm_with(&classes);
        let tid = vm.spawn("Main", "main", &[]).unwrap();
        let main_ci = vm.class_idx("Main").unwrap();
        // pc 5 (`PushI iters`) is the second half of the fused pair at pc 4
        // (`Load i`).
        vm.set_breakpoint(tid, main_ci, 0, 5);
        let (out, _) = vm.run(tid, u64::MAX, RunMode::Normal).unwrap();
        assert!(matches!(out, StepOutcome::Breakpoint { pc: 5, .. }));
        // Disarmed: the run completes and fused dispatch resumes.
        let (out, _) = vm.run(tid, u64::MAX, RunMode::Normal).unwrap();
        assert_eq!(out, StepOutcome::Returned(Some(Value::Int(3))));
    }

    #[test]
    fn public_step_never_fuses() {
        // Single-stepping retires exactly one instruction per call even on
        // pcs that have a fused cell.
        let classes = counter_program(2);
        let mut vm = vm_with(&classes);
        let tid = vm.spawn("Main", "main", &[]).unwrap();
        let mut steps = 0;
        let result = loop {
            let count_before = vm.instr_count;
            match vm.step(tid).unwrap() {
                StepOutcome::Returned(v) => break v,
                StepOutcome::Continue => {
                    assert_eq!(vm.instr_count, count_before + 1);
                    steps += 1;
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        };
        assert_eq!(result, Some(Value::Int(2)));
        assert!(steps > 10);
    }

    #[test]
    fn stop_at_msp() {
        // line 1: two instrs; line 2 starts at pc 2 with empty stack.
        let c = main_class(
            vec![
                Instr::PushI(1),
                Instr::Store(0),
                Instr::PushI(2),
                Instr::Store(0),
                Instr::Ret,
            ],
            vec![1, 1, 2, 2, 3],
            1,
        );
        let mut vm = vm_with(&[c]);
        let tid = vm.spawn("Main", "main", &[]).unwrap();
        // First stop: pc 0 is itself an MSP.
        let (out, _) = vm.run(tid, u64::MAX, RunMode::StopAtMsp).unwrap();
        assert_eq!(out, StepOutcome::AtMsp { pc: 0 });
        vm.step(tid).unwrap();
        let (out, _) = vm.run(tid, u64::MAX, RunMode::StopAtMsp).unwrap();
        assert_eq!(out, StepOutcome::AtMsp { pc: 2 });
    }

    #[test]
    fn force_early_return_pops_and_delivers() {
        // main calls callee; we force-early-return the callee with 123.
        let callee = ClassDef::new("Callee").with_method(MethodDef::new("work", 0, 0).with_code(
            vec![Instr::Goto(0)], // never returns on its own
            vec![1],
        ));
        let mut main = ClassDef::new("Main");
        let cal = main.intern("Callee");
        let work = main.intern("work");
        main.methods.push(MethodDef::new("main", 0, 0).with_code(
            vec![Instr::InvokeStatic(cal, work, 0), Instr::RetV],
            vec![1, 1],
        ));
        let mut vm = vm_with(&[callee, main]);
        let tid = vm.spawn("Main", "main", &[]).unwrap();
        // Run a little: enters the callee loop.
        let (out, _) = vm.run(tid, 100, RunMode::Normal).unwrap();
        assert_eq!(out, StepOutcome::Continue);
        assert_eq!(vm.thread(tid).unwrap().frames.len(), 2);
        vm.force_early_return(tid, Some(Value::Int(123))).unwrap();
        let (out, _) = vm.run(tid, u64::MAX, RunMode::Normal).unwrap();
        assert_eq!(out, StepOutcome::Returned(Some(Value::Int(123))));
    }

    #[test]
    fn interp_mode_charges_more() {
        let code = vec![Instr::PushI(1), Instr::PushI(2), Instr::Add, Instr::RetV];
        let c = main_class(code.clone(), vec![1; 4], 0);
        let mut vm1 = vm_with(std::slice::from_ref(&c));
        vm1.run_to_completion("Main", "main", &[]).unwrap();
        let mut vm2 = vm_with(&[c]);
        let tid = vm2.spawn("Main", "main", &[]).unwrap();
        vm2.threads[tid].interp_mode = true;
        let (out, _) = vm2.run(tid, u64::MAX, RunMode::Normal).unwrap();
        assert!(matches!(out, StepOutcome::Returned(_)));
        assert_eq!(vm2.meter_ns, vm1.meter_ns * u64::from(INTERP_MODE_FACTOR));
    }

    #[test]
    fn cost_scale_applies() {
        let c = main_class(vec![Instr::PushI(1), Instr::RetV], vec![1, 1], 0);
        let mut vm1 = vm_with(std::slice::from_ref(&c));
        vm1.run_to_completion("Main", "main", &[]).unwrap();
        let mut vm2 = vm_with(&[c]);
        vm2.cost_scale_per_mille = 2000;
        vm2.run_to_completion("Main", "main", &[]).unwrap();
        assert_eq!(vm2.meter_ns, vm1.meter_ns * 2);
    }

    #[test]
    fn mem_limit_raises_oom() {
        let c = main_class(
            vec![Instr::PushI(1_000_000), Instr::NewArr, Instr::RetV],
            vec![1; 3],
            0,
        );
        let mut vm = vm_with(&[c]);
        vm.mem_limit = Some(1024);
        let tid = vm.spawn("Main", "main", &[]).unwrap();
        let (out, _) = vm.run(tid, u64::MAX, RunMode::Normal).unwrap();
        assert!(matches!(
            out,
            StepOutcome::Unhandled(ExceptionInfo {
                kind: ExKind::OutOfMemory,
                ..
            })
        ));
    }

    #[test]
    fn max_height_tracked() {
        // Recursion depth 5: f(n) = n==0 ? 0 : f(n-1)
        let mut c = ClassDef::new("Main");
        let main_n = c.intern("Main");
        let f = c.intern("f");
        c.methods.push(MethodDef::new("main", 0, 0).with_code(
            vec![
                Instr::PushI(5),
                Instr::InvokeStatic(main_n, f, 1),
                Instr::RetV,
            ],
            vec![1; 3],
        ));
        c.methods.push(MethodDef::new("f", 1, 0).with_code(
            vec![
                Instr::Load(0),                    // 0
                Instr::IfZ(Cmp::Ne, 3),            // 1: if n != 0 goto 3
                Instr::Goto(8),                    // 2  -> return 0 path
                Instr::Load(0),                    // 3
                Instr::PushI(1),                   // 4
                Instr::Sub,                        // 5
                Instr::InvokeStatic(main_n, f, 1), // 6
                Instr::RetV,                       // 7
                Instr::PushI(0),                   // 8
                Instr::RetV,                       // 9
            ],
            vec![1, 1, 1, 2, 2, 2, 2, 2, 3, 3],
        ));
        let mut vm = vm_with(&[c]);
        let tid = vm.spawn("Main", "main", &[]).unwrap();
        vm.run(tid, u64::MAX, RunMode::Normal).unwrap();
        assert_eq!(vm.thread(tid).unwrap().max_height, 7); // main + f(5..0)
    }

    #[test]
    fn print_collects_stdout() {
        let mut c = ClassDef::new("Main");
        let pr = c.intern("print");
        let msg = c.intern("hello");
        c.methods.push(MethodDef::new("main", 0, 0).with_code(
            vec![
                Instr::PushStr(msg),
                Instr::NativeCall(pr, 1),
                Instr::Pop,
                Instr::PushI(0),
                Instr::RetV,
            ],
            vec![1; 5],
        ));
        let mut vm = vm_with(&[c]);
        vm.run_to_completion("Main", "main", &[]).unwrap();
        assert_eq!(vm.stdout, vec!["hello".to_owned()]);
    }

    #[test]
    fn string_interning_dedups() {
        let mut vm = Vm::new();
        let a = vm.intern_str("x");
        let b = vm.intern_str("x");
        let c = vm.intern_str("y");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn spawn_arity_checked() {
        let c = main_class(vec![Instr::Ret], vec![1], 0);
        let mut vm = vm_with(&[c]);
        assert!(vm.spawn("Main", "main", &[Value::Int(1)]).is_err());
        assert!(vm.spawn("Nope", "main", &[]).is_err());
        assert!(vm.spawn("Main", "nope", &[]).is_err());
    }

    #[test]
    fn duplicate_class_rejected() {
        let c = main_class(vec![Instr::Ret], vec![1], 0);
        let mut vm = vm_with(std::slice::from_ref(&c));
        assert!(matches!(vm.load_class(&c), Err(VmError::DuplicateClass(_))));
    }
}
