//! Simulated per-node file systems with NFS mounts.
//!
//! Files have sizes and optional deterministic "match positions" for the
//! text-search workloads (the paper's document search reads 600 MB files
//! over NFS and scans for a string — what matters for the reproduction is
//! *where the bytes move*, so content is parameterised, not materialised).
//!
//! Reads from a local file cost disk time; reads from a mounted remote
//! path stream the bytes from the serving node over the simulated network
//! (the runtime engine issues those messages). I/O-bound scans also charge
//! a per-byte CPU cost scaled by the VM's I/O efficiency factor — this is
//! how JESSICA2's slow I/O library (Table VI: only 2.88 % gain) is
//! modelled.

use std::collections::HashMap;

use sod_net::time::{MS, NS_PER_SEC};

/// One simulated file.
#[derive(Clone, Debug, PartialEq)]
pub struct FileMeta {
    pub bytes: u64,
    /// Deterministic search outcome: byte offset where a needle matches,
    /// if any.
    pub match_at: Option<u64>,
}

/// A node's file system plus NFS mounts.
#[derive(Clone, Debug, Default)]
pub struct SimFs {
    files: HashMap<String, FileMeta>,
    /// Path prefix → serving node. Longest prefix wins.
    mounts: Vec<(String, usize)>,
    /// Local disk read bandwidth (bytes/s) and fixed seek time.
    pub disk_bps: u64,
    pub seek_ns: u64,
}

impl SimFs {
    pub fn new() -> Self {
        SimFs {
            files: HashMap::new(),
            mounts: Vec::new(),
            disk_bps: 150_000_000, // 150 MB/s SAS RAID-1
            seek_ns: 5 * MS,
        }
    }

    /// Create or replace a local file.
    pub fn add_file(&mut self, path: impl Into<String>, bytes: u64, match_at: Option<u64>) {
        self.files.insert(path.into(), FileMeta { bytes, match_at });
    }

    /// Mount `prefix` from `server`.
    pub fn mount(&mut self, prefix: impl Into<String>, server: usize) {
        self.mounts.push((prefix.into(), server));
        self.mounts.sort_by_key(|(p, _)| std::cmp::Reverse(p.len()));
    }

    /// Which node serves `path`: `None` means local.
    pub fn serving_node(&self, path: &str) -> Option<usize> {
        self.mounts
            .iter()
            .find(|(p, _)| path.starts_with(p.as_str()))
            .map(|(_, n)| *n)
    }

    pub fn file(&self, path: &str) -> Option<&FileMeta> {
        self.files.get(path)
    }

    /// Paths under a directory prefix, sorted (for `fs_list`).
    pub fn list(&self, dir: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .files
            .keys()
            .filter(|p| p.starts_with(dir))
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Virtual time to read `bytes` sequentially from local disk.
    pub fn disk_read_ns(&self, bytes: u64) -> u64 {
        self.seek_ns + bytes * NS_PER_SEC / self.disk_bps.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn files_and_listing() {
        let mut fs = SimFs::new();
        fs.add_file("/data/a.txt", 100, None);
        fs.add_file("/data/b.txt", 200, Some(50));
        fs.add_file("/other/c.txt", 10, None);
        assert_eq!(fs.list("/data/"), vec!["/data/a.txt", "/data/b.txt"]);
        assert_eq!(fs.file("/data/b.txt").unwrap().match_at, Some(50));
        assert!(fs.file("/nope").is_none());
    }

    #[test]
    fn longest_prefix_mount_wins() {
        let mut fs = SimFs::new();
        fs.mount("/mnt/", 1);
        fs.mount("/mnt/deep/", 2);
        assert_eq!(fs.serving_node("/mnt/deep/x"), Some(2));
        assert_eq!(fs.serving_node("/mnt/x"), Some(1));
        assert_eq!(fs.serving_node("/local/x"), None);
    }

    #[test]
    fn disk_read_time() {
        let fs = SimFs::new();
        // 150 MB at 150 MB/s = 1 s + seek.
        assert_eq!(fs.disk_read_ns(150_000_000), fs.seek_ns + NS_PER_SEC);
    }
}
