//! Protocol messages exchanged between nodes (and node-local timers).
//!
//! The message set mirrors the paper's middleware: migration managers
//! exchange state and class files; object managers exchange object
//! requests/replies and dirty-object flushes; a handful of self-scheduled
//! timers drive execution slices and cost accounting.

use std::sync::Arc;

use bytes::Bytes;
use sod_vm::capture::CapturedValue;
use sod_vm::class::ClassDef;
use sod_vm::value::ObjId;
use sod_vm::wire::FrameBatch;

/// Program identity (one root thread somewhere in the cluster).
pub type ProgramId = u32;
/// Migration session identity (one migrated segment instance).
///
/// Ids are *striped per allocating node* — the high half names the node,
/// the low half counts its allocations — so independent shards draining in
/// parallel mint identical ids to a sequential run without coordinating
/// (see `Cluster::alloc_session`).
pub type SessionId = u64;

/// One segment of a migration plan: `nframes` counted from the top of the
/// remaining stack, shipped to `dest`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentSpec {
    pub dest: usize,
    pub nframes: usize,
}

/// A migration plan: how to split the current stack. `segments[0]` is the
/// topmost segment (executes first). Fig. 1 of the paper:
/// (a) one proper-prefix segment → returns home;
/// (b) all frames in one or two segments to the same node → total
///     migration;
/// (c) several segments to different nodes → multi-domain workflow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationPlan {
    pub segments: Vec<SegmentSpec>,
}

impl MigrationPlan {
    /// The common case: top `nframes` to `dest`, control returns home.
    pub fn top_to(dest: usize, nframes: usize) -> Self {
        MigrationPlan {
            segments: vec![SegmentSpec { dest, nframes }],
        }
    }

    /// A multi-segment plan from `(dest, nframes)` pairs, topmost segment
    /// first. One pair is Fig. 1a; several pairs to one node are Fig. 1b
    /// (total migration); several pairs to different nodes are Fig. 1c
    /// (multi-domain workflow).
    pub fn chain(segments: &[(usize, usize)]) -> Self {
        MigrationPlan {
            segments: segments
                .iter()
                .map(|&(dest, nframes)| SegmentSpec { dest, nframes })
                .collect(),
        }
    }

    /// Sentinel frame count meaning "however many frames remain": the
    /// engine clamps every segment to the live stack height, so a segment
    /// requesting this many frames always absorbs the residual stack.
    pub const WHOLE_STACK_FRAMES: usize = usize::MAX / 2;

    /// Total migration (Fig. 1b): the top frame plus the whole residual
    /// stack both go to `dest`, so execution continues there.
    pub fn whole_stack_to(dest: usize) -> Self {
        MigrationPlan::chain(&[(dest, 1), (dest, Self::WHOLE_STACK_FRAMES)])
    }

    /// Total frames requested (may exceed the stack height, which clamps).
    pub fn total_frames(&self) -> usize {
        self.segments.iter().map(|s| s.nframes).sum()
    }
}

/// Where a completed segment delivers its return value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReturnTarget {
    /// Pop the stale frames on the home node and resume the residual stack.
    Home { node: usize },
    /// Deliver to a chained session holding the frames below (workflow).
    Session { node: usize, session: SessionId },
}

/// Metadata travelling with a shipped segment.
#[derive(Clone, Debug)]
pub struct SegmentInfo {
    pub program: ProgramId,
    pub session: SessionId,
    /// The node serving object faults and receiving flushes (the home).
    pub home: usize,
    pub return_to: ReturnTarget,
    /// Frames in this segment (restore establishes exactly this many).
    pub nframes: usize,
    /// Stale frames the home node discards when this segment's chain
    /// delivers its value home: the *whole* originally-captured stack
    /// (all of the plan's segments), since every frame above this one
    /// returned remotely into the chain. Identical to `nframes` for a
    /// single-segment plan; preserved across roaming hops.
    pub home_pop_frames: usize,
    /// Workflow segments below the top wait for a return value before
    /// executing.
    pub wait_for_return: bool,
}

/// Host intrinsic results (node-local, so no VM references).
#[derive(Clone, Debug, PartialEq)]
pub enum HostReply {
    Int(i64),
    Str(String),
    List(Vec<String>),
}

/// All cluster messages. `Timer`-ish variants are node-local.
#[derive(Clone, Debug)]
pub enum Msg {
    // -- driver-injected ---------------------------------------------------
    /// Begin executing the registered program.
    StartProgram { program: ProgramId },
    /// Trigger a migration of the program's thread per `plan` at the next
    /// migration-safe point.
    MigrateNow {
        program: ProgramId,
        plan: MigrationPlan,
    },

    // -- execution timers ----------------------------------------------------
    /// Continue running VM thread `tid` on this node.
    RunSlice { tid: usize },
    /// A host intrinsic completed; resume `tid` with the reply.
    HostDone { tid: usize, reply: HostReply },
    /// Capture finished (freeze time elapsed); ship the segments.
    CaptureDone { program: ProgramId },
    /// All classes for a shipped segment are present; re-establish frames.
    BeginRestore { session: SessionId },
    /// Home-side end-to-end deadline for an outstanding migration episode
    /// (armed only under fault injection). `attempt` matches the program's
    /// shipping attempt so timers from superseded episodes are ignored.
    MigrationTimeout { program: ProgramId, attempt: u32 },
    /// Periodic elastic-pool controller tick: evaluate the pool's scale
    /// policy on the controller node, then reschedule (see
    /// `engine/elastic.rs`).
    PoolTick { pool: usize },
    /// A spawned pool node finished provisioning (cold start elapsed) and
    /// may now accept placements. Delivered to the new node itself.
    PoolReady { pool: usize, node: usize },

    // -- migration protocol -----------------------------------------------------
    /// A captured segment arriving at its destination. The state travels
    /// as its encoded frame, serialized exactly once at capture time; the
    /// frame length *is* the state byte metric, and cloning the message
    /// (chaos resends, retry retention) copies a refcount, not the state.
    State {
        info: SegmentInfo,
        state: Bytes,
        /// Classes travelling with the state (the paper ships "the current
        /// class of the top frame" eagerly; the `CodeShipping` policy and
        /// the peer class cache decide the exact set). Shared [`Arc`]s:
        /// shipping never deep-clones method bodies.
        bundled: Vec<Arc<ClassDef>>,
        /// Serialized size of the bundled classes (for metrics; the state
        /// size is `state.len()`).
        class_bytes: u64,
        /// Capture (freeze) time spent at the source, for the timings
        /// breakdown.
        capture_ns: u64,
        /// Virtual time the state left the source node (metrics).
        sent_at: u64,
    },
    /// Worker requests a class it misses (the class-file-load-hook path).
    /// Carries the owning program so the serving node can account the
    /// class bytes without reaching into another shard's session state.
    ClassRequest {
        session: SessionId,
        requester: usize,
        name: String,
        program: ProgramId,
    },
    ClassReply {
        session: SessionId,
        class: Arc<ClassDef>,
        bytes: u64,
    },

    // -- object manager -------------------------------------------------------
    /// Worker faulted on home object `home_id`. Carries the owning
    /// program so the home's object manager reads the fetch policy off
    /// its own program record instead of the requester's session.
    ObjectRequest {
        session: SessionId,
        requester: usize,
        home_id: ObjId,
        program: ProgramId,
    },
    /// The root object (first frame) plus any prefetched objects
    /// (fetch-policy ablations), each encoded once on the home side and
    /// batched into a single length-prefixed delivery frame; the batch's
    /// payload length is the object byte metric at both ends.
    ObjectReply {
        session: SessionId,
        batch: FrameBatch,
    },

    // -- completion & write-back ---------------------------------------------
    /// Dirty/new objects flushed to the home heap, encoded once at the
    /// worker and batched into one delivery frame per window. If `ack_to`
    /// is set, the home responds with `FlushAck` carrying temp-id
    /// assignments (used before worker-to-worker roaming hops).
    Flush {
        program: ProgramId,
        batch: FrameBatch,
        ack_to: Option<(usize, SessionId)>,
    },
    /// Home's reply to a flush that requested id assignments.
    FlushAck {
        session: SessionId,
        /// temp id → assigned home id.
        assigned: Vec<(ObjId, ObjId)>,
    },
    /// A migrated segment finished: deliver the return value.
    SegmentReturn {
        program: ProgramId,
        session: SessionId,
        target: ReturnTarget,
        retval: Option<CapturedValue>,
        /// Frames the receiver must pop (home) before delivering.
        pop_frames: usize,
    },

    // -- simulated NFS ----------------------------------------------------------
    /// Read (stream) a whole file from this node's disk to `requester`.
    FsRead {
        requester: usize,
        tid: usize,
        path: String,
        /// What the requester will do with the bytes (search needle pos or
        /// plain read).
        op: FsOp,
    },
    /// The file content arriving back at the requester.
    FsData {
        tid: usize,
        bytes: u64,
        op: FsOp,
        result: HostReply,
    },

    // -- photo-share application ---------------------------------------------
    /// A client request hitting the photo server's accept loop.
    ClientRequest { payload: String },
}

/// What an NFS read is for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsOp {
    /// `fs_search`: scan for a needle; result is the match offset or -1.
    Search,
    /// `fs_read`: bulk read; result is the byte count.
    Read,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_helpers() {
        let p = MigrationPlan::top_to(3, 2);
        assert_eq!(p.segments.len(), 1);
        assert_eq!(p.total_frames(), 2);
        let w = MigrationPlan::chain(&[(1, 1), (2, 2)]);
        assert_eq!(w.total_frames(), 3);
    }

    #[test]
    fn chain_matches_literal_segments() {
        assert_eq!(
            MigrationPlan::chain(&[(1, 1), (2, 2)]),
            MigrationPlan {
                segments: vec![
                    SegmentSpec {
                        dest: 1,
                        nframes: 1,
                    },
                    SegmentSpec {
                        dest: 2,
                        nframes: 2,
                    },
                ],
            }
        );
        // One pair degenerates to `top_to`.
        assert_eq!(MigrationPlan::chain(&[(4, 7)]), MigrationPlan::top_to(4, 7));
        assert!(MigrationPlan::chain(&[]).segments.is_empty());
    }

    #[test]
    fn whole_stack_covers_any_height() {
        let p = MigrationPlan::whole_stack_to(1);
        assert_eq!(p.segments.len(), 2);
        assert!(p.segments.iter().all(|s| s.dest == 1));
        // The residual segment's frame count clamps to the stack height,
        // so it must exceed any realistic stack.
        assert!(p.segments[1].nframes > 1 << 20);
    }
}
