//! Policy-driven migration triggers.
//!
//! The paper scripts migrations at fixed virtual times; real elastic
//! deployments migrate on *conditions* — memory pressure, data-access
//! locality, exhausted CPU budget. A [`Trigger`] expresses such a policy;
//! the engine arms any number of them per program and evaluates them as
//! part of the execution-slice loop.
//!
//! ## Evaluation semantics
//!
//! Triggers are only *acted on* at migration-safe points (MSPs): when a
//! trigger's condition becomes true, the engine sets a pending migration
//! plan, the guest thread switches to stop-at-MSP execution, and capture
//! happens at the next safe point — exactly the paper's protocol for an
//! externally requested migration. Consequences:
//!
//! * Conditions are checked at slice boundaries of the program's *root*
//!   thread, so firing is deterministic for a given program and topology.
//! * A trigger never fires while the stack's top segment executes
//!   remotely (the home thread is frozen); a condition that becomes true
//!   in that window — e.g. an object-fault threshold crossed by the
//!   remote segment — fires when control returns home.
//! * Each trigger fires at most once.
//!
//! [`Trigger::OnOom`] is the exception-driven offload of paper §II.B and
//! is evaluated where the exception surfaces, not at a slice boundary:
//! the faulting statement is rolled back to its start (statement-level
//! rollback is sound because rearranged statements are single-effect) and
//! the whole stack migrates, so the allocation retries on the target.

use crate::msg::MigrationPlan;

/// When a program should migrate. Destinations are node indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// Fire at virtual time `ns` (the legacy fixed-time schedule). The
    /// armed plan decides where the stack goes; an [`ArmedTrigger`]
    /// without a plan never fires.
    At(u64),
    /// On an unhandled `OutOfMemoryError`, roll back to the statement
    /// start and migrate the *whole* stack to `to` (paper §II.B). Any
    /// armed plan is ignored: the stack height is only known at fire
    /// time.
    OnOom { to: usize },
    /// Fire once the program has served `threshold` remote object faults
    /// — the "computation is far from its data" signal. Defaults to
    /// shipping the top frame to `to` when no plan is armed.
    OnObjectFaults { threshold: u64, to: usize },
    /// Fire once the program's root thread has consumed `slices`
    /// execution slices on its home node — a CPU budget for weak devices.
    /// Defaults to shipping the top frame to `to` when no plan is armed.
    OnCpuSliceBudget { slices: u64, to: usize },
}

impl Trigger {
    /// The destination encoded in the trigger itself, if any.
    pub fn dest(&self) -> Option<usize> {
        match self {
            Trigger::At(_) => None,
            Trigger::OnOom { to }
            | Trigger::OnObjectFaults { to, .. }
            | Trigger::OnCpuSliceBudget { to, .. } => Some(*to),
        }
    }
}

/// A trigger armed on a program, with an optional explicit plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArmedTrigger {
    pub trigger: Trigger,
    /// What to migrate when the trigger fires. `None` derives a default:
    /// the top frame to the trigger's destination (`OnOom` always ships
    /// the whole stack).
    pub plan: Option<MigrationPlan>,
    /// Set once the trigger has fired; fired triggers are never
    /// re-evaluated.
    pub fired: bool,
}

impl ArmedTrigger {
    pub fn new(trigger: Trigger) -> Self {
        ArmedTrigger {
            trigger,
            plan: None,
            fired: false,
        }
    }

    pub fn with_plan(trigger: Trigger, plan: MigrationPlan) -> Self {
        ArmedTrigger {
            trigger,
            plan: Some(plan),
            fired: false,
        }
    }

    /// The plan to execute on firing, given the trigger's destination.
    /// Returns `None` for an `At` trigger armed without a plan.
    pub(crate) fn effective_plan(&self) -> Option<MigrationPlan> {
        match (&self.plan, self.trigger.dest()) {
            (Some(plan), _) => Some(plan.clone()),
            (None, Some(to)) => Some(MigrationPlan::top_to(to, 1)),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plans() {
        let t = ArmedTrigger::new(Trigger::OnObjectFaults {
            threshold: 8,
            to: 2,
        });
        assert_eq!(t.effective_plan(), Some(MigrationPlan::top_to(2, 1)));
        // At without a plan cannot derive a destination.
        assert_eq!(ArmedTrigger::new(Trigger::At(5)).effective_plan(), None);
        let armed = ArmedTrigger::with_plan(Trigger::At(5), MigrationPlan::top_to(1, 3));
        assert_eq!(armed.effective_plan(), Some(MigrationPlan::top_to(1, 3)));
    }

    #[test]
    fn dest_extraction() {
        assert_eq!(Trigger::At(1).dest(), None);
        assert_eq!(Trigger::OnOom { to: 3 }.dest(), Some(3));
        assert_eq!(
            Trigger::OnCpuSliceBudget { slices: 9, to: 1 }.dest(),
            Some(1)
        );
    }
}
