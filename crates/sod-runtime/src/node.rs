//! Node model: configuration profiles and per-node state.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use sod_vm::class::ClassDef;
use sod_vm::interp::Vm;

use crate::costs::AGENT_IDLE_SCALE_PER_MILLE;
use crate::fs::SimFs;
use crate::metrics::NetBytes;

/// Static node parameters.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    pub name: String,
    /// CPU speed relative to the reference cluster Xeon, in per-mille
    /// (1000 = reference; the iPhone 3G profile uses ≈ 60).
    pub cpu_speed_per_mille: u64,
    /// Whether the node's JVM exposes JVMTI (JamVM on the device does not;
    /// capture/restore fall back to the portable Java-serialization path).
    pub has_jvmti: bool,
    /// Per-mille execution cost scale (≥1000); models the idle overhead of
    /// the attached tooling agent (paper's C1) or a slower JIT.
    pub exec_scale_per_mille: u32,
    /// CPU cost of scanning one byte of file data, in ns ×100 (JIT-ed Java
    /// ≈ 50 ⇒ 0.5 ns/B). JESSICA2's slow I/O library uses a large value.
    pub io_scan_ns_per_byte_x100: u64,
    /// Guest heap budget; allocations beyond it raise `OutOfMemoryError`
    /// (exception-driven offload experiments).
    pub mem_limit: Option<u64>,
    /// Pin this node's VM to the name-resolution reference path (no inline
    /// caches, no superinstructions). Differential-testing aid — reports
    /// must be bit-identical either way.
    pub slow_resolve: bool,
}

impl NodeConfig {
    /// A cluster node as in the paper's testbed, running the SODEE
    /// middleware (JVMTI agent attached).
    pub fn cluster(name: impl Into<String>) -> Self {
        NodeConfig {
            name: name.into(),
            cpu_speed_per_mille: 1000,
            has_jvmti: true,
            exec_scale_per_mille: AGENT_IDLE_SCALE_PER_MILLE,
            io_scan_ns_per_byte_x100: 50,
            mem_limit: None,
            slow_resolve: false,
        }
    }

    /// A plain JVM without any agent (the paper's "JDK" column).
    pub fn plain(name: impl Into<String>) -> Self {
        NodeConfig {
            exec_scale_per_mille: 1000,
            ..NodeConfig::cluster(name)
        }
    }

    /// The iPhone 3G profile: 412 MHz ARM (≈ 6 % of the Xeon per-core with
    /// an interpreting JamVM), no JVMTI, 128 MB RAM.
    pub fn device(name: impl Into<String>) -> Self {
        NodeConfig {
            name: name.into(),
            cpu_speed_per_mille: 60,
            has_jvmti: false,
            exec_scale_per_mille: 1000,
            io_scan_ns_per_byte_x100: 400,
            mem_limit: Some(96 << 20),
            slow_resolve: false,
        }
    }

    /// A capacious cloud node (exception-driven offload target).
    pub fn cloud(name: impl Into<String>) -> Self {
        NodeConfig {
            mem_limit: None,
            ..NodeConfig::cluster(name)
        }
    }

    /// Scale a duration by this node's CPU speed.
    pub fn scale(&self, ns: u64) -> u64 {
        ns * 1000 / self.cpu_speed_per_mille.max(1)
    }
}

/// Per-node runtime state.
pub struct Node {
    pub cfg: NodeConfig,
    /// The node's VM (home programs and restored worker threads).
    pub vm: Vm,
    pub fs: SimFs,
    /// Class files available locally (the home node holds the application;
    /// workers populate this as classes ship in). Entries are shared
    /// [`Arc`]s: shipping a class clones a pointer, not the method bodies.
    pub repo: HashMap<String, Arc<ClassDef>>,
    /// The code cache's peer model: classes each peer node *provably*
    /// holds, learned from traffic this node sent it (bundled `State`
    /// classes and `ClassReply` payloads). Classes are never unloaded, so
    /// an entry stays valid for the life of the run; destination-aware
    /// bundling consults this to skip redundant re-ships to warm workers.
    pub peer_classes: HashMap<usize, HashSet<String>>,
    /// Outbound payload bytes this node put on the network, broken out as
    /// state / class / object (surfaces code-cache savings per node).
    pub net_sent: NetBytes,
    /// Payload bytes lost to fault injection, attributed to this node:
    /// dropped outbound messages (crash/partition/seeded loss) plus state
    /// that arrived here but was superseded before restore. Always zero
    /// when chaos is off; balances `net_sent` against receive-side
    /// accounting (`sent = accounted + lost`).
    pub net_lost: NetBytes,
    /// Pending client requests (socket accept queue), served FIFO. A ring
    /// buffer: fleet generators push hundreds of requests, so the O(n)
    /// `Vec::remove(0)` pop would make every accept linear in the backlog.
    pub sock_queue: VecDeque<String>,
    /// Thread ids parked in `sock_accept` waiting for a request, served
    /// FIFO (first waiter gets the next request).
    pub sock_waiters: VecDeque<usize>,
    /// Execution slices dispatched on this node (utilization accounting).
    pub slices: u64,
    /// Virtual ns spent executing guest code (CPU-scaled; utilization).
    pub busy_ns: u64,
    /// Simulator events delivered to this node — its shard's delivery
    /// count under the sharded scheduler. Counted at message dispatch, so
    /// the figure is identical under both schedulers (delivery order is
    /// bit-identical; see the scheduler-equivalence suite).
    pub events: u64,
    /// Sessions routed here but not yet arrived (pool placement or drain
    /// roam chosen, restore still in flight). Pool placement counts these
    /// alongside hosted sessions: during a burst every capture resolves
    /// before the first restore lands, so hosted counts alone would send
    /// the whole burst to one member.
    pub inbound_sessions: u64,
    /// Virtual time this node joined the cluster (0 for nodes present from
    /// the start; the spawn instant for elastic pool members).
    pub joined_at_ns: u64,
    /// Virtual time this node retired (drained pool member), if it did.
    /// Utilization denominators use the joined→retired lifetime.
    pub retired_at_ns: Option<u64>,
}

impl Node {
    pub fn new(cfg: NodeConfig) -> Self {
        let mut vm = Vm::new();
        vm.cost_scale_per_mille = cfg.exec_scale_per_mille;
        vm.mem_limit = cfg.mem_limit;
        if cfg.slow_resolve {
            vm.slow_resolve = true;
        }
        Node {
            cfg,
            vm,
            fs: SimFs::new(),
            repo: HashMap::new(),
            peer_classes: HashMap::new(),
            net_sent: NetBytes::default(),
            net_lost: NetBytes::default(),
            sock_queue: VecDeque::new(),
            sock_waiters: VecDeque::new(),
            slices: 0,
            busy_ns: 0,
            events: 0,
            inbound_sessions: 0,
            joined_at_ns: 0,
            retired_at_ns: None,
        }
    }

    /// Make a class available in the node's repository *and* load it into
    /// the VM (home-node deployment).
    pub fn deploy(&mut self, class: &ClassDef) -> sod_vm::error::VmResult<()> {
        self.vm.load_class(class)?;
        self.repo
            .insert(class.name.clone(), Arc::new(class.clone()));
        Ok(())
    }

    /// Register the class file without loading it (it will ship on demand).
    pub fn stage(&mut self, class: &ClassDef) {
        self.repo
            .insert(class.name.clone(), Arc::new(class.clone()));
    }

    /// Whether `peer` is known to hold `class` (sound, not complete: a
    /// `false` only means this node cannot prove it).
    pub fn peer_has_class(&self, peer: usize, class: &str) -> bool {
        self.peer_classes
            .get(&peer)
            .is_some_and(|set| set.contains(class))
    }

    /// Record that `peer` holds `class` (it was shipped there, or observed
    /// in traffic that proves it).
    pub fn note_peer_class(&mut self, peer: usize, class: &str) {
        self.peer_classes
            .entry(peer)
            .or_default()
            .insert(class.to_owned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sod_asm::builder::ClassBuilder;

    #[test]
    fn profiles_differ_as_expected() {
        let c = NodeConfig::cluster("n0");
        let d = NodeConfig::device("phone");
        assert!(c.has_jvmti && !d.has_jvmti);
        assert!(d.cpu_speed_per_mille < c.cpu_speed_per_mille);
        assert!(c.exec_scale_per_mille > 1000); // agent idle overhead
        assert_eq!(NodeConfig::plain("p").exec_scale_per_mille, 1000);
    }

    #[test]
    fn scaling() {
        let d = NodeConfig::device("phone");
        assert_eq!(d.scale(60), 1000); // ~17x slower
    }

    #[test]
    fn deploy_loads_class() {
        let class = ClassBuilder::new("A")
            .method("m", &[], |m| {
                m.line();
                m.pushi(1).retv();
            })
            .build()
            .unwrap();
        let mut n = Node::new(NodeConfig::cluster("n"));
        n.deploy(&class).unwrap();
        assert!(n.vm.has_class("A"));
        assert!(n.repo.contains_key("A"));
        // VM inherits the agent cost scale.
        assert_eq!(n.vm.cost_scale_per_mille, AGENT_IDLE_SCALE_PER_MILLE);
    }

    #[test]
    fn peer_class_tracking() {
        let mut n = Node::new(NodeConfig::cluster("n"));
        assert!(!n.peer_has_class(2, "A"));
        n.note_peer_class(2, "A");
        assert!(n.peer_has_class(2, "A"));
        // Knowledge is per peer, not global.
        assert!(!n.peer_has_class(3, "A"));
        assert!(!n.peer_has_class(2, "B"));
        // Re-noting is idempotent.
        n.note_peer_class(2, "A");
        assert_eq!(n.peer_classes[&2].len(), 1);
    }
}
