//! The SODEE engine: nodes, migration managers, and object managers wired
//! into the discrete-event simulator.
//!
//! One [`Cluster`] implements [`sod_net::World`]; the driver ([`SodSim`])
//! injects `StartProgram` / `MigrateNow` / `ClientRequest` events and runs
//! the simulation to idle. Execution proceeds in bounded virtual-time
//! *slices* per thread, so message arrivals (migration requests, object
//! replies) interleave with guest execution deterministically.
//!
//! ## Migration flow (paper §III)
//!
//! 1. `MigrateNow` sets a pending plan; the thread stops at the next
//!    migration-safe point.
//! 2. The migration manager captures the top frames via the tooling
//!    interface (JVMTI costs, or the portable serialization path when the
//!    destination lacks JVMTI), splitting them into the plan's segments —
//!    one freeze, concurrent shipping (Fig. 1c).
//! 3. Each destination loads missing classes (bundled top-frame class
//!    first, the rest on demand), then re-establishes the frames: the
//!    breakpoint + `InvalidStateException` + restoration-handler protocol
//!    on JVMTI nodes, or an exact direct restore for restore-ahead workflow
//!    segments and no-JVMTI devices.
//! 4. Object faults travel to the *home* node's object manager, which
//!    serializes the master copy back (heap-on-demand).
//! 5. When a segment's last frame pops, dirty/new objects flush home and
//!    the return value routes to the next segment (workflow) or back home,
//!    where `ForceEarlyReturn` pops the stale frames and execution resumes.

use std::collections::{HashMap, HashSet};

use sod_net::{Sim, SimCtx, Topology, World};
use sod_vm::capture::{
    begin_handler_restore, capture_segment, restore_segment_direct, CapturedState, CapturedValue,
};
use sod_vm::class::ExKind;
use sod_vm::interp::{ExceptionInfo, RunMode, StepOutcome};
use sod_vm::tooling::{jvmti, ToolingPath};
use sod_vm::value::{ObjId, Value};
use sod_vm::wire::{
    class_wire_bytes, extract_closure, extract_dirty, extract_object, install_object, WireObject,
};

use crate::costs;
use crate::metrics::{ClusterReport, MigrationTimings, NodeUtilization, RunReport};
use crate::msg::{
    FsOp, HostReply, MigrationPlan, Msg, ProgramId, ReturnTarget, SegmentInfo, SessionId,
};
use crate::node::Node;
use crate::trigger::{ArmedTrigger, Trigger};

/// Worker-created objects are flushed home under temporary ids at/above
/// this base until the home node assigns master ids.
pub const TEMP_ID_BASE: ObjId = 1 << 30;

/// Default execution slice: how much virtual time a thread runs per event.
pub const DEFAULT_SLICE_NS: u64 = 100_000; // 100 µs

/// Payload size of small control messages (requests, acks).
const CONTROL_MSG_BYTES: u64 = 128;

/// On-demand fetch policy (ablation axis; the paper's default is shallow
/// per-object fetching).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FetchPolicy {
    /// Fetch exactly the missed object.
    #[default]
    Shallow,
    /// Fetch the transitive closure of the missed object (eager subgraph).
    Deep,
}

/// A registered program (one root thread).
pub struct Program {
    pub home: usize,
    pub home_tid: usize,
    pub class: String,
    pub method: String,
    pub args: Vec<Value>,
    pub report: RunReport,
    pub done: bool,
    pub error: Option<String>,
    pub fetch_policy: FetchPolicy,
    /// Armed migration policies, evaluated at migration-safe points (see
    /// [`crate::trigger`]). `Trigger::OnOom` generalizes the old
    /// `oom_offload_to` field: exception-driven offload is
    /// `ArmedTrigger::new(Trigger::OnOom { to })`.
    pub triggers: Vec<ArmedTrigger>,
    /// Execution slices consumed by the root thread on its home node
    /// (the `OnCpuSliceBudget` measure).
    pub slices_run: u64,
    pending_plan: Option<MigrationPlan>,
    /// The home thread's stack is frozen while its top segment executes
    /// remotely; stale run slices must not wake it.
    suspended: bool,
    t_request: u64,
    staged: Vec<StagedSegment>,
}

struct StagedSegment {
    dest: usize,
    info: SegmentInfo,
    state: CapturedState,
    bundled: Vec<sod_vm::class::ClassDef>,
    state_bytes: u64,
    class_bytes: u64,
    capture_ns: u64,
}

/// Worker-session lifecycle.
enum WorkerPhase {
    AwaitClasses {
        missing: HashSet<String>,
    },
    Restoring {
        restored: usize,
    },
    /// Restore-ahead workflow segment awaiting the return value of the
    /// segment above.
    Waiting,
    Running,
    /// Roaming: flush sent, awaiting id assignments before capture.
    AwaitRoamAck {
        dest: usize,
    },
    /// Completion flush with ack (reference-valued return), awaiting ids.
    AwaitCompleteAck {
        retval: Option<CapturedValue>,
    },
    Done,
}

struct WorkerSession {
    program: ProgramId,
    #[allow(dead_code)]
    session: SessionId,
    node: usize,
    home: usize,
    tid: usize,
    return_to: ReturnTarget,
    nframes: usize,
    wait_for_return: bool,
    state: CapturedState,
    phase: WorkerPhase,
    timings: MigrationTimings,
    arrived_at: u64,
    /// Post-arrival time spent waiting for on-demand classes (excluded
    /// from restore time, like the paper's transfer accounting).
    class_wait_ns: u64,
    pending_roam: Option<usize>,
}

enum Owner {
    Root(ProgramId),
    Worker(SessionId),
}

/// The cluster: all nodes plus global program/session bookkeeping.
pub struct Cluster {
    pub nodes: Vec<Node>,
    pub programs: Vec<Program>,
    sessions: HashMap<SessionId, WorkerSession>,
    thread_owner: HashMap<(usize, usize), Owner>,
    next_session: SessionId,
    pub slice_ns: u64,
}

impl Cluster {
    pub fn new(nodes: Vec<Node>) -> Self {
        Cluster {
            nodes,
            programs: Vec::new(),
            sessions: HashMap::new(),
            thread_owner: HashMap::new(),
            next_session: 1,
            slice_ns: DEFAULT_SLICE_NS,
        }
    }

    /// Register a program rooted at `home`.
    pub fn add_program(
        &mut self,
        home: usize,
        class: impl Into<String>,
        method: impl Into<String>,
        args: Vec<Value>,
    ) -> ProgramId {
        self.programs.push(Program {
            home,
            home_tid: usize::MAX,
            class: class.into(),
            method: method.into(),
            args,
            report: RunReport::default(),
            done: false,
            error: None,
            fetch_policy: FetchPolicy::Shallow,
            triggers: Vec::new(),
            slices_run: 0,
            pending_plan: None,
            suspended: false,
            t_request: 0,
            staged: Vec::new(),
        });
        (self.programs.len() - 1) as ProgramId
    }

    /// Arm a migration policy on `program` (evaluated at migration-safe
    /// points; see [`crate::trigger`]).
    pub fn arm_trigger(&mut self, program: ProgramId, trigger: ArmedTrigger) {
        self.programs[program as usize].triggers.push(trigger);
    }

    /// Evaluate the program's armed policy triggers against its current
    /// counters; the first satisfied trigger installs its plan (one
    /// migration at a time — the rest re-evaluate after control returns).
    fn check_policy_triggers(&mut self, program: ProgramId, now: u64) {
        let p = &mut self.programs[program as usize];
        if p.done || p.suspended || p.pending_plan.is_some() {
            return;
        }
        let faults = p.report.object_faults;
        let slices = p.slices_run;
        for t in p.triggers.iter_mut().filter(|t| !t.fired) {
            let satisfied = match t.trigger {
                Trigger::At(ns) => now >= ns,
                // OnOom fires where the exception surfaces, not here.
                Trigger::OnOom { .. } => false,
                Trigger::OnObjectFaults { threshold, .. } => faults >= threshold,
                Trigger::OnCpuSliceBudget { slices: budget, .. } => slices >= budget,
            };
            if !satisfied {
                continue;
            }
            let Some(plan) = t.effective_plan() else {
                // At armed without a plan: nowhere to go. Retire it so the
                // dead trigger is not re-walked on every future slice.
                t.fired = true;
                continue;
            };
            t.fired = true;
            p.pending_plan = Some(plan);
            p.t_request = now;
            return;
        }
    }

    fn alloc_session(&mut self) -> SessionId {
        let s = self.next_session;
        self.next_session += 1;
        s
    }

    /// Aggregate the cluster's current state into a [`ClusterReport`]:
    /// per-request completion latencies (nearest-rank percentiles),
    /// throughput over the makespan, and per-node utilization. Callable at
    /// any point; normally used after the simulation runs to idle.
    pub fn cluster_report(&self) -> ClusterReport {
        let mut latencies = Vec::new();
        let mut failed = 0u64;
        let mut makespan = 0u64;
        for p in &self.programs {
            if !p.done {
                continue;
            }
            makespan = makespan.max(p.report.finished_at_ns);
            if p.error.is_some() {
                failed += 1;
            } else {
                latencies.push(p.report.latency_ns());
            }
        }
        let per_node = self
            .nodes
            .iter()
            .map(|n| NodeUtilization {
                name: n.cfg.name.clone(),
                instructions: n.vm.instr_count,
                slices: n.slices,
                busy_ns: n.busy_ns,
            })
            .collect();
        ClusterReport::aggregate(
            self.programs.len() as u64,
            latencies,
            failed,
            makespan,
            per_node,
        )
    }

    // ------------------------------------------------------------------
    // Execution slices
    // ------------------------------------------------------------------

    fn run_slice(&mut self, node: usize, tid: usize, ctx: &mut SimCtx<'_, Msg>) {
        let runnable = self.nodes[node]
            .vm
            .thread(tid)
            .map(|t| t.is_runnable())
            .unwrap_or(false);
        if !runnable {
            return; // stale slice: thread parked, finished, or mid-protocol
        }
        let (owner_program, owner_pending) = match self.thread_owner.get(&(node, tid)) {
            Some(Owner::Root(p)) => {
                let program = *p;
                if self.programs[program as usize].suspended {
                    return; // frozen while the segment executes remotely
                }
                // Policy-driven migration: charge this slice against the
                // program's CPU budget and evaluate armed triggers. A
                // trigger that fires installs a pending plan, so this very
                // slice already runs in stop-at-MSP mode.
                self.programs[program as usize].slices_run += 1;
                self.check_policy_triggers(program, ctx.now());
                (
                    program,
                    self.programs[program as usize].pending_plan.is_some(),
                )
            }
            Some(Owner::Worker(s)) => match self.sessions.get(s) {
                Some(w) => (w.program, w.pending_roam.is_some()),
                None => return,
            },
            // Unowned threads (retired roaming workers) never run.
            None => return,
        };
        let mode = if owner_pending {
            RunMode::StopAtMsp
        } else {
            RunMode::Normal
        };
        let slice = self.slice_ns;
        let instr_before = self.nodes[node].vm.instr_count;
        let (out, spent) = self.nodes[node]
            .vm
            .run(tid, slice, mode)
            .expect("vm run failed");
        let elapsed = self.nodes[node].cfg.scale(spent).max(1);
        // Attribute the slice to the program that owns the thread (root or
        // worker session) and to the node that ran it: with many programs
        // interleaving on shared nodes, a global instruction counter would
        // charge every program for everyone's work.
        let retired = self.nodes[node].vm.instr_count - instr_before;
        self.programs[owner_program as usize].report.instructions += retired;
        self.nodes[node].slices += 1;
        self.nodes[node].busy_ns += elapsed;

        // Finish a handler-protocol restore once the thread executes
        // anything past the last re-established frame (including returning
        // immediately for very short segments).
        if !matches!(out, StepOutcome::Breakpoint { .. }) {
            self.maybe_finish_restore(node, tid, elapsed, ctx);
        }

        match out {
            StepOutcome::Continue => {
                ctx.schedule(elapsed, node, Msg::RunSlice { tid });
            }
            StepOutcome::AtMsp { .. } => self.at_msp(node, tid, elapsed, ctx),
            StepOutcome::HostCall { name, args } => {
                self.host_call(node, tid, &name, &args, elapsed, ctx)
            }
            StepOutcome::ObjectFault(q) => {
                let sid = self.worker_of(node, tid);
                let w = &self.sessions[&sid];
                let home = w.home;
                ctx.send_after(
                    elapsed,
                    node,
                    home,
                    CONTROL_MSG_BYTES,
                    Msg::ObjectRequest {
                        session: sid,
                        requester: node,
                        home_id: q.home_id,
                    },
                );
            }
            StepOutcome::ClassMiss(name) => self.class_miss(node, tid, name, elapsed, ctx),
            StepOutcome::Returned(v) => self.thread_returned(node, tid, v, elapsed, ctx),
            StepOutcome::Unhandled(e) => self.thread_faulted(node, tid, e, elapsed, ctx),
            StepOutcome::Breakpoint { .. } => self.restore_breakpoint(node, tid, elapsed, ctx),
        }
    }

    fn worker_of(&self, node: usize, tid: usize) -> SessionId {
        match self.thread_owner.get(&(node, tid)) {
            Some(Owner::Worker(s)) => *s,
            _ => panic!("thread ({node},{tid}) is not a worker session"),
        }
    }

    // ------------------------------------------------------------------
    // Migration-safe point reached with a pending plan
    // ------------------------------------------------------------------

    fn at_msp(&mut self, node: usize, tid: usize, elapsed: u64, ctx: &mut SimCtx<'_, Msg>) {
        match self.thread_owner.get(&(node, tid)) {
            Some(Owner::Root(p)) => {
                let program = *p;
                let plan = self.programs[program as usize]
                    .pending_plan
                    .take()
                    .expect("at_msp without plan");
                self.capture_and_stage(node, tid, program, &plan, elapsed, ctx);
            }
            Some(Owner::Worker(s)) => {
                let sid = *s;
                self.begin_roam(node, tid, sid, elapsed, ctx);
            }
            None => panic!("MSP stop for unowned thread"),
        }
    }

    /// Home-side capture: one freeze, segments staged, `CaptureDone` timer.
    fn capture_and_stage(
        &mut self,
        node: usize,
        tid: usize,
        program: ProgramId,
        plan: &MigrationPlan,
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let height = self.nodes[node].vm.thread(tid).unwrap().frames.len();
        let total: usize = plan.total_frames().min(height);

        // Destination capability decides the capture path (Table VII) —
        // judged over the segments that will actually receive frames
        // (mirroring the split below), so the destination of an empty
        // tail segment cannot force the slower portable path.
        let all_jvmti = {
            let mut remaining = total;
            plan.segments.iter().all(|s| {
                let k = s.nframes.min(remaining);
                remaining -= k;
                k == 0 || self.nodes[s.dest].cfg.has_jvmti
            })
        };
        let path = ToolingPath::Jvmti;
        let (full, tool_ns) =
            capture_segment(&mut self.nodes[node].vm, tid, total, path).expect("capture failed");
        let state_bytes_full = full.wire_bytes();
        let capture_ns = if all_jvmti {
            self.nodes[node].cfg.scale(tool_ns)
        } else {
            // Portable path: JVMTI read + Java serialization into a
            // portable format restorable without JVMTI.
            self.nodes[node]
                .cfg
                .scale(costs::PORTABLE_CAPTURE_FIXED_NS + costs::serialize_ns(state_bytes_full))
        };

        // Split bottom-up frames into the plan's segments (top first),
        // dropping specs the live stack is too short to populate. Empty
        // segments must be filtered *before* session ids are allocated and
        // return targets wired: a chain plan deeper than the stack would
        // otherwise point the last live segment at a session that is never
        // created, and its return would panic at the destination.
        let mut frames = full.frames;
        let statics = full.statics;
        let mut live: Vec<(usize, Vec<sod_vm::capture::CapturedFrame>)> = Vec::new();
        for spec in &plan.segments {
            let k = spec.nframes.min(frames.len());
            let seg = frames.split_off(frames.len() - k);
            if !seg.is_empty() {
                live.push((spec.dest, seg));
            }
        }
        if live.is_empty() {
            // Degenerate plan (every segment requested zero frames):
            // nothing migrates; resume the thread where it stopped.
            ctx.schedule(elapsed, node, Msg::RunSlice { tid });
            return;
        }

        // Pre-allocate session ids so return targets can chain; the last
        // live segment always returns `Home`.
        let sids: Vec<SessionId> = live.iter().map(|_| self.alloc_session()).collect();
        let p = &mut self.programs[program as usize];
        p.staged.clear();
        for (i, (dest, seg_frames)) in live.iter().enumerate() {
            let state = CapturedState {
                frames: seg_frames.clone(),
                statics: statics.clone(),
            };
            let return_to = if i + 1 < live.len() {
                ReturnTarget::Session {
                    node: live[i + 1].0,
                    session: sids[i + 1],
                }
            } else {
                ReturnTarget::Home { node }
            };
            // Bundle the top frame's class (paper ships it with the state).
            let top_class_name = state.frames.last().unwrap().class.clone();
            let bundled: Vec<_> = self.nodes[node]
                .repo
                .get(&top_class_name)
                .cloned()
                .into_iter()
                .collect();
            let class_bytes: u64 = bundled.iter().map(class_wire_bytes).sum();
            let info = SegmentInfo {
                program,
                session: sids[i],
                home: node,
                return_to,
                nframes: state.frames.len(),
                wait_for_return: i > 0,
            };
            let state_bytes = state.wire_bytes();
            self.programs[program as usize].staged.push(StagedSegment {
                dest: *dest,
                info,
                state,
                bundled,
                state_bytes,
                class_bytes,
                capture_ns,
            });
        }

        self.programs[program as usize].t_request = ctx.now() + elapsed;
        self.programs[program as usize].suspended = true;
        ctx.schedule(elapsed + capture_ns, node, Msg::CaptureDone { program });
    }

    /// Freeze complete: ship every staged segment concurrently.
    fn capture_done(&mut self, program: ProgramId, ctx: &mut SimCtx<'_, Msg>) {
        let home = self.programs[program as usize].home;
        let staged = std::mem::take(&mut self.programs[program as usize].staged);
        for seg in staged {
            ctx.send_after(
                costs::MIGRATION_HANDSHAKE_NS,
                home,
                seg.dest,
                seg.state_bytes + seg.class_bytes + costs::MIGRATION_MSG_FIXED_BYTES,
                Msg::State {
                    info: seg.info,
                    state: seg.state,
                    bundled: seg.bundled,
                    state_bytes: seg.state_bytes,
                    class_bytes: seg.class_bytes,
                    capture_ns: seg.capture_ns,
                    sent_at: ctx.now(),
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Host intrinsics
    // ------------------------------------------------------------------

    fn host_call(
        &mut self,
        node: usize,
        tid: usize,
        name: &str,
        args: &[Value],
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let str_arg = |c: &Cluster, i: usize| -> String {
            match args.get(i) {
                Some(Value::Ref(id)) => c.nodes[node]
                    .vm
                    .heap
                    .get_str(*id)
                    .map(str::to_owned)
                    .unwrap_or_default(),
                _ => String::new(),
            }
        };
        match name {
            "clock_ns" => ctx.schedule(
                elapsed,
                node,
                Msg::HostDone {
                    tid,
                    reply: HostReply::Int((ctx.now() + elapsed) as i64),
                },
            ),
            "node_id" => ctx.schedule(
                elapsed,
                node,
                Msg::HostDone {
                    tid,
                    reply: HostReply::Int(node as i64),
                },
            ),
            "sod_move" => {
                let dest = args
                    .first()
                    .and_then(|v| v.as_int().ok())
                    .unwrap_or(node as i64) as usize;
                if dest != node && dest < self.nodes.len() {
                    match self.thread_owner.get(&(node, tid)) {
                        Some(Owner::Root(p)) => {
                            let p = *p;
                            self.programs[p as usize].pending_plan =
                                Some(MigrationPlan::top_to(dest, 1));
                            self.programs[p as usize].t_request = ctx.now();
                        }
                        Some(Owner::Worker(s)) => {
                            let s = *s;
                            self.sessions.get_mut(&s).unwrap().pending_roam = Some(dest);
                        }
                        None => {}
                    }
                }
                ctx.schedule(
                    elapsed,
                    node,
                    Msg::HostDone {
                        tid,
                        reply: HostReply::Int(0),
                    },
                );
            }
            "fs_size" => {
                let path = str_arg(self, 0);
                let meta = self.lookup_file(node, &path);
                let bytes = meta.map(|(m, _)| m.bytes as i64).unwrap_or(-1);
                ctx.schedule(
                    elapsed + 50_000,
                    node,
                    Msg::HostDone {
                        tid,
                        reply: HostReply::Int(bytes),
                    },
                );
            }
            "fs_list" => {
                let dir = str_arg(self, 0);
                // Listing consults the local view plus mounted servers.
                let mut entries = self.nodes[node].fs.list(&dir);
                if let Some(server) = self.nodes[node].fs.serving_node(&dir) {
                    entries = self.nodes[server].fs.list(&dir);
                }
                ctx.schedule(
                    elapsed + 200_000,
                    node,
                    Msg::HostDone {
                        tid,
                        reply: HostReply::List(entries),
                    },
                );
            }
            "fs_search" | "fs_read" => {
                let path = str_arg(self, 0);
                let op = if name == "fs_search" {
                    FsOp::Search
                } else {
                    FsOp::Read
                };
                match self.lookup_file(node, &path) {
                    Some((meta, None)) => {
                        // Local file: disk + scan.
                        let disk = self.nodes[node].fs.disk_read_ns(meta.bytes);
                        let scan = self.scan_ns(node, meta.bytes);
                        let reply = match op {
                            FsOp::Search => {
                                HostReply::Int(meta.match_at.map(|p| p as i64).unwrap_or(-1))
                            }
                            FsOp::Read => HostReply::Int(meta.bytes as i64),
                        };
                        ctx.schedule(elapsed + disk + scan, node, Msg::HostDone { tid, reply });
                    }
                    Some((_meta, Some(server))) => {
                        // NFS: request to the serving node; bytes stream back.
                        ctx.send_after(
                            elapsed,
                            node,
                            server,
                            CONTROL_MSG_BYTES,
                            Msg::FsRead {
                                requester: node,
                                tid,
                                path,
                                op,
                            },
                        );
                    }
                    None => ctx.schedule(
                        elapsed,
                        node,
                        Msg::HostDone {
                            tid,
                            reply: HostReply::Int(-1),
                        },
                    ),
                }
            }
            "sock_accept" => {
                if let Some(req) = self.nodes[node].sock_queue.pop_front() {
                    ctx.schedule(
                        elapsed,
                        node,
                        Msg::HostDone {
                            tid,
                            reply: HostReply::Str(req),
                        },
                    );
                } else {
                    self.nodes[node].sock_waiters.push_back(tid);
                }
            }
            "sock_send" => {
                let payload = str_arg(self, 0);
                // Response leaves on the node's uplink; cost modelled as a
                // flat per-byte charge (clients are outside the cluster).
                let cost = 100_000 + payload.len() as u64 * 8;
                ctx.schedule(
                    elapsed + cost,
                    node,
                    Msg::HostDone {
                        tid,
                        reply: HostReply::Int(payload.len() as i64),
                    },
                );
            }
            other => panic!("unknown host intrinsic {other}"),
        }
    }

    /// Resolve a path on `node`: `(meta, Some(server))` for mounted paths.
    fn lookup_file(&self, node: usize, path: &str) -> Option<(crate::fs::FileMeta, Option<usize>)> {
        if let Some(server) = self.nodes[node].fs.serving_node(path) {
            self.nodes[server]
                .fs
                .file(path)
                .cloned()
                .map(|m| (m, Some(server)))
        } else {
            self.nodes[node].fs.file(path).cloned().map(|m| (m, None))
        }
    }

    /// CPU time to scan `bytes` on `node` (I/O-efficiency modelling).
    fn scan_ns(&self, node: usize, bytes: u64) -> u64 {
        self.nodes[node]
            .cfg
            .scale(bytes * self.nodes[node].cfg.io_scan_ns_per_byte_x100 / 100)
    }

    // ------------------------------------------------------------------
    // Class shipping
    // ------------------------------------------------------------------

    fn class_miss(
        &mut self,
        node: usize,
        tid: usize,
        name: String,
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        match self.thread_owner.get(&(node, tid)) {
            Some(Owner::Root(p)) => {
                // Home: lazy local load from the repository.
                let program = *p;
                let Some(class) = self.nodes[node].repo.get(&name).cloned() else {
                    self.fail_program(
                        program,
                        format!("class not found: {name}"),
                        ctx.now() + elapsed,
                    );
                    return;
                };
                let cost = costs::class_load_ns(class_wire_bytes(&class));
                self.nodes[node].vm.load_class(&class).expect("load");
                self.nodes[node]
                    .vm
                    .resume_class_loaded(tid)
                    .expect("resume");
                ctx.schedule(
                    elapsed + self.nodes[node].cfg.scale(cost),
                    node,
                    Msg::RunSlice { tid },
                );
            }
            Some(Owner::Worker(s)) => {
                let sid = *s;
                let home = self.sessions[&sid].home;
                self.programs[self.sessions[&sid].program as usize]
                    .report
                    .classes_shipped += 1;
                ctx.send_after(
                    elapsed,
                    node,
                    home,
                    CONTROL_MSG_BYTES,
                    Msg::ClassRequest {
                        session: sid,
                        requester: node,
                        name,
                    },
                );
            }
            None => panic!("class miss on unowned thread"),
        }
    }

    // ------------------------------------------------------------------
    // Thread completion / faults
    // ------------------------------------------------------------------

    fn thread_returned(
        &mut self,
        node: usize,
        tid: usize,
        retval: Option<Value>,
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        match self.thread_owner.get(&(node, tid)) {
            Some(Owner::Root(p)) => {
                let program = *p;
                self.finish_program(program, retval, ctx.now() + elapsed);
            }
            Some(Owner::Worker(s)) => {
                let sid = *s;
                self.segment_completed(node, tid, sid, retval, elapsed, ctx);
            }
            None => {}
        }
    }

    fn thread_faulted(
        &mut self,
        node: usize,
        tid: usize,
        e: ExceptionInfo,
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        if let Some(Owner::Root(p)) = self.thread_owner.get(&(node, tid)) {
            let program = *p;
            if e.kind == ExKind::OutOfMemory {
                // Exception-driven offload (`Trigger::OnOom`): roll the
                // faulting statement back and push the whole stack to the
                // armed destination, so the allocation retries there.
                let offload = self.programs[program as usize]
                    .triggers
                    .iter_mut()
                    .find(|t| !t.fired && matches!(t.trigger, Trigger::OnOom { .. }))
                    .map(|t| {
                        t.fired = true;
                        match t.trigger {
                            Trigger::OnOom { to } => to,
                            _ => unreachable!(),
                        }
                    });
                if let Some(cloud) = offload {
                    let height = self.nodes[node].vm.thread(tid).unwrap().frames.len();
                    rollback_to_statement_start(&mut self.nodes[node].vm, tid);
                    self.programs[program as usize].pending_plan =
                        Some(MigrationPlan::top_to(cloud, height));
                    self.programs[program as usize].t_request = ctx.now() + elapsed;
                    ctx.schedule(elapsed, node, Msg::RunSlice { tid });
                    return;
                }
            }
            self.fail_program(
                program,
                format!("unhandled {:?}: {}", e.kind, e.message),
                ctx.now() + elapsed,
            );
        } else {
            let sid = self.worker_of(node, tid);
            let program = self.sessions[&sid].program;
            self.fail_program(
                program,
                format!("worker fault {:?}: {}", e.kind, e.message),
                ctx.now() + elapsed,
            );
        }
    }

    fn finish_program(&mut self, program: ProgramId, retval: Option<Value>, at: u64) {
        let p = &mut self.programs[program as usize];
        if p.done {
            return;
        }
        p.done = true;
        p.report.finished_at_ns = at;
        p.report.result = retval.and_then(|v| match v {
            Value::Int(i) => Some(i),
            Value::Num(n) => Some(n as i64),
            _ => None,
        });
        self.snapshot_stack_height(program);
    }

    fn fail_program(&mut self, program: ProgramId, error: String, at: u64) {
        let p = &mut self.programs[program as usize];
        if p.done {
            return;
        }
        p.done = true;
        p.error = Some(error);
        p.report.finished_at_ns = at;
        // Failure reports carry the same final stats as successes
        // (`instructions` accrues per slice), so fleet aggregates over
        // mixed outcomes stay comparable.
        self.snapshot_stack_height(program);
    }

    /// Record the home thread's maximum stack height (Table I `h`) on the
    /// program's report, shared by the success and failure paths.
    fn snapshot_stack_height(&mut self, program: ProgramId) {
        let (home, home_tid) = {
            let p = &self.programs[program as usize];
            (p.home, p.home_tid)
        };
        if let Ok(t) = self.nodes[home].vm.thread(home_tid) {
            self.programs[program as usize].report.max_stack_height = t.max_height;
        }
    }

    // ------------------------------------------------------------------
    // Segment completion: flush + return routing
    // ------------------------------------------------------------------

    fn segment_completed(
        &mut self,
        node: usize,
        tid: usize,
        sid: SessionId,
        retval: Option<Value>,
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let (program, home) = {
            let w = &self.sessions[&sid];
            (w.program, w.home)
        };
        let (flush, flush_bytes) = collect_flush(&mut self.nodes[node].vm, retval);
        let retval_cap = retval.map(|v| export_with_temps(&self.nodes[node].vm, v));
        let needs_ack = matches!(retval_cap, Some(CapturedValue::HomeRef(h)) if h >= TEMP_ID_BASE);
        let ser = costs::serialize_ns(flush_bytes.max(1));
        let cost = elapsed + self.nodes[node].cfg.scale(ser);

        self.programs[program as usize].report.object_bytes += flush_bytes;

        if needs_ack {
            self.sessions.get_mut(&sid).unwrap().phase =
                WorkerPhase::AwaitCompleteAck { retval: retval_cap };
            ctx.send_after(
                cost,
                node,
                home,
                flush_bytes + CONTROL_MSG_BYTES,
                Msg::Flush {
                    program,
                    objects: flush,
                    ack_to: Some((node, sid)),
                },
            );
        } else {
            if !flush.is_empty() {
                ctx.send_after(
                    cost,
                    node,
                    home,
                    flush_bytes + CONTROL_MSG_BYTES,
                    Msg::Flush {
                        program,
                        objects: flush,
                        ack_to: None,
                    },
                );
            }
            self.send_segment_return(sid, retval_cap, cost, ctx);
        }
        let _ = tid;
    }

    fn send_segment_return(
        &mut self,
        sid: SessionId,
        retval: Option<CapturedValue>,
        delay: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let w = self.sessions.get_mut(&sid).unwrap();
        w.phase = WorkerPhase::Done;
        let (program, node, target, nframes) = (w.program, w.node, w.return_to, w.nframes);
        let dest = match target {
            ReturnTarget::Home { node } => node,
            ReturnTarget::Session { node, .. } => node,
        };
        ctx.send_after(
            delay,
            node,
            dest,
            CONTROL_MSG_BYTES,
            Msg::SegmentReturn {
                program,
                session: sid,
                target,
                retval,
                pop_frames: nframes,
            },
        );
    }

    // ------------------------------------------------------------------
    // Roaming (worker → worker hops)
    // ------------------------------------------------------------------

    fn begin_roam(
        &mut self,
        node: usize,
        tid: usize,
        sid: SessionId,
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let dest = self.sessions[&sid].pending_roam.expect("roam dest");
        let (flush, flush_bytes) = collect_flush(&mut self.nodes[node].vm, None);
        let program = self.sessions[&sid].program;
        let home = self.sessions[&sid].home;
        if flush.is_empty() {
            // Nothing to reconcile: capture immediately.
            self.roam_capture_and_ship(node, tid, sid, dest, elapsed, ctx);
        } else {
            self.sessions.get_mut(&sid).unwrap().phase = WorkerPhase::AwaitRoamAck { dest };
            let ser = self.nodes[node].cfg.scale(costs::serialize_ns(flush_bytes));
            ctx.send_after(
                elapsed + ser,
                node,
                home,
                flush_bytes + CONTROL_MSG_BYTES,
                Msg::Flush {
                    program,
                    objects: flush,
                    ack_to: Some((node, sid)),
                },
            );
        }
    }

    fn roam_capture_and_ship(
        &mut self,
        node: usize,
        tid: usize,
        sid: SessionId,
        dest: usize,
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        self.sessions.get_mut(&sid).unwrap().pending_roam = None;
        let nframes = self.nodes[node].vm.thread(tid).unwrap().frames.len();
        let (state, tool_ns) =
            capture_segment(&mut self.nodes[node].vm, tid, nframes, ToolingPath::Jvmti)
                .expect("roam capture");
        let dest_jvmti = self.nodes[dest].cfg.has_jvmti;
        let capture_ns = if dest_jvmti {
            self.nodes[node].cfg.scale(tool_ns)
        } else {
            self.nodes[node]
                .cfg
                .scale(costs::PORTABLE_CAPTURE_FIXED_NS + costs::serialize_ns(state.wire_bytes()))
        };

        let (program, home, return_to) = {
            let w = &self.sessions[&sid];
            (w.program, w.home, w.return_to)
        };
        let new_sid = self.alloc_session();
        let top_class = state.frames.last().unwrap().class.clone();
        let bundled: Vec<_> = self.nodes[home]
            .repo
            .get(&top_class)
            .cloned()
            .into_iter()
            .collect();
        let class_bytes: u64 = bundled.iter().map(class_wire_bytes).sum();
        let state_bytes = state.wire_bytes();
        let info = SegmentInfo {
            program,
            session: new_sid,
            home,
            return_to,
            nframes: state.frames.len(),
            wait_for_return: false,
        };
        // Retire the old session & thread.
        self.sessions.get_mut(&sid).unwrap().phase = WorkerPhase::Done;
        self.thread_owner.remove(&(node, tid));

        let sent_at = ctx.now() + elapsed + capture_ns;
        ctx.send_after(
            elapsed + capture_ns + costs::MIGRATION_HANDSHAKE_NS,
            node,
            dest,
            state_bytes + class_bytes + costs::MIGRATION_MSG_FIXED_BYTES,
            Msg::State {
                info,
                state,
                bundled,
                state_bytes,
                class_bytes,
                capture_ns,
                sent_at,
            },
        );
    }
}

impl Cluster {
    // ------------------------------------------------------------------
    // Segment arrival & restore
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn state_arrived(
        &mut self,
        node: usize,
        info: SegmentInfo,
        state: CapturedState,
        bundled: Vec<sod_vm::class::ClassDef>,
        state_bytes: u64,
        class_bytes: u64,
        capture_ns: u64,
        sent_at: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let arrived = ctx.now();
        let window = arrived.saturating_sub(sent_at);
        let (transfer_state_ns, transfer_class_ns) =
            split_transfer_window(window, state_bytes, class_bytes);
        let timings = MigrationTimings {
            capture_ns,
            transfer_state_ns,
            transfer_class_ns,
            restore_ns: 0,
            state_bytes,
            class_bytes,
        };

        // Bundled classes load immediately (charged into the prep time).
        let mut prep = self.nodes[node]
            .cfg
            .scale(costs::deserialize_ns(state_bytes));
        for c in &bundled {
            if !self.nodes[node].vm.has_class(&c.name) {
                prep += self.nodes[node]
                    .cfg
                    .scale(costs::class_load_ns(class_wire_bytes(c)));
                self.nodes[node].vm.load_class(c).expect("bundled class");
            }
            self.nodes[node].repo.insert(c.name.clone(), c.clone());
        }

        // Remaining classes referenced by the segment ship on demand.
        let mut missing: HashSet<String> = HashSet::new();
        for f in &state.frames {
            if !self.nodes[node].vm.has_class(&f.class) {
                missing.insert(f.class.clone());
            }
        }
        for s in &state.statics {
            if !self.nodes[node].vm.has_class(&s.class) {
                missing.insert(s.class.clone());
            }
        }

        let sid = info.session;
        let session = WorkerSession {
            program: info.program,
            session: sid,
            node,
            home: info.home,
            tid: usize::MAX,
            return_to: info.return_to,
            nframes: info.nframes,
            wait_for_return: info.wait_for_return,
            state,
            phase: WorkerPhase::AwaitClasses {
                missing: missing.clone(),
            },
            timings,
            arrived_at: arrived,
            class_wait_ns: 0,
            pending_roam: None,
        };
        self.sessions.insert(sid, session);

        if missing.is_empty() {
            ctx.schedule(prep, node, Msg::BeginRestore { session: sid });
        } else {
            let home = info.home;
            // Request in sorted order: `HashSet` iteration order varies
            // between set instances, and request order decides event
            // sequence numbers — the determinism the fleet suite pins.
            let mut missing: Vec<String> = missing.into_iter().collect();
            missing.sort_unstable();
            for name in missing {
                self.programs[info.program as usize].report.classes_shipped += 1;
                ctx.send_after(
                    prep,
                    node,
                    home,
                    CONTROL_MSG_BYTES,
                    Msg::ClassRequest {
                        session: sid,
                        requester: node,
                        name,
                    },
                );
            }
        }
    }

    fn begin_restore(&mut self, sid: SessionId, ctx: &mut SimCtx<'_, Msg>) {
        let (node, wait, nframes, has_jvmti) = {
            let w = &self.sessions[&sid];
            (
                w.node,
                w.wait_for_return,
                w.nframes,
                self.nodes[w.node].cfg.has_jvmti,
            )
        };
        let use_handlers = has_jvmti && !wait;
        if use_handlers {
            // The paper's portable protocol: JNI-invoke the bottom method,
            // arm a breakpoint, and let InvalidStateException handlers
            // rebuild the frames (costs accrue through interpreted-mode
            // execution plus per-frame tooling charges).
            let state = self.sessions[&sid].state.clone();
            let tid = begin_handler_restore(&mut self.nodes[node].vm, &state)
                .expect("handler restore begins");
            self.nodes[node].vm.threads[tid].interp_mode = true;
            self.thread_owner.insert((node, tid), Owner::Worker(sid));
            let w = self.sessions.get_mut(&sid).unwrap();
            w.tid = tid;
            w.phase = WorkerPhase::Restoring { restored: 0 };
            let fixed = self.nodes[node]
                .cfg
                .scale(costs::RESTORE_FIXED_NS + jvmti::JNI_INVOKE_NS);
            ctx.schedule(fixed, node, Msg::RunSlice { tid });
        } else {
            // Exact direct restore: restore-ahead workflow segments (must
            // not re-execute invokes) and no-JVMTI devices (Java-level
            // reflective restore).
            let state = self.sessions[&sid].state.clone();
            let tid =
                restore_segment_direct(&mut self.nodes[node].vm, &state).expect("direct restore");
            self.thread_owner.insert((node, tid), Owner::Worker(sid));
            let base = if has_jvmti {
                costs::RESTORE_FIXED_NS + nframes as u64 * costs::RESTORE_PER_FRAME_NS
            } else {
                costs::PORTABLE_RESTORE_FIXED_NS
                    + nframes as u64 * costs::RESTORE_PER_FRAME_NS
                    + costs::deserialize_ns(self.sessions[&sid].timings.state_bytes)
            };
            let cost = self.nodes[node].cfg.scale(base);
            let arrived = self.sessions[&sid].arrived_at;
            let class_wait = self.sessions[&sid].class_wait_ns;
            let w = self.sessions.get_mut(&sid).unwrap();
            w.tid = tid;
            w.timings.restore_ns = (ctx.now() + cost)
                .saturating_sub(arrived)
                .saturating_sub(class_wait);
            let timings = w.timings;
            let program = w.program;
            if wait {
                w.phase = WorkerPhase::Waiting;
            } else {
                w.phase = WorkerPhase::Running;
                ctx.schedule(cost, node, Msg::RunSlice { tid });
            }
            self.programs[program as usize]
                .report
                .migrations
                .push(timings);
        }
    }

    fn restore_breakpoint(
        &mut self,
        node: usize,
        tid: usize,
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let sid = self.worker_of(node, tid);
        let (restored, nframes) = {
            let w = &self.sessions[&sid];
            match &w.phase {
                WorkerPhase::Restoring { restored, .. } => (*restored, w.nframes),
                _ => panic!("breakpoint outside restore"),
            }
        };
        // cbBreakpoint (paper Fig. 4b): set the next frame's breakpoint,
        // point the restore cursor at this frame, throw the restoration
        // exception, resume.
        self.nodes[node].vm.threads[tid]
            .restore_session
            .as_mut()
            .expect("restore session")
            .cursor = restored;
        if restored + 1 < nframes {
            let next = self.sessions[&sid].state.frames[restored + 1].clone();
            let vm = &mut self.nodes[node].vm;
            let ci = vm.class_idx(&next.class).expect("restored class");
            let mi = vm.classes[ci].method_idx(&next.method).expect("method");
            vm.set_breakpoint(tid, ci, mi, 0);
        }
        if let WorkerPhase::Restoring { restored: r, .. } =
            &mut self.sessions.get_mut(&sid).unwrap().phase
        {
            *r += 1;
        }
        self.nodes[node]
            .vm
            .throw_into(tid, ExKind::InvalidState, "restore", false)
            .expect("throw InvalidState");
        let charge = self.nodes[node]
            .cfg
            .scale(jvmti::SET_BREAKPOINT_NS + jvmti::THROW_INTO_NS + costs::RESTORE_PER_FRAME_NS);
        ctx.schedule(elapsed + charge, node, Msg::RunSlice { tid });
    }

    /// Handler-protocol restore finishes when every frame has been
    /// re-established and the thread executes a normal slice.
    fn maybe_finish_restore(
        &mut self,
        node: usize,
        tid: usize,
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let Some(Owner::Worker(sid)) = self.thread_owner.get(&(node, tid)) else {
            return;
        };
        let sid = *sid;
        let done = matches!(
            &self.sessions[&sid].phase,
            WorkerPhase::Restoring { restored, .. } if *restored >= self.sessions[&sid].nframes
        );
        if !done {
            return;
        }
        self.nodes[node].vm.threads[tid].interp_mode = false;
        let arrived = self.sessions[&sid].arrived_at;
        let class_wait = self.sessions[&sid].class_wait_ns;
        let w = self.sessions.get_mut(&sid).unwrap();
        w.timings.restore_ns = (ctx.now() + elapsed)
            .saturating_sub(arrived)
            .saturating_sub(class_wait);
        w.phase = WorkerPhase::Running;
        let timings = w.timings;
        let program = w.program;
        self.programs[program as usize]
            .report
            .migrations
            .push(timings);
    }

    // ------------------------------------------------------------------
    // Object manager & flush protocol
    // ------------------------------------------------------------------

    fn object_request(
        &mut self,
        home: usize,
        sid: SessionId,
        requester: usize,
        home_id: ObjId,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let policy = self
            .sessions
            .get(&sid)
            .map(|w| self.programs[w.program as usize].fetch_policy)
            .unwrap_or_default();
        let (root, prefetched) = match policy {
            FetchPolicy::Shallow => (
                extract_object(&self.nodes[home].vm.heap, home_id).expect("home object"),
                Vec::new(),
            ),
            FetchPolicy::Deep => {
                let mut closure =
                    extract_closure(&self.nodes[home].vm.heap, home_id).expect("home closure");
                let root = closure.remove(0);
                (root, closure)
            }
        };
        let bytes: u64 = root.wire_bytes() + prefetched.iter().map(|o| o.wire_bytes()).sum::<u64>();
        let cost = costs::OBJ_LOOKUP_NS + costs::serialize_ns(bytes);
        ctx.send_after(
            self.nodes[home].cfg.scale(cost),
            home,
            requester,
            bytes,
            Msg::ObjectReply {
                session: sid,
                object: root,
                prefetched,
            },
        );
    }

    fn object_reply(
        &mut self,
        node: usize,
        sid: SessionId,
        object: WireObject,
        prefetched: Vec<WireObject>,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let tid = self.sessions[&sid].tid;
        let program = self.sessions[&sid].program;
        let bytes: u64 =
            object.wire_bytes() + prefetched.iter().map(|o| o.wire_bytes()).sum::<u64>();
        let local = install_object(&mut self.nodes[node].vm.heap, &object).expect("install");
        for p in &prefetched {
            install_object(&mut self.nodes[node].vm.heap, p).expect("install prefetch");
        }
        self.nodes[node]
            .vm
            .resume_fetched(tid, local)
            .expect("resume fetched");
        let p = &mut self.programs[program as usize];
        p.report.object_faults += 1;
        p.report.object_bytes += bytes;
        let cost = self.nodes[node].cfg.scale(costs::deserialize_ns(bytes));
        ctx.schedule(cost, node, Msg::RunSlice { tid });
    }

    fn apply_flush(
        &mut self,
        home: usize,
        objects: &[WireObject],
        ack_to: Option<(usize, SessionId)>,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let vm = &mut self.nodes[home].vm;
        // Pass 1: allocate masters for worker-created (temp-id) objects.
        let mut assigned: Vec<(ObjId, ObjId)> = Vec::new();
        let mut map: HashMap<ObjId, ObjId> = HashMap::new();
        for obj in objects {
            if obj.home_id >= TEMP_ID_BASE {
                let new_id = match &obj.body {
                    sod_vm::wire::WireObjBody::Obj { class, fields } => vm
                        .heap
                        .alloc_obj(class.clone(), vec![Value::Null; fields.len()]),
                    sod_vm::wire::WireObjBody::Arr { elems } => vm.heap.alloc_arr(elems.len()),
                    sod_vm::wire::WireObjBody::Str(s) => vm.heap.alloc_str(s.clone()),
                };
                map.insert(obj.home_id, new_id);
                assigned.push((obj.home_id, new_id));
            }
        }
        // Pass 2: write bodies with refs resolved.
        let resolve = |cv: &CapturedValue, map: &HashMap<ObjId, ObjId>| -> Value {
            match cv {
                CapturedValue::Int(i) => Value::Int(*i),
                CapturedValue::Num(n) => Value::Num(*n),
                CapturedValue::Null => Value::Null,
                CapturedValue::HomeRef(h) => Value::Ref(map.get(h).copied().unwrap_or(*h)),
            }
        };
        let mut total_bytes = 0u64;
        for obj in objects {
            total_bytes += obj.wire_bytes();
            let target = map.get(&obj.home_id).copied().unwrap_or(obj.home_id);
            let entry = match vm.heap.get_mut(target) {
                Ok(e) => e,
                Err(_) => continue,
            };
            match (&mut entry.kind, &obj.body) {
                (
                    sod_vm::heap::ObjKind::Obj { fields, .. },
                    sod_vm::wire::WireObjBody::Obj { fields: new, .. },
                ) => {
                    for (i, cv) in new.iter().enumerate() {
                        if i < fields.len() {
                            fields[i] = resolve(cv, &map);
                        }
                    }
                }
                (
                    sod_vm::heap::ObjKind::Arr { elems },
                    sod_vm::wire::WireObjBody::Arr { elems: new },
                ) => {
                    for (i, cv) in new.iter().enumerate() {
                        if i < elems.len() {
                            elems[i] = resolve(cv, &map);
                        }
                    }
                }
                _ => {}
            }
            entry.dirty = false;
        }
        if let Some((node, sid)) = ack_to {
            let cost = costs::deserialize_ns(total_bytes);
            ctx.send_after(
                self.nodes[home].cfg.scale(cost),
                home,
                node,
                CONTROL_MSG_BYTES,
                Msg::FlushAck {
                    session: sid,
                    assigned,
                },
            );
        }
    }

    fn flush_ack(
        &mut self,
        node: usize,
        sid: SessionId,
        assigned: Vec<(ObjId, ObjId)>,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        // Record master ids on the local copies.
        for (temp, home_id) in &assigned {
            let local = (temp - TEMP_ID_BASE) as ObjId;
            if let Ok(o) = self.nodes[node].vm.heap.get_mut(local) {
                o.home_id = Some(*home_id);
            }
        }
        let phase = std::mem::replace(
            &mut self.sessions.get_mut(&sid).unwrap().phase,
            WorkerPhase::Done,
        );
        match phase {
            WorkerPhase::AwaitRoamAck { dest } => {
                let tid = self.sessions[&sid].tid;
                self.sessions.get_mut(&sid).unwrap().phase = WorkerPhase::Running;
                self.roam_capture_and_ship(node, tid, sid, dest, 0, ctx);
            }
            WorkerPhase::AwaitCompleteAck { retval } => {
                let mapped = retval.map(|cv| match cv {
                    CapturedValue::HomeRef(h) if h >= TEMP_ID_BASE => {
                        let home_id = assigned
                            .iter()
                            .find(|(t, _)| *t == h)
                            .map(|(_, n)| *n)
                            .unwrap_or(h);
                        CapturedValue::HomeRef(home_id)
                    }
                    other => other,
                });
                self.send_segment_return(sid, mapped, 0, ctx);
            }
            other => {
                self.sessions.get_mut(&sid).unwrap().phase = other;
            }
        }
    }

    fn segment_return(
        &mut self,
        node: usize,
        program: ProgramId,
        target: ReturnTarget,
        retval: Option<CapturedValue>,
        pop_frames: usize,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        match target {
            ReturnTarget::Home { node: home } => {
                debug_assert_eq!(node, home);
                self.programs[program as usize].suspended = false;
                let tid = self.programs[program as usize].home_tid;
                let val = retval.map(|cv| match cv {
                    CapturedValue::Int(i) => Value::Int(i),
                    CapturedValue::Num(n) => Value::Num(n),
                    CapturedValue::Null => Value::Null,
                    CapturedValue::HomeRef(h) => Value::Ref(h),
                });
                {
                    let vm = &mut self.nodes[home].vm;
                    let t = vm.thread_mut(tid).expect("home thread");
                    let keep = t.frames.len().saturating_sub(pop_frames.saturating_sub(1));
                    t.frames.truncate(keep);
                    vm.force_early_return(tid, val).expect("force early return");
                }
                let finished = self.nodes[home].vm.thread(tid).unwrap().is_finished();
                if finished {
                    let v = match &self.nodes[home].vm.thread(tid).unwrap().state {
                        sod_vm::interp::ThreadState::Finished(v) => *v,
                        _ => None,
                    };
                    self.finish_program(program, v, ctx.now());
                } else {
                    ctx.schedule(
                        self.nodes[home].cfg.scale(jvmti::FORCE_EARLY_RETURN_NS),
                        home,
                        Msg::RunSlice { tid },
                    );
                }
            }
            ReturnTarget::Session { session, .. } => {
                let w = self.sessions.get_mut(&session).expect("chained session");
                debug_assert!(matches!(w.phase, WorkerPhase::Waiting));
                let tid = w.tid;
                w.phase = WorkerPhase::Running;
                let val = retval.map(|cv| match cv {
                    CapturedValue::Int(i) => Value::Int(i),
                    CapturedValue::Num(n) => Value::Num(n),
                    CapturedValue::Null => Value::Null,
                    CapturedValue::HomeRef(h) => match self.nodes[node].vm.heap.find_cached(h) {
                        Some(local) => Value::Ref(local),
                        None => Value::NulledRef(h),
                    },
                });
                deliver_return(&mut self.nodes[node].vm, tid, val);
                ctx.schedule(1_000, node, Msg::RunSlice { tid });
            }
        }
    }
}

/// Split a transfer window between its state and class portions,
/// proportionally to their byte counts. Integer division rounds the class
/// share down and the remainder goes to the state share, so the two
/// portions always sum to the exact window and
/// [`MigrationTimings::latency_ns`] is conserved.
fn split_transfer_window(window: u64, state_bytes: u64, class_bytes: u64) -> (u64, u64) {
    let total_b = (state_bytes + class_bytes).max(1);
    let class_ns = window * class_bytes / total_b;
    (window - class_ns, class_ns)
}

/// Deliver a return value to a thread whose top frame is parked at the
/// invoke of a remotely executed method (workflow restore-ahead).
fn deliver_return(vm: &mut sod_vm::interp::Vm, tid: usize, val: Option<Value>) {
    let t = vm.thread_mut(tid).expect("waiting thread");
    let f = t.frames.last_mut().expect("waiting frame");
    f.pc += 1;
    if let Some(v) = val {
        f.ostack.push(v);
    }
    t.state = sod_vm::interp::ThreadState::Runnable;
}

impl World for Cluster {
    type Msg = Msg;

    fn on_message(&mut self, dst: usize, msg: Msg, ctx: &mut SimCtx<'_, Msg>) {
        match msg {
            Msg::StartProgram { program } => {
                let p = &self.programs[program as usize];
                debug_assert_eq!(p.home, dst);
                let (class, method, args) = (p.class.clone(), p.method.clone(), p.args.clone());
                let tid = self.nodes[dst]
                    .vm
                    .spawn(&class, &method, &args)
                    .expect("spawn program");
                self.programs[program as usize].home_tid = tid;
                self.programs[program as usize].report.started_at_ns = ctx.now();
                self.thread_owner.insert((dst, tid), Owner::Root(program));
                ctx.schedule(0, dst, Msg::RunSlice { tid });
            }
            Msg::MigrateNow { program, plan } => {
                let p = &mut self.programs[program as usize];
                if p.done || p.suspended {
                    return;
                }
                // The live slice chain observes the flag at its next stop;
                // scheduling another slice here would double-drive the
                // thread.
                p.pending_plan = Some(plan);
                p.t_request = ctx.now();
            }
            Msg::RunSlice { tid } => self.run_slice(dst, tid, ctx),
            Msg::HostDone { tid, reply } => {
                let v = materialize_reply(&mut self.nodes[dst].vm, reply);
                self.nodes[dst].vm.resume_host(tid, v).expect("resume host");
                ctx.schedule(0, dst, Msg::RunSlice { tid });
            }
            Msg::CaptureDone { program } => self.capture_done(program, ctx),
            Msg::State {
                info,
                state,
                bundled,
                state_bytes,
                class_bytes,
                capture_ns,
                sent_at,
            } => self.state_arrived(
                dst,
                info,
                state,
                bundled,
                state_bytes,
                class_bytes,
                capture_ns,
                sent_at,
                ctx,
            ),
            Msg::BeginRestore { session } => self.begin_restore(session, ctx),
            Msg::ClassRequest {
                session,
                requester,
                name,
            } => {
                let Some(class) = self.nodes[dst].repo.get(&name).cloned() else {
                    panic!("home node missing class {name}");
                };
                let bytes = class_wire_bytes(&class);
                let cost = self.nodes[dst].cfg.scale(costs::serialize_ns(bytes));
                ctx.send_after(
                    cost,
                    dst,
                    requester,
                    bytes,
                    Msg::ClassReply {
                        session,
                        class,
                        bytes,
                    },
                );
            }
            Msg::ClassReply {
                session,
                class,
                bytes,
            } => {
                let load = self.nodes[dst].cfg.scale(costs::class_load_ns(bytes));
                if !self.nodes[dst].vm.has_class(&class.name) {
                    self.nodes[dst].vm.load_class(&class).expect("class reply");
                }
                self.nodes[dst]
                    .repo
                    .insert(class.name.clone(), class.clone());
                let w = self.sessions.get_mut(&session).expect("session");
                match &mut w.phase {
                    WorkerPhase::AwaitClasses { missing } => {
                        missing.remove(&class.name);
                        if missing.is_empty() {
                            let wait = ctx.now().saturating_sub(w.arrived_at);
                            w.timings.transfer_class_ns += wait;
                            w.class_wait_ns += wait;
                            ctx.schedule(load, dst, Msg::BeginRestore { session });
                        }
                    }
                    _ => {
                        // On-demand class during execution.
                        let tid = w.tid;
                        self.nodes[dst]
                            .vm
                            .resume_class_loaded(tid)
                            .expect("resume class");
                        ctx.schedule(load, dst, Msg::RunSlice { tid });
                    }
                }
            }
            Msg::ObjectRequest {
                session,
                requester,
                home_id,
            } => self.object_request(dst, session, requester, home_id, ctx),
            Msg::ObjectReply {
                session,
                object,
                prefetched,
            } => self.object_reply(dst, session, object, prefetched, ctx),
            Msg::Flush {
                program: _,
                objects,
                ack_to,
            } => self.apply_flush(dst, &objects, ack_to, ctx),
            Msg::FlushAck { session, assigned } => self.flush_ack(dst, session, assigned, ctx),
            Msg::SegmentReturn {
                program,
                session: _,
                target,
                retval,
                pop_frames,
            } => self.segment_return(dst, program, target, retval, pop_frames, ctx),
            Msg::FsRead {
                requester,
                tid,
                path,
                op,
            } => {
                let Some(meta) = self.nodes[dst].fs.file(&path).cloned() else {
                    ctx.send(
                        dst,
                        requester,
                        CONTROL_MSG_BYTES,
                        Msg::FsData {
                            tid,
                            bytes: 0,
                            op,
                            result: HostReply::Int(-1),
                        },
                    );
                    return;
                };
                let disk = self.nodes[dst].fs.disk_read_ns(meta.bytes);
                let result = match op {
                    FsOp::Search => HostReply::Int(meta.match_at.map(|p| p as i64).unwrap_or(-1)),
                    FsOp::Read => HostReply::Int(meta.bytes as i64),
                };
                ctx.send_after(
                    disk,
                    dst,
                    requester,
                    meta.bytes,
                    Msg::FsData {
                        tid,
                        bytes: meta.bytes,
                        op,
                        result,
                    },
                );
            }
            Msg::FsData {
                tid,
                bytes,
                op,
                result,
            } => {
                let scan = match op {
                    FsOp::Search => self.scan_ns(dst, bytes),
                    FsOp::Read => self.scan_ns(dst, bytes) / 4,
                };
                ctx.schedule(scan, dst, Msg::HostDone { tid, reply: result });
            }
            Msg::ClientRequest { payload } => {
                if let Some(tid) = self.nodes[dst].sock_waiters.pop_front() {
                    ctx.schedule(
                        0,
                        dst,
                        Msg::HostDone {
                            tid,
                            reply: HostReply::Str(payload),
                        },
                    );
                } else {
                    self.nodes[dst].sock_queue.push_back(payload);
                }
            }
        }
    }
}

fn materialize_reply(vm: &mut sod_vm::interp::Vm, reply: HostReply) -> Value {
    match reply {
        HostReply::Int(i) => Value::Int(i),
        HostReply::Str(s) => Value::Ref(vm.heap.alloc_str(s)),
        HostReply::List(items) => {
            let refs: Vec<Value> = items
                .into_iter()
                .map(|s| Value::Ref(vm.heap.alloc_str(s)))
                .collect();
            Value::Ref(vm.heap.alloc_arr_from(refs))
        }
    }
}

/// Driver: a [`Sim`] over a [`Cluster`] with experiment-friendly helpers.
pub struct SodSim {
    pub sim: Sim<Cluster>,
}

impl SodSim {
    pub fn new(cluster: Cluster, topo: Topology) -> Self {
        SodSim {
            sim: Sim::new(cluster, topo),
        }
    }

    /// Start a registered program at virtual time `at`.
    pub fn start_program(&mut self, at: u64, program: ProgramId) {
        let home = self.sim.world.programs[program as usize].home;
        self.sim.inject(at, home, Msg::StartProgram { program });
    }

    /// Trigger a migration of `program` per `plan` at virtual time `at`.
    pub fn migrate_at(&mut self, at: u64, program: ProgramId, plan: MigrationPlan) {
        let home = self.sim.world.programs[program as usize].home;
        self.sim.inject(at, home, Msg::MigrateNow { program, plan });
    }

    /// Arm a policy trigger on a registered program (see [`crate::trigger`]).
    pub fn arm_trigger(&mut self, program: ProgramId, trigger: ArmedTrigger) {
        self.sim.world.arm_trigger(program, trigger);
    }

    /// Inject a client request into a photo-server node.
    pub fn client_request_at(&mut self, at: u64, node: usize, payload: impl Into<String>) {
        self.sim.inject(
            at,
            node,
            Msg::ClientRequest {
                payload: payload.into(),
            },
        );
    }

    /// Run the simulation to idle; returns final virtual time.
    pub fn run(&mut self) -> u64 {
        self.sim.run_to_idle(500_000_000)
    }

    /// The report of a completed program.
    pub fn report(&self, program: ProgramId) -> &RunReport {
        &self.sim.world.programs[program as usize].report
    }

    /// Aggregate fleet metrics over every registered program (see
    /// [`Cluster::cluster_report`]).
    pub fn cluster_report(&self) -> ClusterReport {
        self.sim.world.cluster_report()
    }

    pub fn program(&self, program: ProgramId) -> &Program {
        &self.sim.world.programs[program as usize]
    }
}

/// Roll a faulted thread back to the start of the faulting statement
/// (operand stack cleared — sound because rearranged statements are
/// single-effect), leaving it runnable for capture at that MSP.
pub fn rollback_to_statement_start(vm: &mut sod_vm::interp::Vm, tid: usize) {
    let (ci, mi, pc) = {
        let f = vm.thread(tid).unwrap().top().unwrap();
        (f.class_idx, f.method_idx, f.pc)
    };
    let start = vm.line_start_pc(ci, mi, pc);
    let t = vm.thread_mut(tid).unwrap();
    let f = t.frames.last_mut().unwrap();
    f.pc = start;
    f.ostack.clear();
    t.state = sod_vm::interp::ThreadState::Runnable;
}

/// Export a return value, assigning temp ids to worker-created objects.
fn export_with_temps(vm: &sod_vm::interp::Vm, v: Value) -> CapturedValue {
    match v {
        Value::Ref(id) => match vm.heap.get(id).ok().and_then(|o| o.home_id) {
            Some(h) => CapturedValue::HomeRef(h),
            None => CapturedValue::HomeRef(TEMP_ID_BASE + id),
        },
        other => CapturedValue::from_value(other),
    }
}

/// Collect the write-back set of a worker VM: dirty cached objects plus all
/// worker-created objects reachable from them or from the return value.
/// Returns wire objects (temp ids for worker-created ones) and their total
/// serialized size. Clears dirty bits.
fn collect_flush(vm: &mut sod_vm::interp::Vm, retval: Option<Value>) -> (Vec<WireObject>, u64) {
    let mut roots: Vec<ObjId> = vm.heap.dirty_objects().map(|(id, _)| id).collect();
    if let Some(Value::Ref(id)) = retval {
        roots.push(id);
    }
    let mut seen: HashSet<ObjId> = HashSet::new();
    let mut queue: Vec<ObjId> = Vec::new();
    for r in roots {
        if seen.insert(r) {
            queue.push(r);
        }
    }
    let mut out = Vec::new();
    while let Some(id) = queue.pop() {
        let obj = match vm.heap.get(id) {
            Ok(o) => o,
            Err(_) => continue,
        };
        let include = obj.dirty || obj.home_id.is_none();
        if !include {
            continue;
        }
        // Traverse refs: worker-created neighbours must flush too.
        let neighbours: Vec<ObjId> = match &obj.kind {
            sod_vm::heap::ObjKind::Obj { fields, .. } => fields
                .iter()
                .filter_map(|v| match v {
                    Value::Ref(r) => Some(*r),
                    _ => None,
                })
                .collect(),
            sod_vm::heap::ObjKind::Arr { elems } => elems
                .iter()
                .filter_map(|v| match v {
                    Value::Ref(r) => Some(*r),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        };
        out.push(extract_dirty(&vm.heap, id, TEMP_ID_BASE).expect("extract dirty"));
        for n in neighbours {
            if seen.insert(n) {
                queue.push(n);
            }
        }
    }
    vm.heap.clear_dirty();
    let bytes = out.iter().map(|o| o.wire_bytes()).sum();
    (out, bytes)
}

#[cfg(test)]
mod tests {
    use super::split_transfer_window;

    #[test]
    fn transfer_window_split_is_conserved() {
        // Odd byte ratios used to leave up to 1 ns unaccounted.
        for (window, state, class) in [
            (1_000_003u64, 7u64, 3u64),
            (999_999, 1, 2),
            (5, 3, 3),
            (17, 0, 9),
            (17, 9, 0),
            (0, 4, 4),
            (123_456_789, 1_000_000, 333_333),
        ] {
            let (s, c) = split_transfer_window(window, state, class);
            assert_eq!(s + c, window, "window={window} state={state} class={class}");
        }
        // Degenerate zero-byte message: the whole window is state time.
        assert_eq!(split_transfer_window(42, 0, 0), (42, 0));
    }
}
