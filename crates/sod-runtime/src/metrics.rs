//! Measurement records: the quantities the paper's tables report.

use sod_net::time::NS_PER_MS;

/// Timing breakdown of one migration (Table IV / Table VII).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrationTimings {
    /// Request received → state ready to transfer ("capture time").
    pub capture_ns: u64,
    /// State message network time ("transfer time", state portion).
    pub transfer_state_ns: u64,
    /// Class files network time (Table VII splits this out as t3).
    pub transfer_class_ns: u64,
    /// State available at destination → execution resumed ("restore time",
    /// including class loading per the paper's accounting).
    pub restore_ns: u64,
    /// Bytes of captured state shipped.
    pub state_bytes: u64,
    /// Bytes of class files shipped.
    pub class_bytes: u64,
}

impl MigrationTimings {
    /// The paper's *migration latency*: capture + transfer + restore.
    pub fn latency_ns(&self) -> u64 {
        self.capture_ns + self.transfer_state_ns + self.transfer_class_ns + self.restore_ns
    }

    pub fn latency_ms(&self) -> f64 {
        self.latency_ns() as f64 / NS_PER_MS as f64
    }
}

/// Outcome of one program run under the simulator.
///
/// `PartialEq` compares every field, so two reports are equal only when
/// the runs were byte-identical in result *and* cost accounting — the
/// property the scenario-equivalence tests pin.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Virtual completion time of the program (home node observes it).
    pub finished_at_ns: u64,
    /// Root return value rendered as i64 where applicable.
    pub result: Option<i64>,
    /// Guest instructions retired across all nodes.
    pub instructions: u64,
    /// Migrations performed, in order.
    pub migrations: Vec<MigrationTimings>,
    /// Remote-object faults served.
    pub object_faults: u64,
    /// Bytes of objects fetched on demand.
    pub object_bytes: u64,
    /// Classes shipped on demand (beyond those bundled with state).
    pub classes_shipped: u64,
    /// Maximum stack height observed on the home node (Table I `h`).
    pub max_stack_height: usize,
}

impl RunReport {
    /// Total migration latency across all hops.
    pub fn total_migration_latency_ns(&self) -> u64 {
        self.migrations.iter().map(|m| m.latency_ns()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sums_components() {
        let t = MigrationTimings {
            capture_ns: 1,
            transfer_state_ns: 2,
            transfer_class_ns: 3,
            restore_ns: 4,
            ..Default::default()
        };
        assert_eq!(t.latency_ns(), 10);
    }

    #[test]
    fn report_totals() {
        let mut r = RunReport::default();
        r.migrations.push(MigrationTimings {
            capture_ns: 5,
            ..Default::default()
        });
        r.migrations.push(MigrationTimings {
            restore_ns: 7,
            ..Default::default()
        });
        assert_eq!(r.total_migration_latency_ns(), 12);
    }
}
