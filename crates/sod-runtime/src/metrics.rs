//! Measurement records: the quantities the paper's tables report.

use sod_net::time::NS_PER_MS;

/// Timing breakdown of one migration (Table IV / Table VII).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrationTimings {
    /// Request received → state ready to transfer ("capture time").
    pub capture_ns: u64,
    /// State message network time ("transfer time", state portion).
    pub transfer_state_ns: u64,
    /// Class files network time (Table VII splits this out as t3).
    pub transfer_class_ns: u64,
    /// State available at destination → execution resumed ("restore time",
    /// including class loading per the paper's accounting).
    pub restore_ns: u64,
    /// Bytes of captured state shipped.
    pub state_bytes: u64,
    /// Bytes of class files shipped.
    pub class_bytes: u64,
}

impl MigrationTimings {
    /// The paper's *migration latency*: capture + transfer + restore.
    pub fn latency_ns(&self) -> u64 {
        self.capture_ns + self.transfer_state_ns + self.transfer_class_ns + self.restore_ns
    }

    pub fn latency_ms(&self) -> f64 {
        self.latency_ns() as f64 / NS_PER_MS as f64
    }
}

/// Outcome of one program run under the simulator.
///
/// `PartialEq` compares every field, so two reports are equal only when
/// the runs were byte-identical in result *and* cost accounting — the
/// property the scenario-equivalence tests pin.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Virtual time the program's root thread was spawned (request
    /// arrival, for fleet latency accounting).
    pub started_at_ns: u64,
    /// Virtual completion time of the program (home node observes it).
    pub finished_at_ns: u64,
    /// Root return value rendered as i64 where applicable.
    pub result: Option<i64>,
    /// Guest instructions retired across all nodes.
    pub instructions: u64,
    /// Migrations performed, in order.
    pub migrations: Vec<MigrationTimings>,
    /// Remote-object faults served.
    pub object_faults: u64,
    /// Bytes of objects fetched on demand.
    pub object_bytes: u64,
    /// Classes shipped on demand (beyond those bundled with state).
    pub classes_shipped: u64,
    /// Total class-file bytes shipped on this program's behalf: classes
    /// bundled with migrating state *plus* on-demand `ClassReply`
    /// payloads. This is the quantity the code cache shrinks on warm
    /// workers; the per-migration bundled share is in
    /// [`MigrationTimings::class_bytes`].
    pub class_bytes: u64,
    /// Maximum stack height observed on the home node (Table I `h`).
    pub max_stack_height: usize,
}

impl RunReport {
    /// Total migration latency across all hops.
    pub fn total_migration_latency_ns(&self) -> u64 {
        self.migrations.iter().map(|m| m.latency_ns()).sum()
    }

    /// Request completion latency: spawn → finish on the home node.
    pub fn latency_ns(&self) -> u64 {
        self.finished_at_ns.saturating_sub(self.started_at_ns)
    }
}

/// The *nearest-rank* percentile of an ascending-sorted sample.
///
/// For a sample of `n` values and percentile `p` (0 < p ≤ 100), the
/// nearest-rank definition picks the value at rank `⌈p/100 · n⌉`
/// (1-based); it is always an observed sample value, never an
/// interpolation. An empty sample yields 0.
pub fn percentile_nearest_rank(sorted: &[u64], p: u32) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "sample not sorted");
    let p = p.clamp(1, 100) as u64;
    let rank = (p * sorted.len() as u64).div_ceil(100).max(1);
    sorted[rank as usize - 1]
}

/// Network payload bytes broken out by protocol category.
///
/// Tracked per node at every *send* site, so summing a category across
/// nodes equals the bytes the matching [`RunReport`] fields account for —
/// the conservation property the codecache suite pins.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetBytes {
    /// Captured execution state (`State` message payloads).
    pub state: u64,
    /// Class files (bundled with state + on-demand `ClassReply` payloads).
    pub class: u64,
    /// Objects (on-demand fetch replies + dirty write-back flushes).
    pub object: u64,
}

impl NetBytes {
    /// All categories combined.
    pub fn total(&self) -> u64 {
        self.state + self.class + self.object
    }
}

/// Fault-injection tallies for one run (all zero when chaos is off).
///
/// Surfaced on [`ClusterReport`] so chaos runs compare with `==` like any
/// other report — the determinism suites pin the counters too.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosCounters {
    /// Node crashes applied.
    pub crashes: u64,
    /// Node restarts applied.
    pub restarts: u64,
    /// Link partitions applied.
    pub partitions: u64,
    /// Partition heals applied.
    pub heals: u64,
    /// Messages dropped at delivery (crash, partition, or seeded loss).
    pub dropped_msgs: u64,
    /// Home-side migration deadlines that fired on a still-outstanding
    /// migration.
    pub timeouts: u64,
    /// Migration re-ship attempts under
    /// [`crate::engine::RetryPolicy::Retry`].
    pub retries: u64,
    /// Migrations abandoned to resume on the home stack.
    pub fallbacks: u64,
}

impl ChaosCounters {
    /// True when no fault was injected or handled.
    pub fn is_quiet(&self) -> bool {
        *self == ChaosCounters::default()
    }
}

/// Work done by one node over a whole fleet run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeUtilization {
    /// The node's configured name.
    pub name: String,
    /// Guest instructions retired on this node (root + worker threads).
    pub instructions: u64,
    /// Execution slices dispatched on this node.
    pub slices: u64,
    /// Virtual ns the node spent executing guest code (CPU-scaled).
    pub busy_ns: u64,
    /// Simulator events delivered to this node — its shard's delivery
    /// count under the sharded scheduler (identical under both schedulers,
    /// which the scheduler-equivalence suite relies on when it compares
    /// whole reports with `==`).
    pub events: u64,
    /// Outbound network payload bytes, broken out as state/class/object
    /// (makes code-cache savings visible in every report).
    pub sent: NetBytes,
    /// Bytes that left a node but never materialized at a receiver:
    /// payloads of dropped messages (credited to the sender) plus shipped
    /// state that arrived but was never restored (stranded sessions,
    /// credited to the destination holding it). Keeps the conservation
    /// identity `sent = accounted + lost` under fault injection.
    pub lost: NetBytes,
    /// Virtual ns this node was part of the cluster: join → retire for
    /// elastic pool members, join → makespan otherwise. The busy-fraction
    /// denominator — a late-joining pool node is judged against its own
    /// lifetime, not the whole run.
    pub lifetime_ns: u64,
}

impl NodeUtilization {
    /// Fraction of this node's lifetime spent executing guest code.
    /// Computed on demand (not stored) so the report stays all-integer
    /// and `Eq`.
    pub fn busy_fraction(&self) -> f64 {
        self.busy_ns as f64 / self.lifetime_ns.max(1) as f64
    }
}

/// Scaling activity of one elastic node pool over a run (see the engine's
/// pool controller). All-integer and `Eq`, like every other report piece,
/// so elastic runs replay bit-identically under `==`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolReport {
    /// The pool's declared name.
    pub name: String,
    /// Nodes spawned beyond the initial base (including crash
    /// replacements).
    pub spawns: u64,
    /// Nodes drained and retired (scale-in via whole-stack migration).
    pub drains: u64,
    /// Peak concurrent size (live + provisioning) observed.
    pub peak: u64,
    /// Minimum live size observed.
    pub min: u64,
    /// Live members when the report was taken.
    pub final_size: u64,
}

/// Aggregate outcome of a multi-program (fleet) run.
///
/// Per-request completion latencies (spawn → finish of each program's
/// root thread) are summarized as **nearest-rank percentiles** — see
/// [`percentile_nearest_rank`] for the exact definition — alongside
/// throughput and per-node utilization. All fields are integers so two
/// byte-identical runs compare equal (the determinism suite relies on
/// this).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClusterReport {
    /// Programs registered with the cluster.
    pub launched: u64,
    /// Programs that ran to completion without error.
    pub completed: u64,
    /// Programs that finished with an error (`launched - completed -
    /// failed` are still in flight / deadlocked when the sim idles).
    pub failed: u64,
    /// Median completion latency (nearest-rank, completed programs only).
    pub p50_latency_ns: u64,
    /// 95th-percentile completion latency (nearest-rank).
    pub p95_latency_ns: u64,
    /// 99th-percentile completion latency (nearest-rank).
    pub p99_latency_ns: u64,
    /// Arithmetic mean completion latency (integer division).
    pub mean_latency_ns: u64,
    /// Worst observed completion latency.
    pub max_latency_ns: u64,
    /// Virtual time when the last program finished (completed or failed).
    pub makespan_ns: u64,
    /// Completed programs per virtual second, ×1000 (milli-requests/s).
    pub throughput_millirps: u64,
    /// Per-node work, in node-declaration order.
    pub per_node: Vec<NodeUtilization>,
    /// Total node-lifetime across the cluster (Σ per-node `lifetime_ns`):
    /// the *cost* axis of the elastic p99-vs-node-seconds frontier. A
    /// fixed fleet pays `nodes × makespan`; an elastic pool pays only for
    /// the lifetimes its members actually had.
    pub node_ns: u64,
    /// Per-pool scaling activity, in pool-declaration order (empty when
    /// the scenario declares no pools).
    pub pools: Vec<PoolReport>,
    /// Fault-injection tallies (all zero when chaos is off).
    pub chaos: ChaosCounters,
}

impl ClusterReport {
    /// Aggregate a fleet run from its raw per-request latencies.
    ///
    /// `latencies` are the completed programs' completion latencies (any
    /// order; sorted internally), `makespan_ns` the virtual time the last
    /// program finished.
    pub fn aggregate(
        launched: u64,
        mut latencies: Vec<u64>,
        failed: u64,
        makespan_ns: u64,
        per_node: Vec<NodeUtilization>,
    ) -> Self {
        latencies.sort_unstable();
        let completed = latencies.len() as u64;
        let sum: u64 = latencies.iter().sum();
        let node_ns = per_node.iter().map(|n| n.lifetime_ns).sum();
        ClusterReport {
            launched,
            completed,
            failed,
            p50_latency_ns: percentile_nearest_rank(&latencies, 50),
            p95_latency_ns: percentile_nearest_rank(&latencies, 95),
            p99_latency_ns: percentile_nearest_rank(&latencies, 99),
            mean_latency_ns: sum / completed.max(1),
            max_latency_ns: latencies.last().copied().unwrap_or(0),
            makespan_ns,
            throughput_millirps: (completed * 1_000_000_000_000)
                .checked_div(makespan_ns)
                .unwrap_or(0),
            per_node,
            node_ns,
            pools: Vec::new(),
            chaos: ChaosCounters::default(),
        }
    }

    /// The cost axis in seconds: total node-lifetime across the cluster.
    pub fn node_seconds(&self) -> f64 {
        self.node_ns as f64 / 1_000_000_000.0
    }

    /// Cluster-wide network bytes: the per-node [`NodeUtilization::sent`]
    /// categories summed across all nodes.
    pub fn total_sent(&self) -> NetBytes {
        self.per_node
            .iter()
            .fold(NetBytes::default(), |acc, n| NetBytes {
                state: acc.state + n.sent.state,
                class: acc.class + n.sent.class,
                object: acc.object + n.sent.object,
            })
    }

    /// Cluster-wide lost bytes: the per-node [`NodeUtilization::lost`]
    /// categories summed across all nodes. Under fault injection the
    /// conservation identity is `total_sent = accounted + total_lost` per
    /// category (e.g. state: `sent.state = Σ migrations.state_bytes +
    /// lost.state`).
    pub fn total_lost(&self) -> NetBytes {
        self.per_node
            .iter()
            .fold(NetBytes::default(), |acc, n| NetBytes {
                state: acc.state + n.lost.state,
                class: acc.class + n.lost.class,
                object: acc.object + n.lost.object,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sums_components() {
        let t = MigrationTimings {
            capture_ns: 1,
            transfer_state_ns: 2,
            transfer_class_ns: 3,
            restore_ns: 4,
            ..Default::default()
        };
        assert_eq!(t.latency_ns(), 10);
    }

    #[test]
    fn nearest_rank_percentiles() {
        assert_eq!(percentile_nearest_rank(&[], 50), 0);
        let one = [7u64];
        for p in [1, 50, 95, 99, 100] {
            assert_eq!(percentile_nearest_rank(&one, p), 7);
        }
        // Canonical nearest-rank example: 5 samples.
        let s = [15u64, 20, 35, 40, 50];
        assert_eq!(percentile_nearest_rank(&s, 30), 20); // ⌈0.30·5⌉ = 2
        assert_eq!(percentile_nearest_rank(&s, 40), 20);
        assert_eq!(percentile_nearest_rank(&s, 50), 35);
        assert_eq!(percentile_nearest_rank(&s, 100), 50);
        // p99 of 100 samples is the 99th value, not the max.
        let big: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_nearest_rank(&big, 99), 99);
        assert_eq!(percentile_nearest_rank(&big, 50), 50);
    }

    #[test]
    fn cluster_report_aggregates() {
        let r = ClusterReport::aggregate(
            5,
            vec![30, 10, 20, 40],
            1,
            2_000_000_000,
            vec![
                NodeUtilization {
                    name: "n0".into(),
                    instructions: 99,
                    slices: 3,
                    busy_ns: 7,
                    events: 11,
                    sent: NetBytes {
                        state: 100,
                        class: 20,
                        object: 3,
                    },
                    lost: NetBytes {
                        state: 9,
                        class: 0,
                        object: 1,
                    },
                    lifetime_ns: 2_000_000_000,
                },
                NodeUtilization {
                    name: "n1".into(),
                    sent: NetBytes {
                        state: 1,
                        class: 2,
                        object: 4,
                    },
                    ..Default::default()
                },
            ],
        );
        assert_eq!((r.launched, r.completed, r.failed), (5, 4, 1));
        assert_eq!(r.p50_latency_ns, 20);
        assert_eq!(r.p99_latency_ns, 40);
        assert_eq!(r.mean_latency_ns, 25);
        assert_eq!(r.max_latency_ns, 40);
        // 4 completions over 2 virtual seconds = 2 req/s = 2000 milli-rps.
        assert_eq!(r.throughput_millirps, 2000);
        assert_eq!(r.per_node.len(), 2);
        // Network byte categories sum per node and across the cluster.
        assert_eq!(r.per_node[0].sent.total(), 123);
        assert_eq!(
            r.total_sent(),
            NetBytes {
                state: 101,
                class: 22,
                object: 7,
            }
        );
        assert_eq!(
            r.total_lost(),
            NetBytes {
                state: 9,
                class: 0,
                object: 1,
            }
        );
        assert!(r.chaos.is_quiet(), "aggregate starts with quiet counters");
        // Cost axis: Σ per-node lifetimes (n1's default lifetime is 0).
        assert_eq!(r.node_ns, 2_000_000_000);
        assert!((r.node_seconds() - 2.0).abs() < f64::EPSILON);
        assert!(r.pools.is_empty(), "aggregate starts with no pools");
        // Empty fleets aggregate to zeros, not a division panic.
        let empty = ClusterReport::aggregate(0, vec![], 0, 0, vec![]);
        assert_eq!(empty.completed, 0);
        assert_eq!(empty.throughput_millirps, 0);
        assert_eq!(empty.node_ns, 0);
    }

    #[test]
    fn busy_fraction_uses_node_lifetime_not_run_duration() {
        // A pool node that joined halfway through a 2 s run and was busy
        // 0.5 s is 50% utilized over its own 1 s lifetime — not 25% of
        // the whole run.
        let late = NodeUtilization {
            name: "workers-2".into(),
            busy_ns: 500_000_000,
            lifetime_ns: 1_000_000_000,
            ..Default::default()
        };
        assert!((late.busy_fraction() - 0.5).abs() < 1e-9);
        // A static node's lifetime is the whole run.
        let fixed = NodeUtilization {
            name: "edge0".into(),
            busy_ns: 500_000_000,
            lifetime_ns: 2_000_000_000,
            ..Default::default()
        };
        assert!((fixed.busy_fraction() - 0.25).abs() < 1e-9);
        // Zero lifetime never divides by zero.
        assert_eq!(NodeUtilization::default().busy_fraction(), 0.0);
    }

    #[test]
    fn report_totals() {
        let mut r = RunReport::default();
        r.migrations.push(MigrationTimings {
            capture_ns: 5,
            ..Default::default()
        });
        r.migrations.push(MigrationTimings {
            restore_ns: 7,
            ..Default::default()
        });
        assert_eq!(r.total_migration_latency_ns(), 12);
    }
}
