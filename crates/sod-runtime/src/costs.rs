//! Calibration constants for the SODEE runtime cost model.
//!
//! Everything here is a *virtual-time* cost in nanoseconds, calibrated so
//! the reproduced tables land in the same regime as the paper's 2009
//! testbed (2.53 GHz Xeons, Sun JDK 1.6, Gigabit Ethernet). Instruction and
//! JVMTI costs live in `sod-vm` (`costs`, `tooling`); this module adds the
//! middleware-level costs: Java serialization, class loading, JNI entry,
//! and the portable (no-JVMTI) capture/restore path used for devices.

use sod_net::time::{MS, US};

/// Java serialization: per-byte cost of writing an object stream
/// (G-JavaMPI's eager copy is dominated by this; 64 MB ≈ 450 ms).
pub const SERIALIZE_PER_BYTE_NS: u64 = 7;

/// Java deserialization per byte (reading is slower: allocation + fixup).
pub const DESERIALIZE_PER_BYTE_NS: u64 = 15;

/// Fixed cost of one serialization call (stream setup, reflection).
pub const SERIALIZE_FIXED_NS: u64 = 20 * US;

/// Loading + linking a shipped class: fixed part.
pub const CLASS_LOAD_FIXED_NS: u64 = 900 * US;

/// Loading + linking a shipped class: per byte of class file.
pub const CLASS_LOAD_PER_BYTE_NS: u64 = 1;

/// Worker-side fixed restore entry cost on the JVMTI path: JNI invoke of
/// the bottom method + agent bookkeeping (paper restore ≈ 7–10 ms total,
/// mostly class loading + per-frame handler execution).
pub const RESTORE_FIXED_NS: u64 = 3 * MS;

/// Establishing one frame via the breakpoint + InvalidStateException
/// protocol: breakpoint arm + exception injection, beyond the instruction
/// costs of the handler itself (charged by the VM in interpreted mode).
pub const RESTORE_PER_FRAME_NS: u64 = 300 * US;

/// Portable capture (no JVMTI at the destination): the state is saved with
/// Java serialization into a portable format. Paper Table VII measures
/// ≈ 13–14 ms regardless of bandwidth.
pub const PORTABLE_CAPTURE_FIXED_NS: u64 = 12 * MS;

/// Portable restore executed at Java level through reflection; multiplied
/// by the device's CPU slowdown. Paper Table VII: 28–50 ms on a 412 MHz
/// ARM.
pub const PORTABLE_RESTORE_FIXED_NS: u64 = 2 * MS;

/// Handling an object request on the home side: JVMTI lookup of the target
/// object before serialization.
pub const OBJ_LOOKUP_NS: u64 = 8 * US;

/// Framing bytes added to a migration state message.
pub const MIGRATION_MSG_FIXED_BYTES: u64 = 2048;

/// Fixed handshake time before a migration state transfer begins (socket
/// setup, worker rendezvous). The paper's Gigabit transfer times sit
/// around 4–7 ms even for tiny states; at 50 kbps Wi-Fi the same
/// handshake is negligible against the transmission time, matching
/// Table VII's shape.
pub const MIGRATION_HANDSHAKE_NS: u64 = 3_500_000;

/// Execution-time scale (per-mille) of a JVM with the JVMTI agent attached
/// but idle — the paper's C1 overhead of 0.1–3.2 %.
pub const AGENT_IDLE_SCALE_PER_MILLE: u32 = 1005;

/// Serialization cost of `bytes` of object data.
pub fn serialize_ns(bytes: u64) -> u64 {
    SERIALIZE_FIXED_NS + bytes * SERIALIZE_PER_BYTE_NS
}

/// Deserialization cost of `bytes` of object data.
pub fn deserialize_ns(bytes: u64) -> u64 {
    SERIALIZE_FIXED_NS + bytes * DESERIALIZE_PER_BYTE_NS
}

/// Class load cost for a class file of `bytes`.
pub fn class_load_ns(bytes: u64) -> u64 {
    CLASS_LOAD_FIXED_NS + bytes * CLASS_LOAD_PER_BYTE_NS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_dominates_for_big_heaps() {
        // 64 MB serialized ≈ 450 ms — the G-JavaMPI FFT pathology.
        let t = serialize_ns(64 << 20);
        assert!(t > 400 * MS && t < 600 * MS, "{t}");
    }

    #[test]
    fn class_load_reasonable() {
        // A 4 kB class loads in ~1 ms.
        let t = class_load_ns(4096);
        assert!(t > 500 * US && t < 2 * MS);
    }
}
