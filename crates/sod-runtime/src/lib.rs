//! # sod-runtime — SODEE, the Stack-On-Demand Execution Engine
//!
//! This crate is the reproduction of the paper's contribution: a
//! distributed runtime in which a stack-machine thread's execution state
//! migrates *partially* — the top segment of its call stack — between
//! nodes, with code and heap objects following on demand.
//!
//! Architecture (paper Fig. 2):
//!
//! * **class preprocessor** — `sod-preprocess` (offline; run before
//!   deploying classes to a [`node::Node`]);
//! * **migration manager** — [`engine::Cluster`]'s capture/ship/restore
//!   paths: suspension at migration-safe points, JVMTI-cost capture,
//!   breakpoint + `InvalidStateException` restoration, `ForceEarlyReturn`
//!   on segment completion;
//! * **object manager** — the object-fault protocol: null-carried home
//!   identities, fetch-by-home-id, dirty write-back flushes with temp-id
//!   assignment.
//!
//! The runtime runs inside `sod-net`'s deterministic discrete-event
//! simulator; all times are virtual nanoseconds. See `DESIGN.md` at the
//! workspace root for the substitution map (what the paper ran on real
//! hardware vs. what is simulated here, and why the shapes carry over).
//!
//! ## Migration policies
//!
//! Migrations are requested two ways: a driver-injected `MigrateNow`
//! event ([`SodSim::migrate_at`], the paper's scripted experiments), or a
//! policy [`Trigger`] armed on the program
//! ([`Cluster::arm_trigger`]/[`SodSim::arm_trigger`]) — time reached,
//! `OutOfMemoryError` raised, object-fault threshold crossed, or CPU
//! slice budget exhausted. Either way the request only *takes effect at a
//! migration-safe point*: the thread switches to stop-at-MSP execution
//! and capture happens at the next safe point, so policy-driven runs are
//! exactly as deterministic as scripted ones. The [`trigger`] module
//! documents the precise evaluation rules (slice-boundary checks, the
//! frozen-stack window, one-shot firing). Most callers should express
//! policies through the `sod` facade's `scenario` builder instead of
//! arming triggers by hand.
//!
//! ## Example: offload a computation and get it back
//!
//! ```
//! use sod_asm::builder::ClassBuilder;
//! use sod_preprocess::preprocess_sod;
//! use sod_runtime::engine::{Cluster, SodSim};
//! use sod_runtime::msg::MigrationPlan;
//! use sod_runtime::node::{Node, NodeConfig};
//! use sod_net::Topology;
//! use sod_vm::value::Value;
//!
//! let class = ClassBuilder::new("App")
//!     .method("work", &["n"], |m| {
//!         m.line();
//!         m.pushi(0).store("acc");
//!         m.pushi(0).store("i");
//!         m.line();
//!         m.label("loop");
//!         m.load("i").load("n").if_cmp(sod_vm::instr::Cmp::Ge, "done");
//!         m.line();
//!         m.load("acc").load("i").add().store("acc");
//!         m.line();
//!         m.load("i").pushi(1).add().store("i").goto("loop");
//!         m.line();
//!         m.label("done");
//!         m.load("acc").retv();
//!     })
//!     .method("main", &["n"], |m| {
//!         m.line();
//!         m.load("n").invoke("App", "work", 1).store("r");
//!         m.line();
//!         m.load("r").retv();
//!     })
//!     .build()
//!     .unwrap();
//! let class = preprocess_sod(&class).unwrap();
//!
//! let mut home = Node::new(NodeConfig::cluster("home"));
//! home.deploy(&class).unwrap();
//! let worker = Node::new(NodeConfig::cluster("worker"));
//!
//! let mut cluster = Cluster::new(vec![home, worker]);
//! let pid = cluster.add_program(0, "App", "main", vec![Value::Int(500_000)]);
//! let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(2));
//! sim.start_program(0, pid);
//! // Push the top frame (work) to node 1 shortly after start. The
//! // policy-driven equivalent would be, e.g.:
//! //   sim.arm_trigger(pid, ArmedTrigger::new(
//! //       Trigger::OnCpuSliceBudget { slices: 20, to: 1 }));
//! sim.migrate_at(sod_net::MS, pid, MigrationPlan::top_to(1, 1));
//! sim.run();
//! let report = sim.report(pid);
//! assert_eq!(report.result, Some((0..500_000i64).sum()));
//! assert_eq!(report.migrations.len(), 1);
//! ```

pub mod costs;
pub mod engine;
pub mod fs;
pub mod metrics;
pub mod msg;
pub mod node;
pub mod trigger;

pub use engine::{
    Cluster, CodeShipping, FetchPolicy, PoolSpec, RetryPolicy, ScalePolicy, SodSim,
    DEFAULT_POOL_TICK_NS, POOL_DEST_BASE,
};
pub use metrics::{
    percentile_nearest_rank, ChaosCounters, ClusterReport, MigrationTimings, NetBytes,
    NodeUtilization, PoolReport, RunReport,
};
pub use msg::{MigrationPlan, Msg, ProgramId, SegmentSpec, SessionId};
pub use node::{Node, NodeConfig};
pub use sod_net::{ChaosAction, ChaosPlan, DropReason, Scheduler};
pub use trigger::{ArmedTrigger, Trigger};
