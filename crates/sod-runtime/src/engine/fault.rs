//! Fault handling: applying chaos actions to cluster state, accounting
//! for dropped messages, and the home-side migration deadline with its
//! retry / fallback recovery.
//!
//! The chaos layer lives in `sod-net` (see [`sod_net::ChaosPlan`]): the
//! simulator applies partitions to the topology and suppresses deliveries;
//! this module is the *engine's* reaction. Three hooks arrive here:
//!
//! * [`Cluster::apply_chaos`] — a scheduled action fired. A crash fails
//!   every program homed on the node (typed error, never an abort) and
//!   retires every worker session hosted there; the node's repo and heap
//!   survive (warm restart), so a later [`sod_net::ChaosAction::Restart`]
//!   only marks it reachable again.
//! * [`Cluster::note_dropped`] — a delivery was suppressed. Payload bytes
//!   whose accounting is receive-side (shipped state, object replies) are
//!   credited to the sender's `net_lost` bucket so the conservation
//!   identity `sent = accounted + lost` keeps holding per category.
//! * [`Cluster::migration_timeout`] — the end-to-end deadline armed at
//!   `CaptureDone` fired while the home side is still frozen. Whatever
//!   broke (state, class reply, chained return, flush ack, or the whole
//!   destination), the recovery is the same: kill the episode's sessions
//!   and either re-ship the retained capture under fresh session ids
//!   ([`RetryPolicy::Retry`]) or thaw the home stack and resume locally
//!   ([`RetryPolicy::FallbackToHome`] — sound because capture leaves the
//!   home frames intact; the migrated portion simply re-executes, giving
//!   at-least-once semantics).
//!
//! Deadlines are armed only when chaos is enabled, so fault-free runs stay
//! event-for-event identical to a build without this module.

use sod_net::{ChaosAction, DropReason, SimCtx};

use crate::msg::{Msg, ProgramId, ReturnTarget, SessionId};

use super::session::{HomeSide, StagedSegment, WorkerPhase};
use super::Cluster;

/// Default end-to-end migration deadline under fault injection (see
/// [`Cluster::migration_timeout_ns`]): generous against ordinary shipping
/// and restore latencies, so it only fires when something was lost.
pub const DEFAULT_MIGRATION_TIMEOUT_NS: u64 = 50_000_000; // 50 ms

/// What the home side does when an outstanding migration misses its
/// deadline (a message of the episode — state, class reply, chained
/// return, or flush ack — was lost, or the destination crashed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RetryPolicy {
    /// Re-ship the retained capture under fresh session ids, counting the
    /// initial shipment: after `max_attempts` total attempts the episode
    /// falls back to home anyway. Stale sessions of superseded attempts
    /// are killed and their late messages ignored.
    Retry { max_attempts: u32 },
    /// Abandon the remote episode and resume on the home stack. Capture
    /// leaves the home frames intact, so resumption re-executes the
    /// migrated portion locally — at-least-once execution semantics.
    #[default]
    FallbackToHome,
}

impl Cluster {
    /// A scheduled chaos action fired (called from the simulator's
    /// `World::on_chaos` hook — a pure state event, no messages may be
    /// sent from here).
    pub(super) fn apply_chaos(&mut self, action: &ChaosAction, now: u64) {
        match *action {
            ChaosAction::Crash { node } => {
                self.chaos.crashes += 1;
                // Programs homed here lose their root thread and heap
                // master copies: a typed failure, recorded like any other.
                // Only *started* programs die — one launching after a
                // later restart never saw this crash (if its launch falls
                // inside the outage, the dropped `StartProgram` fails it
                // in `note_dropped` instead).
                let failed: Vec<ProgramId> = self
                    .programs
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| !p.done && p.started && p.home == node)
                    .map(|(i, _)| i as ProgramId)
                    .collect();
                for program in failed {
                    self.fail_program(program, format!("home node {node} crashed"), now);
                }
                // Worker sessions hosted here die with the node. Their
                // programs are NOT failed here: the home-side migration
                // deadline recovers them (retry or fallback). Kill order
                // is irrelevant — killing only mutates per-session state.
                let dead: Vec<SessionId> = self
                    .sessions
                    .iter()
                    .filter(|(_, w)| w.node == node && !matches!(w.phase, WorkerPhase::Done))
                    .map(|(sid, _)| *sid)
                    .collect();
                for sid in dead {
                    self.kill_session(sid);
                }
                // Parked accept state dies with the serving threads; a
                // request delivered after restart must not resume one.
                self.nodes[node].sock_queue.clear();
                self.nodes[node].sock_waiters.clear();
                // A crashed elastic-pool member retires permanently; the
                // pool's next controller tick spawns a replacement.
                self.note_pool_member_crashed(node, now);
            }
            ChaosAction::Restart { .. } => self.chaos.restarts += 1,
            ChaosAction::Partition { .. } => self.chaos.partitions += 1,
            ChaosAction::Heal { .. } => self.chaos.heals += 1,
        }
    }

    /// A delivery was suppressed by the chaos layer. Only categories whose
    /// byte accounting completes at the *receiver* need a lost credit:
    /// shipped state (accounted when the destination restores) and object
    /// replies (accounted on arrival). Class and flush bytes are fully
    /// accounted at send time, so dropping them cannot unbalance the
    /// books and `lost.class` stays zero by construction.
    pub(super) fn note_dropped(
        &mut self,
        src: usize,
        _dst: usize,
        msg: Msg,
        _reason: DropReason,
        now: u64,
    ) {
        self.chaos.dropped_msgs += 1;
        match msg {
            // The launch event landed on a node that is down: the program
            // fails at its own start time (a self-addressed timer, so the
            // only way to lose it is a crashed home).
            Msg::StartProgram { program } => {
                let home = self.programs[program as usize].home;
                self.fail_program(program, format!("home node {home} down at launch"), now);
            }
            Msg::State { state, .. } => {
                self.nodes[src].net_lost.state += state.len() as u64;
            }
            Msg::ObjectReply { batch, .. } => {
                self.nodes[src].net_lost.object += batch.payload_bytes();
            }
            _ => {}
        }
    }

    /// The end-to-end migration deadline fired at the home node. Stale
    /// timers (episode completed, failed, or already superseded by a
    /// retry) are ignored via the attempt stamp.
    pub(super) fn migration_timeout(
        &mut self,
        node: usize,
        program: ProgramId,
        attempt: u32,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        {
            let p = &self.programs[program as usize];
            if p.done || p.attempt != attempt || !p.side.is_frozen() {
                return;
            }
            debug_assert_eq!(p.home, node);
        }
        self.chaos.timeouts += 1;
        // Kill the episode's sessions first: whichever of them were alive,
        // their threads must never complete against the recovered program,
        // and their unrecorded state bytes surface in the lost sweep.
        for sid in self.programs[program as usize].valid_sessions.clone() {
            self.kill_session(sid);
        }
        let attempts_done = self.programs[program as usize].episode_attempts;
        let retry = match self.retry_policy {
            RetryPolicy::Retry { max_attempts } => attempts_done < max_attempts,
            RetryPolicy::FallbackToHome => false,
        };
        if retry {
            self.chaos.retries += 1;
            self.reship(node, program, ctx);
        } else {
            self.chaos.fallbacks += 1;
            let p = &mut self.programs[program as usize];
            p.side = HomeSide::Idle;
            p.valid_sessions.clear();
            p.shipped.clear();
            let tid = p.home_tid;
            // The home stack still holds every captured frame; thaw the
            // thread at its migration-safe point and run on.
            if let Ok(t) = self.nodes[node].vm.thread_mut(tid) {
                t.state = sod_vm::interp::ThreadState::Runnable;
            }
            ctx.schedule(0, node, Msg::RunSlice { tid });
        }
    }

    /// Re-ship the retained capture under fresh session ids, re-chained
    /// exactly like the original shipment, and arm a new deadline.
    fn reship(&mut self, home: usize, program: ProgramId, ctx: &mut SimCtx<'_, Msg>) {
        let segs: Vec<StagedSegment> = self.programs[program as usize].shipped.clone();
        let dests: Vec<usize> = segs.iter().map(|s| s.dest).collect();
        let sids: Vec<SessionId> = segs.iter().map(|_| self.alloc_session(home)).collect();
        let attempt = {
            let p = &mut self.programs[program as usize];
            p.attempt += 1;
            p.episode_attempts += 1;
            p.valid_sessions = sids.clone();
            p.attempt
        };
        let n = segs.len();
        for (i, mut seg) in segs.into_iter().enumerate() {
            seg.info.session = sids[i];
            seg.info.return_to = if i + 1 < n {
                ReturnTarget::Session {
                    node: dests[i + 1],
                    session: sids[i + 1],
                }
            } else {
                ReturnTarget::Home { node: home }
            };
            self.ship_segment(home, 0, seg, ctx);
        }
        ctx.schedule(
            self.migration_timeout_ns,
            home,
            Msg::MigrationTimeout { program, attempt },
        );
    }

    /// Retire a worker session: mark it done and orphan its VM thread so
    /// no stale event (run slice, class reply, chained return) can wake
    /// it. The thread's frames stay parked — memory, not behavior.
    fn kill_session(&mut self, sid: SessionId) {
        let Some(w) = self.sessions.get_mut(&sid) else {
            return;
        };
        w.phase = WorkerPhase::Done;
        let key = (w.node, w.tid);
        self.thread_owner.remove(&key);
    }
}
