//! Elastic node pools: the declarative spec and per-pool runtime state.
//!
//! A pool is a named group of nodes sharing one template [`NodeConfig`]
//! that grows and shrinks at runtime under a [`ScalePolicy`], evaluated by
//! the controller tick in `engine/elastic.rs`. Migration plans target a
//! pool by *sentinel destination* ([`POOL_DEST_BASE`]` + pool index`),
//! resolved to the least-loaded live member at *ship* time (when the
//! capture completes) — so placements see every member the controller
//! spawned while the stack was being frozen, deterministically.

use crate::node::NodeConfig;

/// Sentinel base for pool destinations in
/// [`crate::msg::SegmentSpec::dest`]: `POOL_DEST_BASE + pool_index` means
/// "any live member of that pool", resolved when the captured state
/// ships (capture-done time, not capture-start time). Far above
/// any realistic node count, far below [`usize::MAX / 2`] (the
/// whole-stack frame sentinel), so the two sentinels can never collide.
pub const POOL_DEST_BASE: usize = 1 << 20;

/// Default controller tick period: 1 ms of virtual time.
pub const DEFAULT_POOL_TICK_NS: u64 = 1_000_000;

/// Pluggable autoscaling policies. Each tick the controller computes the
/// policy's *target* size and steps the membership toward it: scale-out
/// covers the full gap in one tick (a burst that needs five members must
/// not wait five ticks), scale-in drains one member per tick. Every
/// decision is attributable to one tick instant and replays
/// bit-identically from the seed.
///
/// *Load* is the number of active migrated sessions hosted on the pool's
/// live and draining members, plus captures staged toward the pool whose
/// placement has not resolved yet; *live* is the count of members
/// accepting placements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScalePolicy {
    /// Threshold policy on per-member queue depth: grow to `⌈load/high⌉`
    /// members when the backlog outruns the current size, drain one when
    /// `load < low × live` (never below the pool's base size).
    QueueDepth { high: u64, low: u64 },
    /// Latency-target policy: spawn one node when the p99 completion
    /// latency of programs that finished inside the last tick window
    /// exceeds `budget_ns`; drain one when the pool is over base size and
    /// load no longer covers every live member.
    P99Breach { budget_ns: u64 },
    /// Step policy: track a target size of `⌈load / per_node⌉` members,
    /// clamped to `[base, max]`.
    StepLoad { per_node: u64 },
}

/// A pool declaration handed to the engine (built by the `sod` facade's
/// `Pool` builder).
#[derive(Clone, Debug)]
pub struct PoolSpec {
    /// Pool name; members are named `"{name}-{i}"` in spawn order.
    pub name: String,
    /// Node profile every member is created from.
    pub template: NodeConfig,
    /// Members provisioned up-front (live from t = 0) and the floor the
    /// pool drains back to.
    pub base: usize,
    /// Hard ceiling on concurrent members (live + provisioning).
    pub max: usize,
    /// The autoscaling policy.
    pub policy: ScalePolicy,
    /// Cold-start latency: a spawned member accepts placements only after
    /// this much virtual time has elapsed (provisioning).
    pub cold_start_ns: u64,
    /// Controller tick period.
    pub tick_ns: u64,
}

/// Lifecycle of one pool member.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum MemberState {
    /// Spawned; cold start in progress. Not placeable yet.
    Provisioning,
    /// Accepting placements.
    Live,
    /// Scale-in under way: no new placements; hosted stacks migrate off
    /// via whole-stack roaming, then the member retires.
    Draining,
    /// Gone (drained out, or crashed by fault injection). Never revived;
    /// replacements are fresh spawns.
    Retired,
}

/// One member's runtime record. The node itself lives in
/// [`crate::engine::Cluster::nodes`] (nodes are never removed — a retired
/// member's slot keeps its metrics).
pub(super) struct PoolMember {
    pub(super) node: usize,
    pub(super) state: MemberState,
}

/// Per-pool runtime state owned by the cluster.
pub(super) struct PoolRuntime {
    pub(super) spec: PoolSpec,
    pub(super) members: Vec<PoolMember>,
    /// Members ever created (naming counter for `"{name}-{i}"`).
    pub(super) created: usize,
    /// Nodes spawned beyond the initial base.
    pub(super) spawns: u64,
    /// Members drained and retired gracefully.
    pub(super) drains: u64,
    /// Captures staged toward this pool whose placement has not resolved
    /// yet (placement happens at ship time, when the freeze completes).
    /// Counted into the pool's load so a burst is visible to the policy
    /// *during* the captures, before any member has been chosen.
    pub(super) pending: u64,
    /// Peak concurrent size (live + provisioning) observed.
    pub(super) peak: u64,
    /// Minimum live size observed.
    pub(super) min: u64,
}

impl PoolRuntime {
    pub(super) fn live_members(&self) -> impl Iterator<Item = usize> + '_ {
        self.members
            .iter()
            .filter(|m| m.state == MemberState::Live)
            .map(|m| m.node)
    }

    pub(super) fn count(&self, state: MemberState) -> usize {
        self.members.iter().filter(|m| m.state == state).count()
    }
}
