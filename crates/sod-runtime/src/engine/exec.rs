//! The execution protocol: the slice loop that drives guest threads, host
//! intrinsics (clock, sockets, simulated NFS), policy-trigger evaluation,
//! and program completion/failure accounting.

use sod_net::SimCtx;
use sod_vm::class::ExKind;
use sod_vm::interp::{ExceptionInfo, RunMode, StepOutcome};
use sod_vm::value::Value;

use crate::costs;
use crate::msg::{FsOp, HostReply, MigrationPlan, Msg, ProgramId};
use crate::trigger::Trigger;

use super::session::{HomeSide, Owner, WorkerPhase};
use super::{rollback_to_statement_start, Cluster, DeferredOp, CONTROL_MSG_BYTES};

impl Cluster {
    // ------------------------------------------------------------------
    // Execution slices
    // ------------------------------------------------------------------

    pub(super) fn run_slice(&mut self, node: usize, tid: usize, ctx: &mut SimCtx<'_, Msg>) {
        let runnable = self.nodes[node]
            .vm
            .thread(tid)
            .map(|t| t.is_runnable())
            .unwrap_or(false);
        if !runnable {
            return; // stale slice: thread parked, finished, or mid-protocol
        }
        let (owner_program, owner_pending) = match self.thread_owner.get(&(node, tid)) {
            Some(Owner::Root(p)) => {
                let program = *p;
                if self.programs[program as usize].done {
                    return; // failed while a slice was in flight (crash)
                }
                if self.programs[program as usize].side.is_frozen() {
                    return; // frozen while the segment executes remotely
                }
                // Policy-driven migration: charge this slice against the
                // program's CPU budget and evaluate armed triggers. A
                // trigger that fires installs a pending plan, so this very
                // slice already runs in stop-at-MSP mode.
                self.programs[program as usize].slices_run += 1;
                self.check_policy_triggers(program, ctx.now());
                (program, self.programs[program as usize].side.plan_pending())
            }
            Some(Owner::Worker(s)) => match self.sessions.get(s) {
                Some(w) => (w.program, w.pending_roam.is_some()),
                None => return,
            },
            // Unowned threads (retired roaming workers) never run.
            None => return,
        };
        let mode = if owner_pending {
            RunMode::StopAtMsp
        } else {
            RunMode::Normal
        };
        let slice = self.slice_ns;
        let instr_before = self.nodes[node].vm.instr_count;
        let (out, spent) = self.nodes[node]
            .vm
            .run(tid, slice, mode)
            .expect("vm run failed");
        let elapsed = self.nodes[node].cfg.scale(spent).max(1);
        // Attribute the slice to the program that owns the thread (root or
        // worker session) and to the node that ran it: with many programs
        // interleaving on shared nodes, a global instruction counter would
        // charge every program for everyone's work.
        let retired = self.nodes[node].vm.instr_count - instr_before;
        self.defer(DeferredOp::AddInstructions(owner_program, retired));
        self.nodes[node].slices += 1;
        self.nodes[node].busy_ns += elapsed;
        // CPU contention (elastic ablations): the *scheduling delay* until
        // this thread runs again stretches with the number of threads
        // competing for this node's CPU, while `busy_ns` above keeps
        // charging uncontended CPU seconds. Off by default, so pool-free
        // scenarios replay bit-identically to the pre-elastic engine.
        let elapsed = if self.cpu_contention {
            elapsed * self.competing_threads(node)
        } else {
            elapsed
        };

        // Finish a handler-protocol restore once the thread executes
        // anything past the last re-established frame (including returning
        // immediately for very short segments).
        if !matches!(out, StepOutcome::Breakpoint { .. }) {
            self.maybe_finish_restore(node, tid, elapsed, ctx);
        }

        match out {
            StepOutcome::Continue => {
                ctx.schedule(elapsed, node, Msg::RunSlice { tid });
            }
            StepOutcome::AtMsp { .. } => self.at_msp(node, tid, elapsed, ctx),
            StepOutcome::HostCall { name, args } => {
                self.host_call(node, tid, &name, &args, elapsed, ctx)
            }
            StepOutcome::ObjectFault(q) => {
                // Only restored workers fault on remote objects; a thread
                // orphaned mid-slice (its session killed by fault
                // injection) has nobody to fetch for.
                let sid = match self.thread_owner.get(&(node, tid)) {
                    Some(Owner::Worker(s)) => *s,
                    _ => return,
                };
                let Some(w) = self.sessions.get(&sid) else {
                    return;
                };
                let (home, program) = (w.home, w.program);
                ctx.send_after(
                    elapsed,
                    node,
                    home,
                    CONTROL_MSG_BYTES,
                    Msg::ObjectRequest {
                        session: sid,
                        requester: node,
                        home_id: q.home_id,
                        program,
                    },
                );
            }
            StepOutcome::ClassMiss(name) => self.class_miss(node, tid, name, elapsed, ctx),
            StepOutcome::Returned(v) => self.thread_returned(node, tid, v, elapsed, ctx),
            StepOutcome::Unhandled(e) => self.thread_faulted(node, tid, e, elapsed, ctx),
            StepOutcome::Breakpoint { .. } => self.restore_breakpoint(node, tid, elapsed, ctx),
        }
    }

    /// Threads genuinely competing for `node`'s CPU: runnable *and* owned
    /// by something that still executes here. A frozen home thread (its
    /// segment runs remotely), a finished program's thread, or an orphaned
    /// worker thread stays `Runnable` in the VM but never receives a
    /// slice, so counting it would charge phantom contention.
    fn competing_threads(&self, node: usize) -> u64 {
        let count = self.nodes[node]
            .vm
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_runnable())
            .filter(|(tid, _)| match self.thread_owner.get(&(node, *tid)) {
                Some(Owner::Root(p)) => {
                    let p = &self.programs[*p as usize];
                    !p.done && !p.side.is_frozen()
                }
                Some(Owner::Worker(s)) => self
                    .sessions
                    .get(s)
                    .is_some_and(|w| !matches!(w.phase, WorkerPhase::Done)),
                None => false,
            })
            .count() as u64;
        count.max(1)
    }

    // ------------------------------------------------------------------
    // Host intrinsics
    // ------------------------------------------------------------------

    pub(super) fn host_call(
        &mut self,
        node: usize,
        tid: usize,
        name: &str,
        args: &[Value],
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let str_arg = |c: &Cluster, i: usize| -> String {
            match args.get(i) {
                Some(Value::Ref(id)) => c.nodes[node]
                    .vm
                    .heap
                    .get_str(*id)
                    .map(str::to_owned)
                    .unwrap_or_default(),
                _ => String::new(),
            }
        };
        match name {
            "clock_ns" => ctx.schedule(
                elapsed,
                node,
                Msg::HostDone {
                    tid,
                    reply: HostReply::Int((ctx.now() + elapsed) as i64),
                },
            ),
            "node_id" => ctx.schedule(
                elapsed,
                node,
                Msg::HostDone {
                    tid,
                    reply: HostReply::Int(node as i64),
                },
            ),
            "sod_move" => {
                let dest = args
                    .first()
                    .and_then(|v| v.as_int().ok())
                    .unwrap_or(node as i64) as usize;
                if dest != node && dest < self.nodes.len() {
                    match self.thread_owner.get(&(node, tid)) {
                        Some(Owner::Root(p)) => {
                            let p = *p;
                            self.programs[p as usize].side =
                                HomeSide::PlanPending(MigrationPlan::top_to(dest, 1));
                        }
                        Some(Owner::Worker(s)) => {
                            let s = *s;
                            self.sessions.get_mut(&s).unwrap().pending_roam = Some(dest);
                        }
                        None => {}
                    }
                }
                ctx.schedule(
                    elapsed,
                    node,
                    Msg::HostDone {
                        tid,
                        reply: HostReply::Int(0),
                    },
                );
            }
            "fs_size" => {
                let path = str_arg(self, 0);
                let meta = self.lookup_file(node, &path);
                let bytes = meta.map(|(m, _)| m.bytes as i64).unwrap_or(-1);
                ctx.schedule(
                    elapsed + 50_000,
                    node,
                    Msg::HostDone {
                        tid,
                        reply: HostReply::Int(bytes),
                    },
                );
            }
            "fs_list" => {
                let dir = str_arg(self, 0);
                // Listing consults the local view plus mounted servers.
                let mut entries = self.nodes[node].fs.list(&dir);
                if let Some(server) = self.nodes[node].fs.serving_node(&dir) {
                    entries = self.peer_fs(server).list(&dir);
                }
                ctx.schedule(
                    elapsed + 200_000,
                    node,
                    Msg::HostDone {
                        tid,
                        reply: HostReply::List(entries),
                    },
                );
            }
            "fs_search" | "fs_read" => {
                let path = str_arg(self, 0);
                let op = if name == "fs_search" {
                    FsOp::Search
                } else {
                    FsOp::Read
                };
                match self.lookup_file(node, &path) {
                    Some((meta, None)) => {
                        // Local file: disk + scan.
                        let disk = self.nodes[node].fs.disk_read_ns(meta.bytes);
                        let scan = self.scan_ns(node, meta.bytes);
                        let reply = match op {
                            FsOp::Search => {
                                HostReply::Int(meta.match_at.map(|p| p as i64).unwrap_or(-1))
                            }
                            FsOp::Read => HostReply::Int(meta.bytes as i64),
                        };
                        ctx.schedule(elapsed + disk + scan, node, Msg::HostDone { tid, reply });
                    }
                    Some((_meta, Some(server))) => {
                        // NFS: request to the serving node; bytes stream back.
                        ctx.send_after(
                            elapsed,
                            node,
                            server,
                            CONTROL_MSG_BYTES,
                            Msg::FsRead {
                                requester: node,
                                tid,
                                path,
                                op,
                            },
                        );
                    }
                    None => ctx.schedule(
                        elapsed,
                        node,
                        Msg::HostDone {
                            tid,
                            reply: HostReply::Int(-1),
                        },
                    ),
                }
            }
            "sock_accept" => {
                if let Some(req) = self.nodes[node].sock_queue.pop_front() {
                    ctx.schedule(
                        elapsed,
                        node,
                        Msg::HostDone {
                            tid,
                            reply: HostReply::Str(req),
                        },
                    );
                } else {
                    self.nodes[node].sock_waiters.push_back(tid);
                }
            }
            "sock_send" => {
                let payload = str_arg(self, 0);
                // Response leaves on the node's uplink; cost modelled as a
                // flat per-byte charge (clients are outside the cluster).
                let cost = 100_000 + payload.len() as u64 * 8;
                ctx.schedule(
                    elapsed + cost,
                    node,
                    Msg::HostDone {
                        tid,
                        reply: HostReply::Int(payload.len() as i64),
                    },
                );
            }
            other => panic!("unknown host intrinsic {other}"),
        }
    }

    /// Resolve a path on `node`: `(meta, Some(server))` for mounted paths.
    fn lookup_file(&self, node: usize, path: &str) -> Option<(crate::fs::FileMeta, Option<usize>)> {
        if let Some(server) = self.nodes[node].fs.serving_node(path) {
            self.peer_fs(server)
                .file(path)
                .cloned()
                .map(|m| (m, Some(server)))
        } else {
            self.nodes[node].fs.file(path).cloned().map(|m| (m, None))
        }
    }

    /// CPU time to scan `bytes` on `node` (I/O-efficiency modelling).
    pub(super) fn scan_ns(&self, node: usize, bytes: u64) -> u64 {
        self.nodes[node]
            .cfg
            .scale(bytes * self.nodes[node].cfg.io_scan_ns_per_byte_x100 / 100)
    }

    /// Serve a remote NFS read: stream the file's bytes to the requester.
    pub(super) fn fs_read(
        &mut self,
        dst: usize,
        requester: usize,
        tid: usize,
        path: String,
        op: FsOp,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let Some(meta) = self.nodes[dst].fs.file(&path).cloned() else {
            ctx.send(
                dst,
                requester,
                CONTROL_MSG_BYTES,
                Msg::FsData {
                    tid,
                    bytes: 0,
                    op,
                    result: HostReply::Int(-1),
                },
            );
            return;
        };
        let disk = self.nodes[dst].fs.disk_read_ns(meta.bytes);
        let result = match op {
            FsOp::Search => HostReply::Int(meta.match_at.map(|p| p as i64).unwrap_or(-1)),
            FsOp::Read => HostReply::Int(meta.bytes as i64),
        };
        ctx.send_after(
            disk,
            dst,
            requester,
            meta.bytes,
            Msg::FsData {
                tid,
                bytes: meta.bytes,
                op,
                result,
            },
        );
    }

    /// File content arrived back at the requester: charge the scan and
    /// resume the parked thread.
    pub(super) fn fs_data(
        &mut self,
        dst: usize,
        tid: usize,
        bytes: u64,
        op: FsOp,
        result: HostReply,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let scan = match op {
            FsOp::Search => self.scan_ns(dst, bytes),
            FsOp::Read => self.scan_ns(dst, bytes) / 4,
        };
        ctx.schedule(scan, dst, Msg::HostDone { tid, reply: result });
    }

    // ------------------------------------------------------------------
    // Class misses during execution
    // ------------------------------------------------------------------

    pub(super) fn class_miss(
        &mut self,
        node: usize,
        tid: usize,
        name: String,
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        match self.thread_owner.get(&(node, tid)) {
            Some(Owner::Root(p)) => {
                // Home: lazy local load from the repository. Any failure is
                // a typed program failure, not an engine abort (fleet
                // members keep running).
                let program = *p;
                let at = ctx.now() + elapsed;
                let Some(class) = self.nodes[node].repo.get(&name).cloned() else {
                    self.fail_program(program, format!("class not found: {name}"), at);
                    return;
                };
                let cost = costs::class_load_ns(self.class_size(&class));
                // Loading only *adds* resolvable names — the VM's class
                // table is append-only, so inline caches warmed by already
                // running threads stay valid (misses are never cached) and
                // no invalidation step exists here.
                if let Err(e) = self.nodes[node].vm.load_class(&class) {
                    self.fail_program(program, format!("class load failed: {e:?}"), at);
                    return;
                }
                if let Err(e) = self.nodes[node].vm.resume_class_loaded(tid) {
                    self.fail_program(program, format!("class-load resume failed: {e:?}"), at);
                    return;
                }
                ctx.schedule(
                    elapsed + self.nodes[node].cfg.scale(cost),
                    node,
                    Msg::RunSlice { tid },
                );
            }
            Some(Owner::Worker(s)) => {
                let sid = *s;
                let (home, program) = {
                    let w = &self.sessions[&sid];
                    (w.home, w.program)
                };
                self.defer(DeferredOp::AddClassesShipped(program, 1));
                ctx.send_after(
                    elapsed,
                    node,
                    home,
                    CONTROL_MSG_BYTES,
                    Msg::ClassRequest {
                        session: sid,
                        requester: node,
                        name,
                        program,
                    },
                );
            }
            // An orphaned thread (session killed under fault injection)
            // has nobody to load for; leave it parked.
            None => {}
        }
    }

    // ------------------------------------------------------------------
    // Thread completion / faults
    // ------------------------------------------------------------------

    pub(super) fn thread_returned(
        &mut self,
        node: usize,
        tid: usize,
        retval: Option<Value>,
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        match self.thread_owner.get(&(node, tid)) {
            Some(Owner::Root(p)) => {
                let program = *p;
                self.finish_program(program, retval, ctx.now() + elapsed);
            }
            Some(Owner::Worker(s)) => {
                let sid = *s;
                self.segment_completed(node, sid, retval, elapsed, ctx);
            }
            None => {}
        }
    }

    pub(super) fn thread_faulted(
        &mut self,
        node: usize,
        tid: usize,
        e: ExceptionInfo,
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        if let Some(Owner::Root(p)) = self.thread_owner.get(&(node, tid)) {
            let program = *p;
            if e.kind == ExKind::OutOfMemory {
                // Exception-driven offload (`Trigger::OnOom`): roll the
                // faulting statement back and push the whole stack to the
                // armed destination, so the allocation retries there.
                let offload = self.programs[program as usize]
                    .triggers
                    .iter_mut()
                    .find(|t| !t.fired && matches!(t.trigger, Trigger::OnOom { .. }))
                    .map(|t| {
                        t.fired = true;
                        match t.trigger {
                            Trigger::OnOom { to } => to,
                            _ => unreachable!(),
                        }
                    });
                if let Some(cloud) = offload {
                    let height = self.nodes[node].vm.thread(tid).unwrap().frames.len();
                    rollback_to_statement_start(&mut self.nodes[node].vm, tid);
                    self.programs[program as usize].side =
                        HomeSide::PlanPending(MigrationPlan::top_to(cloud, height));
                    ctx.schedule(elapsed, node, Msg::RunSlice { tid });
                    return;
                }
            }
            self.fail_program(
                program,
                format!("unhandled {:?}: {}", e.kind, e.message),
                ctx.now() + elapsed,
            );
        } else if let Some(Owner::Worker(s)) = self.thread_owner.get(&(node, tid)) {
            // Retire the session along with the program, so stale events
            // addressed to it cannot wake the dead worker state.
            let sid = *s;
            self.fail_session(
                sid,
                format!("worker fault {:?}: {}", e.kind, e.message),
                ctx.now() + elapsed,
            );
        }
    }

    pub(super) fn finish_program(&mut self, program: ProgramId, retval: Option<Value>, at: u64) {
        let p = &mut self.programs[program as usize];
        if p.done {
            return;
        }
        p.done = true;
        p.report.finished_at_ns = at;
        p.report.result = retval.and_then(|v| match v {
            Value::Int(i) => Some(i),
            Value::Num(n) => Some(n as i64),
            _ => None,
        });
        self.snapshot_stack_height(program);
    }

    pub(super) fn fail_program(&mut self, program: ProgramId, error: String, at: u64) {
        let p = &mut self.programs[program as usize];
        if p.done {
            return;
        }
        p.done = true;
        p.error = Some(error);
        p.report.finished_at_ns = at;
        // Failure reports carry the same final stats as successes
        // (`instructions` accrues per slice), so fleet aggregates over
        // mixed outcomes stay comparable.
        self.snapshot_stack_height(program);
    }

    /// Record the home thread's maximum stack height (Table I `h`) on the
    /// program's report, shared by the success and failure paths.
    fn snapshot_stack_height(&mut self, program: ProgramId) {
        let (home, home_tid) = {
            let p = &self.programs[program as usize];
            (p.home, p.home_tid)
        };
        if let Ok(t) = self.nodes[home].vm.thread(home_tid) {
            self.programs[program as usize].report.max_stack_height = t.max_height;
        }
    }
}
