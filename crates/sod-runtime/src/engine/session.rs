//! Typed lifecycle state machines shared by the protocol modules.
//!
//! Both sides of a migration are modelled as explicit states instead of
//! loose flag pairs:
//!
//! * [`HomeSide`] — the *home* thread of a program: running normally,
//!   running in stop-at-MSP mode with a plan installed, or frozen while
//!   its top segment executes remotely. The three states are mutually
//!   exclusive (a frozen thread cannot install a plan: `MigrateNow` is
//!   rejected while frozen, policy triggers skip non-idle programs, and
//!   `sod_move` only executes on a running thread).
//! * [`WorkerPhase`] — a migrated segment at its destination: waiting for
//!   classes, re-establishing frames, waiting for a chained return value,
//!   running, reconciling a flush, or done.

use std::collections::HashSet;

use bytes::Bytes;
use sod_vm::capture::{CapturedState, CapturedValue};

use crate::metrics::MigrationTimings;
use crate::msg::{MigrationPlan, ProgramId, ReturnTarget, SegmentInfo, SessionId};

/// Home-side lifecycle of a program's root thread.
#[derive(Clone, Debug, Default)]
pub(super) enum HomeSide {
    /// Executing normally at home.
    #[default]
    Idle,
    /// A migration plan is installed; the thread runs in stop-at-MSP mode
    /// and capture happens at the next migration-safe point.
    PlanPending(MigrationPlan),
    /// The stack's top segment executes remotely; the home stack is frozen
    /// and stale run slices must not wake it.
    Frozen,
}

impl HomeSide {
    /// Whether a plan is installed (the thread should stop at MSPs).
    pub(super) fn plan_pending(&self) -> bool {
        matches!(self, HomeSide::PlanPending(_))
    }

    /// Whether the home stack is frozen under a remote segment.
    pub(super) fn is_frozen(&self) -> bool {
        matches!(self, HomeSide::Frozen)
    }

    /// Take the installed plan, leaving the side [`HomeSide::Idle`].
    pub(super) fn take_plan(&mut self) -> Option<MigrationPlan> {
        match std::mem::take(self) {
            HomeSide::PlanPending(plan) => Some(plan),
            other => {
                *self = other;
                None
            }
        }
    }
}

/// Class-name seeds for code bundling, extracted from a captured state
/// *before* it is encoded, so bundle selection (including the ship-time
/// re-bundle of pool-routed segments) never needs to re-decode the frame.
#[derive(Clone)]
pub(super) struct BundleSeeds {
    /// Class of the segment's top frame (the paper's eager-bundle unit).
    pub(super) top: String,
    /// Classes of every shipped frame (bundle-reachable closure seeds).
    pub(super) frame_classes: Vec<String>,
    /// Classes owning the shipped statics.
    pub(super) static_classes: Vec<String>,
}

impl BundleSeeds {
    pub(super) fn of(state: &CapturedState) -> Self {
        BundleSeeds {
            top: state
                .frames
                .last()
                .expect("non-empty segment")
                .class
                .clone(),
            frame_classes: state.frames.iter().map(|f| f.class.clone()).collect(),
            static_classes: state.statics.iter().map(|s| s.class.clone()).collect(),
        }
    }
}

/// A captured segment staged at the home node, waiting for the freeze
/// timer ([`crate::msg::Msg::CaptureDone`]) before shipping. The state is
/// already encoded — `frame.len()` *is* the state byte metric — so `Clone`
/// (chaos-enabled runs retain the shipment for deadline-driven re-ships,
/// see [`crate::engine::RetryPolicy::Retry`]) copies a refcount, not the
/// captured stack.
#[derive(Clone)]
pub(super) struct StagedSegment {
    pub(super) dest: usize,
    pub(super) info: SegmentInfo,
    /// The state's wire frame, serialized exactly once at capture time.
    pub(super) frame: Bytes,
    /// Bundle seeds for (re-)selecting the code bundle without decoding.
    pub(super) seeds: BundleSeeds,
    pub(super) bundled: Vec<std::sync::Arc<sod_vm::class::ClassDef>>,
    pub(super) class_bytes: u64,
    pub(super) capture_ns: u64,
}

/// Worker-session lifecycle at the destination node.
pub(super) enum WorkerPhase {
    /// Classes referenced by the segment are still in flight.
    AwaitClasses {
        missing: HashSet<String>,
    },
    /// The breakpoint + `InvalidStateException` handler protocol is
    /// re-establishing frames; `restored` counts finished frames.
    Restoring {
        restored: usize,
    },
    /// Restore-ahead workflow segment awaiting the return value of the
    /// segment above.
    Waiting,
    Running,
    /// Roaming: flush sent, awaiting id assignments before capture.
    AwaitRoamAck {
        dest: usize,
    },
    /// Completion flush with ack (reference-valued return), awaiting ids.
    AwaitCompleteAck {
        retval: Option<CapturedValue>,
    },
    Done,
}

/// One migrated segment executing (or being restored) at a node.
pub(super) struct WorkerSession {
    pub(super) program: ProgramId,
    pub(super) node: usize,
    pub(super) home: usize,
    pub(super) tid: usize,
    pub(super) return_to: ReturnTarget,
    pub(super) nframes: usize,
    /// See [`SegmentInfo::home_pop_frames`].
    pub(super) home_pop_frames: usize,
    pub(super) wait_for_return: bool,
    pub(super) state: CapturedState,
    pub(super) phase: WorkerPhase,
    pub(super) timings: MigrationTimings,
    pub(super) arrived_at: u64,
    /// Post-arrival time spent waiting for on-demand classes (excluded
    /// from restore time, like the paper's transfer accounting).
    pub(super) class_wait_ns: u64,
    pub(super) pending_roam: Option<usize>,
    /// Whether this session's [`MigrationTimings`] reached the program
    /// report (set when restore completes). A session that dies first —
    /// crash, supersession, stuck restore — still holds shipped state
    /// bytes nothing accounted for; the report-time sweep credits them to
    /// the destination's lost bucket so conservation holds under chaos.
    pub(super) recorded: bool,
}

/// Who owns a VM thread on a node.
pub(super) enum Owner {
    Root(ProgramId),
    Worker(SessionId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_side_transitions() {
        let mut side = HomeSide::default();
        assert!(!side.plan_pending() && !side.is_frozen());
        assert!(side.take_plan().is_none());

        side = HomeSide::PlanPending(MigrationPlan::top_to(1, 1));
        assert!(side.plan_pending());
        let plan = side.take_plan().expect("plan installed");
        assert_eq!(plan, MigrationPlan::top_to(1, 1));
        assert!(matches!(side, HomeSide::Idle));

        side = HomeSide::Frozen;
        assert!(side.is_frozen());
        // Taking a plan from a frozen side is a no-op that preserves it.
        assert!(side.take_plan().is_none());
        assert!(side.is_frozen());
    }
}
