//! The SODEE engine: nodes, migration managers, and object managers wired
//! into the discrete-event simulator.
//!
//! One [`Cluster`] implements [`sod_net::World`]; the driver ([`SodSim`])
//! injects `StartProgram` / `MigrateNow` / `ClientRequest` events and runs
//! the simulation to idle. Execution proceeds in bounded virtual-time
//! *slices* per thread, so message arrivals (migration requests, object
//! replies) interleave with guest execution deterministically.
//!
//! ## Protocol modules
//!
//! The engine is split along the paper's protocol boundaries; this module
//! holds the shared state ([`Cluster`], [`Program`], [`SodSim`]) and the
//! message dispatch, while each protocol lives in its own submodule:
//!
//! * `exec.rs` — the slice loop: running threads, host intrinsics,
//!   policy-trigger evaluation, program completion/failure;
//! * `migrate.rs` — home-side capture, segment staging, cache-aware
//!   code bundling ([`CodeShipping`]), class serving, and roaming hops;
//! * `restore.rs` — segment arrival, on-demand class waits, and both
//!   restore protocols (breakpoint/handler and exact direct);
//! * `objects.rs` — the object manager: on-demand fetches, dirty
//!   write-back flushes, temp-id assignment;
//! * `completion.rs` — segment returns, workflow chaining, and
//!   `ForceEarlyReturn` resumption at home;
//! * `session.rs` — the typed `HomeSide`/`WorkerPhase` state
//!   machines the other modules share.
//!
//! ## Migration flow (paper §III)
//!
//! 1. `MigrateNow` sets a pending plan; the thread stops at the next
//!    migration-safe point.
//! 2. The migration manager captures the top frames via the tooling
//!    interface (JVMTI costs, or the portable serialization path when the
//!    destination lacks JVMTI), splitting them into the plan's segments —
//!    one freeze, concurrent shipping (Fig. 1c).
//! 3. Each destination loads missing classes (the bundled classes
//!    first, the rest on demand), then re-establishes the frames: the
//!    breakpoint + `InvalidStateException` + restoration-handler
//!    protocol on JVMTI nodes, or an exact direct restore for
//!    restore-ahead workflow segments and no-JVMTI devices.
//! 4. Object faults travel to the *home* node's object manager, which
//!    serializes the master copy back (heap-on-demand).
//! 5. When a segment's last frame pops, dirty/new objects flush home and
//!    the return value routes to the next segment (workflow) or back home,
//!    where `ForceEarlyReturn` pops the stale frames and execution resumes.
//!
//! ## Code shipping & the peer class cache
//!
//! Every node remembers which classes each peer provably holds (learned
//! from the `State` bundles and `ClassReply` messages it sent — see
//! [`crate::node::Node::peer_classes`]). Bundling is destination-aware:
//! under the default [`CodeShipping::BundleTop`] policy a class the peer
//! is known to hold is *not* re-shipped, which removes the redundant
//! class bytes that every warm-worker migration used to pay. Classes the
//! tracker cannot prove present still arrive via the on-demand
//! `ClassRequest` path, so skipping is always safe.

mod completion;
mod elastic;
mod exec;
mod fault;
mod migrate;
mod objects;
mod pool;
mod restore;
mod session;

pub use fault::{RetryPolicy, DEFAULT_MIGRATION_TIMEOUT_NS};
pub use pool::{PoolSpec, ScalePolicy, DEFAULT_POOL_TICK_NS, POOL_DEST_BASE};

use std::collections::{HashMap, VecDeque};
use std::ops::{Index, IndexMut};
use std::sync::Arc;

use sod_net::{ChaosPlan, Scheduler, ShardBatch, ShardLog, Sim, SimCtx, Topology, World};
use sod_vm::class::ClassDef;
use sod_vm::value::{ObjId, Value};
use sod_vm::wire::BufferPool;

use crate::fs::SimFs;
use crate::metrics::{
    ChaosCounters, ClusterReport, MigrationTimings, NetBytes, NodeUtilization, RunReport,
};
use crate::msg::{HostReply, MigrationPlan, Msg, ProgramId, SessionId};
use crate::node::{Node, NodeConfig};
use crate::trigger::{ArmedTrigger, Trigger};

use session::{HomeSide, Owner, StagedSegment, WorkerPhase, WorkerSession};

/// Worker-created objects are flushed home under temporary ids at/above
/// this base until the home node assigns master ids.
pub const TEMP_ID_BASE: ObjId = 1 << 30;

/// Default execution slice: how much virtual time a thread runs per event.
pub const DEFAULT_SLICE_NS: u64 = 100_000; // 100 µs

/// Payload size of small control messages (requests, acks).
pub(crate) const CONTROL_MSG_BYTES: u64 = 128;

/// On-demand fetch policy (ablation axis; the paper's default is shallow
/// per-object fetching).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FetchPolicy {
    /// Fetch exactly the missed object.
    #[default]
    Shallow,
    /// Fetch the transitive closure of the missed object (eager subgraph).
    Deep,
}

/// How class files travel with a migrating segment (ablation axis for the
/// code-shipping experiments; plumbed through `Scenario::code_shipping`).
///
/// All policies are *correct* — anything not bundled ships later through
/// the on-demand `ClassRequest` path — they only trade eager bytes against
/// extra round trips.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CodeShipping {
    /// The paper's default: bundle the top frame's class with the state,
    /// unless the destination is known to hold it already (peer-cache
    /// tracking skips provably redundant copies).
    #[default]
    BundleTop,
    /// Ship nothing eagerly; every class goes on demand.
    Never,
    /// Bundle every class statically reachable from the shipped frames
    /// (transitive `referenced_classes` closure over the sender's repo),
    /// minus those the destination is known to hold.
    BundleReachable,
    /// The pre-cache baseline: bundle the top frame's class with *every*
    /// migration, even when the destination provably has it. Kept for the
    /// codecache ablation; never skips.
    BundleAlways,
}

/// Sparse, ownership-audited storage for per-node state.
///
/// The master cluster holds every slot. During a parallel safe-horizon
/// batch (see [`sod_net::Scheduler::Parallel`]), `split_shards` *moves*
/// each drained shard's node out into that shard's worker view, leaving
/// `None` behind; indexing an absent slot — a handler reaching across
/// shard boundaries — panics with an "ownership auditor" message instead
/// of silently racing. Handler code indexes `self.nodes[i]` unchanged.
pub struct Nodes {
    slots: Vec<Option<Node>>,
}

impl Nodes {
    fn from_vec(nodes: Vec<Node>) -> Self {
        Nodes {
            slots: nodes.into_iter().map(Some).collect(),
        }
    }

    fn hollow(len: usize) -> Self {
        Nodes {
            slots: (0..len).map(|_| None).collect(),
        }
    }

    /// Fleet size (slot count — includes slots on loan to shard views).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    pub fn push(&mut self, node: Node) {
        self.slots.push(Some(node));
    }

    /// Whether this view currently owns node `i`'s state.
    pub(super) fn owns(&self, i: usize) -> bool {
        self.slots.get(i).is_some_and(Option::is_some)
    }

    fn take(&mut self, i: usize) -> Option<Node> {
        self.slots.get_mut(i).and_then(Option::take)
    }

    fn put(&mut self, i: usize, node: Node) {
        self.slots[i] = Some(node);
    }

    /// Iterate every node. Panics on a split-out slot, so it is only
    /// callable on the master view (reports, chaos hooks).
    pub fn iter(&self) -> impl Iterator<Item = &Node> {
        self.slots.iter().enumerate().map(|(i, s)| {
            s.as_ref().unwrap_or_else(|| {
                panic!("ownership auditor: iterated node {i} while it is loaned to a shard view")
            })
        })
    }
}

impl Index<usize> for Nodes {
    type Output = Node;
    fn index(&self, i: usize) -> &Node {
        self.slots[i].as_ref().unwrap_or_else(|| {
            panic!(
                "ownership auditor: touched node {i} from a shard view that does not own it \
                 (cross-shard access while draining in parallel)"
            )
        })
    }
}

impl IndexMut<usize> for Nodes {
    fn index_mut(&mut self, i: usize) -> &mut Node {
        self.slots[i].as_mut().unwrap_or_else(|| {
            panic!(
                "ownership auditor: touched node {i} from a shard view that does not own it \
                 (cross-shard access while draining in parallel)"
            )
        })
    }
}

/// Sparse, ownership-audited storage for programs, partitioned by home
/// node during a parallel batch (a program's mutable record lives with
/// the shard that hosts its root thread). Same auditing contract as
/// [`Nodes`].
pub struct Programs {
    slots: Vec<Option<Program>>,
}

impl Programs {
    fn hollow(len: usize) -> Self {
        Programs {
            slots: (0..len).map(|_| None).collect(),
        }
    }

    /// Registered program count (includes programs on loan to views).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    pub fn push(&mut self, p: Program) {
        self.slots.push(Some(p));
    }

    pub(super) fn owns(&self, program: ProgramId) -> bool {
        self.slots
            .get(program as usize)
            .is_some_and(Option::is_some)
    }

    fn home_of(&self, i: usize) -> Option<usize> {
        self.slots.get(i).and_then(|s| s.as_ref()).map(|p| p.home)
    }

    fn take(&mut self, i: usize) -> Option<Program> {
        self.slots.get_mut(i).and_then(Option::take)
    }

    fn put(&mut self, i: usize, p: Program) {
        self.slots[i] = Some(p);
    }

    /// Iterate every program (master view only — see [`Nodes::iter`]).
    pub fn iter(&self) -> impl Iterator<Item = &Program> {
        self.slots.iter().enumerate().map(|(i, s)| {
            s.as_ref().unwrap_or_else(|| {
                panic!("ownership auditor: iterated program {i} while it is loaned to a shard view")
            })
        })
    }
}

impl Index<usize> for Programs {
    type Output = Program;
    fn index(&self, i: usize) -> &Program {
        self.slots[i].as_ref().unwrap_or_else(|| {
            panic!(
                "ownership auditor: touched program {i} from a shard view that does not own it \
                 (cross-shard access while draining in parallel)"
            )
        })
    }
}

impl IndexMut<usize> for Programs {
    fn index_mut(&mut self, i: usize) -> &mut Program {
        self.slots[i].as_mut().unwrap_or_else(|| {
            panic!(
                "ownership auditor: touched program {i} from a shard view that does not own it \
                 (cross-shard access while draining in parallel)"
            )
        })
    }
}

/// Which side of a parallel batch this `Cluster` value is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    /// The real cluster: owns everything, applies effects immediately.
    Master,
    /// A per-shard worker view created by `split_shards`: owns exactly
    /// one node (and the programs homed there); `deliveries` counts the
    /// messages it has dispatched this batch, tagging deferred ops so the
    /// merge can apply them at the matching point of the canonical order.
    Worker { shard: usize, deliveries: u64 },
}

/// Immutable per-node data shared with every worker view ([`Arc`]), so a
/// shard can read a *peer's* static configuration without owning it:
/// node profiles, file-system trees (set up before the run), and the
/// build-time class repositories. Snapshotted lazily at the first
/// parallel batch; sound because none of these grow at a program's home
/// after deployment (mid-run repo growth happens only at worker nodes,
/// which resolve their own classes live).
struct Shared {
    cfgs: Vec<NodeConfig>,
    fss: Vec<SimFs>,
    repos: Vec<HashMap<String, Arc<ClassDef>>>,
}

/// A cross-shard effect recorded by a worker view during a parallel
/// batch, applied by the master at the exact point of the canonical
/// `(time, seq, dst)` merge where a sequential run would have applied it.
/// Counter ops commute, but applying *all* of them in merged delivery
/// order keeps even the order-sensitive ones (`PushMigration`,
/// first-wins `FailProgram`) bit-identical.
#[derive(Debug)]
enum DeferredOp {
    /// `report.instructions += n` (slice retirement for a foreign-homed
    /// program running on this shard's node).
    AddInstructions(ProgramId, u64),
    /// `report.classes_shipped += n` (on-demand class requests issued).
    AddClassesShipped(ProgramId, u64),
    /// `report.class_bytes += n`.
    AddClassBytes(ProgramId, u64),
    /// `report.object_bytes += n`.
    AddObjectBytes(ProgramId, u64),
    /// One object fault resolved: `object_faults += 1`, `object_bytes += n`.
    AddObjectFault(ProgramId, u64),
    /// `report.migrations.push(t)` (restore completed on this shard).
    PushMigration(ProgramId, MigrationTimings),
    /// Typed program failure (first one wins; `fail_program` guards).
    FailProgram {
        program: ProgramId,
        error: String,
        at: u64,
    },
    /// Mark a foreign session `Done` so stale events cannot wake it.
    RetireSession(SessionId),
    /// A roam replaced `old` with `new` in the episode's valid set.
    ReplaceValidSession {
        program: ProgramId,
        old: SessionId,
        new: SessionId,
    },
}

/// A registered program (one root thread).
pub struct Program {
    pub home: usize,
    pub home_tid: usize,
    pub class: String,
    pub method: String,
    pub args: Vec<Value>,
    pub report: RunReport,
    pub done: bool,
    /// Whether the root thread has been spawned (`StartProgram`
    /// delivered). A crash only fails *started* programs — one whose
    /// launch lies beyond a restart must survive the earlier crash.
    pub started: bool,
    pub error: Option<String>,
    pub fetch_policy: FetchPolicy,
    /// Armed migration policies, evaluated at migration-safe points (see
    /// [`crate::trigger`]). `Trigger::OnOom` generalizes the old
    /// `oom_offload_to` field: exception-driven offload is
    /// `ArmedTrigger::new(Trigger::OnOom { to })`.
    pub triggers: Vec<ArmedTrigger>,
    /// Execution slices consumed by the root thread on its home node
    /// (the `OnCpuSliceBudget` measure).
    pub slices_run: u64,
    /// Home-side migration state machine (idle / plan pending / frozen).
    side: HomeSide,
    staged: Vec<StagedSegment>,
    /// Monotonic shipping-attempt stamp: bumped whenever segments leave
    /// home (initial shipment or re-ship), matched against
    /// [`Msg::MigrationTimeout`] so superseded deadlines are inert.
    attempt: u32,
    /// Shipping attempts of the *current* episode (reset at capture),
    /// bounded by [`RetryPolicy::Retry`]'s `max_attempts`.
    episode_attempts: u32,
    /// Session ids of the outstanding episode (roams replace their entry).
    /// Under chaos, state arrivals and home returns from sessions not in
    /// this set are stale — superseded by a retry or fallback — and drop.
    valid_sessions: Vec<SessionId>,
    /// Retained copy of the shipped segments, kept only under
    /// [`RetryPolicy::Retry`] with chaos enabled, so a deadline can
    /// re-ship without re-capturing (the home frames never re-freeze).
    shipped: Vec<StagedSegment>,
}

/// The cluster: all nodes plus global program/session bookkeeping.
///
/// Under [`sod_net::Scheduler::Parallel`] the same type doubles as a
/// per-shard *worker view* (see `Role`): `split_shards` moves one
/// node's state — and the sessions/programs living there — into a view
/// that drains its safe-horizon batch on a worker thread, and
/// `absorb_shard` moves everything back. Cross-shard reads go through
/// the immutable `Shared` snapshot; cross-shard writes become
/// `DeferredOp`s replayed by the master during the canonical merge.
pub struct Cluster {
    pub nodes: Nodes,
    pub programs: Programs,
    sessions: HashMap<SessionId, WorkerSession>,
    thread_owner: HashMap<(usize, usize), Owner>,
    /// Per-node session-id allocation counters (see [`Cluster::alloc_session`]).
    next_session: Vec<u64>,
    pub slice_ns: u64,
    /// Cluster-wide code-shipping policy (see [`CodeShipping`]).
    pub code_shipping: CodeShipping,
    /// Memoized `ClassDef::referenced_classes` results, keyed by class
    /// name (class files are immutable once deployed, and names are
    /// cluster-unique): `BundleReachable` walks the reference closure on
    /// every migration, and rescanning every method body each time would
    /// put an O(code size) pass on the migration hot path.
    class_refs: HashMap<String, Vec<String>>,
    /// Memoized `class_wire_bytes` results, same immutability argument as
    /// `class_refs`: the streaming size count walks every method body, so
    /// run it once per class name, not per migration/class-serve.
    class_sizes: HashMap<String, u64>,
    /// Encode-buffer free list shared by every wire-path encoder (state
    /// captures, object replies, flush batches). Shared across shard views
    /// by `Arc`: pool state never influences encoded bytes, so reuse
    /// cannot perturb determinism.
    buf_pool: Arc<BufferPool>,
    /// Whether a fault-injection plan is armed on the driving simulator.
    /// Gates every chaos-only code path (deadline timers, stale-message
    /// guards), so fault-free runs are event-for-event identical to the
    /// pre-chaos engine.
    pub chaos_enabled: bool,
    /// Recovery policy when a migration misses its deadline (chaos only).
    pub retry_policy: RetryPolicy,
    /// End-to-end deadline armed per shipping attempt (chaos only).
    pub migration_timeout_ns: u64,
    /// Fault-injection tallies, surfaced on the [`ClusterReport`].
    chaos: ChaosCounters,
    /// Elastic node pools (see `engine/pool.rs`); empty when the scenario
    /// declares none, keeping pool-free runs event-for-event identical to
    /// the pre-elastic engine.
    pools: Vec<pool::PoolRuntime>,
    /// Model per-node CPU contention: a slice's *scheduling delay* is
    /// multiplied by the number of runnable threads sharing the node,
    /// while `busy_ns` keeps charging uncontended CPU time. Off by
    /// default — existing scenarios are bit-identical to the pre-elastic
    /// engine; elastic ablations turn it on so added capacity actually
    /// buys latency.
    pub cpu_contention: bool,
    /// Master or per-shard worker view (see [`Role`]).
    role: Role,
    /// Immutable cross-shard data, built once at the first parallel batch.
    shared: Option<Arc<Shared>>,
    /// Worker side: cross-shard effects recorded during the batch, each
    /// tagged with the 0-based index of the delivery that produced it.
    deferred_out: Vec<(u64, DeferredOp)>,
    /// Master side: per-shard queues of deferred ops from the last batch,
    /// popped by `apply_deferred` as the merge replays deliveries.
    deferred_in: Vec<VecDeque<(u64, DeferredOp)>>,
}

impl Cluster {
    pub fn new(nodes: Vec<Node>) -> Self {
        Cluster {
            nodes: Nodes::from_vec(nodes),
            programs: Programs { slots: Vec::new() },
            sessions: HashMap::new(),
            thread_owner: HashMap::new(),
            next_session: Vec::new(),
            slice_ns: DEFAULT_SLICE_NS,
            code_shipping: CodeShipping::default(),
            class_refs: HashMap::new(),
            class_sizes: HashMap::new(),
            buf_pool: Arc::new(BufferPool::new()),
            chaos_enabled: false,
            retry_policy: RetryPolicy::default(),
            migration_timeout_ns: DEFAULT_MIGRATION_TIMEOUT_NS,
            chaos: ChaosCounters::default(),
            pools: Vec::new(),
            cpu_contention: false,
            role: Role::Master,
            shared: None,
            deferred_out: Vec::new(),
            deferred_in: Vec::new(),
        }
    }

    /// Register a program rooted at `home`.
    pub fn add_program(
        &mut self,
        home: usize,
        class: impl Into<String>,
        method: impl Into<String>,
        args: Vec<Value>,
    ) -> ProgramId {
        self.programs.push(Program {
            home,
            home_tid: usize::MAX,
            class: class.into(),
            method: method.into(),
            args,
            report: RunReport::default(),
            done: false,
            started: false,
            error: None,
            fetch_policy: FetchPolicy::Shallow,
            triggers: Vec::new(),
            slices_run: 0,
            side: HomeSide::Idle,
            staged: Vec::new(),
            attempt: 0,
            episode_attempts: 0,
            valid_sessions: Vec::new(),
            shipped: Vec::new(),
        });
        (self.programs.len() - 1) as ProgramId
    }

    /// Arm a migration policy on `program` (evaluated at migration-safe
    /// points; see [`crate::trigger`]).
    pub fn arm_trigger(&mut self, program: ProgramId, trigger: ArmedTrigger) {
        self.programs[program as usize].triggers.push(trigger);
    }

    /// Evaluate the program's armed policy triggers against its current
    /// counters; the first satisfied trigger installs its plan (one
    /// migration at a time — the rest re-evaluate after control returns).
    fn check_policy_triggers(&mut self, program: ProgramId, now: u64) {
        let p = &mut self.programs[program as usize];
        if p.done || !matches!(p.side, HomeSide::Idle) {
            return;
        }
        let faults = p.report.object_faults;
        let slices = p.slices_run;
        for t in p.triggers.iter_mut().filter(|t| !t.fired) {
            let satisfied = match t.trigger {
                Trigger::At(ns) => now >= ns,
                // OnOom fires where the exception surfaces, not here.
                Trigger::OnOom { .. } => false,
                Trigger::OnObjectFaults { threshold, .. } => faults >= threshold,
                Trigger::OnCpuSliceBudget { slices: budget, .. } => slices >= budget,
            };
            if !satisfied {
                continue;
            }
            let Some(plan) = t.effective_plan() else {
                // At armed without a plan: nowhere to go. Retire it so the
                // dead trigger is not re-walked on every future slice.
                t.fired = true;
                continue;
            };
            t.fired = true;
            p.side = HomeSide::PlanPending(plan);
            return;
        }
    }

    /// Mint a session id for a session created *at* `node` (the handler's
    /// destination). Ids are striped — high half names the node, low half
    /// counts its allocations — so shard views draining in parallel mint
    /// exactly the ids a sequential run would, with no shared counter.
    /// Deterministic across schedulers because each node's deliveries run
    /// in the same canonical order under all of them.
    fn alloc_session(&mut self, node: usize) -> SessionId {
        if let Role::Worker { shard, .. } = self.role {
            assert_eq!(
                node, shard,
                "ownership auditor: shard {shard} allocated a session at node {node} \
                 while draining in parallel"
            );
        }
        if self.next_session.len() <= node {
            self.next_session.resize(node + 1, 0);
        }
        let c = &mut self.next_session[node];
        *c += 1;
        ((node as u64 + 1) << 32) | *c
    }

    /// A peer node's profile: live when this view owns the node (always,
    /// sequentially), else from the immutable snapshot.
    fn peer_cfg(&self, node: usize) -> &NodeConfig {
        if self.nodes.owns(node) {
            &self.nodes[node].cfg
        } else {
            let shared = self.shared.as_ref().unwrap_or_else(|| {
                panic!("ownership auditor: read node {node}'s config with no shared snapshot")
            });
            &shared.cfgs[node]
        }
    }

    /// A peer node's simulated filesystem (trees are fixed after scenario
    /// setup): live when owned, else from the snapshot.
    fn peer_fs(&self, node: usize) -> &SimFs {
        if self.nodes.owns(node) {
            &self.nodes[node].fs
        } else {
            let shared = self.shared.as_ref().unwrap_or_else(|| {
                panic!("ownership auditor: read node {node}'s fs with no shared snapshot")
            });
            &shared.fss[node]
        }
    }

    /// Record a cross-shard effect. On the master (or when this view owns
    /// the target) the op applies immediately — sequential runs take this
    /// path for every op, so they are byte-for-byte the old engine. A
    /// worker view that does not own the target queues the op, tagged with
    /// the current delivery index, for the master's merge to replay.
    fn defer(&mut self, op: DeferredOp) {
        let owned = match &op {
            DeferredOp::AddInstructions(p, _)
            | DeferredOp::AddClassesShipped(p, _)
            | DeferredOp::AddClassBytes(p, _)
            | DeferredOp::AddObjectBytes(p, _)
            | DeferredOp::AddObjectFault(p, _)
            | DeferredOp::PushMigration(p, _)
            | DeferredOp::FailProgram { program: p, .. }
            | DeferredOp::ReplaceValidSession { program: p, .. } => self.programs.owns(*p),
            // Sessions are never removed from the map, so "absent" can
            // only mean "owned by another shard this batch".
            DeferredOp::RetireSession(sid) => self.sessions.contains_key(sid),
        };
        if owned {
            self.apply_op(op);
        } else {
            let Role::Worker { deliveries, .. } = self.role else {
                panic!("master deferred an op for state it does not own: {op:?}");
            };
            self.deferred_out.push((deliveries - 1, op));
        }
    }

    fn apply_op(&mut self, op: DeferredOp) {
        match op {
            DeferredOp::AddInstructions(p, n) => {
                self.programs[p as usize].report.instructions += n;
            }
            DeferredOp::AddClassesShipped(p, n) => {
                self.programs[p as usize].report.classes_shipped += n;
            }
            DeferredOp::AddClassBytes(p, n) => {
                self.programs[p as usize].report.class_bytes += n;
            }
            DeferredOp::AddObjectBytes(p, n) => {
                self.programs[p as usize].report.object_bytes += n;
            }
            DeferredOp::AddObjectFault(p, bytes) => {
                let report = &mut self.programs[p as usize].report;
                report.object_faults += 1;
                report.object_bytes += bytes;
            }
            DeferredOp::PushMigration(p, t) => {
                self.programs[p as usize].report.migrations.push(t);
            }
            DeferredOp::FailProgram { program, error, at } => {
                self.fail_program(program, error, at);
            }
            DeferredOp::RetireSession(sid) => {
                if let Some(w) = self.sessions.get_mut(&sid) {
                    w.phase = WorkerPhase::Done;
                }
            }
            DeferredOp::ReplaceValidSession { program, old, new } => {
                let p = &mut self.programs[program as usize];
                if let Some(slot) = p.valid_sessions.iter_mut().find(|s| **s == old) {
                    *slot = new;
                }
            }
        }
    }

    /// Mark a session `Done` wherever it lives: locally if owned, else via
    /// a deferred [`DeferredOp::RetireSession`]. Used at cross-shard
    /// failure sites where the serving node cannot read the session.
    fn retire_session(&mut self, session: SessionId) {
        self.defer(DeferredOp::RetireSession(session));
    }

    /// Build the immutable cross-shard snapshot (first parallel batch
    /// only). Sound because configs are fixed at construction, fs trees
    /// at scenario setup, and the class repos a foreign shard may consult
    /// (program homes — see `lookup_class`) are static after deployment.
    fn ensure_shared(&mut self) {
        if self.shared.is_some() {
            return;
        }
        let mut cfgs = Vec::with_capacity(self.nodes.len());
        let mut fss = Vec::with_capacity(self.nodes.len());
        let mut repos = Vec::with_capacity(self.nodes.len());
        for n in self.nodes.iter() {
            cfgs.push(n.cfg.clone());
            fss.push(n.fs.clone());
            repos.push(n.repo.clone());
        }
        self.shared = Some(Arc::new(Shared { cfgs, fss, repos }));
    }

    /// Carve per-shard worker views out of the master: each view owns its
    /// shard's node, the programs homed there, the sessions hosted there,
    /// and that node's thread/session bookkeeping. Everything else stays
    /// behind (hollow slots), so any cross-shard touch trips an auditor.
    fn split_shards(&mut self, shards: &[usize]) -> Vec<Cluster> {
        let nnodes = self.nodes.len();
        let nprogs = self.programs.len();
        if self.next_session.len() < nnodes {
            self.next_session.resize(nnodes, 0);
        }
        shards
            .iter()
            .map(|&s| {
                let mut nodes = Nodes::hollow(nnodes);
                if let Some(n) = self.nodes.take(s) {
                    nodes.put(s, n);
                }
                let mut programs = Programs::hollow(nprogs);
                for pid in 0..nprogs {
                    if self.programs.home_of(pid) == Some(s) {
                        if let Some(p) = self.programs.take(pid) {
                            programs.put(pid, p);
                        }
                    }
                }
                let session_ids: Vec<SessionId> = self
                    .sessions
                    .iter()
                    .filter(|(_, w)| w.node == s)
                    .map(|(sid, _)| *sid)
                    .collect();
                let sessions = session_ids
                    .into_iter()
                    .map(|sid| (sid, self.sessions.remove(&sid).unwrap()))
                    .collect();
                let owner_keys: Vec<(usize, usize)> = self
                    .thread_owner
                    .keys()
                    .filter(|(node, _)| *node == s)
                    .copied()
                    .collect();
                let thread_owner = owner_keys
                    .into_iter()
                    .map(|k| (k, self.thread_owner.remove(&k).unwrap()))
                    .collect();
                let mut next_session = vec![0u64; nnodes];
                next_session[s] = std::mem::take(&mut self.next_session[s]);
                Cluster {
                    nodes,
                    programs,
                    sessions,
                    thread_owner,
                    next_session,
                    slice_ns: self.slice_ns,
                    code_shipping: self.code_shipping,
                    class_refs: HashMap::new(),
                    class_sizes: HashMap::new(),
                    buf_pool: Arc::clone(&self.buf_pool),
                    chaos_enabled: false,
                    retry_policy: self.retry_policy,
                    migration_timeout_ns: self.migration_timeout_ns,
                    chaos: ChaosCounters::default(),
                    pools: Vec::new(),
                    cpu_contention: self.cpu_contention,
                    role: Role::Worker {
                        shard: s,
                        deliveries: 0,
                    },
                    shared: self.shared.clone(),
                    deferred_out: Vec::new(),
                    deferred_in: Vec::new(),
                }
            })
            .collect()
    }

    /// Merge a worker view back after its batch drained: moved state
    /// returns, memoized class refs fold in, and the view's deferred ops
    /// queue up for `apply_deferred` to replay during the merge.
    fn absorb_shard(&mut self, view: Cluster) {
        let Role::Worker { shard, .. } = view.role else {
            panic!("absorbed a non-worker view");
        };
        for (i, slot) in view.nodes.slots.into_iter().enumerate() {
            if let Some(n) = slot {
                debug_assert_eq!(i, shard);
                self.nodes.put(i, n);
            }
        }
        for (i, slot) in view.programs.slots.into_iter().enumerate() {
            if let Some(p) = slot {
                self.programs.put(i, p);
            }
        }
        self.sessions.extend(view.sessions);
        self.thread_owner.extend(view.thread_owner);
        if self.next_session.len() <= shard {
            self.next_session.resize(shard + 1, 0);
        }
        self.next_session[shard] = view.next_session[shard];
        self.class_refs.extend(view.class_refs);
        self.class_sizes.extend(view.class_sizes);
        if self.deferred_in.len() <= shard {
            self.deferred_in.resize_with(shard + 1, VecDeque::new);
        }
        debug_assert!(
            self.deferred_in[shard].is_empty(),
            "shard {shard} still had unapplied deferred ops from the previous batch"
        );
        self.deferred_in[shard] = view.deferred_out.into();
    }

    fn worker_of(&self, node: usize, tid: usize) -> SessionId {
        match self.thread_owner.get(&(node, tid)) {
            Some(Owner::Worker(s)) => *s,
            _ => panic!("thread ({node},{tid}) is not a worker session"),
        }
    }

    /// Aggregate the cluster's current state into a [`ClusterReport`]:
    /// per-request completion latencies (nearest-rank percentiles),
    /// throughput, per-node utilization, and per-node network bytes
    /// broken out as state/class/object. Callable at any point; normally
    /// used after the simulation runs to idle.
    pub fn cluster_report(&self) -> ClusterReport {
        let mut latencies = Vec::new();
        let mut failed = 0u64;
        let mut makespan = 0u64;
        for p in self.programs.iter() {
            if !p.done {
                continue;
            }
            makespan = makespan.max(p.report.finished_at_ns);
            if p.error.is_some() {
                failed += 1;
            } else {
                latencies.push(p.report.latency_ns());
            }
        }
        // Shipped state that arrived somewhere but never restored —
        // killed, superseded, or stuck sessions — is accounted nowhere
        // else; credit it to the holding node's lost bucket so the
        // conservation identity `sent = accounted + lost` closes. (The
        // sum over the session map is order-independent.)
        let mut stranded = vec![0u64; self.nodes.len()];
        for w in self.sessions.values() {
            if !w.recorded {
                stranded[w.node] += w.timings.state_bytes;
            }
        }
        let per_node = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                // Node lifetime: join → retire (drained pool members and
                // crashed ones), join → makespan otherwise. A node that
                // joined after the last completion has zero lifetime.
                let end = n.retired_at_ns.unwrap_or(makespan).max(n.joined_at_ns);
                NodeUtilization {
                    name: n.cfg.name.clone(),
                    instructions: n.vm.instr_count,
                    slices: n.slices,
                    busy_ns: n.busy_ns,
                    events: n.events,
                    sent: n.net_sent,
                    lost: NetBytes {
                        state: n.net_lost.state + stranded[i],
                        class: n.net_lost.class,
                        object: n.net_lost.object,
                    },
                    lifetime_ns: end - n.joined_at_ns,
                }
            })
            .collect();
        let mut report = ClusterReport::aggregate(
            self.programs.len() as u64,
            latencies,
            failed,
            makespan,
            per_node,
        );
        report.chaos = self.chaos;
        report.pools = self.pool_reports();
        report
    }
}

impl World for Cluster {
    type Msg = Msg;

    fn on_message(&mut self, dst: usize, msg: Msg, ctx: &mut SimCtx<'_, Msg>) {
        if let Role::Worker { shard, deliveries } = &mut self.role {
            debug_assert_eq!(
                dst, *shard,
                "ownership auditor: shard {shard} asked to deliver node {dst}'s event"
            );
            // 0-based delivery index tags this delivery's deferred ops, so
            // the master's merge applies them at the matching point of the
            // canonical order.
            *deliveries += 1;
        }
        // Per-node event accounting: this node's shard delivery count
        // under the sharded scheduler (surfaced in `NodeUtilization`).
        self.nodes[dst].events += 1;
        match msg {
            Msg::StartProgram { program } => {
                let p = &self.programs[program as usize];
                debug_assert_eq!(p.home, dst);
                if p.done {
                    return;
                }
                let (class, method, args) = (p.class.clone(), p.method.clone(), p.args.clone());
                let tid = self.nodes[dst]
                    .vm
                    .spawn(&class, &method, &args)
                    .expect("spawn program");
                self.programs[program as usize].home_tid = tid;
                self.programs[program as usize].started = true;
                self.programs[program as usize].report.started_at_ns = ctx.now();
                self.thread_owner.insert((dst, tid), Owner::Root(program));
                ctx.schedule(0, dst, Msg::RunSlice { tid });
            }
            Msg::MigrateNow { program, plan } => {
                let p = &mut self.programs[program as usize];
                if p.done || p.side.is_frozen() {
                    return;
                }
                // The live slice chain observes the flag at its next stop;
                // scheduling another slice here would double-drive the
                // thread.
                p.side = HomeSide::PlanPending(plan);
            }
            Msg::RunSlice { tid } => self.run_slice(dst, tid, ctx),
            Msg::HostDone { tid, reply } => {
                let v = materialize_reply(&mut self.nodes[dst].vm, reply);
                self.nodes[dst].vm.resume_host(tid, v).expect("resume host");
                ctx.schedule(0, dst, Msg::RunSlice { tid });
            }
            Msg::CaptureDone { program } => self.capture_done(program, ctx),
            Msg::MigrationTimeout { program, attempt } => {
                self.migration_timeout(dst, program, attempt, ctx)
            }
            Msg::PoolTick { pool } => self.pool_tick(pool, ctx),
            Msg::PoolReady { pool, node } => self.pool_ready(pool, node),
            Msg::State {
                info,
                state,
                bundled,
                class_bytes,
                capture_ns,
                sent_at,
            } => self.state_arrived(
                dst,
                info,
                state,
                bundled,
                class_bytes,
                capture_ns,
                sent_at,
                ctx,
            ),
            Msg::BeginRestore { session } => self.begin_restore(session, ctx),
            Msg::ClassRequest {
                session,
                requester,
                name,
                program,
            } => self.class_request(dst, session, requester, name, program, ctx),
            Msg::ClassReply {
                session,
                class,
                bytes,
            } => self.class_reply(dst, session, class, bytes, ctx),
            Msg::ObjectRequest {
                session,
                requester,
                home_id,
                program,
            } => self.object_request(dst, session, requester, home_id, program, ctx),
            Msg::ObjectReply { session, batch } => self.object_reply(dst, session, batch, ctx),
            Msg::Flush {
                program,
                batch,
                ack_to,
            } => self.apply_flush(dst, program, batch, ack_to, ctx),
            Msg::FlushAck { session, assigned } => self.flush_ack(dst, session, assigned, ctx),
            Msg::SegmentReturn {
                program,
                session,
                target,
                retval,
                pop_frames,
            } => self.segment_return(dst, program, session, target, retval, pop_frames, ctx),
            Msg::FsRead {
                requester,
                tid,
                path,
                op,
            } => self.fs_read(dst, requester, tid, path, op, ctx),
            Msg::FsData {
                tid,
                bytes,
                op,
                result,
            } => self.fs_data(dst, tid, bytes, op, result, ctx),
            Msg::ClientRequest { payload } => {
                if let Some(tid) = self.nodes[dst].sock_waiters.pop_front() {
                    ctx.schedule(
                        0,
                        dst,
                        Msg::HostDone {
                            tid,
                            reply: HostReply::Str(payload),
                        },
                    );
                } else {
                    self.nodes[dst].sock_queue.push_back(payload);
                }
            }
        }
    }

    fn on_chaos(&mut self, action: &sod_net::ChaosAction, now: u64) {
        self.apply_chaos(action, now);
    }

    fn on_dropped(
        &mut self,
        src: usize,
        dst: usize,
        msg: Msg,
        reason: sod_net::DropReason,
        now: u64,
    ) {
        self.note_dropped(src, dst, msg, reason, now);
    }

    /// The engine honors the shard-ownership contract (every cross-node
    /// touch is a message, a `Shared` read, or a `DeferredOp`) —
    /// except under chaos (stale-guards read foreign program state) and
    /// while elastic pools are live (controllers place work fleet-wide),
    /// which stay on the sequential path.
    fn parallel_ready(&self) -> bool {
        !self.chaos_enabled && self.pools.is_empty()
    }

    fn drain_parallel(
        &mut self,
        topo: &mut Topology,
        batches: &mut Vec<ShardBatch<Msg>>,
        horizon: u64,
        prov_base: u64,
        threads: usize,
        max_events: u64,
    ) -> Option<Vec<ShardLog<Msg>>> {
        self.ensure_shared();
        let shards: Vec<usize> = batches.iter().map(|b| b.shard).collect();
        let views = self.split_shards(&shards);
        let (logs, views) = sod_net::drain_batches_scoped(
            topo,
            std::mem::take(batches),
            horizon,
            prov_base,
            threads,
            max_events,
            views,
            |view: &mut Cluster, dst, msg, ctx| view.on_message(dst, msg, ctx),
        );
        for view in views {
            self.absorb_shard(view);
        }
        Some(logs)
    }

    fn apply_deferred(&mut self, shard: usize, delivery: u64) {
        if shard >= self.deferred_in.len() {
            return;
        }
        while let Some((tag, _)) = self.deferred_in[shard].front() {
            if *tag != delivery {
                break;
            }
            let (_, op) = self.deferred_in[shard].pop_front().unwrap();
            self.apply_op(op);
        }
    }
}

fn materialize_reply(vm: &mut sod_vm::interp::Vm, reply: HostReply) -> Value {
    match reply {
        HostReply::Int(i) => Value::Int(i),
        HostReply::Str(s) => Value::Ref(vm.heap.alloc_str(s)),
        HostReply::List(items) => {
            let refs: Vec<Value> = items
                .into_iter()
                .map(|s| Value::Ref(vm.heap.alloc_str(s)))
                .collect();
            Value::Ref(vm.heap.alloc_arr_from(refs))
        }
    }
}

/// Driver: a [`Sim`] over a [`Cluster`] with experiment-friendly helpers.
pub struct SodSim {
    pub sim: Sim<Cluster>,
}

impl SodSim {
    /// A driver on the default [`Scheduler`] (per-node sharded queues).
    pub fn new(cluster: Cluster, topo: Topology) -> Self {
        SodSim::with_scheduler(cluster, topo, Scheduler::default())
    }

    /// A driver on an explicit event [`Scheduler`]. Both schedulers
    /// produce bit-identical reports — the choice only affects simulator
    /// cost at fleet scale (see the `scheduler_equivalence` suite and the
    /// `sod-bench` scale ablation).
    pub fn with_scheduler(cluster: Cluster, topo: Topology, scheduler: Scheduler) -> Self {
        SodSim {
            sim: Sim::with_scheduler(cluster, topo, scheduler),
        }
    }

    /// Start a registered program at virtual time `at`.
    pub fn start_program(&mut self, at: u64, program: ProgramId) {
        let home = self.sim.world.programs[program as usize].home;
        self.sim.inject(at, home, Msg::StartProgram { program });
    }

    /// Trigger a migration of `program` per `plan` at virtual time `at`.
    pub fn migrate_at(&mut self, at: u64, program: ProgramId, plan: MigrationPlan) {
        let home = self.sim.world.programs[program as usize].home;
        self.sim.inject(at, home, Msg::MigrateNow { program, plan });
    }

    /// Arm a policy trigger on a registered program (see [`crate::trigger`]).
    pub fn arm_trigger(&mut self, program: ProgramId, trigger: ArmedTrigger) {
        self.sim.world.arm_trigger(program, trigger);
    }

    /// Arm a fault-injection plan — scheduled crashes/partitions plus
    /// seeded per-link loss — and the engine's recovery machinery
    /// (migration deadlines, stale-message guards, lost-byte accounting).
    /// An empty plan is a no-op, keeping the run event-for-event identical
    /// to a chaos-free one.
    pub fn set_chaos(&mut self, plan: &ChaosPlan) {
        if !plan.is_empty() {
            self.sim.world.chaos_enabled = true;
        }
        self.sim.set_chaos(plan);
    }

    /// Recovery policy for migrations that miss their deadline (only
    /// meaningful once [`SodSim::set_chaos`] armed a plan).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.sim.world.retry_policy = policy;
    }

    /// Override the end-to-end migration deadline (chaos runs only).
    pub fn set_migration_timeout(&mut self, ns: u64) {
        self.sim.world.migration_timeout_ns = ns;
    }

    /// Inject the first controller tick for every registered pool (each
    /// tick reschedules itself until the pool is quiescent). Pools must
    /// already have been added via [`Cluster::add_pool`] — before the
    /// simulator was built, so the topology covers the base members.
    pub fn start_pool_ticks(&mut self) {
        let ticks: Vec<(usize, u64)> = self
            .sim
            .world
            .pools
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.spec.tick_ns))
            .collect();
        for (pool, tick_ns) in ticks {
            self.sim.inject(tick_ns, 0, Msg::PoolTick { pool });
        }
    }

    /// Inject a client request into a photo-server node.
    pub fn client_request_at(&mut self, at: u64, node: usize, payload: impl Into<String>) {
        self.sim.inject(
            at,
            node,
            Msg::ClientRequest {
                payload: payload.into(),
            },
        );
    }

    /// Run the simulation to idle; returns final virtual time.
    pub fn run(&mut self) -> u64 {
        self.sim.run_to_idle(500_000_000)
    }

    /// The report of a completed program.
    pub fn report(&self, program: ProgramId) -> &RunReport {
        &self.sim.world.programs[program as usize].report
    }

    /// Aggregate fleet metrics over every registered program (see
    /// [`Cluster::cluster_report`]).
    pub fn cluster_report(&self) -> ClusterReport {
        self.sim.world.cluster_report()
    }

    pub fn program(&self, program: ProgramId) -> &Program {
        &self.sim.world.programs[program as usize]
    }
}

/// Roll a faulted thread back to the start of the faulting statement
/// (operand stack cleared — sound because rearranged statements are
/// single-effect), leaving it runnable for capture at that MSP.
pub fn rollback_to_statement_start(vm: &mut sod_vm::interp::Vm, tid: usize) {
    let (ci, mi, pc) = {
        let f = vm.thread(tid).unwrap().top().unwrap();
        (f.class_idx, f.method_idx, f.pc)
    };
    let start = vm.line_start_pc(ci, mi, pc);
    let t = vm.thread_mut(tid).unwrap();
    let f = t.frames.last_mut().unwrap();
    f.pc = start;
    f.ostack.clear();
    t.state = sod_vm::interp::ThreadState::Runnable;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_cluster() -> Cluster {
        Cluster::new(vec![
            Node::new(NodeConfig::cluster("a")),
            Node::new(NodeConfig::cluster("b")),
        ])
    }

    #[test]
    fn session_ids_are_striped_per_node() {
        let mut c = two_node_cluster();
        assert_eq!(c.alloc_session(0), (1u64 << 32) | 1);
        assert_eq!(c.alloc_session(1), (2u64 << 32) | 1);
        assert_eq!(c.alloc_session(0), (1u64 << 32) | 2);
        // A shard view minting for its own node continues the exact
        // stripe a sequential run would use, and the master resumes it
        // after the merge.
        c.ensure_shared();
        let mut views = c.split_shards(&[1]);
        assert_eq!(views[0].alloc_session(1), (2u64 << 32) | 2);
        let view = views.pop().unwrap();
        c.absorb_shard(view);
        assert_eq!(c.alloc_session(1), (2u64 << 32) | 3);
    }

    #[test]
    #[should_panic(expected = "ownership auditor")]
    fn auditor_catches_cross_shard_node_access() {
        let mut c = two_node_cluster();
        c.ensure_shared();
        let views = c.split_shards(&[0]);
        // Node 1 was loaned to another shard: touching it from this view
        // is exactly the data race the repartition forbids.
        let _ = &views[0].nodes[1];
    }

    #[test]
    #[should_panic(expected = "ownership auditor")]
    fn auditor_catches_session_minted_off_shard() {
        let mut c = two_node_cluster();
        c.ensure_shared();
        let mut views = c.split_shards(&[0]);
        let _ = views[0].alloc_session(1);
    }
}
