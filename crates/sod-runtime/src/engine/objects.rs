//! The object manager: on-demand object fetches (heap-on-demand), dirty
//! write-back flushes with temp-id assignment, and flush acks.

use std::collections::{HashMap, HashSet};

use sod_net::SimCtx;
use sod_vm::capture::CapturedValue;
use sod_vm::error::VmResult;
use sod_vm::value::{ObjId, Value};
use sod_vm::wire::{
    decode_object, encode_object_pooled, extract_closure, extract_dirty, extract_object,
    install_object, BufferPool, FrameBatch, WireObject,
};

use crate::costs;
use crate::msg::{Msg, ProgramId, SessionId};

use super::session::WorkerPhase;
use super::{Cluster, DeferredOp, FetchPolicy, CONTROL_MSG_BYTES, TEMP_ID_BASE};

impl Cluster {
    pub(super) fn object_request(
        &mut self,
        home: usize,
        sid: SessionId,
        requester: usize,
        home_id: ObjId,
        program: ProgramId,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        // The fetch policy comes off the program record — this node is the
        // program's home, so the record is owned here even mid-batch; the
        // requesting session may live on another shard.
        let policy = self.programs[program as usize].fetch_policy;
        let (root, prefetched) = match policy {
            FetchPolicy::Shallow => (
                extract_object(&self.nodes[home].vm.heap, home_id).expect("home object"),
                Vec::new(),
            ),
            FetchPolicy::Deep => {
                let mut closure =
                    extract_closure(&self.nodes[home].vm.heap, home_id).expect("home closure");
                let root = closure.remove(0);
                (root, closure)
            }
        };
        // Encode once on the home side: the root frame first, then any
        // prefetched objects, batched into one delivery frame. The batch's
        // payload length is the object byte metric at both ends.
        let mut batch = FrameBatch::new();
        for obj in std::iter::once(&root).chain(prefetched.iter()) {
            match encode_object_pooled(&self.buf_pool, obj) {
                Ok(f) => batch.push(f),
                Err(e) => {
                    self.defer(DeferredOp::FailProgram {
                        program,
                        error: format!("object encode failed: {e}"),
                        at: ctx.now(),
                    });
                    return;
                }
            }
        }
        let bytes = batch.payload_bytes();
        let cost = costs::OBJ_LOOKUP_NS + costs::serialize_ns(bytes);
        self.nodes[home].net_sent.object += bytes;
        ctx.send_after(
            self.nodes[home].cfg.scale(cost),
            home,
            requester,
            bytes,
            Msg::ObjectReply {
                session: sid,
                batch,
            },
        );
    }

    pub(super) fn object_reply(
        &mut self,
        node: usize,
        sid: SessionId,
        batch: FrameBatch,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let bytes = batch.payload_bytes();
        let Some(w) = self.sessions.get(&sid) else {
            // No session ever lived here (arrival raced a retirement that
            // also dropped the map entry): nothing to resume, and nobody's
            // report will account the bytes — credit them as lost.
            self.nodes[node].net_lost.object += bytes;
            return;
        };
        let tid = w.tid;
        let program = w.program;
        if matches!(w.phase, WorkerPhase::Done) || tid == usize::MAX {
            // Session retired (killed by a crash or a superseding retry)
            // while the reply was in flight. The bytes still arrived on
            // this program's behalf; account them on its report so the
            // object ledger stays balanced, but leave the dead thread be.
            self.defer(DeferredOp::AddObjectFault(program, bytes));
            return;
        }
        // Decode every frame before touching the heap so a malformed reply
        // fails the program without half-installing the closure.
        let mut objects: Vec<WireObject> = Vec::with_capacity(batch.len());
        for f in batch.frames() {
            match decode_object(f.clone()) {
                Ok(o) => objects.push(o),
                Err(e) => {
                    self.fail_session(sid, format!("object reply decode failed: {e}"), ctx.now());
                    return;
                }
            }
        }
        for f in batch.into_frames() {
            self.buf_pool.recycle(f);
        }
        let (root, prefetched) = objects
            .split_first()
            .expect("object reply carries the faulted root");
        let local = install_object(&mut self.nodes[node].vm.heap, root).expect("install");
        for p in prefetched {
            install_object(&mut self.nodes[node].vm.heap, p).expect("install prefetch");
        }
        self.nodes[node]
            .vm
            .resume_fetched(tid, local)
            .expect("resume fetched");
        self.defer(DeferredOp::AddObjectFault(program, bytes));
        let cost = self.nodes[node].cfg.scale(costs::deserialize_ns(bytes));
        ctx.schedule(cost, node, Msg::RunSlice { tid });
    }

    pub(super) fn apply_flush(
        &mut self,
        home: usize,
        program: ProgramId,
        batch: FrameBatch,
        ack_to: Option<(usize, SessionId)>,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let total_bytes = batch.payload_bytes();
        // Decode the whole batch before touching the heap so a malformed
        // frame fails the program without a half-applied flush.
        let mut objects: Vec<WireObject> = Vec::with_capacity(batch.len());
        for f in batch.frames() {
            match decode_object(f.clone()) {
                Ok(o) => objects.push(o),
                Err(e) => {
                    self.defer(DeferredOp::FailProgram {
                        program,
                        error: format!("flush decode failed: {e}"),
                        at: ctx.now(),
                    });
                    return;
                }
            }
        }
        for f in batch.into_frames() {
            self.buf_pool.recycle(f);
        }
        let objects = &objects[..];
        let vm = &mut self.nodes[home].vm;
        // Pass 1: allocate masters for worker-created (temp-id) objects.
        let mut assigned: Vec<(ObjId, ObjId)> = Vec::new();
        let mut map: HashMap<ObjId, ObjId> = HashMap::new();
        for obj in objects {
            if obj.home_id >= TEMP_ID_BASE {
                let new_id = match &obj.body {
                    sod_vm::wire::WireObjBody::Obj { class, fields } => vm
                        .heap
                        .alloc_obj(class.clone(), vec![Value::Null; fields.len()]),
                    sod_vm::wire::WireObjBody::Arr { elems } => vm.heap.alloc_arr(elems.len()),
                    sod_vm::wire::WireObjBody::Str(s) => vm.heap.alloc_str(s.clone()),
                };
                map.insert(obj.home_id, new_id);
                assigned.push((obj.home_id, new_id));
            }
        }
        // Pass 2: write bodies with refs resolved.
        let resolve = |cv: &CapturedValue, map: &HashMap<ObjId, ObjId>| -> Value {
            match cv {
                CapturedValue::Int(i) => Value::Int(*i),
                CapturedValue::Num(n) => Value::Num(*n),
                CapturedValue::Null => Value::Null,
                CapturedValue::HomeRef(h) => Value::Ref(map.get(h).copied().unwrap_or(*h)),
            }
        };
        for obj in objects {
            let target = map.get(&obj.home_id).copied().unwrap_or(obj.home_id);
            let entry = match vm.heap.get_mut(target) {
                Ok(e) => e,
                Err(_) => continue,
            };
            match (&mut entry.kind, &obj.body) {
                (
                    sod_vm::heap::ObjKind::Obj { fields, .. },
                    sod_vm::wire::WireObjBody::Obj { fields: new, .. },
                ) => {
                    for (i, cv) in new.iter().enumerate() {
                        if i < fields.len() {
                            fields[i] = resolve(cv, &map);
                        }
                    }
                }
                (
                    sod_vm::heap::ObjKind::Arr { elems },
                    sod_vm::wire::WireObjBody::Arr { elems: new },
                ) => {
                    for (i, cv) in new.iter().enumerate() {
                        if i < elems.len() {
                            elems[i] = resolve(cv, &map);
                        }
                    }
                }
                _ => {}
            }
            entry.dirty = false;
        }
        if let Some((node, sid)) = ack_to {
            let cost = costs::deserialize_ns(total_bytes);
            ctx.send_after(
                self.nodes[home].cfg.scale(cost),
                home,
                node,
                CONTROL_MSG_BYTES,
                Msg::FlushAck {
                    session: sid,
                    assigned,
                },
            );
        }
    }

    pub(super) fn flush_ack(
        &mut self,
        node: usize,
        sid: SessionId,
        assigned: Vec<(ObjId, ObjId)>,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        // Record master ids on the local copies.
        for (temp, home_id) in &assigned {
            let local = (temp - TEMP_ID_BASE) as ObjId;
            if let Ok(o) = self.nodes[node].vm.heap.get_mut(local) {
                o.home_id = Some(*home_id);
            }
        }
        let phase = std::mem::replace(
            &mut self.sessions.get_mut(&sid).unwrap().phase,
            WorkerPhase::Done,
        );
        match phase {
            WorkerPhase::AwaitRoamAck { dest } => {
                let tid = self.sessions[&sid].tid;
                self.sessions.get_mut(&sid).unwrap().phase = WorkerPhase::Running;
                self.roam_capture_and_ship(node, tid, sid, dest, 0, ctx);
            }
            WorkerPhase::AwaitCompleteAck { retval } => {
                let mapped = retval.map(|cv| match cv {
                    CapturedValue::HomeRef(h) if h >= TEMP_ID_BASE => {
                        let home_id = assigned
                            .iter()
                            .find(|(t, _)| *t == h)
                            .map(|(_, n)| *n)
                            .unwrap_or(h);
                        CapturedValue::HomeRef(home_id)
                    }
                    other => other,
                });
                self.send_segment_return(sid, mapped, 0, ctx);
            }
            other => {
                self.sessions.get_mut(&sid).unwrap().phase = other;
            }
        }
    }
}

/// Export a return value, assigning temp ids to worker-created objects.
pub(super) fn export_with_temps(vm: &sod_vm::interp::Vm, v: Value) -> CapturedValue {
    match v {
        Value::Ref(id) => match vm.heap.get(id).ok().and_then(|o| o.home_id) {
            Some(h) => CapturedValue::HomeRef(h),
            None => CapturedValue::HomeRef(TEMP_ID_BASE + id),
        },
        other => CapturedValue::from_value(other),
    }
}

/// Collect the write-back set of a worker VM: dirty cached objects plus all
/// worker-created objects reachable from them or from the return value.
/// Each object (temp ids for worker-created ones) is encoded exactly once
/// into a pooled frame; the returned batch's payload length is the flush
/// byte metric. Clears dirty bits on success.
pub(super) fn collect_flush(
    vm: &mut sod_vm::interp::Vm,
    retval: Option<Value>,
    pool: &BufferPool,
) -> VmResult<FrameBatch> {
    let mut roots: Vec<ObjId> = vm.heap.dirty_objects().map(|(id, _)| id).collect();
    if let Some(Value::Ref(id)) = retval {
        roots.push(id);
    }
    let mut seen: HashSet<ObjId> = HashSet::new();
    let mut queue: Vec<ObjId> = Vec::new();
    for r in roots {
        if seen.insert(r) {
            queue.push(r);
        }
    }
    let mut batch = FrameBatch::new();
    while let Some(id) = queue.pop() {
        let obj = match vm.heap.get(id) {
            Ok(o) => o,
            Err(_) => continue,
        };
        let include = obj.dirty || obj.home_id.is_none();
        if !include {
            continue;
        }
        // Traverse refs: worker-created neighbours must flush too.
        let neighbours: Vec<ObjId> = match &obj.kind {
            sod_vm::heap::ObjKind::Obj { fields, .. } => fields
                .iter()
                .filter_map(|v| match v {
                    Value::Ref(r) => Some(*r),
                    _ => None,
                })
                .collect(),
            sod_vm::heap::ObjKind::Arr { elems } => elems
                .iter()
                .filter_map(|v| match v {
                    Value::Ref(r) => Some(*r),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        };
        let obj = extract_dirty(&vm.heap, id, TEMP_ID_BASE).expect("extract dirty");
        batch.push(encode_object_pooled(pool, &obj)?);
        for n in neighbours {
            if seen.insert(n) {
                queue.push(n);
            }
        }
    }
    vm.heap.clear_dirty();
    Ok(batch)
}
