//! The migration protocol, home side: capture at a migration-safe point,
//! stage the plan's segments, bundle code cache-awarely, ship — plus the
//! class-serving endpoint and worker-to-worker roaming hops.

use std::collections::BTreeSet;
use std::sync::Arc;

use sod_net::SimCtx;
use sod_vm::capture::{capture_segment, CapturedState};
use sod_vm::class::ClassDef;
use sod_vm::tooling::ToolingPath;
use sod_vm::wire::{class_wire_bytes, encode_state_pooled};

use crate::costs;
use crate::msg::{MigrationPlan, Msg, ProgramId, ReturnTarget, SegmentInfo, SessionId};

use super::pool::POOL_DEST_BASE;
use super::session::{BundleSeeds, HomeSide, Owner, StagedSegment, WorkerPhase};
use super::{Cluster, CodeShipping, DeferredOp};

impl Cluster {
    // ------------------------------------------------------------------
    // Migration-safe point reached with a pending plan
    // ------------------------------------------------------------------

    pub(super) fn at_msp(
        &mut self,
        node: usize,
        tid: usize,
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        match self.thread_owner.get(&(node, tid)) {
            Some(Owner::Root(p)) => {
                let program = *p;
                let plan = self.programs[program as usize]
                    .side
                    .take_plan()
                    .expect("at_msp without plan");
                self.capture_and_stage(node, tid, program, &plan, elapsed, ctx);
            }
            Some(Owner::Worker(s)) => {
                let sid = *s;
                self.begin_roam(node, tid, sid, elapsed, ctx);
            }
            // An orphaned thread (session killed under fault injection)
            // stopping at an MSP has no plan to serve; leave it parked.
            None => {}
        }
    }

    /// Home-side capture: one freeze, segments staged, `CaptureDone` timer.
    fn capture_and_stage(
        &mut self,
        node: usize,
        tid: usize,
        program: ProgramId,
        plan: &MigrationPlan,
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        // Pool-sentinel destinations stay symbolic through the freeze:
        // placement resolves at *ship* time (`capture_done`), so it sees
        // any members the controller spawned while the capture ran — a
        // burst's captures all start before the first scale-out tick, and
        // resolving here would place the whole burst on the pre-burst
        // membership. Here we only reject a dead plan (unknown pool, or a
        // pool with nothing live or provisioning): nothing migrates and
        // the thread resumes where it stopped.
        for seg in &plan.segments {
            if !self.pool_placeable(seg.dest) {
                ctx.schedule(elapsed, node, Msg::RunSlice { tid });
                return;
            }
        }
        let height = self.nodes[node].vm.thread(tid).unwrap().frames.len();
        let total: usize = plan.total_frames().min(height);
        if total == 0 {
            // Degenerate plan (every segment requests zero frames):
            // nothing migrates; resume the thread where it stopped. Must
            // be rejected before capture — `capture_segment` treats zero
            // frames as an error, and aborting the engine would break the
            // no-abort fleet semantics.
            ctx.schedule(elapsed, node, Msg::RunSlice { tid });
            return;
        }

        // Destination capability decides the capture path (Table VII) —
        // judged over the segments that will actually receive frames
        // (mirroring the split below), so the destination of an empty
        // tail segment cannot force the slower portable path. A pool
        // sentinel is judged by the pool's template: every member shares
        // it, so the capability is known before the member is.
        let all_jvmti = {
            let mut remaining = total;
            plan.segments.iter().all(|s| {
                let k = s.nframes.min(remaining);
                remaining -= k;
                k == 0 || self.dest_has_jvmti(s.dest)
            })
        };
        let path = ToolingPath::Jvmti;
        let (full, tool_ns) =
            capture_segment(&mut self.nodes[node].vm, tid, total, path).expect("capture failed");
        let state_bytes_full = full.wire_bytes();
        let capture_ns = if all_jvmti {
            self.nodes[node].cfg.scale(tool_ns)
        } else {
            // Portable path: JVMTI read + Java serialization into a
            // portable format restorable without JVMTI.
            self.nodes[node]
                .cfg
                .scale(costs::PORTABLE_CAPTURE_FIXED_NS + costs::serialize_ns(state_bytes_full))
        };

        // Split bottom-up frames into the plan's segments (top first),
        // dropping specs the live stack is too short to populate. Empty
        // segments must be filtered *before* session ids are allocated and
        // return targets wired: a chain plan deeper than the stack would
        // otherwise point the last live segment at a session that is never
        // created, and its return would panic at the destination.
        let mut frames = full.frames;
        let statics = full.statics;
        let mut live: Vec<(usize, Vec<sod_vm::capture::CapturedFrame>)> = Vec::new();
        for spec in &plan.segments {
            let k = spec.nframes.min(frames.len());
            let seg = frames.split_off(frames.len() - k);
            if !seg.is_empty() {
                live.push((spec.dest, seg));
            }
        }
        if live.is_empty() {
            // Degenerate plan (every segment requested zero frames):
            // nothing migrates; resume the thread where it stopped.
            ctx.schedule(elapsed, node, Msg::RunSlice { tid });
            return;
        }

        // Pre-allocate session ids so return targets can chain; the last
        // live segment always returns `Home`.
        let sids: Vec<SessionId> = live.iter().map(|_| self.alloc_session(node)).collect();
        // Whoever ultimately returns home must discard *all* the frames
        // this capture froze there — the chain above the bottom segment
        // returns remotely and the home never replays it.
        let total_live: usize = live.iter().map(|(_, f)| f.len()).sum();
        let dests: Vec<usize> = live.iter().map(|(d, _)| *d).collect();
        self.programs[program as usize].staged.clear();
        for (i, (dest, seg_frames)) in live.into_iter().enumerate() {
            // A pool-routed segment is pending at the pool until its
            // placement resolves at ship time (`place_pool_segments`
            // moves the count onto the chosen member). The controller
            // counts pending into the pool's load, so the very next tick
            // sees this capture's demand while it is still freezing.
            if dest >= POOL_DEST_BASE {
                self.pools[dest - POOL_DEST_BASE].pending += 1;
            }
            let state = CapturedState {
                frames: seg_frames,
                statics: statics.clone(),
            };
            let seeds = BundleSeeds::of(&state);
            let return_to = if i + 1 < dests.len() {
                ReturnTarget::Session {
                    node: dests[i + 1],
                    session: sids[i + 1],
                }
            } else {
                ReturnTarget::Home { node }
            };
            // Code shipping: bundle per the cluster policy, skipping
            // classes the destination provably holds (peer cache). A
            // pool-routed segment bundles at ship time instead — the
            // member (and hence its peer cache) is unknown until then.
            let (bundled, class_bytes) = if dest >= POOL_DEST_BASE {
                (Vec::new(), 0)
            } else {
                let b = self.bundle_for(node, node, dest, &seeds);
                let mut cb = 0u64;
                for c in &b {
                    cb += self.class_size(c);
                }
                (b, cb)
            };
            let info = SegmentInfo {
                program,
                session: sids[i],
                home: node,
                return_to,
                nframes: state.frames.len(),
                home_pop_frames: total_live,
                wait_for_return: i > 0,
            };
            // Encode-once: the state is serialized here and never again —
            // `frame.len()` is the byte metric at every later touch point
            // (ship accounting, transfer cost, loss credit, restore cost).
            let frame = match encode_state_pooled(&self.buf_pool, &state) {
                Ok(f) => f,
                Err(e) => {
                    // Unencodable capture (a name or sequence overflowed
                    // its length prefix): a typed program failure, not an
                    // engine abort.
                    self.defer(DeferredOp::FailProgram {
                        program,
                        error: format!("segment encode failed: {e}"),
                        at: ctx.now(),
                    });
                    return;
                }
            };
            debug_assert_eq!(frame.len() as u64, state.wire_bytes());
            self.programs[program as usize].staged.push(StagedSegment {
                dest,
                info,
                frame,
                seeds,
                bundled,
                class_bytes,
                capture_ns,
            });
        }

        self.programs[program as usize].valid_sessions = sids;
        self.programs[program as usize].side = HomeSide::Frozen;
        ctx.schedule(elapsed + capture_ns, node, Msg::CaptureDone { program });
    }

    /// Freeze complete: ship every staged segment concurrently. Under
    /// fault injection this is also where the episode's end-to-end
    /// deadline is armed (and, under a retry policy, where the shipment
    /// is retained for deadline-driven re-ships) — chaos-free runs stay
    /// event-for-event identical.
    pub(super) fn capture_done(&mut self, program: ProgramId, ctx: &mut SimCtx<'_, Msg>) {
        let home = self.programs[program as usize].home;
        let staged = std::mem::take(&mut self.programs[program as usize].staged);
        let staged = self.place_pool_segments(home, staged);
        if self.chaos_enabled && !staged.is_empty() {
            let retain = matches!(self.retry_policy, super::RetryPolicy::Retry { .. });
            let p = &mut self.programs[program as usize];
            p.attempt += 1;
            p.episode_attempts = 1;
            if retain {
                p.shipped = staged.clone();
            }
            let attempt = p.attempt;
            ctx.schedule(
                self.migration_timeout_ns,
                home,
                Msg::MigrationTimeout { program, attempt },
            );
        }
        for seg in staged {
            self.ship_segment(home, 0, seg, ctx);
        }
    }

    /// Resolve pool-sentinel destinations in a freshly frozen plan to
    /// concrete members — at ship time, so placement sees every member
    /// the controller spawned while the capture ran. Each sentinel
    /// resolves once per plan (a whole-stack chain co-locates on one
    /// member), the in-flight accounting moves from the pool's pending
    /// counter onto the chosen member (balanced at session insert),
    /// chained return targets are rewritten to the same member, and the
    /// code bundle is selected now that the destination's peer cache is
    /// known. A pool that lost every member since capture (chaos) falls
    /// back to the home node: the stack is already frozen, so it
    /// restores where it came from and runs on as a local session.
    fn place_pool_segments(
        &mut self,
        home: usize,
        mut staged: Vec<StagedSegment>,
    ) -> Vec<StagedSegment> {
        if staged.iter().all(|s| s.dest < POOL_DEST_BASE) {
            return staged;
        }
        let mut chosen: Vec<(usize, usize)> = Vec::new(); // sentinel -> member
        for seg in &mut staged {
            if seg.dest < POOL_DEST_BASE {
                continue;
            }
            let member = match chosen.iter().find(|&&(s, _)| s == seg.dest) {
                Some(&(_, m)) => m,
                None => {
                    let m = self.resolve_pool_dest(seg.dest).unwrap_or(home);
                    chosen.push((seg.dest, m));
                    m
                }
            };
            let pool = &mut self.pools[seg.dest - POOL_DEST_BASE];
            pool.pending = pool.pending.saturating_sub(1);
            self.nodes[member].inbound_sessions += 1;
            seg.dest = member;
            seg.bundled = self.bundle_for(home, home, member, &seg.seeds);
            let mut cb = 0u64;
            for c in &seg.bundled {
                cb += self.class_size(c);
            }
            seg.class_bytes = cb;
        }
        for seg in &mut staged {
            if let ReturnTarget::Session { node, .. } = &mut seg.info.return_to {
                if *node >= POOL_DEST_BASE {
                    if let Some(&(_, m)) = chosen.iter().find(|&&(s, _)| s == *node) {
                        *node = m;
                    }
                }
            }
        }
        staged
    }

    /// Ship one staged segment from `sender` after `delay` (the sender-side
    /// time already spent, excluding the migration handshake). Every byte
    /// counter the conservation suite pins is updated here, so home
    /// shipping and roaming hops cannot diverge. (Peer-cache crediting
    /// lives in [`Cluster::bundle_for`], at selection time.)
    pub(super) fn ship_segment(
        &mut self,
        sender: usize,
        delay: u64,
        seg: StagedSegment,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let state_bytes = seg.frame.len() as u64;
        self.nodes[sender].net_sent.state += state_bytes;
        self.nodes[sender].net_sent.class += seg.class_bytes;
        self.defer(DeferredOp::AddClassBytes(seg.info.program, seg.class_bytes));
        ctx.send_after(
            delay + costs::MIGRATION_HANDSHAKE_NS,
            sender,
            seg.dest,
            state_bytes + seg.class_bytes + costs::MIGRATION_MSG_FIXED_BYTES,
            Msg::State {
                info: seg.info,
                state: seg.frame,
                bundled: seg.bundled,
                class_bytes: seg.class_bytes,
                capture_ns: seg.capture_ns,
                sent_at: ctx.now() + delay,
            },
        );
    }

    // ------------------------------------------------------------------
    // Cache-aware code bundling
    // ------------------------------------------------------------------

    /// Class lookup for bundling: the sender's repository first, falling
    /// back to the program home's (roaming workers hold only what shipped
    /// to them). A foreign home's repo is read from the immutable snapshot
    /// — sound because home repos are static after deployment (only worker
    /// repos grow mid-run, and only the home is consulted here).
    fn lookup_class(&self, sender: usize, home: usize, name: &str) -> Option<Arc<ClassDef>> {
        if let Some(c) = self.nodes[sender].repo.get(name) {
            return Some(c.clone());
        }
        if self.nodes.owns(home) {
            self.nodes[home].repo.get(name).cloned()
        } else {
            self.shared
                .as_ref()
                .and_then(|s| s.repos[home].get(name).cloned())
        }
    }

    /// Memoized [`ClassDef::referenced_classes`]: the scan walks every
    /// method body, so compute it once per class name, not per migration.
    /// (The name is cloned only on the miss path; `entry()` would
    /// allocate it on every hit.)
    fn refs_of(&mut self, def: &Arc<ClassDef>) -> &[String] {
        if !self.class_refs.contains_key(&def.name) {
            self.class_refs
                .insert(def.name.clone(), def.referenced_classes());
        }
        &self.class_refs[&def.name]
    }

    /// Memoized [`class_wire_bytes`]: class files are immutable once
    /// deployed (same argument as [`Cluster::refs_of`]), so the streaming
    /// size count over every method body runs once per class name instead
    /// of once per migration, class-serve, and bundled load.
    pub(super) fn class_size(&mut self, def: &Arc<ClassDef>) -> u64 {
        if let Some(&b) = self.class_sizes.get(&def.name) {
            return b;
        }
        let b = class_wire_bytes(def);
        self.class_sizes.insert(def.name.clone(), b);
        b
    }

    /// Select the classes to bundle with a segment shipped from `sender`
    /// to `dest`, per the cluster's [`CodeShipping`] policy, and credit
    /// them to the peer cache — here, at the single site both shipping
    /// paths go through, so a later segment of the same plan (or a later
    /// migration) never re-bundles them. Crediting at selection time is
    /// sound because every bundle is unconditionally shipped. Everything
    /// skipped still arrives via the on-demand path, so the peer-cache
    /// filter can never break a run — only shrink it.
    fn bundle_for(
        &mut self,
        sender: usize,
        home: usize,
        dest: usize,
        seeds: &BundleSeeds,
    ) -> Vec<Arc<ClassDef>> {
        let bundled = self.select_bundle(sender, home, dest, seeds);
        for c in &bundled {
            self.nodes[sender].note_peer_class(dest, &c.name);
        }
        bundled
    }

    fn select_bundle(
        &mut self,
        sender: usize,
        home: usize,
        dest: usize,
        seeds: &BundleSeeds,
    ) -> Vec<Arc<ClassDef>> {
        match self.code_shipping {
            CodeShipping::Never => Vec::new(),
            CodeShipping::BundleAlways => self
                .lookup_class(sender, home, &seeds.top)
                .into_iter()
                .collect(),
            CodeShipping::BundleTop => {
                if self.nodes[sender].peer_has_class(dest, &seeds.top) {
                    Vec::new()
                } else {
                    self.lookup_class(sender, home, &seeds.top)
                        .into_iter()
                        .collect()
                }
            }
            CodeShipping::BundleReachable => {
                // Transitive closure of static class references over the
                // shipped frames (and their statics), in sorted order for
                // cross-run determinism.
                let mut seed_set: BTreeSet<String> = BTreeSet::new();
                for c in &seeds.frame_classes {
                    seed_set.insert(c.clone());
                }
                for c in &seeds.static_classes {
                    seed_set.insert(c.clone());
                }
                let mut closed: BTreeSet<String> = BTreeSet::new();
                let mut work: Vec<String> = seed_set.into_iter().collect();
                while let Some(name) = work.pop() {
                    if !closed.insert(name.clone()) {
                        continue;
                    }
                    if let Some(def) = self.lookup_class(sender, home, &name) {
                        for r in self.refs_of(&def) {
                            if !closed.contains(r) {
                                work.push(r.clone());
                            }
                        }
                    }
                }
                closed
                    .into_iter()
                    .filter(|name| !self.nodes[sender].peer_has_class(dest, name))
                    .filter_map(|name| self.lookup_class(sender, home, &name))
                    .collect()
            }
        }
    }

    // ------------------------------------------------------------------
    // Class serving (the class-file-load-hook endpoint)
    // ------------------------------------------------------------------

    /// A worker asked this node for a class file. A missing class is a
    /// typed program failure (recorded in `ProgramRun.error`), not an
    /// engine abort — fleet members keep running.
    pub(super) fn class_request(
        &mut self,
        dst: usize,
        session: SessionId,
        requester: usize,
        name: String,
        program: ProgramId,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let Some(class) = self.nodes[dst].repo.get(&name).cloned() else {
            // The requesting session may live on another shard: retire it
            // and fail its program through the message-carried id — the
            // deferred ops land wherever that state lives.
            self.retire_session(session);
            self.defer(DeferredOp::FailProgram {
                program,
                error: format!("home node {dst} missing class {name:?}"),
                at: ctx.now(),
            });
            return;
        };
        let bytes = self.class_size(&class);
        let cost = self.nodes[dst].cfg.scale(costs::serialize_ns(bytes));
        self.nodes[dst].net_sent.class += bytes;
        self.nodes[dst].note_peer_class(requester, &name);
        self.defer(DeferredOp::AddClassBytes(program, bytes));
        ctx.send_after(
            cost,
            dst,
            requester,
            bytes,
            Msg::ClassReply {
                session,
                class,
                bytes,
            },
        );
    }

    /// Fail the program behind `session` and retire the session so the
    /// stranded worker state cannot be woken by stale events. Callers hold
    /// the session locally; the program may live on another shard, in
    /// which case the failure defers to the merge.
    pub(super) fn fail_session(&mut self, session: SessionId, error: String, at: u64) {
        let Some(w) = self.sessions.get_mut(&session) else {
            return;
        };
        w.phase = WorkerPhase::Done;
        let program = w.program;
        self.defer(DeferredOp::FailProgram { program, error, at });
    }

    // ------------------------------------------------------------------
    // Roaming (worker → worker hops)
    // ------------------------------------------------------------------

    fn begin_roam(
        &mut self,
        node: usize,
        tid: usize,
        sid: SessionId,
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let dest = self.sessions[&sid].pending_roam.expect("roam dest");
        let program = self.sessions[&sid].program;
        let home = self.sessions[&sid].home;
        let batch =
            match super::objects::collect_flush(&mut self.nodes[node].vm, None, &self.buf_pool) {
                Ok(b) => b,
                Err(e) => {
                    self.fail_session(sid, format!("roam flush encode failed: {e}"), ctx.now());
                    return;
                }
            };
        if batch.is_empty() {
            // Nothing to reconcile: capture immediately.
            self.roam_capture_and_ship(node, tid, sid, dest, elapsed, ctx);
        } else {
            let flush_bytes = batch.payload_bytes();
            self.sessions.get_mut(&sid).unwrap().phase = WorkerPhase::AwaitRoamAck { dest };
            let ser = self.nodes[node].cfg.scale(costs::serialize_ns(flush_bytes));
            self.nodes[node].net_sent.object += flush_bytes;
            self.defer(DeferredOp::AddObjectBytes(program, flush_bytes));
            ctx.send_after(
                elapsed + ser,
                node,
                home,
                flush_bytes + super::CONTROL_MSG_BYTES,
                Msg::Flush {
                    program,
                    batch,
                    ack_to: Some((node, sid)),
                },
            );
        }
    }

    pub(super) fn roam_capture_and_ship(
        &mut self,
        node: usize,
        tid: usize,
        sid: SessionId,
        dest: usize,
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        self.sessions.get_mut(&sid).unwrap().pending_roam = None;
        let nframes = self.nodes[node].vm.thread(tid).unwrap().frames.len();
        let (state, tool_ns) =
            capture_segment(&mut self.nodes[node].vm, tid, nframes, ToolingPath::Jvmti)
                .expect("roam capture");
        let dest_jvmti = self.peer_cfg(dest).has_jvmti;
        let capture_ns = if dest_jvmti {
            self.nodes[node].cfg.scale(tool_ns)
        } else {
            self.nodes[node]
                .cfg
                .scale(costs::PORTABLE_CAPTURE_FIXED_NS + costs::serialize_ns(state.wire_bytes()))
        };

        let (program, home, return_to, home_pop_frames) = {
            let w = &self.sessions[&sid];
            (w.program, w.home, w.return_to, w.home_pop_frames)
        };
        let new_sid = self.alloc_session(node);
        let seeds = BundleSeeds::of(&state);
        let bundled = self.bundle_for(node, home, dest, &seeds);
        let mut class_bytes = 0u64;
        for c in &bundled {
            class_bytes += self.class_size(c);
        }
        let info = SegmentInfo {
            program,
            session: new_sid,
            home,
            return_to,
            nframes: state.frames.len(),
            // The home's stale-frame count is fixed at the original
            // capture; the roamed stack's own height is irrelevant to it.
            home_pop_frames,
            wait_for_return: false,
        };
        // Retire the old session & thread. The roamed session inherits
        // the old one's slot in the episode's valid set, so its arrival
        // and eventual home return pass the chaos staleness guards.
        self.sessions.get_mut(&sid).unwrap().phase = WorkerPhase::Done;
        self.thread_owner.remove(&(node, tid));
        self.defer(DeferredOp::ReplaceValidSession {
            program,
            old: sid,
            new: new_sid,
        });

        let frame = match encode_state_pooled(&self.buf_pool, &state) {
            Ok(f) => f,
            Err(e) => {
                self.fail_session(sid, format!("roam state encode failed: {e}"), ctx.now());
                return;
            }
        };
        debug_assert_eq!(frame.len() as u64, state.wire_bytes());

        self.ship_segment(
            node,
            elapsed + capture_ns,
            StagedSegment {
                dest,
                info,
                frame,
                seeds,
                bundled,
                class_bytes,
                capture_ns,
            },
            ctx,
        );
    }
}

/// Split a transfer window between its state and class portions,
/// proportionally to their byte counts. Integer division rounds the class
/// share down and the remainder goes to the state share, so the two
/// portions always sum to the exact window and
/// [`crate::metrics::MigrationTimings::latency_ns`] is conserved.
pub(super) fn split_transfer_window(window: u64, state_bytes: u64, class_bytes: u64) -> (u64, u64) {
    let total_b = (state_bytes + class_bytes).max(1);
    let class_ns = window * class_bytes / total_b;
    (window - class_ns, class_ns)
}

#[cfg(test)]
mod tests {
    use super::split_transfer_window;

    #[test]
    fn transfer_window_split_is_conserved() {
        // Odd byte ratios used to leave up to 1 ns unaccounted.
        for (window, state, class) in [
            (1_000_003u64, 7u64, 3u64),
            (999_999, 1, 2),
            (5, 3, 3),
            (17, 0, 9),
            (17, 9, 0),
            (0, 4, 4),
            (123_456_789, 1_000_000, 333_333),
        ] {
            let (s, c) = split_transfer_window(window, state, class);
            assert_eq!(s + c, window, "window={window} state={state} class={class}");
        }
        // Degenerate zero-byte message: the whole window is state time.
        assert_eq!(split_transfer_window(42, 0, 0), (42, 0));
    }
}
