//! The elastic-pool controller: periodic policy ticks, cold-start
//! provisioning, drain-by-migration scale-in, and crash replacement.
//!
//! Each pool runs a controller loop as a self-rescheduling
//! [`Msg::PoolTick`] timer on node 0, so every scaling decision happens at
//! a definite point in the `(time, seq, dst)` delivery order — identical
//! under both schedulers, and replayable bit-for-bit from the seed. A
//! tick, in order:
//!
//! 1. tops the pool back up to its base size (crash replacement);
//! 2. steps the membership toward the [`ScalePolicy`](super::pool::ScalePolicy)'s
//!    target size — scale-out covers the full gap in one tick (a burst
//!    that needs five members must not wait five ticks); each spawn
//!    enters `Provisioning` and becomes placeable only after its cold
//!    start elapses ([`Msg::PoolReady`]); scale-in marks the newest live
//!    members `Draining`;
//! 3. pushes each draining member's hosted stacks off via whole-stack
//!    roaming (the `engine/migrate.rs` machinery — sessions are walked in
//!    ascending id order so targets are deterministic) and retires
//!    members with nothing left;
//! 4. reschedules itself unless the pool is quiescent (all programs done,
//!    nothing provisioning or draining, size back at base).

use sod_net::SimCtx;

use crate::metrics::{percentile_nearest_rank, PoolReport};
use crate::msg::{Msg, SessionId};
use crate::node::Node;

use super::pool::{MemberState, PoolMember, PoolRuntime, PoolSpec, POOL_DEST_BASE};
use super::session::WorkerPhase;
use super::Cluster;

impl Cluster {
    /// Register an elastic pool and provision its base members
    /// immediately (they are live from t = 0; only later spawns pay the
    /// cold start). Must be called before the simulator is built, so the
    /// topology can be sized to `declared + Σ base`. Returns the pool
    /// index — plans target it via [`POOL_DEST_BASE`]` + index`.
    pub fn add_pool(&mut self, spec: PoolSpec) -> usize {
        let mut members = Vec::new();
        for i in 0..spec.base {
            let mut cfg = spec.template.clone();
            cfg.name = format!("{}-{}", spec.name, i);
            let node_id = self.nodes.len();
            self.nodes.push(Node::new(cfg));
            members.push(PoolMember {
                node: node_id,
                state: MemberState::Live,
            });
        }
        let base = spec.base as u64;
        self.pools.push(PoolRuntime {
            created: spec.base,
            spec,
            members,
            spawns: 0,
            drains: 0,
            pending: 0,
            peak: base,
            min: base,
        });
        self.pools.len() - 1
    }

    /// Whether a sentinel destination names a pool that can accept a
    /// placement at all (some member is live, or provisioning and soon
    /// will be). Capture-time check only — the actual member choice
    /// happens at ship time, via [`Cluster::resolve_pool_dest`].
    pub(super) fn pool_placeable(&self, dest: usize) -> bool {
        if dest < POOL_DEST_BASE {
            return true;
        }
        self.pools.get(dest - POOL_DEST_BASE).is_some_and(|p| {
            p.members
                .iter()
                .any(|m| matches!(m.state, MemberState::Live | MemberState::Provisioning))
        })
    }

    /// Whether a destination that may be a pool sentinel exposes JVMTI —
    /// judged by the pool's template (every member shares it), so the
    /// capture path is decided before the member is.
    pub(super) fn dest_has_jvmti(&self, dest: usize) -> bool {
        if dest < POOL_DEST_BASE {
            // Reachable from a parallel drain (plan capture on a worker
            // shard): read the peer's profile, owned or snapshotted.
            return self.peer_cfg(dest).has_jvmti;
        }
        self.pools
            .get(dest - POOL_DEST_BASE)
            .is_some_and(|p| p.spec.template.has_jvmti)
    }

    /// Resolve a segment destination that may be a pool sentinel to a
    /// concrete node: the live member with the fewest active sessions
    /// (ties to the lowest node id). Called at *ship* time, once the
    /// capture has completed, so members spawned while the stack was
    /// freezing are already candidates. `None` when the sentinel names no
    /// pool or the pool has no member left to try.
    pub(super) fn resolve_pool_dest(&self, dest: usize) -> Option<usize> {
        if dest < POOL_DEST_BASE {
            return Some(dest);
        }
        let pool = self.pools.get(dest - POOL_DEST_BASE)?;
        pool.live_members()
            .map(|n| (self.active_sessions_on(n), n))
            .min()
            .map(|(_, n)| n)
            .or_else(|| {
                // Ship time can race a crash that took every live member:
                // fall back to a provisioning one — the node exists, and
                // the restore simply queues behind its cold start.
                pool.members
                    .iter()
                    .filter(|m| m.state == MemberState::Provisioning)
                    .map(|m| (self.active_sessions_on(m.node), m.node))
                    .min()
                    .map(|(_, n)| n)
            })
    }

    /// Active migrated sessions hosted on `node` (sessions of finished
    /// programs don't count — their cleanup may lag under chaos), plus
    /// sessions routed here whose restore is still in flight. The
    /// in-flight term is what spreads a burst: every capture in the burst
    /// resolves before the first restore lands, so the hosted count alone
    /// would place the entire burst on one member.
    fn active_sessions_on(&self, node: usize) -> u64 {
        let hosted = self
            .sessions
            .values()
            .filter(|w| w.node == node)
            .filter(|w| !matches!(w.phase, WorkerPhase::Done))
            .filter(|w| !self.programs[w.program as usize].done)
            .count() as u64;
        hosted + self.nodes[node].inbound_sessions
    }

    /// The pool's load: active sessions across its live and draining
    /// members, plus captures staged toward the pool whose placement has
    /// not resolved yet. The pending term is what makes a burst visible
    /// to the policy in time: every arrival spends the capture latency
    /// (milliseconds) frozen before placement, and the controller must
    /// see that backlog *during* the freeze, not after. (Counting over
    /// the session map is order-independent.)
    fn pool_load(&self, pool: usize) -> u64 {
        self.pools[pool]
            .members
            .iter()
            .filter(|m| matches!(m.state, MemberState::Live | MemberState::Draining))
            .map(|m| self.active_sessions_on(m.node))
            .sum::<u64>()
            + self.pools[pool].pending
    }

    /// Spawn one member: grow the topology in lockstep with the node
    /// vector, mark it provisioning, and arm the cold-start timer.
    fn spawn_pool_member(&mut self, pool: usize, ctx: &mut SimCtx<'_, Msg>) {
        let node_id = ctx.topology().add_node();
        debug_assert_eq!(
            node_id,
            self.nodes.len(),
            "cluster and topology must grow in lockstep"
        );
        let p = &mut self.pools[pool];
        let mut cfg = p.spec.template.clone();
        cfg.name = format!("{}-{}", p.spec.name, p.created);
        p.created += 1;
        p.spawns += 1;
        let cold = p.spec.cold_start_ns;
        p.members.push(PoolMember {
            node: node_id,
            state: MemberState::Provisioning,
        });
        let mut n = Node::new(cfg);
        n.joined_at_ns = ctx.now();
        self.nodes.push(n);
        ctx.schedule(
            cold,
            node_id,
            Msg::PoolReady {
                pool,
                node: node_id,
            },
        );
    }

    /// Cold start elapsed: the member starts accepting placements.
    pub(super) fn pool_ready(&mut self, pool: usize, node: usize) {
        let p = &mut self.pools[pool];
        if let Some(m) = p.members.iter_mut().find(|m| m.node == node) {
            // A member crashed mid-provisioning is already retired; its
            // late ready-timer must not resurrect it.
            if m.state == MemberState::Provisioning {
                m.state = MemberState::Live;
            }
        }
        let alive = (p.count(MemberState::Live) + p.count(MemberState::Provisioning)) as u64;
        p.peak = p.peak.max(alive);
    }

    /// The controller tick (see the module docs for the step order).
    pub(super) fn pool_tick(&mut self, pool: usize, ctx: &mut SimCtx<'_, Msg>) {
        let now = ctx.now();
        let (base, max, tick_ns) = {
            let s = &self.pools[pool].spec;
            (s.base, s.max, s.tick_ns)
        };

        // 1. Top back up to base: a crashed member is replaceable.
        loop {
            let p = &self.pools[pool];
            let alive = p.count(MemberState::Live) + p.count(MemberState::Provisioning);
            if alive >= base || alive >= max {
                break;
            }
            self.spawn_pool_member(pool, ctx);
        }

        // 2. Step the membership toward the policy's target size. Scale-out
        // covers the full gap at once — a burst that needs five members
        // must not wait five ticks — while scale-in drains toward the
        // target (newest live member first: LIFO keeps the stable base
        // warm and the names predictable). Once every program is done the
        // target is `base`, whatever the policy would say.
        let live = self.pools[pool].count(MemberState::Live);
        let prov = self.pools[pool].count(MemberState::Provisioning);
        let load = self.pool_load(pool);
        let all_done = self.programs.iter().all(|p| p.done);
        let target = if all_done {
            base
        } else {
            self.policy_target(pool, live, prov, load, now)
        };
        let mut alive = live + prov;
        while alive < target.min(max) {
            self.spawn_pool_member(pool, ctx);
            alive += 1;
        }
        let mut live_now = live;
        while live_now > target.max(base) {
            match self.pools[pool]
                .members
                .iter_mut()
                .rev()
                .find(|m| m.state == MemberState::Live)
            {
                Some(m) => m.state = MemberState::Draining,
                None => break,
            }
            live_now -= 1;
        }

        // 3. Progress draining members: migrate hosted stacks off, retire
        // the empty ones.
        self.drain_pool_members(pool, now);

        // 4. Size extrema.
        {
            let p = &mut self.pools[pool];
            let live_now = p.count(MemberState::Live) as u64;
            let alive_now = live_now + p.count(MemberState::Provisioning) as u64;
            p.peak = p.peak.max(alive_now);
            p.min = p.min.min(live_now);
        }

        // 5. Reschedule until quiescent, so "drains back to base" is an
        // observable end state, not a promise.
        let p = &self.pools[pool];
        let quiescent = all_done
            && p.count(MemberState::Provisioning) == 0
            && p.count(MemberState::Draining) == 0
            && p.count(MemberState::Live) <= base;
        if !quiescent {
            ctx.schedule(tick_ns, 0, Msg::PoolTick { pool });
        }
    }

    /// The member count the pool's scale policy asks for right now (see
    /// [`super::pool::ScalePolicy`] for the semantics). A hold is
    /// expressed as the current live size; policies with a one-member
    /// scale-in cadence return `live - 1`.
    fn policy_target(&self, pool: usize, live: usize, prov: usize, load: u64, now: u64) -> usize {
        use super::pool::ScalePolicy::*;
        let (base, max) = (self.pools[pool].spec.base, self.pools[pool].spec.max);
        let alive = live + prov;
        match self.pools[pool].spec.policy {
            QueueDepth { high, low } => {
                // Enough members that nobody hosts more than `high`
                // sessions; shrink by one once load falls under `low` per
                // live member (the hysteresis band).
                let desired = load.div_ceil(high.max(1)) as usize;
                if desired > alive {
                    desired.clamp(base, max)
                } else if live > base && load < low * live as u64 {
                    live - 1
                } else {
                    live
                }
            }
            P99Breach { budget_ns } => {
                let tick_ns = self.pools[pool].spec.tick_ns;
                let mut lat: Vec<u64> = self
                    .programs
                    .iter()
                    .filter(|p| p.done && p.error.is_none())
                    .filter(|p| {
                        p.report.finished_at_ns > now.saturating_sub(tick_ns)
                            && p.report.finished_at_ns <= now
                    })
                    .map(|p| p.report.latency_ns())
                    .collect();
                lat.sort_unstable();
                // The breach signal is binary, not proportional: grow one
                // member per breaching tick.
                if !lat.is_empty() && percentile_nearest_rank(&lat, 99) > budget_ns {
                    (alive + 1).min(max)
                } else if live > base && load < live as u64 {
                    live - 1
                } else {
                    live
                }
            }
            StepLoad { per_node } => (load.div_ceil(per_node.max(1)) as usize).clamp(base, max),
        }
    }

    /// Move every stack off each draining member (whole-stack roam to the
    /// least-loaded live sibling, falling back to the session's home
    /// node) and retire members with nothing active left.
    fn drain_pool_members(&mut self, pool: usize, now: u64) {
        let draining: Vec<usize> = self.pools[pool]
            .members
            .iter()
            .filter(|m| m.state == MemberState::Draining)
            .map(|m| m.node)
            .collect();
        for dn in draining {
            let mut hosted: Vec<SessionId> = self
                .sessions
                .iter()
                .filter(|(_, w)| w.node == dn)
                .filter(|(_, w)| !matches!(w.phase, WorkerPhase::Done))
                .filter(|(_, w)| !self.programs[w.program as usize].done)
                .map(|(sid, _)| *sid)
                .collect();
            if hosted.is_empty() {
                let p = &mut self.pools[pool];
                if let Some(m) = p.members.iter_mut().find(|m| m.node == dn) {
                    m.state = MemberState::Retired;
                }
                p.drains += 1;
                self.nodes[dn].retired_at_ns = Some(now);
                continue;
            }
            // Ascending session-id order: the only iteration over the
            // session map here, made deterministic by sorting.
            hosted.sort_unstable();
            let mut targets: Vec<(usize, u64)> = self.pools[pool]
                .live_members()
                .map(|n| (n, self.active_sessions_on(n)))
                .collect();
            for sid in hosted {
                let (armed, roamable, home) = {
                    let w = &self.sessions[&sid];
                    (
                        w.pending_roam.is_some(),
                        matches!(w.phase, WorkerPhase::Running | WorkerPhase::Waiting),
                        w.home,
                    )
                };
                if armed || !roamable {
                    continue; // mid-protocol: a later tick re-arms it
                }
                let dest = targets
                    .iter()
                    .min_by_key(|&&(n, c)| (c, n))
                    .map(|&(n, _)| n)
                    .unwrap_or(home);
                if let Some(t) = targets.iter_mut().find(|(n, _)| *n == dest) {
                    t.1 += 1;
                }
                // The roamed stack is inbound at its target until the
                // restore lands (same in-flight accounting as pool
                // placement, balanced at session insert).
                self.nodes[dest].inbound_sessions += 1;
                self.sessions.get_mut(&sid).unwrap().pending_roam = Some(dest);
            }
        }
    }

    /// A chaos crash took `node` down: if it is a pool member, retire it
    /// (the next tick spawns a replacement). Called from the chaos hook —
    /// pure state, no messages.
    pub(super) fn note_pool_member_crashed(&mut self, node: usize, now: u64) {
        let mut retired = false;
        for p in &mut self.pools {
            if let Some(m) = p.members.iter_mut().find(|m| m.node == node) {
                if m.state != MemberState::Retired {
                    m.state = MemberState::Retired;
                    retired = true;
                }
            }
        }
        if retired {
            self.nodes[node].retired_at_ns = Some(now);
        }
    }

    /// Per-pool scaling counters for the cluster report.
    pub(super) fn pool_reports(&self) -> Vec<PoolReport> {
        self.pools
            .iter()
            .map(|p| PoolReport {
                name: p.spec.name.clone(),
                spawns: p.spawns,
                drains: p.drains,
                peak: p.peak,
                min: p.min,
                final_size: p.count(MemberState::Live) as u64,
            })
            .collect()
    }
}
