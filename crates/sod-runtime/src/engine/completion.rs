//! Segment completion: write-back flush, return-value routing to the next
//! workflow segment or back home, and `ForceEarlyReturn` resumption.

use sod_net::SimCtx;
use sod_vm::capture::CapturedValue;
use sod_vm::tooling::jvmti;
use sod_vm::value::Value;

use crate::costs;
use crate::msg::{Msg, ProgramId, ReturnTarget, SessionId};

use super::objects::{collect_flush, export_with_temps};
use super::session::{HomeSide, WorkerPhase};
use super::{Cluster, DeferredOp, CONTROL_MSG_BYTES, TEMP_ID_BASE};

impl Cluster {
    // ------------------------------------------------------------------
    // Segment completion: flush + return routing
    // ------------------------------------------------------------------

    pub(super) fn segment_completed(
        &mut self,
        node: usize,
        sid: SessionId,
        retval: Option<Value>,
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let (program, home) = {
            let w = &self.sessions[&sid];
            (w.program, w.home)
        };
        let batch = match collect_flush(&mut self.nodes[node].vm, retval, &self.buf_pool) {
            Ok(b) => b,
            Err(e) => {
                self.fail_session(
                    sid,
                    format!("completion flush encode failed: {e}"),
                    ctx.now(),
                );
                return;
            }
        };
        let flush_bytes = batch.payload_bytes();
        let retval_cap = retval.map(|v| export_with_temps(&self.nodes[node].vm, v));
        let needs_ack = matches!(retval_cap, Some(CapturedValue::HomeRef(h)) if h >= TEMP_ID_BASE);
        let ser = costs::serialize_ns(flush_bytes.max(1));
        let cost = elapsed + self.nodes[node].cfg.scale(ser);

        self.defer(DeferredOp::AddObjectBytes(program, flush_bytes));
        self.nodes[node].net_sent.object += flush_bytes;

        if needs_ack {
            self.sessions.get_mut(&sid).unwrap().phase =
                WorkerPhase::AwaitCompleteAck { retval: retval_cap };
            ctx.send_after(
                cost,
                node,
                home,
                flush_bytes + CONTROL_MSG_BYTES,
                Msg::Flush {
                    program,
                    batch,
                    ack_to: Some((node, sid)),
                },
            );
        } else {
            if !batch.is_empty() {
                ctx.send_after(
                    cost,
                    node,
                    home,
                    flush_bytes + CONTROL_MSG_BYTES,
                    Msg::Flush {
                        program,
                        batch,
                        ack_to: None,
                    },
                );
            }
            self.send_segment_return(sid, retval_cap, cost, ctx);
        }
    }

    pub(super) fn send_segment_return(
        &mut self,
        sid: SessionId,
        retval: Option<CapturedValue>,
        delay: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let Some(w) = self.sessions.get_mut(&sid) else {
            return;
        };
        w.phase = WorkerPhase::Done;
        let (program, node, target, pop) = (w.program, w.node, w.return_to, w.home_pop_frames);
        let dest = match target {
            ReturnTarget::Home { node } => node,
            ReturnTarget::Session { node, .. } => node,
        };
        ctx.send_after(
            delay,
            node,
            dest,
            CONTROL_MSG_BYTES,
            Msg::SegmentReturn {
                program,
                session: sid,
                target,
                retval,
                pop_frames: pop,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn segment_return(
        &mut self,
        node: usize,
        program: ProgramId,
        session: SessionId,
        target: ReturnTarget,
        retval: Option<CapturedValue>,
        pop_frames: usize,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        match target {
            ReturnTarget::Home { node: home } => {
                debug_assert_eq!(node, home);
                if self.chaos_enabled {
                    let p = &self.programs[program as usize];
                    if p.done || !p.valid_sessions.contains(&session) {
                        // Stale return: the program failed (home crash) or
                        // the episode was superseded by a deadline-driven
                        // retry/fallback before this value arrived. The
                        // home stack no longer expects it — drop it.
                        return;
                    }
                }
                {
                    let p = &mut self.programs[program as usize];
                    p.side = HomeSide::Idle;
                    p.valid_sessions.clear();
                    p.shipped.clear();
                }
                let tid = self.programs[program as usize].home_tid;
                let val = retval.map(|cv| match cv {
                    CapturedValue::Int(i) => Value::Int(i),
                    CapturedValue::Num(n) => Value::Num(n),
                    CapturedValue::Null => Value::Null,
                    CapturedValue::HomeRef(h) => Value::Ref(h),
                });
                {
                    let vm = &mut self.nodes[home].vm;
                    let t = vm.thread_mut(tid).expect("home thread");
                    let keep = t.frames.len().saturating_sub(pop_frames.saturating_sub(1));
                    t.frames.truncate(keep);
                    vm.force_early_return(tid, val).expect("force early return");
                }
                let finished = self.nodes[home].vm.thread(tid).unwrap().is_finished();
                if finished {
                    let v = match &self.nodes[home].vm.thread(tid).unwrap().state {
                        sod_vm::interp::ThreadState::Finished(v) => *v,
                        _ => None,
                    };
                    self.finish_program(program, v, ctx.now());
                } else {
                    ctx.schedule(
                        self.nodes[home].cfg.scale(jvmti::FORCE_EARLY_RETURN_NS),
                        home,
                        Msg::RunSlice { tid },
                    );
                }
            }
            ReturnTarget::Session { session, .. } => {
                // A chain whose lower segment failed (typed program
                // failure: arrival rejected, or its class request came up
                // empty) has nowhere to deliver: the session was retired
                // or never created, the program already carries the
                // error, and the stranded value is dropped.
                let Some(w) = self.sessions.get_mut(&session) else {
                    return;
                };
                if !matches!(w.phase, WorkerPhase::Waiting) {
                    return;
                }
                let tid = w.tid;
                w.phase = WorkerPhase::Running;
                let val = retval.map(|cv| match cv {
                    CapturedValue::Int(i) => Value::Int(i),
                    CapturedValue::Num(n) => Value::Num(n),
                    CapturedValue::Null => Value::Null,
                    CapturedValue::HomeRef(h) => match self.nodes[node].vm.heap.find_cached(h) {
                        Some(local) => Value::Ref(local),
                        None => Value::NulledRef(h),
                    },
                });
                deliver_return(&mut self.nodes[node].vm, tid, val);
                ctx.schedule(1_000, node, Msg::RunSlice { tid });
            }
        }
    }
}

/// Deliver a return value to a thread whose top frame is parked at the
/// invoke of a remotely executed method (workflow restore-ahead).
fn deliver_return(vm: &mut sod_vm::interp::Vm, tid: usize, val: Option<Value>) {
    let t = vm.thread_mut(tid).expect("waiting thread");
    let f = t.frames.last_mut().expect("waiting frame");
    f.pc += 1;
    if let Some(v) = val {
        f.ostack.push(v);
    }
    t.state = sod_vm::interp::ThreadState::Runnable;
}
