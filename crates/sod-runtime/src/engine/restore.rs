//! The migration protocol, destination side: segment arrival, bundled and
//! on-demand class loading, and both frame re-establishment protocols —
//! the breakpoint + `InvalidStateException` handler path (JVMTI nodes) and
//! the exact direct restore (workflow restore-ahead, no-JVMTI devices).

use std::collections::HashSet;
use std::sync::Arc;

use bytes::Bytes;
use sod_net::SimCtx;
use sod_vm::capture::{begin_handler_restore, restore_segment_direct};
use sod_vm::class::{ClassDef, ExKind};
use sod_vm::tooling::jvmti;
use sod_vm::wire::decode_state;

use crate::costs;
use crate::metrics::MigrationTimings;
use crate::msg::{Msg, SegmentInfo, SessionId};

use super::migrate::split_transfer_window;
use super::session::{Owner, WorkerPhase, WorkerSession};
use super::{Cluster, DeferredOp, CONTROL_MSG_BYTES};

impl Cluster {
    // ------------------------------------------------------------------
    // Segment arrival & restore
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    pub(super) fn state_arrived(
        &mut self,
        node: usize,
        info: SegmentInfo,
        state: Bytes,
        bundled: Vec<Arc<ClassDef>>,
        class_bytes: u64,
        capture_ns: u64,
        sent_at: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let arrived = ctx.now();
        // The state arrives as its wire frame, encoded once at capture:
        // the frame length is the state byte metric.
        let state_bytes = state.len() as u64;
        if self.chaos_enabled {
            let p = &self.programs[info.program as usize];
            if p.done || !p.valid_sessions.contains(&info.session) {
                // Superseded in flight (the home already failed, retried,
                // or fell back): this state will never restore. Credit it
                // where it landed so conservation closes.
                self.nodes[node].net_lost.state += state_bytes;
                return;
            }
        }
        let state = match decode_state(state.clone()) {
            Ok(decoded) => {
                // The frame's sole owner now: hand the buffer back to the
                // pool for the next capture.
                self.buf_pool.recycle(state);
                decoded
            }
            Err(e) => {
                // Malformed frame: typed rejection, never a panic. The
                // shipped bytes die here, like a stale arrival.
                self.defer(DeferredOp::FailProgram {
                    program: info.program,
                    error: format!("state decode failed: {e}"),
                    at: arrived,
                });
                self.nodes[node].net_lost.state += state_bytes;
                return;
            }
        };
        let window = arrived.saturating_sub(sent_at);
        let (transfer_state_ns, transfer_class_ns) =
            split_transfer_window(window, state_bytes, class_bytes);
        let timings = MigrationTimings {
            capture_ns,
            transfer_state_ns,
            transfer_class_ns,
            restore_ns: 0,
            state_bytes,
            class_bytes,
        };

        // Bundled classes load immediately (charged into the prep time).
        // Each load links a fresh pre-resolved operand form (empty inline
        // caches, fusion tables) on the destination: migrated stacks always
        // start cold and rewarm by executing — cache state is deliberately
        // never part of the wire image.
        let mut prep = self.nodes[node]
            .cfg
            .scale(costs::deserialize_ns(state_bytes));
        for c in &bundled {
            if !self.nodes[node].vm.has_class(&c.name) {
                let cb = self.class_size(c);
                prep += self.nodes[node].cfg.scale(costs::class_load_ns(cb));
                if let Err(e) = self.nodes[node].vm.load_class(c) {
                    self.defer(DeferredOp::FailProgram {
                        program: info.program,
                        error: format!("bundled class {:?} failed to load: {e:?}", c.name),
                        at: arrived,
                    });
                    // No session was created: the shipped state dies here.
                    self.nodes[node].net_lost.state += state_bytes;
                    return;
                }
            }
            self.nodes[node].repo.insert(c.name.clone(), c.clone());
        }

        // Remaining classes referenced by the segment ship on demand.
        let mut missing: HashSet<String> = HashSet::new();
        for f in &state.frames {
            if !self.nodes[node].vm.has_class(&f.class) {
                missing.insert(f.class.clone());
            }
        }
        for s in &state.statics {
            if !self.nodes[node].vm.has_class(&s.class) {
                missing.insert(s.class.clone());
            }
        }

        let sid = info.session;
        let session = WorkerSession {
            program: info.program,
            node,
            home: info.home,
            tid: usize::MAX,
            return_to: info.return_to,
            nframes: info.nframes,
            home_pop_frames: info.home_pop_frames,
            wait_for_return: info.wait_for_return,
            state,
            phase: WorkerPhase::AwaitClasses {
                missing: missing.clone(),
            },
            timings,
            arrived_at: arrived,
            class_wait_ns: 0,
            pending_roam: None,
            recorded: false,
        };
        self.sessions.insert(sid, session);
        // The shipped stack arrived: it is no longer in flight toward this
        // node (saturating — restores can land here via paths that never
        // counted, e.g. an explicit plan naming a member directly).
        self.nodes[node].inbound_sessions = self.nodes[node].inbound_sessions.saturating_sub(1);

        if missing.is_empty() {
            ctx.schedule(prep, node, Msg::BeginRestore { session: sid });
        } else {
            let home = info.home;
            // Request in sorted order: `HashSet` iteration order varies
            // between set instances, and request order decides event
            // sequence numbers — the determinism the fleet suite pins.
            let mut missing: Vec<String> = missing.into_iter().collect();
            missing.sort_unstable();
            for name in missing {
                self.defer(DeferredOp::AddClassesShipped(info.program, 1));
                ctx.send_after(
                    prep,
                    node,
                    home,
                    CONTROL_MSG_BYTES,
                    Msg::ClassRequest {
                        session: sid,
                        requester: node,
                        name,
                        program: info.program,
                    },
                );
            }
        }
    }

    /// A requested class file arrived: load it, publish it in the local
    /// repository, and either count down the restore wait or resume the
    /// running thread that missed it.
    pub(super) fn class_reply(
        &mut self,
        dst: usize,
        session: SessionId,
        class: Arc<ClassDef>,
        bytes: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let load = self.nodes[dst].cfg.scale(costs::class_load_ns(bytes));
        if !self.nodes[dst].vm.has_class(&class.name) {
            if let Err(e) = self.nodes[dst].vm.load_class(&class) {
                self.fail_session(
                    session,
                    format!("class {:?} failed to load: {e:?}", class.name),
                    ctx.now(),
                );
                return;
            }
        }
        self.nodes[dst]
            .repo
            .insert(class.name.clone(), class.clone());
        let Some(w) = self.sessions.get_mut(&session) else {
            return; // session already retired (e.g. its program failed)
        };
        if matches!(w.phase, WorkerPhase::Done) {
            return; // stale reply for a failed/finished session
        }
        match &mut w.phase {
            WorkerPhase::AwaitClasses { missing } => {
                missing.remove(&class.name);
                if missing.is_empty() {
                    let wait = ctx.now().saturating_sub(w.arrived_at);
                    w.timings.transfer_class_ns += wait;
                    w.class_wait_ns += wait;
                    ctx.schedule(load, dst, Msg::BeginRestore { session });
                }
            }
            _ => {
                // On-demand class during execution.
                let tid = w.tid;
                if let Err(e) = self.nodes[dst].vm.resume_class_loaded(tid) {
                    self.fail_session(
                        session,
                        format!("class-load resume failed: {e:?}"),
                        ctx.now(),
                    );
                    return;
                }
                ctx.schedule(load, dst, Msg::RunSlice { tid });
            }
        }
    }

    pub(super) fn begin_restore(&mut self, sid: SessionId, ctx: &mut SimCtx<'_, Msg>) {
        let (node, wait, nframes, has_jvmti) = {
            let Some(w) = self.sessions.get(&sid) else {
                return; // retired before restore began (program failed)
            };
            (
                w.node,
                w.wait_for_return,
                w.nframes,
                self.nodes[w.node].cfg.has_jvmti,
            )
        };
        if matches!(self.sessions[&sid].phase, WorkerPhase::Done) {
            return;
        }
        let use_handlers = has_jvmti && !wait;
        if use_handlers {
            // The paper's portable protocol: JNI-invoke the bottom method,
            // arm a breakpoint, and let InvalidStateException handlers
            // rebuild the frames (costs accrue through interpreted-mode
            // execution plus per-frame tooling charges).
            // Disjoint field borrows: the captured state stays in the
            // session map, never cloned per restore.
            let tid = begin_handler_restore(&mut self.nodes[node].vm, &self.sessions[&sid].state)
                .expect("handler restore begins");
            self.nodes[node].vm.threads[tid].interp_mode = true;
            self.thread_owner.insert((node, tid), Owner::Worker(sid));
            let w = self.sessions.get_mut(&sid).unwrap();
            w.tid = tid;
            w.phase = WorkerPhase::Restoring { restored: 0 };
            let fixed = self.nodes[node]
                .cfg
                .scale(costs::RESTORE_FIXED_NS + jvmti::JNI_INVOKE_NS);
            ctx.schedule(fixed, node, Msg::RunSlice { tid });
        } else {
            // Exact direct restore: restore-ahead workflow segments (must
            // not re-execute invokes) and no-JVMTI devices (Java-level
            // reflective restore).
            let tid = restore_segment_direct(&mut self.nodes[node].vm, &self.sessions[&sid].state)
                .expect("direct restore");
            self.thread_owner.insert((node, tid), Owner::Worker(sid));
            let base = if has_jvmti {
                costs::RESTORE_FIXED_NS + nframes as u64 * costs::RESTORE_PER_FRAME_NS
            } else {
                costs::PORTABLE_RESTORE_FIXED_NS
                    + nframes as u64 * costs::RESTORE_PER_FRAME_NS
                    + costs::deserialize_ns(self.sessions[&sid].timings.state_bytes)
            };
            let cost = self.nodes[node].cfg.scale(base);
            let arrived = self.sessions[&sid].arrived_at;
            let class_wait = self.sessions[&sid].class_wait_ns;
            let w = self.sessions.get_mut(&sid).unwrap();
            w.tid = tid;
            w.timings.restore_ns = (ctx.now() + cost)
                .saturating_sub(arrived)
                .saturating_sub(class_wait);
            w.recorded = true;
            let timings = w.timings;
            let program = w.program;
            if wait {
                w.phase = WorkerPhase::Waiting;
            } else {
                w.phase = WorkerPhase::Running;
                ctx.schedule(cost, node, Msg::RunSlice { tid });
            }
            self.defer(DeferredOp::PushMigration(program, timings));
        }
    }

    pub(super) fn restore_breakpoint(
        &mut self,
        node: usize,
        tid: usize,
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let sid = self.worker_of(node, tid);
        let (restored, nframes) = {
            let w = &self.sessions[&sid];
            match &w.phase {
                WorkerPhase::Restoring { restored, .. } => (*restored, w.nframes),
                _ => panic!("breakpoint outside restore"),
            }
        };
        // cbBreakpoint (paper Fig. 4b): set the next frame's breakpoint,
        // point the restore cursor at this frame, throw the restoration
        // exception, resume.
        self.nodes[node].vm.threads[tid]
            .restore_session
            .as_mut()
            .expect("restore session")
            .cursor = restored;
        if restored + 1 < nframes {
            let next = self.sessions[&sid].state.frames[restored + 1].clone();
            let vm = &mut self.nodes[node].vm;
            let ci = vm.class_idx(&next.class).expect("restored class");
            let mi = vm.classes[ci].method_idx(&next.method).expect("method");
            vm.set_breakpoint(tid, ci, mi, 0);
        }
        if let WorkerPhase::Restoring { restored: r, .. } =
            &mut self.sessions.get_mut(&sid).unwrap().phase
        {
            *r += 1;
        }
        self.nodes[node]
            .vm
            .throw_into(tid, ExKind::InvalidState, "restore", false)
            .expect("throw InvalidState");
        let charge = self.nodes[node]
            .cfg
            .scale(jvmti::SET_BREAKPOINT_NS + jvmti::THROW_INTO_NS + costs::RESTORE_PER_FRAME_NS);
        ctx.schedule(elapsed + charge, node, Msg::RunSlice { tid });
    }

    /// Handler-protocol restore finishes when every frame has been
    /// re-established and the thread executes a normal slice.
    pub(super) fn maybe_finish_restore(
        &mut self,
        node: usize,
        tid: usize,
        elapsed: u64,
        ctx: &mut SimCtx<'_, Msg>,
    ) {
        let Some(Owner::Worker(sid)) = self.thread_owner.get(&(node, tid)) else {
            return;
        };
        let sid = *sid;
        let done = matches!(
            &self.sessions[&sid].phase,
            WorkerPhase::Restoring { restored, .. } if *restored >= self.sessions[&sid].nframes
        );
        if !done {
            return;
        }
        self.nodes[node].vm.threads[tid].interp_mode = false;
        let arrived = self.sessions[&sid].arrived_at;
        let class_wait = self.sessions[&sid].class_wait_ns;
        let w = self.sessions.get_mut(&sid).unwrap();
        w.timings.restore_ns = (ctx.now() + elapsed)
            .saturating_sub(arrived)
            .saturating_sub(class_wait);
        w.phase = WorkerPhase::Running;
        w.recorded = true;
        let timings = w.timings;
        let program = w.program;
        self.defer(DeferredOp::PushMigration(program, timings));
    }
}
