//! Engine hardening under fault injection: the regression suite for the
//! failure paths the chaos harness can reach. Before the harness existed,
//! a crashed destination or a lost `State` message left the home side
//! frozen forever (or tripped an `expect(..)`); these tests pin the typed
//! recovery behaviour — `FallbackToHome` resumes the retained home stack,
//! `Retry` re-ships the retained segments, and returns addressed to a
//! crashed home are dropped with the failure recorded, never a panic.

use sod::net::{MS, US};
use sod::preprocess::preprocess_sod;
use sod::scenario::{Chaos, Fleet, Plan, Scenario, When};
use sod::vm::value::Value;
use sod::workloads::programs::fib_class;
use sod::ScenarioReport;
use sod_runtime::node::NodeConfig;
use sod_runtime::RetryPolicy;

/// One Fib(16) program homed on `home`, migrating its top frames to
/// `worker` at 50 µs, declared as a fleet-of-one so failures are recorded
/// on the report instead of aborting the run.
fn offload_scenario(chaos: Chaos) -> ScenarioReport {
    let class = preprocess_sod(&fib_class()).expect("preprocess fib");
    Scenario::new()
        .slice_ns(10_000)
        .node("home", NodeConfig::cluster("home"))
        .deploys(&class)
        .node("worker", NodeConfig::cluster("worker"))
        .fleet(
            Fleet::new("Fib", "main", vec![Value::Int(16)])
                .programs(1)
                .migrate(When::At(50 * US), Plan::top_to("worker", 2)),
        )
        .chaos(chaos)
        .run()
        .expect("hardened engine must never panic under chaos")
}

#[test]
fn destination_crash_mid_migration_falls_back_to_home() {
    // The worker is dead before the shipped segment arrives and never
    // comes back: the State message is dropped at delivery. The home
    // side kept its frames (capture does not truncate), so the episode
    // deadline thaws the stack and the program completes locally.
    let r = offload_scenario(
        Chaos::new()
            .crash_at(0, "worker")
            .migration_timeout(2 * MS)
            .retry(RetryPolicy::FallbackToHome),
    );
    let p = &r.programs()[0];
    assert_eq!(p.error, None, "fallback must rescue the program");
    assert_eq!(p.report.result, Some(987), "recomputed at home");
    assert!(
        p.report.migrations.is_empty(),
        "the segment never restored anywhere"
    );
    assert_eq!(r.cluster.chaos.crashes, 1);
    assert_eq!(r.cluster.chaos.timeouts, 1);
    assert_eq!(r.cluster.chaos.fallbacks, 1);
    assert_eq!(r.cluster.chaos.retries, 0);
    assert!(
        r.cluster.total_lost().state > 0,
        "the dropped State payload must be credited as lost"
    );
    assert_eq!(r.cluster.completed, 1);
}

#[test]
fn destination_crash_with_retry_recovers_after_restart() {
    // Same crash, but the worker restarts before the deadline and the
    // policy is Retry: the first shipped State is dropped at the dead
    // worker, the deadline fires once, and the retained segments re-ship
    // under fresh session ids — the migration completes remotely on the
    // second attempt. The restart (8 ms) sits after the first State's
    // arrival and the deadline (20 ms) clears the real restore latency,
    // so exactly one attempt is lost and exactly one succeeds.
    let r = offload_scenario(
        Chaos::new()
            .crash_at(0, "worker")
            .restart_at(8 * MS, "worker")
            .migration_timeout(20 * MS)
            .retry(RetryPolicy::Retry { max_attempts: 3 }),
    );
    let p = &r.programs()[0];
    assert_eq!(p.error, None);
    assert_eq!(p.report.result, Some(987));
    assert_eq!(
        p.report.migrations.len(),
        1,
        "the retry must actually restore on the worker"
    );
    assert_eq!(r.cluster.chaos.crashes, 1);
    assert_eq!(r.cluster.chaos.restarts, 1);
    assert_eq!(r.cluster.chaos.dropped_msgs, 1, "attempt 1's State drops");
    assert_eq!(r.cluster.chaos.timeouts, 1);
    assert_eq!(r.cluster.chaos.retries, 1);
    assert_eq!(r.cluster.chaos.fallbacks, 0);
    assert!(
        r.cluster.total_lost().state > 0,
        "the dropped first shipment must be credited as lost"
    );
}

#[test]
fn exhausted_retries_still_fall_back_instead_of_hanging() {
    // The worker never restarts: every retry times out too. After
    // `max_attempts` the engine must give up and thaw the home stack —
    // the program ends with a result, never frozen forever.
    let r = offload_scenario(
        Chaos::new()
            .crash_at(0, "worker")
            .migration_timeout(2 * MS)
            .retry(RetryPolicy::Retry { max_attempts: 2 }),
    );
    let p = &r.programs()[0];
    assert_eq!(p.error, None);
    assert_eq!(p.report.result, Some(987));
    assert_eq!(r.cluster.chaos.retries, 1, "attempt 2 is the last");
    assert_eq!(r.cluster.chaos.timeouts, 2);
    assert_eq!(r.cluster.chaos.fallbacks, 1, "then the episode falls back");
}

#[test]
fn partitioned_destination_times_out_and_falls_back() {
    // A partition (not a crash) cuts home ↔ worker before the segment
    // ships and never heals: the State drop is `Partitioned`, and the
    // same deadline machinery recovers the program.
    let r = offload_scenario(
        Chaos::new()
            .partition_at(0, "home", "worker")
            .migration_timeout(2 * MS),
    );
    let p = &r.programs()[0];
    assert_eq!(p.error, None);
    assert_eq!(p.report.result, Some(987));
    assert_eq!(r.cluster.chaos.partitions, 1);
    assert_eq!(r.cluster.chaos.fallbacks, 1);
    assert!(r.cluster.chaos.dropped_msgs > 0);
}

#[test]
fn home_crash_fails_the_program_typed_and_drops_the_chained_return() {
    // The segment chain executes remotely when the *home* crashes: the
    // program must fail immediately with a typed error naming the crash,
    // and the workers' eventual SegmentReturn to the dead home is dropped
    // (or rejected as stale after the restart) — never delivered into a
    // freed stack, never a panic, never a hang.
    let class = preprocess_sod(&fib_class()).expect("preprocess fib");
    let r = Scenario::new()
        .slice_ns(10_000)
        .node("home", NodeConfig::cluster("home"))
        .deploys(&class)
        .node("w0", NodeConfig::cluster("w0"))
        .node("w1", NodeConfig::cluster("w1"))
        .fleet(
            Fleet::new("Fib", "main", vec![Value::Int(16)])
                .programs(1)
                .migrate(When::At(50 * US), Plan::chain(&[("w0", 1), ("w1", 2)])),
        )
        .chaos(
            Chaos::new()
                .crash_at(100 * US, "home")
                .restart_at(20 * MS, "home"),
        )
        .run()
        .expect("home crash must not panic the run");
    let p = &r.programs()[0];
    assert_eq!(p.report.result, None);
    let err = p.error.as_deref().expect("typed failure recorded");
    assert!(
        err.contains("crashed"),
        "error must name the crash, got: {err}"
    );
    assert_eq!(r.cluster.failed, 1);
    assert_eq!(r.cluster.completed, 0);
    assert_eq!(r.cluster.chaos.crashes, 1);
}
