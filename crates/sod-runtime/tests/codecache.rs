//! The cache-aware code-shipping layer: warm-worker migrations ship zero
//! redundant classes, byte accounting is conserved across the engine's
//! protocol modules, and every `CodeShipping` policy computes identical
//! results while trading eager bytes against on-demand round trips.

use sod::net::MS;
use sod::preprocess::preprocess_sod;
use sod::scenario::{Plan, Scenario, When};
use sod::{CodeShipping, NetBytes, ScenarioReport};
use sod_asm::builder::ClassBuilder;
use sod_net::SEC;
use sod_runtime::node::NodeConfig;
use sod_vm::class::ClassDef;
use sod_vm::instr::Cmp;
use sod_vm::value::{TypeOf, Value};

/// A worker-bound compute class whose `work` frame writes a heap object,
/// so migrations also exercise object faults and write-back flushes.
fn app_class() -> ClassDef {
    let c = ClassBuilder::new("App")
        .field("count", TypeOf::Int)
        .method("work", &["n", "box"], |m| {
            m.line();
            m.pushi(0).store("acc");
            m.pushi(0).store("i");
            m.line();
            m.label("loop");
            m.load("i").load("n").if_cmp(Cmp::Ge, "done");
            m.line();
            m.load("acc").load("i").add().store("acc");
            m.line();
            m.load("i").pushi(1).add().store("i").goto("loop");
            m.line();
            m.label("done");
            m.load("box").load("acc").putfield("count");
            m.line();
            m.load("acc").retv();
        })
        .method("main", &["n"], |m| {
            m.line();
            m.new_obj("App").store("box");
            m.line();
            m.load("n").load("box").invoke("App", "work", 2).store("r");
            m.line();
            m.load("r").retv();
        })
        .build()
        .unwrap();
    preprocess_sod(&c).unwrap()
}

fn expected(n: i64) -> i64 {
    (0..n).sum::<i64>()
}

/// Two identical programs on one home, offloading to the same worker one
/// after the other — the smallest warm-worker fleet.
fn two_program_scenario(policy: CodeShipping) -> ScenarioReport {
    let class = app_class();
    let n = 1_000_000i64;
    Scenario::new()
        .code_shipping(policy)
        .node("home", NodeConfig::cluster("home"))
        .deploys(&class)
        .node("worker", NodeConfig::cluster("worker"))
        .program("App", "main", vec![Value::Int(n)])
        .migrate(When::At(MS), Plan::top_to("worker", 1))
        // The second program starts long after the first one's classes
        // landed on the worker, so its migration meets a warm peer cache.
        .program("App", "main", vec![Value::Int(n)])
        .starts_at(SEC)
        .migrate(When::At(SEC + MS), Plan::top_to("worker", 1))
        .run()
        .unwrap()
}

#[test]
fn warm_worker_remigration_ships_zero_redundant_classes() {
    let report = two_program_scenario(CodeShipping::BundleTop);
    let n = 1_000_000i64;
    for p in report.programs() {
        assert_eq!(p.report.result, Some(expected(n)));
        assert_eq!(p.report.migrations.len(), 1);
    }
    let cold = report.report(0);
    let warm = report.report(1);
    // The cold migration pays for the class once...
    assert!(
        cold.migrations[0].class_bytes > 0 || cold.classes_shipped > 0,
        "first migration must ship code somehow"
    );
    assert!(cold.class_bytes > 0);
    // ...and the warm one provably re-ships nothing.
    assert_eq!(warm.migrations[0].class_bytes, 0, "no redundant bundle");
    assert_eq!(warm.classes_shipped, 0, "no on-demand requests either");
    assert_eq!(warm.class_bytes, 0);
    // The pre-cache baseline pays the bundle both times.
    let baseline = two_program_scenario(CodeShipping::BundleAlways);
    assert!(baseline.report(1).migrations[0].class_bytes > 0);
    assert_eq!(baseline.report(1).result, Some(expected(n)));
}

#[test]
fn byte_accounting_is_conserved_across_protocol_modules() {
    for policy in [
        CodeShipping::BundleTop,
        CodeShipping::BundleAlways,
        CodeShipping::BundleReachable,
        CodeShipping::Never,
    ] {
        let report = two_program_scenario(policy);
        let sent: NetBytes = report.cluster.total_sent();
        let state: u64 = report
            .programs()
            .iter()
            .flat_map(|p| p.report.migrations.iter())
            .map(|m| m.state_bytes)
            .sum();
        let class: u64 = report.programs().iter().map(|p| p.report.class_bytes).sum();
        let object: u64 = report
            .programs()
            .iter()
            .map(|p| p.report.object_bytes)
            .sum();
        assert_eq!(sent.state, state, "{policy:?}: state bytes must balance");
        assert_eq!(sent.class, class, "{policy:?}: class bytes must balance");
        assert_eq!(sent.object, object, "{policy:?}: object bytes must balance");
        assert_eq!(sent.total(), state + class + object);
        // The migrations' bundled share never exceeds the class total.
        let bundled: u64 = report
            .programs()
            .iter()
            .flat_map(|p| p.report.migrations.iter())
            .map(|m| m.class_bytes)
            .sum();
        assert!(bundled <= class);
    }
}

/// A multi-segment plan whose segments share a destination must not
/// bundle the same class once per segment: the peer cache is credited at
/// staging time, so within one total migration every class ships at most
/// once.
#[test]
fn whole_stack_plan_bundles_each_class_once() {
    use sod::vm::wire::class_wire_bytes;
    use sod::workloads::programs::{handler_fleet_classes, handler_fleet_expected};
    let classes: Vec<_> = handler_fleet_classes()
        .iter()
        .map(|c| preprocess_sod(c).unwrap())
        .collect();
    let each_once: u64 = classes.iter().map(class_wire_bytes).sum();
    let n = 400_000i64;
    let mut sc = Scenario::new()
        .code_shipping(CodeShipping::BundleReachable)
        .node("home", NodeConfig::cluster("home"));
    for c in &classes {
        sc = sc.deploys(c);
    }
    let report = sc
        .node("worker", NodeConfig::cluster("worker"))
        .program("Gateway", "main", vec![Value::Int(n)])
        // Fig. 1b: both segments go to the worker; their reachable
        // closures overlap in Kernel and Mix.
        .migrate(When::At(MS), Plan::whole_stack_to("worker"))
        .run()
        .unwrap();
    let r = report.first();
    assert_eq!(r.result, Some(handler_fleet_expected(n)));
    assert_eq!(r.migrations.len(), 2, "both segments restore");
    let bundled: u64 = r.migrations.iter().map(|m| m.class_bytes).sum();
    assert_eq!(
        bundled, each_once,
        "overlapping closures must not re-bundle shared classes"
    );
    assert_eq!(r.classes_shipped, 0, "nothing left for the on-demand path");
}

/// A class the home repository does not hold is a *typed* program
/// failure — `ScenarioError::Program` (and `ProgramRun.error` for fleet
/// members) — not an engine panic, on both sides of the class protocol:
/// the home node's lazy load and the worker's on-demand `ClassRequest`.
#[test]
fn missing_classes_fail_the_program_not_the_engine() {
    use sod::scenario::ScenarioError;
    use sod::workloads::programs::handler_fleet_classes;
    let classes: Vec<_> = handler_fleet_classes()
        .iter()
        .map(|c| preprocess_sod(c).unwrap())
        .collect();
    let deploy_without_mix = |mut sc: Scenario| -> Scenario {
        for c in classes.iter().filter(|c| c.name != "Mix") {
            sc = sc.deploys(c);
        }
        sc
    };

    // Home side: `Kernel.work` finishes its loop at home and invokes the
    // missing `Mix` — the lazy local load fails the program.
    let err = deploy_without_mix(Scenario::new().node("home", NodeConfig::cluster("home")))
        .program("Gateway", "main", vec![Value::Int(100)])
        .run()
        .unwrap_err();
    match err {
        ScenarioError::Program { error, .. } => {
            assert!(error.contains("class not found"), "got: {error}")
        }
        other => panic!("expected a typed program failure, got {other:?}"),
    }

    // Worker side: the migrated frame requests `Mix` from a home that
    // does not have it — the `ClassRequest` endpoint fails the program
    // instead of panicking with `home node missing class`.
    let err = deploy_without_mix(Scenario::new().node("home", NodeConfig::cluster("home")))
        .node("worker", NodeConfig::cluster("worker"))
        .program("Gateway", "main", vec![Value::Int(400_000)])
        .migrate(When::At(MS), Plan::top_to("worker", 1))
        .run()
        .unwrap_err();
    match err {
        ScenarioError::Program { error, .. } => {
            assert!(error.contains("missing class"), "got: {error}")
        }
        other => panic!("expected a typed program failure, got {other:?}"),
    }
}

/// A plan whose segments all request zero frames migrates nothing: the
/// thread resumes where it stopped and the program completes normally —
/// the engine must not abort at capture (no-abort fleet semantics).
#[test]
fn zero_frame_plan_is_a_no_op_not_an_abort() {
    let class = app_class();
    let n = 100_000i64;
    let report = Scenario::new()
        .node("home", NodeConfig::cluster("home"))
        .deploys(&class)
        .node("worker", NodeConfig::cluster("worker"))
        .program("App", "main", vec![Value::Int(n)])
        .migrate(When::At(MS), Plan::top_to("worker", 0))
        .run()
        .unwrap();
    let r = report.first();
    assert_eq!(r.result, Some(expected(n)));
    assert!(r.migrations.is_empty(), "nothing must actually migrate");
}

/// A chained plan whose *lower* segment fails — its class request is
/// served by a home that cannot provide the class — must record a typed
/// failure and silently drop the surviving upper segment's return, not
/// panic the engine when that return reaches the retired session.
#[test]
fn chained_return_to_a_failed_session_is_dropped() {
    use sod::net::Topology;
    use sod::workloads::programs::handler_fleet_classes;
    use sod_runtime::engine::{Cluster, SodSim};
    use sod_runtime::{MigrationPlan, Node};
    let classes: Vec<_> = handler_fleet_classes()
        .iter()
        .map(|c| preprocess_sod(c).unwrap())
        .collect();
    let mut home = Node::new(NodeConfig::cluster("home"));
    // Load everything into the home VM but publish only Kernel and Mix in
    // the repository: Gateway runs at home yet can never be served out.
    for c in &classes {
        home.vm.load_class(c).unwrap();
        if c.name != "Gateway" {
            home.stage(c);
        }
    }
    let w1 = Node::new(NodeConfig::cluster("w1"));
    let w2 = Node::new(NodeConfig::cluster("w2"));
    let mut cluster = Cluster::new(vec![home, w1, w2]);
    let pid = cluster.add_program(0, "Gateway", "main", vec![Value::Int(200_000)]);
    let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(3));
    sim.start_program(0, pid);
    // Top frame (Kernel.work) to w1; residual (Gateway.main) to w2, whose
    // arrival requests Gateway from home and fails. w1 still completes and
    // returns into the dead chained session.
    sim.migrate_at(MS, pid, MigrationPlan::chain(&[(1, 1), (2, 1)]));
    sim.run();
    let p = sim.program(pid);
    assert!(p.done, "the failed chain must still finish the program");
    let err = p.error.as_deref().expect("typed failure recorded");
    assert!(err.contains("missing class"), "got: {err}");
}

/// One multi-class program (Gateway -> Kernel -> Mix) migrating its
/// compute frame: every policy computes the same result while the eager
/// versus on-demand split moves exactly as documented.
#[test]
fn code_shipping_policies_trade_bundles_for_round_trips() {
    use sod::workloads::programs::{handler_fleet_classes, handler_fleet_expected};
    let n = 200_000i64;
    let run = |policy: CodeShipping| -> (Option<i64>, u64, u64, u64) {
        let classes: Vec<_> = handler_fleet_classes()
            .iter()
            .map(|c| preprocess_sod(c).unwrap())
            .collect();
        let mut sc = Scenario::new()
            .code_shipping(policy)
            .node("home", NodeConfig::cluster("home"));
        for c in &classes {
            sc = sc.deploys(c);
        }
        let report = sc
            .node("worker", NodeConfig::cluster("worker"))
            .program("Gateway", "main", vec![Value::Int(n)])
            .migrate(When::At(MS), Plan::top_to("worker", 1))
            .run()
            .unwrap();
        let r = report.first();
        (
            r.result,
            r.migrations[0].class_bytes,
            r.classes_shipped,
            r.class_bytes,
        )
    };

    let (top_res, top_bundle, top_on_demand, top_total) = run(CodeShipping::BundleTop);
    let (never_res, never_bundle, never_on_demand, never_total) = run(CodeShipping::Never);
    let (reach_res, reach_bundle, reach_on_demand, reach_total) =
        run(CodeShipping::BundleReachable);

    let want = Some(handler_fleet_expected(n));
    assert_eq!(top_res, want);
    assert_eq!(never_res, want);
    assert_eq!(reach_res, want);

    // BundleTop: Kernel travels with the state; Mix goes on demand.
    assert!(top_bundle > 0);
    assert_eq!(top_on_demand, 1);
    // Never: nothing eager, both Kernel and Mix on demand.
    assert_eq!(never_bundle, 0);
    assert_eq!(never_on_demand, 2);
    assert!(never_total > 0, "on-demand replies still count bytes");
    // BundleReachable: Kernel *and* Mix eager, no round trips at all.
    assert!(reach_bundle > top_bundle);
    assert_eq!(reach_on_demand, 0);
    assert!(reach_total >= top_total);
}
