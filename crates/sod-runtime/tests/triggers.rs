//! Unit tests for policy-driven migration triggers: each `Trigger`
//! variant firing — and deliberately *not* firing — deterministically,
//! exercised at the engine level (`Cluster` + `SodSim`).

use sod_asm::builder::ClassBuilder;
use sod_net::Topology;
use sod_preprocess::preprocess_sod;
use sod_runtime::engine::{Cluster, SodSim};
use sod_runtime::node::{Node, NodeConfig};
use sod_runtime::trigger::{ArmedTrigger, Trigger};
use sod_runtime::{MigrationPlan, RunReport};
use sod_vm::class::ClassDef;
use sod_vm::instr::Cmp;
use sod_vm::value::{TypeOf, Value};

/// work(n) sums 0..n while touching a heap box (so a migrated segment
/// faults on objects); main adds 5.
fn app_class() -> ClassDef {
    let c = ClassBuilder::new("App")
        .field("count", TypeOf::Int)
        .method("work", &["n", "box"], |m| {
            m.line();
            m.pushi(0).store("acc");
            m.pushi(0).store("i");
            m.line();
            m.label("loop");
            m.load("i").load("n").if_cmp(Cmp::Ge, "done");
            m.line();
            m.load("box").load("i").putfield("count");
            m.line();
            m.load("acc").load("i").add().store("acc");
            m.line();
            m.load("i").pushi(1).add().store("i").goto("loop");
            m.line();
            m.label("done");
            m.load("acc").retv();
        })
        .method("main", &["n"], |m| {
            m.line();
            m.new_obj("App").store("box");
            m.line();
            m.load("n").load("box").invoke("App", "work", 2).store("r");
            m.line();
            m.load("r").pushi(5).add().retv();
        })
        .build()
        .unwrap();
    preprocess_sod(&c).unwrap()
}

fn expected(n: i64) -> i64 {
    (0..n).sum::<i64>() + 5
}

const N: i64 = 400_000;

/// Two cluster nodes, the program armed with `trigger`; returns its report.
fn run_armed(trigger: Option<ArmedTrigger>) -> RunReport {
    let class = app_class();
    let mut home = Node::new(NodeConfig::cluster("home"));
    home.deploy(&class).unwrap();
    let worker = Node::new(NodeConfig::cluster("worker"));
    let mut cluster = Cluster::new(vec![home, worker]);
    let pid = cluster.add_program(0, "App", "main", vec![Value::Int(N)]);
    if let Some(t) = trigger {
        cluster.arm_trigger(pid, t);
    }
    let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(2));
    sim.start_program(0, pid);
    sim.run();
    assert_eq!(sim.program(pid).error, None);
    sim.report(pid).clone()
}

#[test]
fn at_trigger_fires_with_armed_plan() {
    let r = run_armed(Some(ArmedTrigger::with_plan(
        Trigger::At(2 * sod_net::MS),
        MigrationPlan::top_to(1, 1),
    )));
    assert_eq!(r.result, Some(expected(N)));
    assert_eq!(r.migrations.len(), 1, "At trigger must fire once");
}

#[test]
fn at_trigger_without_plan_never_fires() {
    // `At` has no destination of its own; armed without a plan it is inert.
    let r = run_armed(Some(ArmedTrigger::new(Trigger::At(2 * sod_net::MS))));
    assert_eq!(r.result, Some(expected(N)));
    assert!(r.migrations.is_empty());
}

#[test]
fn at_trigger_past_completion_does_not_fire() {
    let r = run_armed(Some(ArmedTrigger::with_plan(
        Trigger::At(u64::MAX / 2),
        MigrationPlan::top_to(1, 1),
    )));
    assert_eq!(r.result, Some(expected(N)));
    assert!(r.migrations.is_empty(), "deadline far beyond completion");
}

#[test]
fn cpu_slice_budget_fires_exactly_once() {
    let r = run_armed(Some(ArmedTrigger::new(Trigger::OnCpuSliceBudget {
        slices: 10,
        to: 1,
    })));
    assert_eq!(r.result, Some(expected(N)));
    assert_eq!(r.migrations.len(), 1, "budget exhausted → one migration");
}

#[test]
fn cpu_slice_budget_untouched_does_not_fire() {
    let r = run_armed(Some(ArmedTrigger::new(Trigger::OnCpuSliceBudget {
        slices: u64::MAX,
        to: 1,
    })));
    assert_eq!(r.result, Some(expected(N)));
    assert!(r.migrations.is_empty());
}

#[test]
fn cpu_slice_budget_runs_are_deterministic() {
    let t = || ArmedTrigger::new(Trigger::OnCpuSliceBudget { slices: 25, to: 1 });
    let a = run_armed(Some(t()));
    let b = run_armed(Some(t()));
    assert_eq!(a, b, "same policy, same topology → identical report");
    assert_eq!(a.migrations.len(), 1);
}

#[test]
fn object_fault_threshold_fires_after_remote_faults() {
    // First, a CPU-budget migration ships `work` to the worker, which
    // faults on `box` every iteration's PutField — crossing the fault
    // threshold. The threshold trigger then fires once control is back
    // home, producing a second migration.
    let faulty = run_armed(Some(ArmedTrigger::new(Trigger::OnCpuSliceBudget {
        slices: 10,
        to: 1,
    })));
    assert!(
        faulty.object_faults >= 1,
        "remote segment must fault on the box"
    );

    let class = app_class();
    let mut home = Node::new(NodeConfig::cluster("home"));
    home.deploy(&class).unwrap();
    let worker = Node::new(NodeConfig::cluster("worker"));
    let mut cluster = Cluster::new(vec![home, worker]);
    let pid = cluster.add_program(0, "App", "main", vec![Value::Int(N)]);
    cluster.arm_trigger(
        pid,
        ArmedTrigger::new(Trigger::OnCpuSliceBudget { slices: 10, to: 1 }),
    );
    cluster.arm_trigger(
        pid,
        ArmedTrigger::new(Trigger::OnObjectFaults {
            threshold: 1,
            to: 1,
        }),
    );
    let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(2));
    sim.start_program(0, pid);
    sim.run();
    assert_eq!(sim.program(pid).error, None);
    let r = sim.report(pid);
    assert_eq!(r.result, Some(expected(N)));
    assert_eq!(
        r.migrations.len(),
        2,
        "budget migration then fault-threshold migration"
    );
}

#[test]
fn object_fault_threshold_alone_never_fires_at_home() {
    // Without a prior migration there are no remote faults, so the
    // threshold is never crossed.
    let r = run_armed(Some(ArmedTrigger::new(Trigger::OnObjectFaults {
        threshold: 1,
        to: 1,
    })));
    assert_eq!(r.result, Some(expected(N)));
    assert_eq!(r.object_faults, 0);
    assert!(r.migrations.is_empty());
}

#[test]
fn oom_trigger_rescues_and_is_one_shot() {
    let c = ClassBuilder::new("Big")
        .method("alloc", &["n"], |m| {
            m.line();
            m.load("n").newarr().store("a");
            m.line();
            m.load("a").arrlen().retv();
        })
        .method("main", &["n"], |m| {
            m.line();
            m.load("n").invoke("Big", "alloc", 1).store("r");
            m.line();
            m.load("r").retv();
        })
        .build()
        .unwrap();
    let class = preprocess_sod(&c).unwrap();
    let mut cfg = NodeConfig::device("phone");
    cfg.mem_limit = Some(4 << 20);
    let mut device = Node::new(cfg);
    device.deploy(&class).unwrap();
    let cloud = Node::new(NodeConfig::cloud("cloud"));
    let mut cluster = Cluster::new(vec![device, cloud]);
    let pid = cluster.add_program(0, "Big", "main", vec![Value::Int(2_000_000)]);
    cluster.arm_trigger(pid, ArmedTrigger::new(Trigger::OnOom { to: 1 }));
    let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(2));
    sim.start_program(0, pid);
    sim.run();
    assert_eq!(sim.program(pid).error, None, "offload must rescue the OOM");
    let r = sim.report(pid);
    assert_eq!(r.result, Some(2_000_000));
    assert_eq!(r.migrations.len(), 1, "the trigger fires exactly once");
}

#[test]
fn oom_trigger_without_pressure_does_not_fire() {
    // Plenty of heap: the allocation succeeds locally and the armed OnOom
    // trigger stays silent.
    let c = ClassBuilder::new("Big")
        .method("main", &["n"], |m| {
            m.line();
            m.load("n").newarr().store("a");
            m.line();
            m.load("a").arrlen().retv();
        })
        .build()
        .unwrap();
    let class = preprocess_sod(&c).unwrap();
    let mut device = Node::new(NodeConfig::cluster("roomy"));
    device.deploy(&class).unwrap();
    let cloud = Node::new(NodeConfig::cloud("cloud"));
    let mut cluster = Cluster::new(vec![device, cloud]);
    let pid = cluster.add_program(0, "Big", "main", vec![Value::Int(1_000)]);
    cluster.arm_trigger(pid, ArmedTrigger::new(Trigger::OnOom { to: 1 }));
    let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(2));
    sim.start_program(0, pid);
    sim.run();
    assert_eq!(sim.program(pid).error, None);
    let r = sim.report(pid);
    assert_eq!(r.result, Some(1_000));
    assert!(r.migrations.is_empty());
}
