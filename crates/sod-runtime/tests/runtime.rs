//! Integration tests for the SODEE runtime: the paper's execution patterns
//! (Fig. 1a/b/c), object faulting across nodes, roaming, exception-driven
//! offload, NFS locality, and device-profile migrations.
//!
//! All scenarios are described through the `sod::scenario` builder (the
//! facade crate is a dev-dependency); engine-level wiring is covered by
//! `tests/triggers.rs` and the unit tests in `src/`.

use sod::scenario::{Plan, Scenario, When};
use sod_asm::builder::ClassBuilder;
use sod_net::{LinkSpec, MS, SEC};
use sod_preprocess::preprocess_sod;
use sod_runtime::node::NodeConfig;
use sod_runtime::FetchPolicy;
use sod_vm::class::ClassDef;
use sod_vm::instr::Cmp;
use sod_vm::value::{TypeOf, Value};

/// App.main(n): r = work(n) + 5 where work loops n times accumulating i and
/// writing a counter object field (so migration leaves heap state behind).
fn app_class() -> ClassDef {
    let c = ClassBuilder::new("App")
        .field("count", TypeOf::Int)
        .static_field("last", TypeOf::Int)
        .method("work", &["n", "box"], |m| {
            m.line();
            m.pushi(0).store("acc");
            m.pushi(0).store("i");
            m.line();
            m.label("loop");
            m.load("i").load("n").if_cmp(Cmp::Ge, "done");
            m.line();
            m.load("acc").load("i").add().store("acc");
            m.line();
            m.load("i").pushi(1).add().store("i").goto("loop");
            m.line();
            m.label("done");
            m.load("box").load("acc").putfield("count");
            m.line();
            m.load("acc").putstatic("App", "last");
            m.line();
            m.load("acc").retv();
        })
        .method("main", &["n"], |m| {
            m.line();
            m.new_obj("App").store("box");
            m.line();
            m.load("n").load("box").invoke("App", "work", 2).store("r");
            m.line();
            m.load("box").getfield("count").store("chk");
            m.line();
            m.load("r").load("chk").add().load("r").sub().store("same"); // == r
            m.line();
            m.load("same").pushi(5).add().retv();
        })
        .build()
        .unwrap();
    preprocess_sod(&c).unwrap()
}

fn expected(n: i64) -> i64 {
    (0..n).sum::<i64>() + 5
}

/// `n0` holds the application; workers receive classes on demand.
fn scenario_of(n_nodes: usize, class: &ClassDef) -> Scenario {
    let mut sc = Scenario::new();
    for i in 0..n_nodes {
        sc = sc.node(format!("n{i}"), NodeConfig::cluster(format!("n{i}")));
        if i == 0 {
            sc = sc.deploys(class);
        }
    }
    sc
}

#[test]
fn no_migration_baseline() {
    let class = app_class();
    let report = scenario_of(2, &class)
        .program("App", "main", vec![Value::Int(100_000)])
        .run()
        .unwrap();
    let r = report.first();
    assert_eq!(r.result, Some(expected(100_000)));
    assert!(r.migrations.is_empty());
    assert_eq!(r.object_faults, 0);
    assert!(r.finished_at_ns > 0);
}

#[test]
fn fig1a_top_segment_returns_home() {
    let class = app_class();
    let n = 1_000_000i64;
    let report = scenario_of(2, &class)
        .program("App", "main", vec![Value::Int(n)])
        .migrate(When::At(2 * MS), Plan::top_to("n1", 1))
        .run()
        .unwrap();
    let r = report.first();
    assert_eq!(r.result, Some(expected(n)));
    assert_eq!(r.migrations.len(), 1);
    let m = &r.migrations[0];
    assert!(m.capture_ns > 0, "capture must cost time");
    assert!(m.transfer_state_ns > 0, "transfer must cost time");
    assert!(m.restore_ns > 0, "restore must cost time");
    // The worker wrote box.count via PutField: the object faulted in and
    // the dirty value flushed home (checked via the program result, which
    // reads box.count at home after return).
    assert!(r.object_faults >= 1, "worker must fault on `box`");
    // On-demand class shipping happened (worker had nothing preloaded).
    assert!(r.migrations[0].class_bytes > 0 || r.classes_shipped > 0);
}

#[test]
fn fig1b_total_migration_continues_at_dest() {
    let class = app_class();
    let n = 1_000_000i64;
    // Both frames (work + main) leave in one plan: top frame to node 1 and
    // the residual frame also to node 1 (restore-ahead), i.e. a total
    // migration: after `work` pops, execution continues on node 1.
    let report = scenario_of(2, &class)
        .program("App", "main", vec![Value::Int(n)])
        .migrate(When::At(2 * MS), Plan::chain(&[("n1", 1), ("n1", 8)]))
        .run()
        .unwrap();
    let r = report.first();
    assert_eq!(r.result, Some(expected(n)));
    assert_eq!(r.migrations.len(), 2, "two segments shipped");
}

#[test]
fn fig1c_workflow_three_nodes() {
    let class = app_class();
    let n = 1_000_000i64;
    // Top frame to node 1; residual to node 2; control flows 0 → 1 → 2 → 0.
    let report = scenario_of(3, &class)
        .program("App", "main", vec![Value::Int(n)])
        .migrate(When::At(2 * MS), Plan::chain(&[("n1", 1), ("n2", 8)]))
        .run()
        .unwrap();
    let r = report.first();
    assert_eq!(r.result, Some(expected(n)));
    assert_eq!(r.migrations.len(), 2);
}

#[test]
fn migration_overhead_is_modest() {
    // The headline claim: SOD migration costs little relative to execution.
    let class = app_class();
    let n = 4_000_000i64;
    let run = |migrate: bool| -> u64 {
        let mut sc = scenario_of(2, &class).program("App", "main", vec![Value::Int(n)]);
        if migrate {
            sc = sc.migrate(When::At(2 * MS), Plan::top_to("n1", 1));
        }
        let report = sc.run().unwrap();
        assert_eq!(report.first().result, Some(expected(n)));
        report.first().finished_at_ns
    };
    let plain = run(false);
    let migrated = run(true);
    let overhead = migrated.saturating_sub(plain);
    assert!(overhead > 0, "migration is not free");
    // Paper Table III: SOD overhead is small (well under 10% for
    // compute-heavy workloads; absolute tens of ms).
    assert!(
        overhead < plain / 5,
        "overhead {overhead} too large vs exec {plain}"
    );
}

#[test]
fn roaming_hops_across_nodes() {
    // A task that asks to move to node 1, then node 2, then finishes.
    let c = ClassBuilder::new("Roam")
        .method("tour", &[], |m| {
            m.line();
            m.pushi(0).store("acc");
            m.line();
            m.pushi(1).native("sod_move", 1).pop();
            m.line();
            m.load("acc").native("node_id", 0).add().store("acc");
            m.line();
            m.pushi(2).native("sod_move", 1).pop();
            m.line();
            m.load("acc").native("node_id", 0).add().store("acc");
            m.line();
            m.load("acc").retv();
        })
        .method("main", &[], |m| {
            m.line();
            m.invoke("Roam", "tour", 0).store("r");
            m.line();
            m.load("r").retv();
        })
        .build()
        .unwrap();
    let class = preprocess_sod(&c).unwrap();
    // The first hop is requested by the program itself via sod_move.
    let report = scenario_of(3, &class)
        .program("Roam", "main", vec![])
        .run()
        .unwrap();
    let r = report.first();
    // acc = node_id(1) + node_id(2) = 3 — proves the code really ran on
    // nodes 1 and 2.
    assert_eq!(r.result, Some(3));
    assert_eq!(r.migrations.len(), 2, "two roaming hops");
}

#[test]
fn exception_driven_offload_to_cloud() {
    // The device cannot allocate a 2M-element array; the cloud can. The
    // rescue is a declarative policy: `When::OnOom`.
    let c = ClassBuilder::new("Big")
        .method("alloc", &["n"], |m| {
            m.line();
            m.load("n").newarr().store("a");
            m.line();
            m.load("a").arrlen().retv();
        })
        .method("main", &["n"], |m| {
            m.line();
            m.load("n").invoke("Big", "alloc", 1).store("r");
            m.line();
            m.load("r").retv();
        })
        .build()
        .unwrap();
    let class = preprocess_sod(&c).unwrap();

    let mut phone = NodeConfig::device("phone");
    phone.mem_limit = Some(4 << 20); // 4 MB heap: the 16 MB array cannot fit
    let report = Scenario::new()
        .node("phone", phone)
        .deploys(&class)
        .node("cloud", NodeConfig::cloud("cloud"))
        .link("phone", "cloud", LinkSpec::wifi_kbps(764))
        .program("Big", "main", vec![Value::Int(2_000_000)])
        .migrate(When::OnOom, Plan::whole_stack_to("cloud"))
        .run()
        .expect("offload must rescue the OOM");
    let r = report.first();
    assert_eq!(r.result, Some(2_000_000));
    assert_eq!(r.migrations.len(), 1);
}

#[test]
fn nfs_locality_improves_with_migration() {
    // Paper Table VI: a document search reads a large file over NFS;
    // migrating to the file server makes the read local.
    let search = |hint: bool| -> ClassDef {
        let mut b = ClassBuilder::new("Search");
        b = b.method("main", &[], move |m| {
            m.line();
            if hint {
                m.pushi(1).native("sod_move", 1).pop();
                m.line();
            }
            m.pushstr("/srv/data/doc.txt")
                .pushstr("beach")
                .native("fs_search", 2)
                .store("pos");
            m.line();
            m.load("pos").retv();
        });
        preprocess_sod(&b.build().unwrap()).unwrap()
    };

    let run = |class: &ClassDef| -> (u64, Option<i64>) {
        let report = Scenario::new()
            .node("client", NodeConfig::cluster("client"))
            .deploys(class)
            .mounts("/srv/", "server")
            .node("server", NodeConfig::cluster("server"))
            .file("/srv/data/doc.txt", 64 << 20, Some(1234))
            .program("Search", "main", vec![])
            .run()
            .unwrap();
        (report.first().finished_at_ns, report.first().result)
    };
    // With the hint the search runs on the server (local disk read);
    // without it the same bytes cross the network.
    let (with_mig, r1) = run(&search(true));
    assert_eq!(r1, Some(1234));
    let (no_mig, r2) = run(&search(false));
    assert_eq!(r2, Some(1234));
    assert!(
        with_mig < no_mig,
        "locality should win: with={with_mig} without={no_mig}"
    );
}

#[test]
fn device_migration_latency_grows_as_bandwidth_shrinks() {
    // Paper Table VII: state transfer dominates at low bandwidth; capture
    // and restore are bandwidth-independent.
    let class = app_class();
    let mut results = Vec::new();
    for kbps in [50u64, 128, 384, 764] {
        let report = Scenario::new()
            .node("server", NodeConfig::cluster("server"))
            .deploys(&class)
            .node("phone", NodeConfig::device("phone"))
            .link("server", "phone", LinkSpec::wifi_kbps(kbps))
            .program("App", "main", vec![Value::Int(2_000_000)])
            .migrate(When::At(2 * MS), Plan::top_to("phone", 1))
            .run()
            .unwrap_or_else(|e| panic!("kbps={kbps}: {e}"));
        let r = report.first();
        assert_eq!(r.result, Some(expected(2_000_000)));
        assert_eq!(r.migrations.len(), 1);
        results.push((kbps, r.migrations[0]));
    }
    // Transfer monotonically decreases with bandwidth.
    for w in results.windows(2) {
        let (k0, m0) = w[0];
        let (k1, m1) = w[1];
        assert!(
            m0.transfer_state_ns + m0.transfer_class_ns
                > m1.transfer_state_ns + m1.transfer_class_ns,
            "{k0} vs {k1}"
        );
        // Capture barely changes with bandwidth.
        let c0 = m0.capture_ns as f64;
        let c1 = m1.capture_ns as f64;
        assert!((c0 - c1).abs() / c0 < 0.05);
    }
    // Portable capture path (no JVMTI at dest) is much slower than JVMTI
    // capture on the cluster (Table VII ~14 ms vs ~0.4 ms).
    assert!(results[0].1.capture_ns > 5 * MS);
    assert!(results.iter().all(|(_, m)| m.latency_ns() < 60 * SEC));
}

#[test]
fn deep_fetch_reduces_fault_count() {
    // A linked list walked after migration: shallow faults once per node,
    // deep prefetches the closure.
    let c = ClassBuilder::new("L")
        .field("val", TypeOf::Int)
        .field("next", TypeOf::Ref)
        .method("build", &["n"], |m| {
            m.line();
            m.pushnull().store("head");
            m.pushi(0).store("i");
            m.line();
            m.label("loop");
            m.load("i").load("n").if_cmp(Cmp::Ge, "done");
            m.line();
            m.new_obj("L").store("node");
            m.line();
            m.load("node").load("i").putfield("val");
            m.line();
            m.load("node").load("head").putfield("next");
            m.line();
            m.load("node").store("head");
            m.line();
            m.load("i").pushi(1).add().store("i").goto("loop");
            m.line();
            m.label("done");
            m.load("head").retv();
        })
        .method("sum", &["head", "spin"], |m| {
            // Busy loop first so the migration point lands before the walk.
            m.line();
            m.pushi(0).store("j");
            m.line();
            m.label("spinl");
            m.load("j").load("spin").if_cmp(Cmp::Ge, "walk");
            m.line();
            m.load("j").pushi(1).add().store("j").goto("spinl");
            m.line();
            m.label("walk");
            m.pushi(0).store("acc");
            m.line();
            m.label("loop");
            m.load("head").ifnull("done");
            m.line();
            m.load("acc")
                .load("head")
                .getfield("val")
                .add()
                .store("acc");
            m.line();
            m.load("head").getfield("next").store("head");
            m.goto("loop");
            m.line();
            m.label("done");
            m.load("acc").retv();
        })
        .method("main", &["n", "spin"], |m| {
            m.line();
            m.load("n").invoke("L", "build", 1).store("h");
            m.line();
            m.load("h").load("spin").invoke("L", "sum", 2).store("s");
            m.line();
            m.load("s").retv();
        })
        .build()
        .unwrap();
    let class = preprocess_sod(&c).unwrap();
    let run = |deep: bool| -> (u64, Option<i64>) {
        let mut sc = scenario_of(2, &class)
            .program("L", "main", vec![Value::Int(40), Value::Int(400_000)])
            .migrate(When::At(2 * MS), Plan::top_to("n1", 1));
        if deep {
            sc = sc.fetch_policy(FetchPolicy::Deep);
        }
        let report = sc.run().unwrap();
        (report.first().object_faults, report.first().result)
    };
    let (shallow_faults, r1) = run(false);
    let (deep_faults, r2) = run(true);
    assert_eq!(r1, Some((0..40).sum()));
    assert_eq!(r2, r1);
    assert!(
        shallow_faults > deep_faults,
        "shallow={shallow_faults} deep={deep_faults}"
    );
    assert!(
        shallow_faults >= 40,
        "one fault per list node, got {shallow_faults}"
    );
}

/// Regression: a chain plan deeper than the live stack used to wire the
/// last live segment's return target at a pre-allocated session for the
/// empty tail segment — a session that was never created, so the return
/// panicked at `expect("chained session")`. Empty segments are now
/// filtered before session ids are allocated, and the last *live* segment
/// returns `Home`.
#[test]
fn chain_plan_deeper_than_stack_returns_home() {
    let class = app_class();
    let n = 500_000i64;
    // Stack height at the MSP inside `work` is 2 (main + work), but the
    // plan asks for four single-frame segments across three nodes.
    let report = scenario_of(4, &class)
        .program("App", "main", vec![Value::Int(n)])
        .migrate(
            When::At(2 * MS),
            Plan::chain(&[("n1", 1), ("n2", 1), ("n3", 1), ("n1", 1)]),
        )
        .run()
        .unwrap();
    let r = report.first();
    assert_eq!(r.result, Some(expected(n)));
    // Only the two live segments shipped and restored.
    assert_eq!(r.migrations.len(), 2, "empty tail segments must be dropped");
}

/// Server guest: accept `nreq` requests, folding each payload's length
/// into a base-100 digit so the result encodes the exact service order.
fn order_probe_class(nreq: i64) -> ClassDef {
    let c = ClassBuilder::new("Srv")
        .method("main", &[], |m| {
            m.line();
            m.pushi(0).store("acc");
            m.pushi(0).store("i");
            m.line();
            m.label("loop");
            m.load("i").pushi(nreq).if_cmp(Cmp::Ge, "done");
            m.line();
            m.native("sock_accept", 0).store("req");
            m.line();
            m.load("acc")
                .pushi(100)
                .mul()
                .load("req")
                .native("str_len", 1)
                .add()
                .store("acc");
            m.line();
            m.load("i").pushi(1).add().store("i").goto("loop");
            m.line();
            m.label("done");
            m.load("acc").retv();
        })
        .build()
        .unwrap();
    preprocess_sod(&c).unwrap()
}

/// The accept queue delivers queued client requests strictly FIFO
/// (pinned while moving `sock_queue` from `Vec::remove(0)` to a
/// `VecDeque`): payloads of lengths 1..=3 injected in order must fold to
/// 10203, any reordering yields a different digit string.
#[test]
fn sock_queue_serves_requests_fifo() {
    let report = scenario_of(1, &order_probe_class(3))
        .program("Srv", "main", vec![])
        .client_request_at(0, "n0", "a")
        .client_request_at(0, "n0", "bb")
        .client_request_at(0, "n0", "ccc")
        .run()
        .unwrap();
    assert_eq!(report.first().result, Some(10203));
}

/// Parked accept loops are also served FIFO: with two server programs
/// parked in `sock_accept`, the first one to park gets the first request.
#[test]
fn sock_waiters_are_served_in_park_order() {
    let class = order_probe_class(1);
    let report = scenario_of(1, &class)
        .program("Srv", "main", vec![])
        .program("Srv", "main", vec![])
        .client_request_at(5 * MS, "n0", "x")
        .client_request_at(5 * MS, "n0", "yy")
        .run()
        .unwrap();
    // Program 0 starts (and parks) first, so it serves the length-1
    // payload; program 1 the length-2 payload.
    assert_eq!(report.report(0).result, Some(1));
    assert_eq!(report.report(1).result, Some(2));
}

/// Failed programs carry the same final stats as successes: instructions
/// accrue per slice and the stack height is snapshotted on failure, so
/// fleet aggregates over mixed outcomes stay comparable.
#[test]
fn failed_program_reports_instructions_and_height() {
    let class = ClassBuilder::new("Alloc")
        .method("grow", &["n"], |m| {
            m.line();
            m.load("n").newarr().arrlen().retv();
        })
        .method("main", &["n"], |m| {
            m.line();
            m.load("n").invoke("Alloc", "grow", 1).store("r");
            m.line();
            m.load("r").retv();
        })
        .build()
        .unwrap();
    let class = preprocess_sod(&class).unwrap();
    let tiny = NodeConfig {
        mem_limit: Some(64),
        ..NodeConfig::cluster("tiny")
    };
    // A fleet member's failure is recorded instead of aborting the run.
    let report = Scenario::new()
        .node("tiny", tiny)
        .deploys(&class)
        .fleet(sod::scenario::Fleet::new(
            "Alloc",
            "main",
            vec![Value::Int(1_000)],
        ))
        .run()
        .unwrap();
    let p = &report.programs()[0];
    assert!(p.error.as_deref().unwrap().contains("OutOfMemory"));
    assert!(p.report.instructions > 0, "instructions must be recorded");
    assert!(
        p.report.max_stack_height >= 2,
        "main + grow were live at the fault"
    );
    assert!(p.report.finished_at_ns > 0);
    assert_eq!(report.cluster.failed, 1);
}
