//! Integration tests for the SODEE runtime: the paper's execution patterns
//! (Fig. 1a/b/c), object faulting across nodes, roaming, exception-driven
//! offload, NFS locality, and device-profile migrations.

use sod_asm::builder::ClassBuilder;
use sod_net::{LinkSpec, Topology, MS, SEC};
use sod_preprocess::preprocess_sod;
use sod_runtime::engine::{Cluster, SodSim};
use sod_runtime::msg::{MigrationPlan, SegmentSpec};
use sod_runtime::node::{Node, NodeConfig};
use sod_vm::class::ClassDef;
use sod_vm::instr::Cmp;
use sod_vm::value::{TypeOf, Value};

/// App.main(n): r = work(n) + 5 where work loops n times accumulating i and
/// writing a counter object field (so migration leaves heap state behind).
fn app_class() -> ClassDef {
    let c = ClassBuilder::new("App")
        .field("count", TypeOf::Int)
        .static_field("last", TypeOf::Int)
        .method("work", &["n", "box"], |m| {
            m.line();
            m.pushi(0).store("acc");
            m.pushi(0).store("i");
            m.line();
            m.label("loop");
            m.load("i").load("n").if_cmp(Cmp::Ge, "done");
            m.line();
            m.load("acc").load("i").add().store("acc");
            m.line();
            m.load("i").pushi(1).add().store("i").goto("loop");
            m.line();
            m.label("done");
            m.load("box").load("acc").putfield("count");
            m.line();
            m.load("acc").putstatic("App", "last");
            m.line();
            m.load("acc").retv();
        })
        .method("main", &["n"], |m| {
            m.line();
            m.new_obj("App").store("box");
            m.line();
            m.load("n").load("box").invoke("App", "work", 2).store("r");
            m.line();
            m.load("box").getfield("count").store("chk");
            m.line();
            m.load("r").load("chk").add().load("r").sub().store("same"); // == r
            m.line();
            m.load("same").pushi(5).add().retv();
        })
        .build()
        .unwrap();
    preprocess_sod(&c).unwrap()
}

fn expected(n: i64) -> i64 {
    (0..n).sum::<i64>() + 5
}

fn cluster_of(n_nodes: usize, class: &ClassDef) -> Cluster {
    let mut nodes = Vec::new();
    for i in 0..n_nodes {
        let mut node = Node::new(NodeConfig::cluster(format!("n{i}")));
        if i == 0 {
            node.deploy(class).unwrap();
        } else {
            // Workers receive classes on demand; nothing preloaded.
        }
        nodes.push(node);
    }
    nodes[0].stage(class);
    Cluster::new(nodes)
}

#[test]
fn no_migration_baseline() {
    let class = app_class();
    let mut cluster = cluster_of(2, &class);
    let pid = cluster.add_program(0, "App", "main", vec![Value::Int(100_000)]);
    let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(2));
    sim.start_program(0, pid);
    sim.run();
    let r = sim.report(pid);
    assert_eq!(r.result, Some(expected(100_000)));
    assert!(r.migrations.is_empty());
    assert_eq!(r.object_faults, 0);
    assert!(r.finished_at_ns > 0);
}

#[test]
fn fig1a_top_segment_returns_home() {
    let class = app_class();
    let n = 1_000_000i64;
    let mut cluster = cluster_of(2, &class);
    let pid = cluster.add_program(0, "App", "main", vec![Value::Int(n)]);
    let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(2));
    sim.start_program(0, pid);
    sim.migrate_at(2 * MS, pid, MigrationPlan::top_to(1, 1));
    sim.run();
    let r = sim.report(pid);
    assert_eq!(
        sim.program(pid).error,
        None,
        "program failed: {:?}",
        sim.program(pid).error
    );
    assert_eq!(r.result, Some(expected(n)));
    assert_eq!(r.migrations.len(), 1);
    let m = &r.migrations[0];
    assert!(m.capture_ns > 0, "capture must cost time");
    assert!(m.transfer_state_ns > 0, "transfer must cost time");
    assert!(m.restore_ns > 0, "restore must cost time");
    // The worker wrote box.count via PutField: the object faulted in and
    // the dirty value flushed home (checked via the program result, which
    // reads box.count at home after return).
    assert!(r.object_faults >= 1, "worker must fault on `box`");
    // On-demand class shipping happened (worker had nothing preloaded).
    assert!(r.migrations[0].class_bytes > 0 || r.classes_shipped > 0);
}

#[test]
fn fig1b_total_migration_continues_at_dest() {
    let class = app_class();
    let n = 1_000_000i64;
    let mut cluster = cluster_of(2, &class);
    let pid = cluster.add_program(0, "App", "main", vec![Value::Int(n)]);
    let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(2));
    sim.start_program(0, pid);
    // Both frames (work + main) leave in one plan: top frame to node 1 and
    // the residual frame also to node 1 (restore-ahead), i.e. a total
    // migration: after `work` pops, execution continues on node 1.
    sim.migrate_at(
        2 * MS,
        pid,
        MigrationPlan {
            segments: vec![
                SegmentSpec {
                    dest: 1,
                    nframes: 1,
                },
                SegmentSpec {
                    dest: 1,
                    nframes: 8,
                },
            ],
        },
    );
    sim.run();
    let r = sim.report(pid);
    assert_eq!(sim.program(pid).error, None);
    assert_eq!(r.result, Some(expected(n)));
    assert_eq!(r.migrations.len(), 2, "two segments shipped");
}

#[test]
fn fig1c_workflow_three_nodes() {
    let class = app_class();
    let n = 1_000_000i64;
    let mut cluster = cluster_of(3, &class);
    let pid = cluster.add_program(0, "App", "main", vec![Value::Int(n)]);
    let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(3));
    sim.start_program(0, pid);
    // Top frame to node 1; residual to node 2; control flows 0 → 1 → 2 → 0.
    sim.migrate_at(
        2 * MS,
        pid,
        MigrationPlan {
            segments: vec![
                SegmentSpec {
                    dest: 1,
                    nframes: 1,
                },
                SegmentSpec {
                    dest: 2,
                    nframes: 8,
                },
            ],
        },
    );
    sim.run();
    let r = sim.report(pid);
    assert_eq!(sim.program(pid).error, None);
    assert_eq!(r.result, Some(expected(n)));
    assert_eq!(r.migrations.len(), 2);
}

#[test]
fn migration_overhead_is_modest() {
    // The headline claim: SOD migration costs little relative to execution.
    let class = app_class();
    let n = 4_000_000i64;
    let run = |migrate: bool| -> u64 {
        let mut cluster = cluster_of(2, &class);
        let pid = cluster.add_program(0, "App", "main", vec![Value::Int(n)]);
        let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(2));
        sim.start_program(0, pid);
        if migrate {
            sim.migrate_at(2 * MS, pid, MigrationPlan::top_to(1, 1));
        }
        sim.run();
        assert_eq!(sim.report(pid).result, Some(expected(n)));
        sim.report(pid).finished_at_ns
    };
    let plain = run(false);
    let migrated = run(true);
    let overhead = migrated.saturating_sub(plain);
    assert!(overhead > 0, "migration is not free");
    // Paper Table III: SOD overhead is small (well under 10% for
    // compute-heavy workloads; absolute tens of ms).
    assert!(
        overhead < plain / 5,
        "overhead {overhead} too large vs exec {plain}"
    );
}

#[test]
fn roaming_hops_across_nodes() {
    // A task that asks to move to node 1, then node 2, then finishes.
    let c = ClassBuilder::new("Roam")
        .method("tour", &[], |m| {
            m.line();
            m.pushi(0).store("acc");
            m.line();
            m.pushi(1).native("sod_move", 1).pop();
            m.line();
            m.load("acc").native("node_id", 0).add().store("acc");
            m.line();
            m.pushi(2).native("sod_move", 1).pop();
            m.line();
            m.load("acc").native("node_id", 0).add().store("acc");
            m.line();
            m.load("acc").retv();
        })
        .method("main", &[], |m| {
            m.line();
            m.invoke("Roam", "tour", 0).store("r");
            m.line();
            m.load("r").retv();
        })
        .build()
        .unwrap();
    let class = preprocess_sod(&c).unwrap();
    let mut cluster = cluster_of(3, &class);
    let pid = cluster.add_program(0, "Roam", "main", vec![]);
    let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(3));
    sim.start_program(0, pid);
    // First hop is requested by the program itself via sod_move.
    sim.run();
    let r = sim.report(pid);
    assert_eq!(sim.program(pid).error, None);
    // acc = node_id(1) + node_id(2) = 3 — proves the code really ran on
    // nodes 1 and 2.
    assert_eq!(r.result, Some(3));
    assert_eq!(r.migrations.len(), 2, "two roaming hops");
}

#[test]
fn exception_driven_offload_to_cloud() {
    // The device cannot allocate a 2M-element array; the cloud can.
    let c = ClassBuilder::new("Big")
        .method("alloc", &["n"], |m| {
            m.line();
            m.load("n").newarr().store("a");
            m.line();
            m.load("a").arrlen().retv();
        })
        .method("main", &["n"], |m| {
            m.line();
            m.load("n").invoke("Big", "alloc", 1).store("r");
            m.line();
            m.load("r").retv();
        })
        .build()
        .unwrap();
    let class = preprocess_sod(&c).unwrap();

    let mut cfg = NodeConfig::device("phone");
    cfg.mem_limit = Some(4 << 20); // 4 MB heap: the 16 MB array cannot fit
    let mut device = Node::new(cfg);
    device.deploy(&class).unwrap();
    device.stage(&class);
    let cloud = Node::new(NodeConfig::cloud("cloud"));
    let mut cluster = Cluster::new(vec![device, cloud]);
    let pid = cluster.add_program(0, "Big", "main", vec![Value::Int(2_000_000)]);
    cluster.programs[pid as usize].oom_offload_to = Some(1);
    let mut topo = Topology::gigabit_cluster(2);
    topo.set_link(0, 1, LinkSpec::wifi_kbps(764));
    let mut sim = SodSim::new(cluster, topo);
    sim.start_program(0, pid);
    sim.run();
    let r = sim.report(pid);
    assert_eq!(sim.program(pid).error, None, "offload must rescue the OOM");
    assert_eq!(r.result, Some(2_000_000));
    assert_eq!(r.migrations.len(), 1);
}

#[test]
fn nfs_locality_improves_with_migration() {
    // Paper Table VI: a document search reads a large file over NFS;
    // migrating to the file server makes the read local.
    let c = ClassBuilder::new("Search")
        .method("main", &[], |m| {
            m.line();
            m.pushi(1).native("sod_move", 1).pop();
            m.line();
            m.pushstr("/srv/data/doc.txt")
                .pushstr("beach")
                .native("fs_search", 2)
                .store("pos");
            m.line();
            m.load("pos").retv();
        })
        .build()
        .unwrap();
    let class = preprocess_sod(&c).unwrap();

    let run = |migrate: bool| -> (u64, Option<i64>) {
        let mut client = Node::new(NodeConfig::cluster("client"));
        client.deploy(&class).unwrap();
        client.stage(&class);
        client.fs.mount("/srv/", 1);
        let mut server = Node::new(NodeConfig::cluster("server"));
        server
            .fs
            .add_file("/srv/data/doc.txt", 64 << 20, Some(1234));
        let mut cluster = Cluster::new(vec![client, server]);
        let pid = cluster.add_program(0, "Search", "main", vec![]);
        if !migrate {
            // Strip the sod_move by... running as-is still moves; instead
            // emulate no-migration by retargeting the hint to node 0.
        }
        let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(2));
        sim.start_program(0, pid);
        sim.run();
        (sim.report(pid).finished_at_ns, sim.report(pid).result)
    };
    // With the hint the search runs on the server (local disk read).
    let (with_mig, r1) = run(true);
    assert_eq!(r1, Some(1234));
    // Without migration the same bytes cross the network: build a variant
    // program without the move hint.
    let c2 = ClassBuilder::new("Search")
        .method("main", &[], |m| {
            m.line();
            m.pushstr("/srv/data/doc.txt")
                .pushstr("beach")
                .native("fs_search", 2)
                .store("pos");
            m.line();
            m.load("pos").retv();
        })
        .build()
        .unwrap();
    let class2 = preprocess_sod(&c2).unwrap();
    let mut client = Node::new(NodeConfig::cluster("client"));
    client.deploy(&class2).unwrap();
    client.fs.mount("/srv/", 1);
    let mut server = Node::new(NodeConfig::cluster("server"));
    server
        .fs
        .add_file("/srv/data/doc.txt", 64 << 20, Some(1234));
    let mut cluster = Cluster::new(vec![client, server]);
    let pid = cluster.add_program(0, "Search", "main", vec![]);
    let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(2));
    sim.start_program(0, pid);
    sim.run();
    let no_mig = sim.report(pid).finished_at_ns;
    assert_eq!(sim.report(pid).result, Some(1234));
    assert!(
        with_mig < no_mig,
        "locality should win: with={with_mig} without={no_mig}"
    );
}

#[test]
fn device_migration_latency_grows_as_bandwidth_shrinks() {
    // Paper Table VII: state transfer dominates at low bandwidth; capture
    // and restore are bandwidth-independent.
    let class = app_class();
    let mut results = Vec::new();
    for kbps in [50u64, 128, 384, 764] {
        let mut home = Node::new(NodeConfig::cluster("server"));
        home.deploy(&class).unwrap();
        home.stage(&class);
        let device = Node::new(NodeConfig::device("phone"));
        let mut cluster = Cluster::new(vec![home, device]);
        let pid = cluster.add_program(0, "App", "main", vec![Value::Int(2_000_000)]);
        let mut topo = Topology::gigabit_cluster(2);
        topo.set_link(0, 1, LinkSpec::wifi_kbps(kbps));
        let mut sim = SodSim::new(cluster, topo);
        sim.start_program(0, pid);
        sim.migrate_at(2 * MS, pid, MigrationPlan::top_to(1, 1));
        sim.run();
        let r = sim.report(pid);
        assert_eq!(sim.program(pid).error, None, "kbps={kbps}");
        assert_eq!(r.result, Some(expected(2_000_000)));
        assert_eq!(r.migrations.len(), 1);
        results.push((kbps, r.migrations[0]));
    }
    // Transfer monotonically decreases with bandwidth.
    for w in results.windows(2) {
        let (k0, m0) = w[0];
        let (k1, m1) = w[1];
        assert!(
            m0.transfer_state_ns + m0.transfer_class_ns
                > m1.transfer_state_ns + m1.transfer_class_ns,
            "{k0} vs {k1}"
        );
        // Capture barely changes with bandwidth.
        let c0 = m0.capture_ns as f64;
        let c1 = m1.capture_ns as f64;
        assert!((c0 - c1).abs() / c0 < 0.05);
    }
    // Portable capture path (no JVMTI at dest) is much slower than JVMTI
    // capture on the cluster (Table VII ~14 ms vs ~0.4 ms).
    assert!(results[0].1.capture_ns > 5 * MS);
    assert!(sim_total_under(&results, 60 * SEC));
}

fn sim_total_under(results: &[(u64, sod_runtime::MigrationTimings)], cap: u64) -> bool {
    results.iter().all(|(_, m)| m.latency_ns() < cap)
}

#[test]
fn deep_fetch_reduces_fault_count() {
    // A linked list walked after migration: shallow faults once per node,
    // deep prefetches the closure.
    let c = ClassBuilder::new("L")
        .field("val", TypeOf::Int)
        .field("next", TypeOf::Ref)
        .method("build", &["n"], |m| {
            m.line();
            m.pushnull().store("head");
            m.pushi(0).store("i");
            m.line();
            m.label("loop");
            m.load("i").load("n").if_cmp(Cmp::Ge, "done");
            m.line();
            m.new_obj("L").store("node");
            m.line();
            m.load("node").load("i").putfield("val");
            m.line();
            m.load("node").load("head").putfield("next");
            m.line();
            m.load("node").store("head");
            m.line();
            m.load("i").pushi(1).add().store("i").goto("loop");
            m.line();
            m.label("done");
            m.load("head").retv();
        })
        .method("sum", &["head", "spin"], |m| {
            // Busy loop first so the migration point lands before the walk.
            m.line();
            m.pushi(0).store("j");
            m.line();
            m.label("spinl");
            m.load("j").load("spin").if_cmp(Cmp::Ge, "walk");
            m.line();
            m.load("j").pushi(1).add().store("j").goto("spinl");
            m.line();
            m.label("walk");
            m.pushi(0).store("acc");
            m.line();
            m.label("loop");
            m.load("head").ifnull("done");
            m.line();
            m.load("acc")
                .load("head")
                .getfield("val")
                .add()
                .store("acc");
            m.line();
            m.load("head").getfield("next").store("head");
            m.goto("loop");
            m.line();
            m.label("done");
            m.load("acc").retv();
        })
        .method("main", &["n", "spin"], |m| {
            m.line();
            m.load("n").invoke("L", "build", 1).store("h");
            m.line();
            m.load("h").load("spin").invoke("L", "sum", 2).store("s");
            m.line();
            m.load("s").retv();
        })
        .build()
        .unwrap();
    let class = preprocess_sod(&c).unwrap();
    let run = |deep: bool| -> (u64, Option<i64>) {
        let mut cluster = cluster_of(2, &class);
        let pid = cluster.add_program(0, "L", "main", vec![Value::Int(40), Value::Int(400_000)]);
        if deep {
            cluster.programs[pid as usize].fetch_policy = sod_runtime::FetchPolicy::Deep;
        }
        let mut sim = SodSim::new(cluster, Topology::gigabit_cluster(2));
        sim.start_program(0, pid);
        sim.migrate_at(2 * MS, pid, MigrationPlan::top_to(1, 1));
        sim.run();
        assert_eq!(sim.program(pid).error, None);
        (sim.report(pid).object_faults, sim.report(pid).result)
    };
    let (shallow_faults, r1) = run(false);
    let (deep_faults, r2) = run(true);
    assert_eq!(r1, Some((0..40).sum()));
    assert_eq!(r2, r1);
    assert!(
        shallow_faults > deep_faults,
        "shallow={shallow_faults} deep={deep_faults}"
    );
    assert!(
        shallow_faults >= 40,
        "one fault per list node, got {shallow_faults}"
    );
}
