//! # sod — stack-on-demand elastic execution
//!
//! Facade crate re-exporting the full reproduction of *"A Stack-on-Demand
//! Execution Model for Elastic Computing"* (Ma, Lam, Wang, Zhang — ICPP
//! 2010):
//!
//! * [`vm`] — the stack-machine VM substrate (frames, heap, exceptions,
//!   JVMTI-like tooling, capture/restore, wire codec);
//! * [`asm`] — builder and text assembler for authoring guest programs;
//! * [`preprocess`] — the SOD bytecode preprocessor (migration-safe-point
//!   rearrangement, object-fault handlers, restoration handlers);
//! * [`net`] — the deterministic discrete-event cluster simulator;
//! * [`runtime`] — SODEE: segment migration, object manager, workflows,
//!   roaming, exception-driven offload;
//! * [`baselines`] — G-JavaMPI / JESSICA2 / Xen migration models;
//! * [`workloads`] — the paper's benchmarks and applications;
//! * [`scenario`] — the declarative experiment builder (start here).
//!
//! ## Quick start
//!
//! Author a program, preprocess it, and describe the experiment as a
//! [`scenario::Scenario`]: nodes by name, programs placed on them, and
//! migration expressed as *policy* — a fixed virtual time
//! ([`scenario::When::At`]), memory pressure
//! ([`scenario::When::OnOom`]), object-fault locality
//! ([`scenario::When::OnObjectFaults`]), or a CPU budget
//! ([`scenario::When::OnCpuSliceBudget`]):
//!
//! ```
//! use sod::asm::builder::ClassBuilder;
//! use sod::net::MS;
//! use sod::preprocess::preprocess_sod;
//! use sod::runtime::NodeConfig;
//! use sod::scenario::{Plan, Scenario, ScenarioError, When};
//! use sod::vm::instr::Cmp;
//! use sod::vm::value::Value;
//!
//! fn main() -> Result<(), ScenarioError> {
//!     let class = ClassBuilder::new("App")
//!         .method("work", &["n"], |m| {
//!             m.line();
//!             m.pushi(0).store("acc");
//!             m.pushi(0).store("i");
//!             m.line();
//!             m.label("loop");
//!             m.load("i").load("n").if_cmp(Cmp::Ge, "done");
//!             m.line();
//!             m.load("acc").load("i").add().store("acc");
//!             m.line();
//!             m.load("i").pushi(1).add().store("i").goto("loop");
//!             m.line();
//!             m.label("done");
//!             m.load("acc").retv();
//!         })
//!         .method("main", &["n"], |m| {
//!             m.line();
//!             m.load("n").invoke("App", "work", 1).store("r");
//!             m.line();
//!             m.load("r").retv();
//!         })
//!         .build()
//!         .expect("valid program");
//!     let class = preprocess_sod(&class).expect("preprocess");
//!
//!     let report = Scenario::new()
//!         .node("home", NodeConfig::cluster("home"))
//!         .deploys(&class)
//!         .node("worker", NodeConfig::cluster("worker"))
//!         .program("App", "main", vec![Value::Int(500_000)])
//!         .on("home")
//!         .migrate(When::At(MS), Plan::top_to("worker", 1))
//!         .run()?;
//!
//!     let r = report.first();
//!     assert_eq!(r.result, Some((0..500_000i64).sum()));
//!     assert_eq!(r.migrations.len(), 1);
//!     Ok(())
//! }
//! ```
//!
//! `examples/quickstart.rs` is the same flow as a runnable walkthrough;
//! the raw engine wiring remains available through [`runtime`] for code
//! that needs sub-scenario control.

pub mod scenario;

pub use sod_asm as asm;
pub use sod_baselines as baselines;
pub use sod_net as net;
pub use sod_preprocess as preprocess;
pub use sod_runtime as runtime;
pub use sod_vm as vm;
pub use sod_workloads as workloads;

pub use scenario::{
    Chaos, Fleet, Plan, Pool, Preset, Scenario, ScenarioError, ScenarioReport, When,
};
pub use sod_runtime::{
    ChaosCounters, ChaosPlan, ClusterReport, CodeShipping, NetBytes, PoolReport, RetryPolicy,
    ScalePolicy, Scheduler,
};
pub use sod_workloads::ArrivalSchedule;
