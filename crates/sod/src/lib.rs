//! # sod — stack-on-demand elastic execution
//!
//! Facade crate re-exporting the full reproduction of *"A Stack-on-Demand
//! Execution Model for Elastic Computing"* (Ma, Lam, Wang, Zhang — ICPP
//! 2010):
//!
//! * [`vm`] — the stack-machine VM substrate (frames, heap, exceptions,
//!   JVMTI-like tooling, capture/restore, wire codec);
//! * [`asm`] — builder and text assembler for authoring guest programs;
//! * [`preprocess`] — the SOD bytecode preprocessor (migration-safe-point
//!   rearrangement, object-fault handlers, restoration handlers);
//! * [`net`] — the deterministic discrete-event cluster simulator;
//! * [`runtime`] — SODEE: segment migration, object manager, workflows,
//!   roaming, exception-driven offload;
//! * [`baselines`] — G-JavaMPI / JESSICA2 / Xen migration models;
//! * [`workloads`] — the paper's benchmarks and applications.
//!
//! Start with `examples/quickstart.rs` and the crate-level example on
//! [`runtime`].

pub use sod_asm as asm;
pub use sod_baselines as baselines;
pub use sod_net as net;
pub use sod_preprocess as preprocess;
pub use sod_runtime as runtime;
pub use sod_vm as vm;
pub use sod_workloads as workloads;
