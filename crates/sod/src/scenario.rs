//! Declarative scenario builder: describe an elastic-execution experiment
//! — topology, nodes, programs, migration policies — and run it.
//!
//! The runtime's raw wiring (`Node::new` + `deploy`/`stage`,
//! `Cluster::new`, `SodSim::new`, hand-scheduled `migrate_at` calls) is
//! flexible but verbose, and repeats near-identically across every
//! experiment. [`Scenario`] replaces that plumbing with a fluent, typed
//! description:
//!
//! ```
//! use sod::asm::builder::ClassBuilder;
//! use sod::net::MS;
//! use sod::preprocess::preprocess_sod;
//! use sod::runtime::NodeConfig;
//! use sod::scenario::{Plan, Scenario, When};
//!
//! # fn main() -> Result<(), sod::scenario::ScenarioError> {
//! let class = ClassBuilder::new("App")
//!     .method("work", &["n"], |m| {
//!         m.line();
//!         m.load("n").pushi(3).add().retv();
//!     })
//!     .method("main", &["n"], |m| {
//!         m.line();
//!         m.load("n").invoke("App", "work", 1).store("r");
//!         m.line();
//!         m.load("r").retv();
//!     })
//!     .build()
//!     .expect("valid program");
//! let class = preprocess_sod(&class).expect("preprocess");
//!
//! let report = Scenario::new()
//!     .node("home", NodeConfig::cluster("home"))
//!     .deploys(&class)
//!     .node("worker", NodeConfig::cluster("worker"))
//!     .program("App", "main", vec![sod::vm::value::Value::Int(4)])
//!     .on("home")
//!     .migrate(When::At(MS), Plan::top_to("worker", 1))
//!     .run()?;
//! assert_eq!(report.first().result, Some(7));
//! # Ok(())
//! # }
//! ```
//!
//! Everything is named: nodes are declared once and referenced by name in
//! plans, links, and placements (indices — needed when guest *arguments*
//! encode a destination node — follow declaration order, starting at 0).
//! Builder calls never fail; all validation happens in [`Scenario::run`],
//! which returns a typed [`ScenarioError`] instead of panicking.
//!
//! Migration is expressed as *policy*, not timestamps: [`When::At`] keeps
//! the paper's fixed-time schedules, while [`When::OnOom`],
//! [`When::OnObjectFaults`] and [`When::OnCpuSliceBudget`] arm
//! [`sod_runtime::trigger::Trigger`]s that the engine evaluates at
//! migration-safe points (see that module for the exact semantics).

use std::collections::HashMap;
use std::fmt;

use sod_net::{ChaosPlan, LinkSpec, Scheduler, Topology};
use sod_runtime::trigger::{ArmedTrigger, Trigger};
use sod_runtime::{
    Cluster, ClusterReport, CodeShipping, FetchPolicy, MigrationPlan, Node, NodeConfig, PoolSpec,
    RetryPolicy, RunReport, ScalePolicy, SegmentSpec, SodSim, DEFAULT_POOL_TICK_NS, POOL_DEST_BASE,
};
use sod_vm::class::ClassDef;
use sod_vm::value::Value;
use sod_workloads::fleet::ArrivalSchedule;

/// Built-in topologies; the node count is taken from the declared nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preset {
    /// The paper's testbed: Gigabit Ethernet between every pair.
    GigabitCluster,
    /// WAN links between every pair (the roaming experiment).
    WanGrid,
}

#[derive(Clone, Debug)]
enum TopoSpec {
    Preset(Preset),
    Custom(Topology),
}

/// When a program migrates. `At` reproduces the legacy fixed-time
/// schedule exactly; the other variants arm policy
/// [`Trigger`] values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum When {
    /// At virtual time `ns` (first migration-safe point after it).
    At(u64),
    /// On an unhandled `OutOfMemoryError` (whole-stack offload; the
    /// plan's first destination is the rescue node).
    OnOom,
    /// Once the program has served this many remote object faults.
    OnObjectFaults(u64),
    /// Once the root thread has consumed this many execution slices.
    OnCpuSliceBudget(u64),
}

/// A migration plan over *named* nodes; resolved against the scenario's
/// node table by [`Scenario::run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Plan {
    segments: Vec<(String, usize)>,
}

impl Plan {
    /// Ship the top `nframes` to `node`; control returns home (Fig. 1a).
    pub fn top_to(node: impl Into<String>, nframes: usize) -> Self {
        Plan {
            segments: vec![(node.into(), nframes)],
        }
    }

    /// Multi-segment plan from `(node, nframes)` pairs, topmost first
    /// (Fig. 1b when all pairs name one node, Fig. 1c otherwise).
    pub fn chain(segments: &[(&str, usize)]) -> Self {
        Plan {
            segments: segments
                .iter()
                .map(|&(node, nframes)| (node.to_owned(), nframes))
                .collect(),
        }
    }

    /// Total migration (Fig. 1b): the whole stack moves to `node` and
    /// execution continues there.
    pub fn whole_stack_to(node: impl Into<String>) -> Self {
        let node = node.into();
        Plan {
            segments: vec![(node.clone(), 1), (node, MigrationPlan::WHOLE_STACK_FRAMES)],
        }
    }
}

#[derive(Debug)]
struct NodeDecl {
    name: String,
    cfg: NodeConfig,
    deploys: Vec<ClassDef>,
    stages: Vec<ClassDef>,
    files: Vec<(String, u64, Option<u64>)>,
    mounts: Vec<(String, String)>,
}

#[derive(Debug)]
struct ProgramDecl {
    class: String,
    method: String,
    args: Vec<Value>,
    on: Option<String>,
    start_at: u64,
    fetch_policy: FetchPolicy,
    migrations: Vec<(When, Plan)>,
    /// Fleet members tolerate failure (recorded in the report) instead of
    /// aborting the whole run.
    from_fleet: bool,
}

/// A fleet of identical programs launched open-loop: "N clients × M
/// programs with trigger policy X", declaratively.
///
/// Built with [`Fleet::new`] and handed to [`Scenario::fleet`], which
/// expands it into one program declaration per request: homes assigned
/// round-robin over [`Fleet::across`] (default: the scenario's first
/// node), start times drawn from the [`ArrivalSchedule`] with the given
/// seed, and every member armed with the same migration policies. Unlike
/// [`Scenario::program`] members, a fleet member that fails does not
/// abort the run — its error is recorded on its [`ProgramRun`] and
/// counted in the [`ClusterReport`].
#[derive(Clone, Debug)]
pub struct Fleet {
    class: String,
    method: String,
    args: Vec<Value>,
    programs: usize,
    across: Vec<String>,
    schedule: ArrivalSchedule,
    seed: u64,
    fetch_policy: FetchPolicy,
    migrations: Vec<(When, Plan)>,
}

impl Fleet {
    /// A fleet of one `class::method(args)` request (grow it with
    /// [`Fleet::programs`]). The default schedule is
    /// [`ArrivalSchedule::uniform`] at 1 ms, seed 0.
    pub fn new(class: impl Into<String>, method: impl Into<String>, args: Vec<Value>) -> Self {
        Fleet {
            class: class.into(),
            method: method.into(),
            args,
            programs: 1,
            across: Vec::new(),
            schedule: ArrivalSchedule::uniform(sod_net::MS),
            seed: 0,
            fetch_policy: FetchPolicy::default(),
            migrations: Vec::new(),
        }
    }

    /// Number of concurrent programs (requests) in the fleet.
    pub fn programs(mut self, n: usize) -> Self {
        self.programs = n;
        self
    }

    /// Home nodes, assigned round-robin in request order. Empty (the
    /// default) places every program on the scenario's first node.
    pub fn across(mut self, nodes: &[&str]) -> Self {
        self.across = nodes.iter().map(|n| (*n).to_owned()).collect();
        self
    }

    /// Arrival schedule and PRNG seed (see [`ArrivalSchedule`]).
    pub fn arrivals(mut self, schedule: ArrivalSchedule, seed: u64) -> Self {
        self.schedule = schedule;
        self.seed = seed;
        self
    }

    /// Object-fetch policy for every fleet member.
    pub fn fetch_policy(mut self, policy: FetchPolicy) -> Self {
        self.fetch_policy = policy;
        self
    }

    /// Arm a migration policy on every fleet member.
    pub fn migrate(mut self, when: When, plan: Plan) -> Self {
        self.migrations.push((when, plan));
        self
    }
}

/// A declarative fault-injection plan over *named* nodes — the facade's
/// view of [`sod_net::ChaosPlan`]. Node names are resolved against the
/// scenario's node table by [`Scenario::run`], so a chaos plan may be
/// attached before the nodes it references are declared.
///
/// Faults are scheduled at fixed virtual times (`crash_at`, `restart_at`,
/// `partition_at`, `heal_at`) or drawn from the seeded loss stream
/// (`loss`, `link_loss`, `scatter_crashes`). Because the simulation clock
/// and the loss RNG are both deterministic, a scenario with the same
/// chaos plan and seed replays bit-identically — the chaos-determinism
/// suite pins that.
///
/// ```
/// use sod::scenario::Chaos;
/// use sod::runtime::RetryPolicy;
/// use sod::net::MS;
///
/// let chaos = Chaos::new()
///     .seed(42)
///     .crash_at(5 * MS, "worker")
///     .restart_at(9 * MS, "worker")
///     .partition_at(2 * MS, "home", "edge")
///     .heal_at(4 * MS, "home", "edge")
///     .loss(50) // 5% on every link
///     .retry(RetryPolicy::Retry { max_attempts: 3 });
/// # let _ = chaos;
/// ```
#[derive(Clone, Debug, Default)]
pub struct Chaos {
    crashes: Vec<(u64, String)>,
    restarts: Vec<(u64, String)>,
    partitions: Vec<(u64, String, String)>,
    heals: Vec<(u64, String, String)>,
    loss_permille: u32,
    link_loss: Vec<(String, String, u32)>,
    scatter: Option<(usize, u64)>,
    seed: u64,
    retry: Option<RetryPolicy>,
    timeout_ns: Option<u64>,
}

impl Chaos {
    pub fn new() -> Self {
        Chaos::default()
    }

    /// Seed for the loss stream and any scattered crash schedule.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Crash the named node at virtual time `ns`: programs homed there
    /// fail with a typed error, sessions hosted there are killed, and
    /// every message to it is dropped until a matching `restart_at`.
    pub fn crash_at(mut self, ns: u64, node: impl Into<String>) -> Self {
        self.crashes.push((ns, node.into()));
        self
    }

    /// Bring a crashed node back (warm restart: repo and heap survive,
    /// in-flight work does not come back).
    pub fn restart_at(mut self, ns: u64, node: impl Into<String>) -> Self {
        self.restarts.push((ns, node.into()));
        self
    }

    /// Cut the link between two named nodes (both directions) at `ns`.
    pub fn partition_at(mut self, ns: u64, a: impl Into<String>, b: impl Into<String>) -> Self {
        self.partitions.push((ns, a.into(), b.into()));
        self
    }

    /// Heal a previously cut link at `ns`.
    pub fn heal_at(mut self, ns: u64, a: impl Into<String>, b: impl Into<String>) -> Self {
        self.heals.push((ns, a.into(), b.into()));
        self
    }

    /// Drop every inter-node delivery with probability `permille`/1000,
    /// drawn from the seeded stream (50 = 5%).
    pub fn loss(mut self, permille: u32) -> Self {
        self.loss_permille = permille;
        self
    }

    /// Override the loss rate on the directed link `src → dst`.
    pub fn link_loss(
        mut self,
        src: impl Into<String>,
        dst: impl Into<String>,
        permille: u32,
    ) -> Self {
        self.link_loss.push((src.into(), dst.into(), permille));
        self
    }

    /// Scatter `count` crash/restart pairs across all declared nodes at
    /// seeded-random points inside `[0, window_ns)`.
    pub fn scatter_crashes(mut self, count: usize, window_ns: u64) -> Self {
        self.scatter = Some((count, window_ns));
        self
    }

    /// What the engine does when a migration episode's deadline fires
    /// (default [`RetryPolicy::FallbackToHome`]).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Override the end-to-end migration-episode deadline (virtual ns).
    pub fn migration_timeout(mut self, ns: u64) -> Self {
        self.timeout_ns = Some(ns);
        self
    }

    fn resolve(
        &self,
        resolve: impl Fn(&str) -> Result<usize, ScenarioError>,
        nodes: usize,
    ) -> Result<ChaosPlan, ScenarioError> {
        let mut plan = ChaosPlan::new().seed(self.seed);
        for (at, node) in &self.crashes {
            plan = plan.crash_at(*at, resolve(node)?);
        }
        for (at, node) in &self.restarts {
            plan = plan.restart_at(*at, resolve(node)?);
        }
        for (at, a, b) in &self.partitions {
            plan = plan.partition_at(*at, resolve(a)?, resolve(b)?);
        }
        for (at, a, b) in &self.heals {
            plan = plan.heal_at(*at, resolve(a)?, resolve(b)?);
        }
        plan = plan.loss_permille(self.loss_permille);
        for (src, dst, permille) in &self.link_loss {
            plan = plan.link_loss_permille(resolve(src)?, resolve(dst)?, *permille);
        }
        if let Some((count, window)) = self.scatter {
            plan = plan.scatter_crashes(count, nodes, window);
        }
        Ok(plan)
    }
}

/// A declarative elastic node pool — the facade's view of
/// [`sod_runtime::PoolSpec`], handed to [`Scenario::pool`].
///
/// A pool is a named group of worker nodes sharing one [`NodeConfig`]
/// template that the engine grows and shrinks at runtime under a
/// [`ScalePolicy`]: `base` members exist from t = 0, scale-out spawns
/// fresh nodes (placeable only after the cold-start latency), and
/// scale-in drains members back toward `base` by migrating their hosted
/// stacks off before retiring them. Migration plans and triggers may
/// name the pool like a node — the destination resolves to the
/// least-loaded live member *at capture time*, so placements always see
/// the pool's current membership.
///
/// Initial members are named `"{pool}-{i}"` (`i < base`) and may be
/// referenced from [`Chaos`] directives — crash one and the controller
/// replaces it on its next tick. Per-pool scaling counters and the
/// `node_seconds` cost metric surface in
/// [`ClusterReport::pools`](sod_runtime::PoolReport).
///
/// Builder calls never fail; validation (`1 ≤ base ≤ max`, name
/// collisions) happens in [`Scenario::run`].
///
/// ```
/// use sod::net::MS;
/// use sod::runtime::ScalePolicy;
/// use sod::scenario::Pool;
///
/// let workers = Pool::new("workers")
///     .base(2)
///     .max(16)
///     .scale_policy(ScalePolicy::QueueDepth { high: 2, low: 1 })
///     .cold_start(5 * MS);
/// # let _ = workers;
/// ```
#[derive(Clone, Debug)]
pub struct Pool {
    name: String,
    template: Option<NodeConfig>,
    base: usize,
    max: usize,
    policy: ScalePolicy,
    cold_start_ns: u64,
    tick_ns: u64,
}

impl Pool {
    /// A pool named `name`: one base member, `max` equal to `base` (a
    /// fixed fleet — the natural baseline), queue-depth scaling armed at
    /// `high: 2, low: 1`, zero cold start, and the default controller
    /// tick ([`DEFAULT_POOL_TICK_NS`]).
    pub fn new(name: impl Into<String>) -> Self {
        Pool {
            name: name.into(),
            template: None,
            base: 1,
            max: 1,
            policy: ScalePolicy::QueueDepth { high: 2, low: 1 },
            cold_start_ns: 0,
            tick_ns: DEFAULT_POOL_TICK_NS,
        }
    }

    /// Members provisioned up-front (live from t = 0) and the floor the
    /// pool drains back to. Raises `max` to `base` if it would fall
    /// below.
    pub fn base(mut self, n: usize) -> Self {
        self.base = n;
        self.max = self.max.max(n);
        self
    }

    /// Hard ceiling on concurrent members (live + provisioning).
    pub fn max(mut self, n: usize) -> Self {
        self.max = n;
        self
    }

    /// The autoscaling policy (see [`ScalePolicy`] for the variants'
    /// exact semantics). With `base == max` the policy never fires and
    /// the pool behaves as a fixed fleet.
    pub fn scale_policy(mut self, policy: ScalePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Cold-start latency: a spawned member accepts placements only
    /// after this much virtual time (default 0 — instant provisioning).
    pub fn cold_start(mut self, ns: u64) -> Self {
        self.cold_start_ns = ns;
        self
    }

    /// Controller tick period (default [`DEFAULT_POOL_TICK_NS`]).
    pub fn tick(mut self, ns: u64) -> Self {
        self.tick_ns = ns;
        self
    }

    /// Node profile every member is created from (default:
    /// [`NodeConfig::cluster`] named after the pool).
    pub fn profile(mut self, cfg: NodeConfig) -> Self {
        self.template = Some(cfg);
        self
    }

    fn resolve(&self) -> Result<PoolSpec, ScenarioError> {
        if self.base < 1 || self.max < self.base {
            return Err(ScenarioError::PoolSize {
                pool: self.name.clone(),
                base: self.base,
                max: self.max,
            });
        }
        Ok(PoolSpec {
            name: self.name.clone(),
            template: self
                .template
                .clone()
                .unwrap_or_else(|| NodeConfig::cluster(&self.name)),
            base: self.base,
            max: self.max,
            policy: self.policy,
            cold_start_ns: self.cold_start_ns,
            tick_ns: self.tick_ns,
        })
    }
}

/// What went wrong while assembling or running a scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioError {
    /// The scenario declares no nodes.
    NoNodes,
    /// The scenario declares no programs.
    NoPrograms,
    /// Two nodes share a name.
    DuplicateNode(String),
    /// A link, plan, mount, or placement names an undeclared node.
    UnknownNode(String),
    /// A node- or program-scoped directive (`deploys`, `on`, `migrate`,
    /// …) was called before any `node(..)` / `program(..)`.
    Misplaced(&'static str),
    /// A custom topology's node count disagrees with the declared nodes
    /// (including the initial members of every pool).
    TopologySize { topology: usize, declared: usize },
    /// A pool shares its name with a node or another pool.
    DuplicatePool(String),
    /// A pool's size bounds are inconsistent (need `1 ≤ base ≤ max`).
    PoolSize {
        pool: String,
        base: usize,
        max: usize,
    },
    /// `threads(0)` was requested — a parallel drain needs at least one
    /// worker thread.
    ZeroThreads,
    /// A `migrate(..)` directive carries a plan with no segments.
    EmptyPlan,
    /// Deploying a class onto a node failed verification/loading.
    Deploy { node: String, error: String },
    /// A program finished with a runtime error.
    Program { program: String, error: String },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::NoNodes => write!(f, "scenario declares no nodes"),
            ScenarioError::NoPrograms => write!(f, "scenario declares no programs"),
            ScenarioError::DuplicateNode(n) => write!(f, "duplicate node name {n:?}"),
            ScenarioError::UnknownNode(n) => write!(f, "unknown node name {n:?}"),
            ScenarioError::Misplaced(what) => {
                write!(f, "{what} must follow the declaration it configures")
            }
            ScenarioError::TopologySize { topology, declared } => write!(
                f,
                "custom topology has {topology} nodes but {declared} were declared"
            ),
            ScenarioError::DuplicatePool(n) => {
                write!(f, "pool name {n:?} collides with a node or another pool")
            }
            ScenarioError::PoolSize { pool, base, max } => write!(
                f,
                "pool {pool:?} needs 1 <= base <= max (got base={base}, max={max})"
            ),
            ScenarioError::ZeroThreads => {
                write!(
                    f,
                    "threads(0) is invalid: a parallel drain needs at least one thread"
                )
            }
            ScenarioError::EmptyPlan => {
                write!(f, "migration plan has no segments (nowhere to migrate)")
            }
            ScenarioError::Deploy { node, error } => {
                write!(f, "deploying onto node {node:?} failed: {error}")
            }
            ScenarioError::Program { program, error } => {
                write!(f, "program {program} failed: {error}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Outcome of one program inside a finished scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramRun {
    /// `Class::method` of the program.
    pub name: String,
    /// The runtime's full measurement record.
    pub report: RunReport,
    /// The program's failure, if any. Always `None` for programs declared
    /// with [`Scenario::program`] (their failures abort the run); fleet
    /// members record failures here instead.
    pub error: Option<String>,
}

/// The typed result of [`Scenario::run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioReport {
    /// Final virtual time of the simulation (all events drained).
    pub finished_at_ns: u64,
    /// Aggregate fleet metrics over *all* declared programs: completion
    /// latency percentiles (nearest-rank), throughput, per-node
    /// utilization. Most useful for [`Scenario::fleet`] runs but always
    /// populated.
    pub cluster: ClusterReport,
    programs: Vec<ProgramRun>,
}

impl ScenarioReport {
    /// The first program's report (every scenario has at least one).
    pub fn first(&self) -> &RunReport {
        &self.programs[0].report
    }

    /// Report of the `i`-th declared program.
    pub fn report(&self, i: usize) -> &RunReport {
        &self.programs[i].report
    }

    /// All program outcomes, in declaration order.
    pub fn programs(&self) -> &[ProgramRun] {
        &self.programs
    }
}

/// Fluent builder for an elastic-execution experiment. See the [module
/// docs](self) for a walkthrough.
///
/// Node-scoped directives (`deploys`, `stages`, `file`, `mounts`) apply
/// to the most recent `node(..)`; program-scoped directives (`on`,
/// `starts_at`, `fetch_policy`, `migrate`) to the most recent
/// `program(..)`. A program without `on(..)` runs on the first declared
/// node.
#[derive(Debug, Default)]
pub struct Scenario {
    topo: Option<TopoSpec>,
    links: Vec<(String, String, LinkSpec)>,
    nodes: Vec<NodeDecl>,
    /// Mounts addressed to a node by name (`mount_on`), resolved in `run`.
    named_mounts: Vec<(String, String, String)>,
    programs: Vec<ProgramDecl>,
    requests: Vec<(u64, String, String)>,
    pools: Vec<Pool>,
    slice_ns: Option<u64>,
    code_shipping: Option<CodeShipping>,
    scheduler: Option<Scheduler>,
    chaos_plan: Option<Chaos>,
    cpu_contention: bool,
    slow_resolve: bool,
    errors: Vec<ScenarioError>,
}

impl Scenario {
    pub fn new() -> Self {
        Scenario::default()
    }

    /// Select a built-in topology (default: [`Preset::GigabitCluster`]).
    pub fn topology(mut self, preset: Preset) -> Self {
        self.topo = Some(TopoSpec::Preset(preset));
        self
    }

    /// Use a hand-built [`Topology`] instead of a preset. Its node count
    /// must match the declared nodes.
    pub fn custom(mut self, topology: Topology) -> Self {
        self.topo = Some(TopoSpec::Custom(topology));
        self
    }

    /// Override the link between two named nodes (both directions).
    pub fn link(mut self, a: impl Into<String>, b: impl Into<String>, spec: LinkSpec) -> Self {
        self.links.push((a.into(), b.into(), spec));
        self
    }

    /// Declare a node. Indices follow declaration order, starting at 0.
    pub fn node(mut self, name: impl Into<String>, cfg: NodeConfig) -> Self {
        self.nodes.push(NodeDecl {
            name: name.into(),
            cfg,
            deploys: Vec::new(),
            stages: Vec::new(),
            files: Vec::new(),
            mounts: Vec::new(),
        });
        self
    }

    fn with_last_node(mut self, what: &'static str, f: impl FnOnce(&mut NodeDecl)) -> Self {
        match self.nodes.last_mut() {
            Some(n) => f(n),
            None => self.errors.push(ScenarioError::Misplaced(what)),
        }
        self
    }

    /// Deploy a (preprocessed) class on the last declared node: loaded
    /// into its VM *and* published in its class repository.
    pub fn deploys(self, class: &ClassDef) -> Self {
        let class = class.clone();
        self.with_last_node("deploys(..)", move |n| n.deploys.push(class))
    }

    /// Stage a class file on the last declared node without loading it
    /// (it ships to workers on demand).
    pub fn stages(self, class: &ClassDef) -> Self {
        let class = class.clone();
        self.with_last_node("stages(..)", move |n| n.stages.push(class))
    }

    /// Create a file on the last declared node's simulated disk.
    pub fn file(self, path: impl Into<String>, bytes: u64, match_at: Option<u64>) -> Self {
        let path = path.into();
        self.with_last_node("file(..)", move |n| n.files.push((path, bytes, match_at)))
    }

    /// NFS-mount `prefix` on the last declared node, served by `server`.
    pub fn mounts(self, prefix: impl Into<String>, server: impl Into<String>) -> Self {
        let (prefix, server) = (prefix.into(), server.into());
        self.with_last_node("mounts(..)", move |n| n.mounts.push((prefix, server)))
    }

    /// NFS-mount `prefix` on the *named* node (not the last declared
    /// one), served by `server` — for meshes where every node mounts
    /// every export. Like every other name-taking directive, the names
    /// are resolved in [`Scenario::run`], so forward references to nodes
    /// declared later are fine.
    pub fn mount_on(
        mut self,
        node: impl Into<String>,
        prefix: impl Into<String>,
        server: impl Into<String>,
    ) -> Self {
        self.named_mounts
            .push((node.into(), prefix.into(), server.into()));
        self
    }

    /// Declare a program: `class::method(args)` rooted on the node named
    /// by a following `on(..)` (default: the first declared node).
    pub fn program(
        mut self,
        class: impl Into<String>,
        method: impl Into<String>,
        args: Vec<Value>,
    ) -> Self {
        self.programs.push(ProgramDecl {
            class: class.into(),
            method: method.into(),
            args,
            on: None,
            start_at: 0,
            fetch_policy: FetchPolicy::default(),
            migrations: Vec::new(),
            from_fleet: false,
        });
        self
    }

    /// Declare a [`Fleet`]: `fleet.programs` copies of one program,
    /// placed round-robin across `fleet.across`, started at the fleet's
    /// deterministic arrival times, each armed with the fleet's migration
    /// policies. Interleaves freely with `program(..)` declarations;
    /// fleet members occupy consecutive report slots in arrival order.
    pub fn fleet(mut self, fleet: Fleet) -> Self {
        let times = fleet.schedule.arrival_times(fleet.programs, fleet.seed);
        for (i, at) in times.into_iter().enumerate() {
            let on = if fleet.across.is_empty() {
                None
            } else {
                Some(fleet.across[i % fleet.across.len()].clone())
            };
            self.programs.push(ProgramDecl {
                class: fleet.class.clone(),
                method: fleet.method.clone(),
                args: fleet.args.clone(),
                on,
                start_at: at,
                fetch_policy: fleet.fetch_policy,
                migrations: fleet.migrations.clone(),
                from_fleet: true,
            });
        }
        self
    }

    fn with_last_program(mut self, what: &'static str, f: impl FnOnce(&mut ProgramDecl)) -> Self {
        match self.programs.last_mut() {
            Some(p) => f(p),
            None => self.errors.push(ScenarioError::Misplaced(what)),
        }
        self
    }

    /// Place the last declared program on the named node.
    pub fn on(self, node: impl Into<String>) -> Self {
        let node = node.into();
        self.with_last_program("on(..)", move |p| p.on = Some(node))
    }

    /// Start the last declared program at virtual time `ns` (default 0).
    pub fn starts_at(self, ns: u64) -> Self {
        self.with_last_program("starts_at(..)", move |p| p.start_at = ns)
    }

    /// Object-fetch policy for the last declared program.
    pub fn fetch_policy(self, policy: FetchPolicy) -> Self {
        self.with_last_program("fetch_policy(..)", move |p| p.fetch_policy = policy)
    }

    /// Migrate the last declared program per `plan` when `when` holds.
    pub fn migrate(self, when: When, plan: Plan) -> Self {
        self.with_last_program("migrate(..)", move |p| p.migrations.push((when, plan)))
    }

    /// Inject `count` client requests into the named node's accept queue
    /// at the schedule's deterministic arrival times; payloads are
    /// `{prefix}{i}` in arrival order (FIFO at the accept queue).
    pub fn client_requests(
        mut self,
        node: impl Into<String>,
        count: usize,
        schedule: ArrivalSchedule,
        seed: u64,
        prefix: impl Into<String>,
    ) -> Self {
        let (node, prefix) = (node.into(), prefix.into());
        for (i, at) in schedule.arrival_times(count, seed).into_iter().enumerate() {
            self.requests
                .push((at, node.clone(), format!("{prefix}{i}")));
        }
        self
    }

    /// Inject a client request into the named node's accept queue at
    /// virtual time `ns` (the photo-share scenario).
    pub fn client_request_at(
        mut self,
        ns: u64,
        node: impl Into<String>,
        payload: impl Into<String>,
    ) -> Self {
        self.requests.push((ns, node.into(), payload.into()));
        self
    }

    /// Override the execution-slice length (virtual ns per thread slice).
    pub fn slice_ns(mut self, ns: u64) -> Self {
        self.slice_ns = Some(ns);
        self
    }

    /// Cluster-wide code-shipping policy (default
    /// [`CodeShipping::BundleTop`]): what travels eagerly with migrating
    /// state versus on demand — the ablation axis of the codecache bench.
    pub fn code_shipping(mut self, policy: CodeShipping) -> Self {
        self.code_shipping = Some(policy);
        self
    }

    /// Event-scheduler choice for the simulation (default
    /// [`Scheduler::Sharded`]: per-node event shards under a conservative
    /// safe horizon). Both schedulers produce bit-identical
    /// [`ScenarioReport`]s — the `scheduler_equivalence` suite pins that —
    /// so this only trades simulator cost at fleet scale.
    pub fn scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Drain safe-horizon windows on `n` real threads
    /// ([`Scheduler::Parallel`]). Shorthand for
    /// `scheduler(Scheduler::Parallel { threads: n })`; `n == 0` is
    /// rejected with [`ScenarioError::ZeroThreads`] when the scenario
    /// runs. Any thread count produces the same bit-identical
    /// [`ScenarioReport`] as the sequential schedulers — parallelism
    /// only trades host wall-clock.
    pub fn threads(mut self, n: usize) -> Self {
        if n == 0 {
            self.errors.push(ScenarioError::ZeroThreads);
        } else {
            self.scheduler = Some(Scheduler::Parallel { threads: n });
        }
        self
    }

    /// Declare an elastic node [`Pool`]: `base` members live from t = 0,
    /// grown toward `max` and drained back under the pool's
    /// [`ScalePolicy`]. Plans and triggers may name the pool like a node;
    /// chaos directives may name its initial members (`"{pool}-{i}"`).
    /// Pool indices follow declaration order; initial members occupy node
    /// indices after every declared node, in that same order.
    pub fn pool(mut self, pool: Pool) -> Self {
        self.pools.push(pool);
        self
    }

    /// Model CPU contention (default off): a thread's execution slice
    /// stretches by the hosting node's runnable-thread count, so
    /// co-located programs slow each other down. This is what makes
    /// scale-out worth its node-seconds — without it an overloaded node
    /// executes every guest at full speed.
    pub fn cpu_contention(mut self, on: bool) -> Self {
        self.cpu_contention = on;
        self
    }

    /// Pin every node's VM (declared nodes and pool members alike) to the
    /// name-resolution reference path: no inline caches, no
    /// superinstructions. Differential-testing aid — the report must be
    /// bit-identical with this on and off, a property pinned by
    /// `tests/interp_equivalence.rs`.
    pub fn slow_resolve(mut self, on: bool) -> Self {
        self.slow_resolve = on;
        self
    }

    /// Inject faults from a [`Chaos`] plan: node crashes, link
    /// partitions, and seeded message loss, replayed deterministically.
    /// Dropped and stranded bytes surface in the report's `lost` buckets
    /// and the injected/handled fault counts in
    /// [`ClusterReport::chaos`](sod_runtime::ChaosCounters).
    pub fn chaos(mut self, chaos: Chaos) -> Self {
        self.chaos_plan = Some(chaos);
        self
    }

    /// Validate the description, wire the cluster, run the simulation to
    /// idle, and collect every program's report.
    pub fn run(self) -> Result<ScenarioReport, ScenarioError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        if self.nodes.is_empty() {
            return Err(ScenarioError::NoNodes);
        }
        if self.programs.is_empty() {
            return Err(ScenarioError::NoPrograms);
        }

        // Name table (also rejects duplicates).
        let mut index: HashMap<&str, usize> = HashMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if index.insert(n.name.as_str(), i).is_some() {
                return Err(ScenarioError::DuplicateNode(n.name.clone()));
            }
        }
        // Pool table: pool names must not collide with nodes or each
        // other; each pool's initial members ("{name}-{i}", i < base)
        // claim the node indices after the declared nodes, in pool
        // declaration order — so chaos and placement directives can
        // reference them by name.
        let declared_n = self.nodes.len();
        let mut pool_specs: Vec<PoolSpec> = Vec::with_capacity(self.pools.len());
        let mut pool_index: HashMap<&str, usize> = HashMap::new();
        let mut member_index: HashMap<String, usize> = HashMap::new();
        let mut total_nodes = declared_n;
        for (pi, pool) in self.pools.iter().enumerate() {
            if index.contains_key(pool.name.as_str())
                || pool_index.insert(pool.name.as_str(), pi).is_some()
            {
                return Err(ScenarioError::DuplicatePool(pool.name.clone()));
            }
            let mut spec = pool.resolve()?;
            spec.template.slow_resolve |= self.slow_resolve;
            for i in 0..spec.base {
                let member = format!("{}-{i}", spec.name);
                if index.contains_key(member.as_str()) {
                    return Err(ScenarioError::DuplicateNode(member));
                }
                member_index.insert(member, total_nodes);
                total_nodes += 1;
            }
            pool_specs.push(spec);
        }
        let resolve = |name: &str| -> Result<usize, ScenarioError> {
            index
                .get(name)
                .copied()
                .or_else(|| member_index.get(name).copied())
                .ok_or_else(|| ScenarioError::UnknownNode(name.to_owned()))
        };
        // Plan/trigger destinations additionally accept a pool name,
        // which becomes a sentinel the engine resolves to the
        // least-loaded live member at capture time.
        let resolve_dest = |name: &str| -> Result<usize, ScenarioError> {
            match pool_index.get(name) {
                Some(pi) => Ok(POOL_DEST_BASE + pi),
                None => resolve(name),
            }
        };

        // Topology: preset sized to the declared nodes plus every pool's
        // initial members, links overridden by name. Members spawned by
        // scale-out join the topology at runtime with the default link
        // profile.
        let mut topo = match self
            .topo
            .unwrap_or(TopoSpec::Preset(Preset::GigabitCluster))
        {
            TopoSpec::Preset(Preset::GigabitCluster) => Topology::gigabit_cluster(total_nodes),
            TopoSpec::Preset(Preset::WanGrid) => Topology::wan_grid(total_nodes),
            TopoSpec::Custom(t) => {
                if t.len() != total_nodes {
                    return Err(ScenarioError::TopologySize {
                        topology: t.len(),
                        declared: total_nodes,
                    });
                }
                t
            }
        };
        for (a, b, spec) in &self.links {
            topo.set_link(resolve(a)?, resolve(b)?, *spec);
        }

        // Nodes: config, deployed/staged classes, files, mounts.
        let mut nodes = Vec::with_capacity(self.nodes.len());
        for decl in &self.nodes {
            let mut cfg = decl.cfg.clone();
            cfg.slow_resolve |= self.slow_resolve;
            let mut node = Node::new(cfg);
            for class in &decl.deploys {
                node.deploy(class).map_err(|e| ScenarioError::Deploy {
                    node: decl.name.clone(),
                    error: format!("{e:?}"),
                })?;
            }
            for class in &decl.stages {
                node.stage(class);
            }
            for (path, bytes, match_at) in &decl.files {
                node.fs.add_file(path.clone(), *bytes, *match_at);
            }
            for (prefix, server) in &decl.mounts {
                node.fs.mount(prefix.clone(), resolve(server)?);
            }
            nodes.push(node);
        }
        for (node, prefix, server) in &self.named_mounts {
            let server = resolve(server)?;
            nodes[resolve(node)?].fs.mount(prefix.clone(), server);
        }

        // Chaos resolves before placement so fleet expansion can see
        // which nodes are already down when each member spawns.
        let chaos_plan = match &self.chaos_plan {
            Some(chaos) => Some(chaos.resolve(resolve, total_nodes)?),
            None => None,
        };

        // Programs (incl. expanded fleet members): placement, fetch
        // policy, armed policy triggers.
        let mut cluster = Cluster::new(nodes);
        if let Some(ns) = self.slice_ns {
            cluster.slice_ns = ns;
        }
        if let Some(policy) = self.code_shipping {
            cluster.code_shipping = policy;
        }
        cluster.cpu_contention = self.cpu_contention;
        let resolve_plan = |plan: &Plan| -> Result<MigrationPlan, ScenarioError> {
            let mut segments = Vec::with_capacity(plan.segments.len());
            for (node, nframes) in &plan.segments {
                segments.push(SegmentSpec {
                    dest: resolve_dest(node)?,
                    nframes: *nframes,
                });
            }
            Ok(MigrationPlan { segments })
        };
        // Fixed-time migrations are injected as simulator events, exactly
        // like the legacy `SodSim::migrate_at`, so a scenario-built run is
        // event-for-event identical to hand wiring.
        let mut fixed: Vec<(u64, u32, MigrationPlan)> = Vec::new();
        let mut names = Vec::with_capacity(self.programs.len());
        for decl in &self.programs {
            let mut home = match &decl.on {
                Some(name) => resolve(name)?,
                None => 0,
            };
            // Fleet members skip homes that are already down when they
            // spawn: round-robin advances over the declared nodes until
            // one is up at the member's start time. If every candidate is
            // down the original placement stands — the member then fails
            // with the usual typed crash error instead of silently
            // stalling. Single `program(..)` declarations keep their
            // exact placement (a crash there is the experiment).
            if decl.from_fleet && home < declared_n && declared_n > 1 {
                if let Some(plan) = &chaos_plan {
                    if plan.is_down_at(home, decl.start_at) {
                        for step in 1..declared_n {
                            let cand = (home + step) % declared_n;
                            if !plan.is_down_at(cand, decl.start_at) {
                                home = cand;
                                break;
                            }
                        }
                    }
                }
            }
            let pid = cluster.add_program(home, &*decl.class, &*decl.method, decl.args.clone());
            cluster.programs[pid as usize].fetch_policy = decl.fetch_policy;
            names.push(format!("{}::{}", decl.class, decl.method));
            for (when, plan) in &decl.migrations {
                let plan = resolve_plan(plan)?;
                // A plan with no segments can never migrate anywhere (and
                // would leave the engine suspended waiting on zero
                // segments): reject it up front.
                let Some(first_dest) = plan.segments.first().map(|s| s.dest) else {
                    return Err(ScenarioError::EmptyPlan);
                };
                match *when {
                    When::At(ns) => fixed.push((ns, pid, plan)),
                    When::OnOom => cluster
                        .arm_trigger(pid, ArmedTrigger::new(Trigger::OnOom { to: first_dest })),
                    When::OnObjectFaults(threshold) => cluster.arm_trigger(
                        pid,
                        ArmedTrigger::with_plan(
                            Trigger::OnObjectFaults {
                                threshold,
                                to: first_dest,
                            },
                            plan,
                        ),
                    ),
                    When::OnCpuSliceBudget(slices) => cluster.arm_trigger(
                        pid,
                        ArmedTrigger::with_plan(
                            Trigger::OnCpuSliceBudget {
                                slices,
                                to: first_dest,
                            },
                            plan,
                        ),
                    ),
                }
            }
        }

        // Pools join after every declared node so member indices line up
        // with the name table built above.
        for spec in pool_specs {
            cluster.add_pool(spec);
        }

        let mut sim = SodSim::with_scheduler(cluster, topo, self.scheduler.unwrap_or_default());
        if let Some(plan) = &chaos_plan {
            sim.set_chaos(plan);
        }
        if let Some(chaos) = &self.chaos_plan {
            if let Some(policy) = chaos.retry {
                sim.set_retry_policy(policy);
            }
            if let Some(ns) = chaos.timeout_ns {
                sim.set_migration_timeout(ns);
            }
        }
        sim.start_pool_ticks();
        for pid in 0..self.programs.len() as u32 {
            sim.start_program(self.programs[pid as usize].start_at, pid);
        }
        for (ns, pid, plan) in fixed {
            sim.migrate_at(ns, pid, plan);
        }
        for (ns, node, payload) in &self.requests {
            sim.client_request_at(*ns, resolve(node)?, payload.clone());
        }
        let finished_at_ns = sim.run();

        let mut programs = Vec::with_capacity(names.len());
        for (pid, name) in names.into_iter().enumerate() {
            let p = sim.program(pid as u32);
            if let Some(error) = &p.error {
                // Fleet members report failure; single programs abort.
                if !self.programs[pid].from_fleet {
                    return Err(ScenarioError::Program {
                        program: name,
                        error: error.clone(),
                    });
                }
            }
            programs.push(ProgramRun {
                name,
                report: p.report.clone(),
                error: p.error.clone(),
            });
        }
        Ok(ScenarioReport {
            finished_at_ns,
            cluster: sim.cluster_report(),
            programs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_scenarios_are_rejected() {
        assert_eq!(Scenario::new().run(), Err(ScenarioError::NoNodes));
        assert_eq!(
            Scenario::new().node("a", NodeConfig::cluster("a")).run(),
            Err(ScenarioError::NoPrograms)
        );
    }

    #[test]
    fn misplaced_directives_are_reported() {
        let err = Scenario::new()
            .on("nowhere")
            .node("a", NodeConfig::cluster("a"))
            .program("X", "main", vec![])
            .run();
        assert_eq!(err, Err(ScenarioError::Misplaced("on(..)")));
    }

    #[test]
    fn unknown_and_duplicate_names_are_reported() {
        let err = Scenario::new()
            .node("a", NodeConfig::cluster("a"))
            .program("X", "main", vec![])
            .on("ghost")
            .run();
        assert_eq!(err, Err(ScenarioError::UnknownNode("ghost".into())));
        let err = Scenario::new()
            .node("a", NodeConfig::cluster("a"))
            .node("a", NodeConfig::cluster("a"))
            .program("X", "main", vec![])
            .run();
        assert_eq!(err, Err(ScenarioError::DuplicateNode("a".into())));
    }

    #[test]
    fn custom_topology_size_is_checked() {
        let err = Scenario::new()
            .custom(Topology::gigabit_cluster(3))
            .node("a", NodeConfig::cluster("a"))
            .program("X", "main", vec![])
            .run();
        assert_eq!(
            err,
            Err(ScenarioError::TopologySize {
                topology: 3,
                declared: 1,
            })
        );
    }

    #[test]
    fn plan_constructors_resolve_names() {
        let p = Plan::chain(&[("a", 1), ("b", 2)]);
        assert_eq!(p.segments, vec![("a".to_owned(), 1), ("b".to_owned(), 2)]);
        assert_eq!(Plan::top_to("a", 3).segments, vec![("a".to_owned(), 3)]);
        let w = Plan::whole_stack_to("a");
        assert_eq!(w.segments.len(), 2);
        assert_eq!(w.segments[0], ("a".to_owned(), 1));
    }

    #[test]
    fn empty_plans_are_rejected() {
        for when in [When::At(1), When::OnOom, When::OnObjectFaults(1)] {
            let err = Scenario::new()
                .node("a", NodeConfig::cluster("a"))
                .program("X", "main", vec![])
                .migrate(when, Plan::chain(&[]))
                .run();
            assert_eq!(err, Err(ScenarioError::EmptyPlan), "{when:?}");
        }
    }

    #[test]
    fn mount_on_tolerates_forward_references() {
        // `mount_on` may name nodes declared later; resolution happens in
        // `run()` like every other directive.
        let class = sod_asm::builder::ClassBuilder::new("T")
            .method("main", &[], |m| {
                m.line();
                m.pushi(1).retv();
            })
            .build()
            .unwrap();
        let class = sod_preprocess::preprocess_sod(&class).unwrap();
        let report = Scenario::new()
            .mount_on("client", "/srv/", "server")
            .node("client", NodeConfig::cluster("client"))
            .deploys(&class)
            .node("server", NodeConfig::cluster("server"))
            .program("T", "main", vec![])
            .run()
            .unwrap();
        assert_eq!(report.first().result, Some(1));
        // An undeclared name still errors — at run() time.
        let err = Scenario::new()
            .mount_on("ghost", "/srv/", "client")
            .node("client", NodeConfig::cluster("client"))
            .program("T", "main", vec![])
            .run();
        assert_eq!(err, Err(ScenarioError::UnknownNode("ghost".into())));
    }

    fn trivial_class(name: &str) -> ClassDef {
        let c = sod_asm::builder::ClassBuilder::new(name)
            .method("main", &[], |m| {
                m.line();
                m.pushi(1).retv();
            })
            .build()
            .unwrap();
        sod_preprocess::preprocess_sod(&c).unwrap()
    }

    #[test]
    fn fleet_expands_round_robin_with_cluster_report() {
        let class = trivial_class("T");
        let report = Scenario::new()
            .node("a", NodeConfig::cluster("a"))
            .deploys(&class)
            .node("b", NodeConfig::cluster("b"))
            .deploys(&class)
            .fleet(
                Fleet::new("T", "main", vec![])
                    .programs(6)
                    .across(&["a", "b"])
                    .arrivals(ArrivalSchedule::uniform(1_000), 7),
            )
            .run()
            .unwrap();
        assert_eq!(report.programs().len(), 6);
        assert_eq!(report.cluster.launched, 6);
        assert_eq!(report.cluster.completed, 6);
        assert_eq!(report.cluster.failed, 0);
        assert!(report.cluster.p50_latency_ns > 0);
        assert!(report.cluster.makespan_ns > 0);
        // Round-robin placement: both nodes executed slices.
        assert_eq!(report.cluster.per_node.len(), 2);
        assert!(report.cluster.per_node.iter().all(|n| n.slices > 0));
        assert!(report.programs().iter().all(|p| p.error.is_none()));
    }

    #[test]
    fn fleet_member_failure_is_recorded_not_fatal() {
        let class = sod_asm::builder::ClassBuilder::new("Alloc")
            .method("main", &[], |m| {
                m.line();
                m.pushi(1_000).newarr().arrlen().retv();
            })
            .build()
            .unwrap();
        let class = sod_preprocess::preprocess_sod(&class).unwrap();
        let tiny = NodeConfig {
            mem_limit: Some(64),
            ..NodeConfig::cluster("tiny")
        };
        let report = Scenario::new()
            .node("ok", NodeConfig::cluster("ok"))
            .deploys(&class)
            .node("tiny", tiny.clone())
            .deploys(&class)
            .fleet(
                Fleet::new("Alloc", "main", vec![])
                    .programs(4)
                    .across(&["ok", "tiny"]),
            )
            .run()
            .unwrap();
        assert_eq!(report.cluster.launched, 4);
        assert_eq!(report.cluster.completed, 2);
        assert_eq!(report.cluster.failed, 2);
        let errs: Vec<_> = report
            .programs()
            .iter()
            .filter_map(|p| p.error.as_deref())
            .collect();
        assert_eq!(errs.len(), 2);
        assert!(errs.iter().all(|e| e.contains("OutOfMemory")));
        // The same failure outside a fleet still aborts the run.
        let err = Scenario::new()
            .node("tiny", tiny)
            .deploys(&class)
            .program("Alloc", "main", vec![])
            .run();
        assert!(matches!(err, Err(ScenarioError::Program { .. })));
    }

    #[test]
    fn chaos_names_are_resolved_and_checked() {
        let class = trivial_class("T");
        // Unknown node in a chaos directive errors at run() time.
        let err = Scenario::new()
            .node("a", NodeConfig::cluster("a"))
            .deploys(&class)
            .program("T", "main", vec![])
            .chaos(Chaos::new().crash_at(1_000, "ghost"))
            .run();
        assert_eq!(err, Err(ScenarioError::UnknownNode("ghost".into())));
        // A quiet plan (crash of an uninvolved node) leaves results
        // intact and surfaces chaos counters.
        let report = Scenario::new()
            .node("a", NodeConfig::cluster("a"))
            .deploys(&class)
            .node("b", NodeConfig::cluster("b"))
            .program("T", "main", vec![])
            .chaos(Chaos::new().seed(9).crash_at(0, "b"))
            .run()
            .unwrap();
        assert_eq!(report.first().result, Some(1));
        assert_eq!(report.cluster.chaos.crashes, 1);
        assert_eq!(
            report.cluster.total_lost(),
            sod_runtime::NetBytes::default()
        );
    }

    #[test]
    fn pool_bounds_and_name_collisions_are_checked() {
        let class = trivial_class("T");
        let base_scenario = || {
            Scenario::new()
                .node("a", NodeConfig::cluster("a"))
                .deploys(&class)
                .program("T", "main", vec![])
        };
        // base must be at least 1 …
        let err = base_scenario().pool(Pool::new("w").base(0)).run();
        assert_eq!(
            err,
            Err(ScenarioError::PoolSize {
                pool: "w".into(),
                base: 0,
                max: 1,
            })
        );
        // … and max must cover it.
        let err = base_scenario().pool(Pool::new("w").base(2).max(1)).run();
        assert_eq!(
            err,
            Err(ScenarioError::PoolSize {
                pool: "w".into(),
                base: 2,
                max: 1,
            })
        );
        // A pool may not shadow a node, nor another pool.
        let err = base_scenario().pool(Pool::new("a")).run();
        assert_eq!(err, Err(ScenarioError::DuplicatePool("a".into())));
        let err = base_scenario()
            .pool(Pool::new("w"))
            .pool(Pool::new("w"))
            .run();
        assert_eq!(err, Err(ScenarioError::DuplicatePool("w".into())));
        // An initial member name may not shadow a declared node either.
        let err = Scenario::new()
            .node("a", NodeConfig::cluster("a"))
            .deploys(&class)
            .node("w-0", NodeConfig::cluster("w-0"))
            .program("T", "main", vec![])
            .pool(Pool::new("w"))
            .run();
        assert_eq!(err, Err(ScenarioError::DuplicateNode("w-0".into())));
    }

    #[test]
    fn pool_destinations_resolve_and_counters_surface() {
        let class = sod_asm::builder::ClassBuilder::new("App")
            .method("work", &["n"], |m| {
                m.line();
                m.pushi(0).store("acc");
                m.pushi(0).store("i");
                m.line();
                m.label("loop");
                m.load("i").load("n").if_cmp(sod_vm::instr::Cmp::Ge, "done");
                m.line();
                m.load("acc").load("i").add().store("acc");
                m.line();
                m.load("i").pushi(1).add().store("i").goto("loop");
                m.line();
                m.label("done");
                m.load("acc").retv();
            })
            .method("main", &["n"], |m| {
                m.line();
                m.load("n").invoke("App", "work", 1).store("r");
                m.line();
                m.load("r").retv();
            })
            .build()
            .unwrap();
        let class = sod_preprocess::preprocess_sod(&class).unwrap();
        let report = Scenario::new()
            .node("home", NodeConfig::cluster("home"))
            .deploys(&class)
            .pool(Pool::new("workers").base(1).max(2))
            .program("App", "main", vec![Value::Int(200_000)])
            .migrate(When::At(sod_net::MS), Plan::top_to("workers", 1))
            .run()
            .unwrap();
        assert_eq!(report.first().result, Some((0..200_000i64).sum()));
        assert_eq!(report.first().migrations.len(), 1);
        // The pool's counters surface in the cluster report, and its
        // initial member occupies the node slot after the declared nodes.
        assert_eq!(report.cluster.pools.len(), 1);
        let pool = &report.cluster.pools[0];
        assert_eq!(pool.name, "workers");
        assert_eq!(pool.final_size, 1);
        assert_eq!(pool.spawns, 0);
        assert_eq!(report.cluster.per_node.len(), 2);
        assert!(report.cluster.per_node[1].slices > 0, "member executed");
        assert!(report.cluster.node_ns > 0);
        // A migration naming neither node nor pool still errors.
        let err = Scenario::new()
            .node("a", NodeConfig::cluster("a"))
            .deploys(&class)
            .program("App", "main", vec![Value::Int(4)])
            .migrate(When::At(sod_net::MS), Plan::top_to("ghost", 1))
            .run();
        assert_eq!(err, Err(ScenarioError::UnknownNode("ghost".into())));
    }

    #[test]
    fn fleet_placement_skips_nodes_down_at_spawn() {
        let class = trivial_class("T");
        let fleet = || {
            Fleet::new("T", "main", vec![])
                .programs(6)
                .across(&["a", "b"])
                .arrivals(ArrivalSchedule::uniform(1_000), 7)
        };
        let scenario = |chaos| {
            Scenario::new()
                .node("a", NodeConfig::cluster("a"))
                .deploys(&class)
                .node("b", NodeConfig::cluster("b"))
                .deploys(&class)
                .fleet(fleet())
                .chaos(chaos)
                .run()
                .unwrap()
        };
        // "b" is down for the whole run. Round-robin used to home half
        // the fleet there and fail them on arrival; placement now skips
        // to the next node that is up at each member's start time.
        let report = scenario(Chaos::new().crash_at(0, "b"));
        assert_eq!(report.cluster.launched, 6);
        assert_eq!(report.cluster.completed, 6);
        assert_eq!(report.cluster.failed, 0);
        assert!(report.programs().iter().all(|p| p.error.is_none()));
        // Crashing an uninvolved instant later leaves members homed on
        // "b" in place once it has restarted.
        let report = scenario(Chaos::new().crash_at(0, "b").restart_at(1_500, "b"));
        assert_eq!(report.cluster.completed, 6);
        assert_eq!(report.cluster.failed, 0);
    }

    #[test]
    fn errors_display() {
        let e = ScenarioError::Program {
            program: "App::main".into(),
            error: "boom".into(),
        };
        assert!(e.to_string().contains("App::main"));
        assert!(ScenarioError::NoNodes.to_string().contains("no nodes"));
        assert!(ScenarioError::ZeroThreads
            .to_string()
            .contains("threads(0)"));
    }

    #[test]
    fn zero_threads_is_a_typed_error() {
        let class = trivial_class("T");
        let err = Scenario::new()
            .node("a", NodeConfig::cluster("a"))
            .deploys(&class)
            .program("T", "main", vec![])
            .threads(0)
            .run();
        assert_eq!(err, Err(ScenarioError::ZeroThreads));
    }

    #[test]
    fn parallel_threads_match_sequential() {
        let class = sod_asm::builder::ClassBuilder::new("App")
            .method("work", &["n"], |m| {
                m.line();
                m.pushi(0).store("acc");
                m.pushi(0).store("i");
                m.line();
                m.label("loop");
                m.load("i").load("n").if_cmp(sod_vm::instr::Cmp::Ge, "done");
                m.line();
                m.load("acc").load("i").add().store("acc");
                m.line();
                m.load("i").pushi(1).add().store("i").goto("loop");
                m.line();
                m.label("done");
                m.load("acc").retv();
            })
            .method("main", &["n"], |m| {
                m.line();
                m.load("n").invoke("App", "work", 1).store("r");
                m.line();
                m.load("r").retv();
            })
            .build()
            .unwrap();
        let class = sod_preprocess::preprocess_sod(&class).unwrap();
        let run = |threads: Option<usize>| {
            let mut s = Scenario::new()
                .node("home", NodeConfig::cluster("home"))
                .deploys(&class)
                .node("worker", NodeConfig::cluster("worker"))
                .deploys(&class)
                .program("App", "main", vec![Value::Int(100_000)])
                .on("home")
                .migrate(When::At(sod_net::MS), Plan::top_to("worker", 1));
            if let Some(n) = threads {
                s = s.threads(n);
            }
            s.run().unwrap()
        };
        let sequential = run(None);
        for n in [1, 2, 4] {
            let parallel = run(Some(n));
            assert_eq!(
                parallel, sequential,
                "threads({n}) diverged from the sequential report"
            );
        }
        assert_eq!(sequential.first().result, Some((0..100_000i64).sum()));
        assert_eq!(sequential.first().migrations.len(), 1);
    }
}
